//! Wafer-scale sequence-parallel PADE — the paper's future-work
//! direction 1 (§VII).
//!
//! A long context is sharded across up to dozens of cycle-level PADE
//! chips: each chip runs the full QK-PU pipeline over its key shard, and
//! the per-chip partial attention states `(m, l, O)` are merged over a
//! ring or 2-D-mesh interconnect. The merge is the associative online-
//! softmax combination, so the fabric topology changes *cost*, never the
//! *result*:
//!
//! * [`partial`] — mergeable `(m, l, O)` states and the reduction
//!   primitive,
//! * [`wafer`] — the multi-chip runner: sharding, per-chip simulation,
//!   guard synchronization and the communication model,
//! * [`InterconnectConfig`] — ring vs 2-D mesh fabric parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partial;
pub mod wafer;

/// Fabric topology of the wafer interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Unidirectional ring: `chips − 1` reduction steps.
    Ring,
    /// 2-D mesh with row-then-column reduction: `2·(⌈√chips⌉ − 1)` steps.
    Mesh2D,
}

/// Interconnect parameters of the wafer fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectConfig {
    /// Fabric topology.
    pub topology: Topology,
    /// Payload bytes a link moves per core cycle.
    pub link_bytes_per_cycle: u64,
    /// Fixed per-hop latency in core cycles.
    pub hop_latency_cycles: u64,
    /// Energy per payload byte moved one hop, in pJ.
    pub pj_per_byte: f64,
}

impl InterconnectConfig {
    /// Wafer-scale ring: wide low-latency links, but `chips − 1` serial
    /// reduction steps.
    #[must_use]
    pub fn wafer_ring() -> Self {
        Self {
            topology: Topology::Ring,
            link_bytes_per_cycle: 64,
            hop_latency_cycles: 25,
            pj_per_byte: 1.1,
        }
    }

    /// Wafer-scale 2-D mesh: same links, logarithmic-ish reduction depth
    /// (row reduce, then column reduce).
    #[must_use]
    pub fn wafer_mesh() -> Self {
        Self { topology: Topology::Mesh2D, ..Self::wafer_ring() }
    }

    /// Serial reduction steps needed to merge `chips` partial states.
    #[must_use]
    pub fn reduce_steps(&self, chips: usize) -> u64 {
        if chips <= 1 {
            return 0;
        }
        match self.topology {
            Topology::Ring => chips as u64 - 1,
            Topology::Mesh2D => {
                let side = (chips as f64).sqrt().ceil() as u64;
                2 * (side - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_reduces_in_fewer_steps_than_ring_at_scale() {
        let ring = InterconnectConfig::wafer_ring();
        let mesh = InterconnectConfig::wafer_mesh();
        for chips in [4usize, 16, 64] {
            assert!(mesh.reduce_steps(chips) < ring.reduce_steps(chips), "chips {chips}");
        }
    }

    #[test]
    fn single_chip_needs_no_reduction() {
        assert_eq!(InterconnectConfig::wafer_ring().reduce_steps(1), 0);
        assert_eq!(InterconnectConfig::wafer_mesh().reduce_steps(1), 0);
    }

    #[test]
    fn mesh_step_counts_match_row_column_schedule() {
        let mesh = InterconnectConfig::wafer_mesh();
        assert_eq!(mesh.reduce_steps(16), 6); // 4×4: 3 row + 3 column
        assert_eq!(mesh.reduce_steps(64), 14); // 8×8
    }
}
