//! Fig. 26 — robustness studies: (a) energy under PTQ/QAT at INT8/INT4
//! (QAT flattens score distributions, starving predictors of sparsity);
//! (b) ultra-long-sequence decoding energy, where the predictor's full-K
//! cost dominates stage-splitting designs.

use pade_baselines::{sofa, Accelerator};
use pade_core::accelerator::{scale_to_model, PadeAccelerator};
use pade_core::config::PadeConfig;
use pade_energy::{EnergyLedger, Tech};
use pade_experiments::report::{banner, pct, Table};
use pade_experiments::runner::{run_baseline, run_pade, Workload, DECODE_STEPS};
use pade_workload::profile::ScoreProfile;
use pade_workload::trace::{AttentionTrace, TraceConfig};
use pade_workload::{model, task};

fn main() {
    banner("Fig. 26(a)", "Energy under PTQ/QAT quantization at INT8 and INT4");
    let mut table = Table::new(vec!["scenario", "SOFA norm energy", "PADE norm energy"]);
    let mut t = task::wikilingua();
    t.seq_len = 2048;
    let mut base_sofa = 0.0f64;
    let mut base_pade = 0.0f64;
    for (name, flattened, bits) in
        [("PTQ 8", false, 8u32), ("QAT 8", true, 8), ("PTQ 4", false, 4), ("QAT 4", true, 4)]
    {
        let mut w = Workload::new(model::llama2_7b(), t, 3000);
        if flattened || bits != 8 {
            w.trace = AttentionTrace::generate(&TraceConfig {
                seq_len: w.sim_seq,
                head_dim: w.model.head_dim,
                n_queries: 8,
                profile: if flattened {
                    ScoreProfile::flattened()
                } else {
                    ScoreProfile::standard()
                },
                bits,
                seed: 3000,
            });
        }
        let sofa_design = sofa().with_exec_bits(bits);
        let (_, so) = run_baseline(&w, &sofa_design);
        let cfg = PadeConfig { bits, ..PadeConfig::standard() };
        let (_, po) = run_pade(&w, cfg);
        if name == "PTQ 8" {
            base_sofa = so.energy.total_pj();
            base_pade = po.energy.total_pj();
        }
        table.row(vec![
            name.into(),
            format!("{:.2}", so.energy.total_pj() / base_sofa),
            format!("{:.2}", po.energy.total_pj() / base_pade),
        ]);
    }
    println!("{}", table.render());
    println!("Shape to check: QAT raises SOFA's energy (~6% in the paper — the");
    println!("flattened distribution starves its predictor) while PADE moves");
    println!("little; at 4-bit the predictor share dominates SOFA, PADE loses");
    println!("only ~2%.");

    banner("Fig. 26(b)", "Long-sequence decoding energy breakdown (S = 4k/8k/16k)");
    let mut table = Table::new(vec![
        "S",
        "design",
        "norm energy",
        "DRAM share",
        "buffer share",
        "compute share",
    ]);
    let m = model::llama2_7b();
    let mut dense4k = 0.0f64;
    for s in [4096usize, 8192, 16384] {
        let sim_seq = s.min(8192);
        for (name, cfg) in
            [("Dense", PadeConfig::dense_baseline()), ("PADE", PadeConfig::standard())]
        {
            let trace = AttentionTrace::generate(&TraceConfig {
                seq_len: sim_seq,
                head_dim: m.head_dim,
                n_queries: 1,
                profile: ScoreProfile::long_context(),
                bits: 8,
                seed: 3100,
            });
            let block = PadeAccelerator::new(cfg).run_trace(&trace);
            let mut stats = scale_to_model(&block.stats, &m, s, 1, Some(DECODE_STEPS));
            if s > sim_seq {
                // Linear per-key extrapolation.
                let f = s as f64 / sim_seq as f64;
                stats.traffic.dram_read_bytes = (stats.traffic.dram_read_bytes as f64 * f) as u64;
                stats.ops.bit_serial_acc = (stats.ops.bit_serial_acc as f64 * f) as u64;
                stats.ops.int8_mac = (stats.ops.int8_mac as f64 * f) as u64;
            }
            let e = EnergyLedger::from_stats(&stats, &Tech::cmos28());
            if name == "Dense" && s == 4096 {
                dense4k = e.total_pj();
            }
            let c = e.combined();
            table.row(vec![
                format!("{}k", s / 1024),
                name.into(),
                format!("{:.2}", e.total_pj() / dense4k),
                pct(c.dram_pj / c.total_pj()),
                pct(c.sram_pj / c.total_pj()),
                pct(c.compute_pj / c.total_pj()),
            ]);
        }
        // SOFA decode: predictor re-reads the full K every step.
        let trace = AttentionTrace::generate(&TraceConfig {
            seq_len: sim_seq,
            head_dim: m.head_dim,
            n_queries: 1,
            profile: ScoreProfile::long_context(),
            bits: 8,
            seed: 3100,
        });
        let r = sofa().run(&trace);
        let mut stats = scale_to_model(&r.stats, &m, s, 1, Some(DECODE_STEPS));
        if s > sim_seq {
            let f = s as f64 / sim_seq as f64;
            stats.predictor_traffic.dram_read_bytes =
                (stats.predictor_traffic.dram_read_bytes as f64 * f) as u64;
            stats.traffic.dram_read_bytes = (stats.traffic.dram_read_bytes as f64 * f) as u64;
        }
        let e = EnergyLedger::from_stats(&stats, &Tech::cmos28());
        let c = e.combined();
        table.row(vec![
            format!("{}k", s / 1024),
            "SOFA".into(),
            format!("{:.2}", e.total_pj() / dense4k),
            pct(c.dram_pj / c.total_pj()),
            pct(c.sram_pj / c.total_pj()),
            pct(c.compute_pj / c.total_pj()),
        ]);
    }
    println!("{}", table.render());
    println!("Shape to check: DRAM dominates (>85%) for every design; SOFA's");
    println!("energy rises steeply with S (predictor loads the whole K per");
    println!("step) while PADE grows only mildly (paper: ~40% vs ~5%, 4k→16k).");
}
