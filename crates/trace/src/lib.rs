//! Deterministic observability for the PADE stack: hierarchical spans
//! keyed by the logical [`Cycle`] clock, a typed metrics registry, and a
//! Chrome-trace/Perfetto exporter.
//!
//! # Design
//!
//! Every span, instant, counter and gauge is stamped with the **logical**
//! clock of the subsystem that emitted it (engine block cycles, serve node
//! time, cache ticks), never wall time — so a trace is a pure function of
//! the workload and seed. Wall-clock durations ride along as optional
//! annotations on span ends and are excluded from determinism fingerprints.
//!
//! Events are recorded onto *tracks*: a track is a totally-ordered event
//! stream owned by exactly one logical unit of work (one engine block
//! dispatch, one serve node, one cache manager). Owners either batch
//! events through a [`TraceCtx`] or submit one-shots through [`Tracer`];
//! either way all events of a track originate from a single thread in
//! deterministic program order. The [`Recorder`] keys its store by track
//! id, so a snapshot is ordered by `(track, emission order)` no matter how
//! `pade-par` interleaves worker flushes — the same idiom as the ordered
//! fork-join itself.
//!
//! # Zero cost when disabled
//!
//! The `enabled` cargo feature gates every recording body. Without it
//! [`Tracer::is_active`] is a constant `false`, all methods are empty
//! inlinable stubs, and instrumented hot loops fold their telemetry
//! branches away entirely. Downstream crates expose this as their own
//! `trace` feature.
//!
//! # Example
//!
//! ```
//! use pade_sim::Cycle;
//! use pade_trace::{Recorder, Tracer};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(Recorder::new());
//! let tracer = Tracer::new(recorder.clone());
//! let mut ctx = tracer.ctx(pade_trace::track::id(pade_trace::track::SERVE, 0, 0));
//! ctx.begin("serve.dispatch", Cycle(10));
//! ctx.count("serve.batch_tokens", Cycle(10), 64);
//! ctx.end(Cycle(42));
//! ctx.flush();
//! let snap = recorder.snapshot();
//! # let _ = &snap;
//! #[cfg(feature = "enabled")]
//! {
//!     assert_eq!(snap.span_count(), 1);
//!     snap.check_well_formed().unwrap();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
pub mod flight;
mod metrics;
mod sink;
pub mod stream;

pub use chrome::{
    save_chrome_trace, validate_chrome_trace, write_chrome_trace, ChromeTraceSummary,
};
pub use flight::{assemble_timelines, RequestTimeline};
pub use metrics::{MetricsRegistry, StageBreakdown, StageStat};
pub use sink::{NullSink, Recorder, TraceSink, TraceSnapshot, TrackEvents};
pub use stream::{read_stream, read_stream_lossy, StreamSink};

/// Re-exported so layers without a `pade-sim` dependency can stamp events.
pub use pade_sim::Cycle;
use std::fmt;
use std::sync::Arc;

/// One telemetry event on a track. `name` fields are `&'static str` so
/// recording a span costs two enum pushes, no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Opens a span at `clock`. Spans on one track nest strictly.
    Begin {
        /// Stage name, e.g. `"engine.qk_block"`.
        name: &'static str,
        /// Logical open time.
        clock: Cycle,
    },
    /// Closes the innermost open span. `wall_nanos` is the measured
    /// wall-clock duration (0 when untimed) — annotation only, never part
    /// of determinism fingerprints.
    End {
        /// Logical close time (≥ the matching begin).
        clock: Cycle,
        /// Optional wall-clock duration annotation in nanoseconds.
        wall_nanos: u64,
    },
    /// A point event.
    Instant {
        /// Event name.
        name: &'static str,
        /// Logical time.
        clock: Cycle,
    },
    /// A monotonic counter increment.
    Count {
        /// Counter name.
        name: &'static str,
        /// Logical time.
        clock: Cycle,
        /// Amount added (counters only go up).
        delta: u64,
    },
    /// A level sample (queue depth, occupancy, …).
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Logical time.
        clock: Cycle,
        /// Sampled level.
        value: f64,
    },
    /// A causality edge: one hop of a request's journey through the
    /// stack (router placement, node admit, dispatch, cache attach, tier
    /// spill/fetch, retire). Links sharing a `request` id form a flow
    /// chain exported as Perfetto flow events and folded into
    /// [`RequestTimeline`]s by [`assemble_timelines`].
    Link {
        /// Hop name, e.g. `"req.admit"`.
        name: &'static str,
        /// Logical time.
        clock: Cycle,
        /// Request id the hop belongs to.
        request: u64,
        /// Hop-specific payload (node index, token count, latency, …).
        info: u64,
    },
}

impl TraceEvent {
    /// Logical timestamp of the event.
    #[must_use]
    pub fn clock(&self) -> Cycle {
        match *self {
            TraceEvent::Begin { clock, .. }
            | TraceEvent::End { clock, .. }
            | TraceEvent::Instant { clock, .. }
            | TraceEvent::Count { clock, .. }
            | TraceEvent::Gauge { clock, .. }
            | TraceEvent::Link { clock, .. } => clock,
        }
    }
}

/// Deterministic track-id scheme: `layer ≪ 56 | owner ≪ 32 | seq`.
///
/// Callers assign ids from values that are themselves deterministic (node
/// index, dispatch sequence number), never from thread identity, so the
/// same workload produces the same track set at any worker count.
pub mod track {
    /// Engine layer tag (per-dispatch block tracks).
    pub const ENGINE: u8 = 1;
    /// Quantization layer tag (growable key caches).
    pub const QUANT: u8 = 2;
    /// KV cache-manager layer tag.
    pub const CACHE: u8 = 3;
    /// Serving-node layer tag.
    pub const SERVE: u8 = 4;
    /// Router layer tag.
    pub const ROUTER: u8 = 5;
    /// Bench-harness layer tag.
    pub const BENCH: u8 = 6;
    /// Spill-tier layer tag (per-node tier traffic tracks).
    pub const TIER: u8 = 7;

    /// Consecutive track ids reserved per engine dispatch unit: the block's
    /// main track plus aggregate-stage and wrapper subtracks.
    pub const DISPATCH_STRIDE: u64 = 4;

    /// Packs a track id. `owner` is truncated to its low 24 bits (node
    /// counts are small; the layer tag owns the top byte).
    #[must_use]
    pub fn id(layer: u8, owner: u32, seq: u32) -> u64 {
        (u64::from(layer) << 56) | (u64::from(owner & 0x00ff_ffff) << 32) | u64::from(seq)
    }

    /// Layer tag of a track id.
    #[must_use]
    pub fn layer(track: u64) -> u8 {
        (track >> 56) as u8
    }

    /// Owner (e.g. node index) of a track id.
    #[must_use]
    pub fn owner(track: u64) -> u32 {
        ((track >> 32) & 0x00ff_ffff) as u32
    }

    /// Sequence field of a track id.
    #[must_use]
    pub fn seq(track: u64) -> u32 {
        track as u32
    }

    /// Human label used for Perfetto thread names, e.g. `engine/n0/s12`.
    #[must_use]
    pub fn label(track: u64) -> String {
        let name = match layer(track) {
            ENGINE => "engine",
            QUANT => "quant",
            CACHE => "cache",
            SERVE => "serve",
            ROUTER => "router",
            BENCH => "bench",
            TIER => "tier",
            _ => "track",
        };
        format!("{name}/n{}/s{}", owner(track), seq(track))
    }
}

/// A cloneable handle to a [`TraceSink`]. Disabled handles (and every
/// handle when the `enabled` feature is off) make all recording methods
/// no-ops.
#[derive(Clone, Default)]
pub struct Tracer {
    #[cfg(feature = "enabled")]
    sink: Option<Arc<dyn TraceSink>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer(active: {})", self.is_active())
    }
}

impl Tracer {
    /// A handle that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A handle recording into `sink`. With the `enabled` feature off the
    /// sink is dropped and the handle stays inert.
    #[must_use]
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        #[cfg(feature = "enabled")]
        {
            Self { sink: Some(sink) }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = sink;
            Self {}
        }
    }

    /// `true` when recording. A constant `false` when the `enabled`
    /// feature is off, so guarded telemetry folds away.
    #[inline]
    #[must_use]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.sink.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Opens a buffering context that records onto `track` and submits on
    /// [`TraceCtx::flush`] / drop.
    #[must_use]
    pub fn ctx(&self, track: u64) -> TraceCtx {
        #[cfg(feature = "enabled")]
        {
            TraceCtx {
                inner: self.sink.as_ref().map(|sink| {
                    Box::new(CtxInner {
                        sink: sink.clone(),
                        track,
                        events: Vec::new(),
                        open: Vec::new(),
                    })
                }),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = track;
            TraceCtx {}
        }
    }

    /// One-shot complete span (begin + end in a single submission).
    #[inline]
    pub fn span_at(
        &self,
        track: u64,
        name: &'static str,
        begin: Cycle,
        end: Cycle,
        wall_nanos: u64,
    ) {
        #[cfg(feature = "enabled")]
        if let Some(sink) = &self.sink {
            sink.submit(
                track,
                &[
                    TraceEvent::Begin { name, clock: begin },
                    TraceEvent::End { clock: end, wall_nanos },
                ],
            );
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (track, name, begin, end, wall_nanos);
        }
    }

    /// One-shot point event.
    #[inline]
    pub fn instant(&self, track: u64, name: &'static str, clock: Cycle) {
        #[cfg(feature = "enabled")]
        if let Some(sink) = &self.sink {
            sink.submit(track, &[TraceEvent::Instant { name, clock }]);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (track, name, clock);
        }
    }

    /// One-shot counter increment.
    #[inline]
    pub fn count(&self, track: u64, name: &'static str, clock: Cycle, delta: u64) {
        #[cfg(feature = "enabled")]
        if let Some(sink) = &self.sink {
            sink.submit(track, &[TraceEvent::Count { name, clock, delta }]);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (track, name, clock, delta);
        }
    }

    /// One-shot gauge sample.
    #[inline]
    pub fn gauge(&self, track: u64, name: &'static str, clock: Cycle, value: f64) {
        #[cfg(feature = "enabled")]
        if let Some(sink) = &self.sink {
            sink.submit(track, &[TraceEvent::Gauge { name, clock, value }]);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (track, name, clock, value);
        }
    }

    /// One-shot causality link: one hop of request `request`'s journey.
    #[inline]
    pub fn link(&self, track: u64, name: &'static str, clock: Cycle, request: u64, info: u64) {
        #[cfg(feature = "enabled")]
        if let Some(sink) = &self.sink {
            sink.submit(track, &[TraceEvent::Link { name, clock, request, info }]);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (track, name, clock, request, info);
        }
    }
}

#[cfg(feature = "enabled")]
struct CtxInner {
    sink: Arc<dyn TraceSink>,
    track: u64,
    events: Vec<TraceEvent>,
    /// Wall timers of currently-open spans (`None` for untimed begins).
    open: Vec<Option<std::time::Instant>>,
}

/// A per-unit-of-work event buffer bound to one track. Events accumulate
/// locally (no locking) and reach the sink on [`flush`](TraceCtx::flush)
/// or drop, as one ordered batch.
#[derive(Default)]
pub struct TraceCtx {
    #[cfg(feature = "enabled")]
    inner: Option<Box<CtxInner>>,
}

impl fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceCtx(active: {})", self.is_active())
    }
}

impl TraceCtx {
    /// A context that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// `true` when events are being recorded.
    #[inline]
    #[must_use]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Opens a span at `clock`.
    #[inline]
    pub fn begin(&mut self, name: &'static str, clock: Cycle) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            inner.events.push(TraceEvent::Begin { name, clock });
            inner.open.push(None);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, clock);
        }
    }

    /// Opens a span at `clock` and starts a wall-clock timer whose elapsed
    /// nanoseconds annotate the matching [`end`](TraceCtx::end).
    #[inline]
    pub fn begin_timed(&mut self, name: &'static str, clock: Cycle) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            inner.events.push(TraceEvent::Begin { name, clock });
            inner.open.push(Some(std::time::Instant::now()));
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, clock);
        }
    }

    /// Closes the innermost open span at `clock`.
    #[inline]
    pub fn end(&mut self, clock: Cycle) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            let wall_nanos = match inner.open.pop() {
                Some(Some(t)) => u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX),
                _ => 0,
            };
            inner.events.push(TraceEvent::End { clock, wall_nanos });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = clock;
        }
    }

    /// Records a complete span in one call.
    #[inline]
    pub fn span(&mut self, name: &'static str, begin: Cycle, end: Cycle) {
        self.begin(name, begin);
        self.end(end);
    }

    /// Records a point event.
    #[inline]
    pub fn instant(&mut self, name: &'static str, clock: Cycle) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            inner.events.push(TraceEvent::Instant { name, clock });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, clock);
        }
    }

    /// Records a counter increment.
    #[inline]
    pub fn count(&mut self, name: &'static str, clock: Cycle, delta: u64) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            inner.events.push(TraceEvent::Count { name, clock, delta });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, clock, delta);
        }
    }

    /// Records a gauge sample.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, clock: Cycle, value: f64) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            inner.events.push(TraceEvent::Gauge { name, clock, value });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, clock, value);
        }
    }

    /// Records a causality link for request `request`.
    #[inline]
    pub fn link(&mut self, name: &'static str, clock: Cycle, request: u64, info: u64) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            inner.events.push(TraceEvent::Link { name, clock, request, info });
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (name, clock, request, info);
        }
    }

    /// Submits all buffered events to the sink. Called automatically on
    /// drop; explicit flushes let a long-lived context publish early.
    pub fn flush(&mut self) {
        #[cfg(feature = "enabled")]
        if let Some(inner) = &mut self.inner {
            if !inner.events.is_empty() {
                inner.sink.submit(inner.track, &inner.events);
                inner.events.clear();
            }
        }
    }
}

impl Drop for TraceCtx {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_id_round_trips() {
        let t = track::id(track::SERVE, 7, 42);
        assert_eq!(track::layer(t), track::SERVE);
        assert_eq!(track::owner(t), 7);
        assert_eq!(track::seq(t), 42);
        assert_eq!(track::label(t), "serve/n7/s42");
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_active());
        let mut ctx = t.ctx(1);
        assert!(!ctx.is_active());
        ctx.begin("x", Cycle(0));
        ctx.end(Cycle(1));
        ctx.flush();
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ctx_buffers_and_flushes_in_order() {
        let rec = Arc::new(Recorder::new());
        let tracer = Tracer::new(rec.clone());
        assert!(tracer.is_active());
        let mut ctx = tracer.ctx(9);
        ctx.begin("outer", Cycle(0));
        ctx.begin_timed("inner", Cycle(2));
        ctx.count("n", Cycle(2), 3);
        ctx.end(Cycle(5));
        ctx.end(Cycle(8));
        drop(ctx);
        let snap = rec.snapshot();
        assert_eq!(snap.tracks.len(), 1);
        assert_eq!(snap.tracks[0].track, 9);
        assert_eq!(snap.span_count(), 2);
        snap.check_well_formed().unwrap();
        // The timed inner end carries a wall annotation; the untimed outer
        // end does not.
        let walls: Vec<u64> = snap.tracks[0]
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::End { wall_nanos, .. } => Some(*wall_nanos),
                _ => None,
            })
            .collect();
        assert_eq!(walls[1], 0);
    }
}
