//! `pade-cache` — cross-request prefix-sharing KV plane cache manager
//! with budgeted eviction and session persistence.
//!
//! PADE's decomposed bit-plane keys are cheap to score but expensive to
//! rebuild, so at serving scale the planes themselves are the asset to
//! manage. This crate manages them *across requests*, one level above
//! the per-session [`GrowableKeyCache`](pade_quant::GrowableKeyCache)
//! that PR 3 introduced:
//!
//! * [`PrefixIndex`] — a radix tree over hashed token-id chunks (chunk
//!   granularity aligned to the serving layer's `kv_chunk_tokens`). An
//!   incoming prompt resolves to its longest cached chunk-aligned
//!   prefix; hits adopt the sealed `Arc<BitPlaneMatrix>` chunks already
//!   produced by earlier requests and **skip decomposition entirely** —
//!   only the unseen suffix is decomposed, and its full chunks are
//!   published for the next request.
//! * [`SessionStore`] — keeps a session's grown cache alive between that
//!   session's requests, so a multi-turn conversation resumes its
//!   context instead of re-decomposing history.
//! * [`CacheBudget`] — a byte-accounted cap on resident planes with
//!   deterministic LRU eviction of unreferenced sealed chunks (leaf
//!   first, so the index stays reachable) and idle stored sessions.
//!   Chunks leased by live sessions are never eviction candidates.
//! * [`KvCacheManager`] — ties the three together behind
//!   [`attach`](KvCacheManager::attach)/[`detach`](KvCacheManager::detach)
//!   and counts [`CacheStats`] (hit/decomposed tokens, evictions). A
//!   warm manager persists across serve runs through
//!   [`save_to`](KvCacheManager::save_to)/[`load_from`](KvCacheManager::load_from)
//!   (a versioned binary image, hand-rolled — no serde), and
//!   [`predicted_hit_tokens`](KvCacheManager::predicted_hit_tokens) is
//!   the read-only probe behind hit-aware admission ordering.
//! * [`prefix_shard_key`] — the deterministic routing hash of a prompt's
//!   leading chunks, folded with the same path-dependent key the index
//!   addresses its nodes with; a multi-node router uses it to send
//!   requests that would share chunks to the node that holds them.
//! * **Spill tier** — an optional [`pade_tier::TierStore`] installed via
//!   [`set_tier`](KvCacheManager::set_tier): budget-evicted sealed chunks
//!   are demoted into it instead of dropped, the attach prefix walk
//!   fetches them back (pure word parsing, no decomposition) and
//!   [`export_prefix_path`](KvCacheManager::export_prefix_path)/
//!   [`import_chunk_records`](KvCacheManager::import_chunk_records) move
//!   content-addressed chunk records between managers — the building
//!   blocks of peer shard fetch, replication and migration.
//!
//! Two invariants make the manager safe to put on the serving path:
//!
//! 1. **Bit-identity** — an attached cache is byte-identical to a
//!    from-scratch decomposition of the same key rows, at every chunk
//!    granularity, whether the tokens came from the index, a resumed
//!    session or fresh decomposition (property-tested in `tests/`
//!    against the seed oracle).
//! 2. **Determinism** — equal attach/detach sequences produce equal hit
//!    and eviction sequences: hash-map state is only ever reduced with
//!    order-independent folds, and LRU ties break on unique sequence
//!    numbers.
//!
//! # Example
//!
//! ```
//! use pade_cache::{CacheConfig, KvCacheManager};
//! use pade_quant::PlaneSource;
//!
//! let mut manager = KvCacheManager::new(CacheConfig::new(4, 8, 2)).unwrap();
//! let ids = [7u32, 7, 9, 2];
//! let rows: Vec<i8> = ids.iter().flat_map(|&t| (0..4).map(move |d| (t as i8) * 3 + d)).collect();
//! let first = manager.attach(1, &ids, &rows).unwrap();
//! assert_eq!((first.hit_tokens, first.decomposed_tokens), (0, 4));
//! // A second request with the same prompt hits every full chunk.
//! let second = manager.attach(2, &ids, &rows).unwrap();
//! assert_eq!((second.hit_tokens, second.decomposed_tokens), (4, 0));
//! assert_eq!(second.cache.snapshot().tokens(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod index;
mod manager;
mod persist;
mod store;

pub use budget::CacheBudget;
pub use index::{prefix_shard_key, PrefixIndex};
pub use manager::{Attached, CacheConfig, CacheLease, CacheStats, KvCacheManager};
// Downstream crates configure and inspect the spill tier through the
// manager, so its vocabulary types ship from here too.
pub use pade_tier::{ChunkRecord, TierConfig, TierStore};
pub use store::SessionStore;
