//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! provides the small API surface the workspace uses — `StdRng`,
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`] —
//! backed by the SplitMix64 generator. Streams are deterministic per seed
//! but do NOT match upstream `rand`'s `StdRng` (ChaCha12); everything in
//! this workspace only relies on determinism and uniformity, not on a
//! specific stream.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level uniform `u64` source.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed generator (shim for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed.wrapping_add(0x9E3779B97F4A7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_small_int_ranges() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_range(1e-7f32..1.0);
            assert!((1e-7..1.0).contains(&x));
        }
    }
}
