//! Robustness and edge-case tests: degenerate shapes, extreme parameters,
//! starved resources and randomized configuration fuzzing of the
//! cycle-level engine.
//!
//! These complement the per-module unit tests: every scenario here is a
//! configuration a downstream user can reach through the public API, and
//! the assertions are the engine's core invariants (exact retained scores,
//! pruning safety, complete cycle accounting, fetch bounds) rather than
//! golden values.

use pade::core::accelerator::{PadeAccelerator, PadeRunResult};
use pade::core::config::PadeConfig;
use pade::core::engine::run_qk_block;
use pade::mem::KeyLayout;
use pade::quant::BitPlaneMatrix;
use pade::workload::profile::ScoreProfile;
use pade::workload::trace::{AttentionTrace, TraceConfig};

fn tiny_trace(seq_len: usize, n_queries: usize, seed: u64) -> AttentionTrace {
    AttentionTrace::generate(&TraceConfig {
        seq_len,
        head_dim: 16,
        n_queries,
        profile: ScoreProfile::standard(),
        bits: 8,
        seed,
    })
}

fn check_invariants(config: &PadeConfig, trace: &AttentionTrace, r: &PadeRunResult) {
    // 1. Every retained key's output weight comes from its exact score:
    //    the produced outputs equal exact subset attention.
    for (row, out) in r.outputs.iter().enumerate() {
        let expect = trace.subset_output(row, &r.retained[row]);
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-3, "row {row}: {a} vs {b}");
        }
    }
    // 2. Pruning safety: the argmax key always survives.
    for (row, kept) in r.retained.iter().enumerate() {
        let logits = trace.exact_logits(row);
        let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let best = kept.iter().map(|&t| logits[t]).fold(f32::NEG_INFINITY, f32::max);
        assert!((best - max).abs() < 1e-3, "row {row}: argmax pruned ({best} vs {max})");
        // ...and every pruned key sits below the guard margin.
        if config.enable_bui_gf {
            for (j, &l) in logits.iter().enumerate() {
                if !kept.contains(&j) {
                    assert!(
                        l <= max - config.guard_margin() + 0.1,
                        "row {row}: pruned {j} at {l} vs max {max}"
                    );
                }
            }
        }
    }
    // 3. Cycle accounting: every lane accounts for the full horizon.
    for u in &r.lane_utils {
        assert_eq!(u.total(), r.qk_cycles.0, "lane accounting must cover the horizon");
    }
    // 4. Sparse fetches never exceed the dense fetch count.
    assert!(r.planes_fetched <= r.planes_dense, "{} > {}", r.planes_fetched, r.planes_dense);
}

#[test]
fn single_key_single_query() {
    let trace = tiny_trace(1, 1, 1);
    let r = PadeAccelerator::new(PadeConfig::standard()).run_trace(&trace);
    assert_eq!(r.retained[0], vec![0], "the only key is the max and must survive");
    check_invariants(&PadeConfig::standard(), &trace, &r);
}

#[test]
fn fewer_keys_than_lanes() {
    // 128 lanes, 5 keys: most lanes own no work and must still terminate
    // with full cycle accounting.
    let trace = tiny_trace(5, 3, 2);
    let config = PadeConfig::standard();
    let r = PadeAccelerator::new(config.clone()).run_trace(&trace);
    check_invariants(&config, &trace, &r);
}

#[test]
fn starved_scoreboard_still_correct() {
    // A 1-entry scoreboard serializes each lane to one in-flight key; the
    // result must not change, only the timing.
    let trace = tiny_trace(96, 4, 3);
    let starved = PadeConfig { scoreboard_entries: 1, ..PadeConfig::standard() };
    let roomy = PadeConfig::standard();
    let a = PadeAccelerator::new(starved.clone()).run_trace(&trace);
    let b = PadeAccelerator::new(roomy).run_trace(&trace);
    check_invariants(&starved, &trace, &a);
    assert_eq!(a.retained, b.retained, "scoreboard size must not change results");
    assert!(a.qk_cycles >= b.qk_cycles, "starving the scoreboard cannot speed things up");
}

#[test]
fn zero_margin_keeps_at_least_the_argmax() {
    let trace = tiny_trace(128, 4, 4);
    let config = PadeConfig { alpha: 0.0, ..PadeConfig::standard() };
    let r = PadeAccelerator::new(config.clone()).run_trace(&trace);
    for (row, kept) in r.retained.iter().enumerate() {
        assert!(!kept.is_empty(), "row {row} must keep the argmax");
    }
    check_invariants(&config, &trace, &r);
}

#[test]
fn huge_radius_retains_everything() {
    let trace = tiny_trace(64, 2, 5);
    let config = PadeConfig { radius: 1e6, ..PadeConfig::standard() };
    let r = PadeAccelerator::new(config).run_trace(&trace);
    for kept in &r.retained {
        assert_eq!(kept.len(), 64, "an unreachable threshold must retain all keys");
    }
    // Full retention makes the output the dense attention result up to the
    // fp rounding of the tiled online-softmax path.
    assert!(r.fidelity > 1.0 - 1e-6, "fidelity {}", r.fidelity);
}

#[test]
fn int4_narrow_trace() {
    let trace = AttentionTrace::generate(&TraceConfig {
        seq_len: 64,
        head_dim: 16,
        n_queries: 2,
        profile: ScoreProfile::standard(),
        bits: 4,
        seed: 6,
    });
    let config = PadeConfig { bits: 4, ..PadeConfig::standard() };
    let r = PadeAccelerator::new(config.clone()).run_trace(&trace);
    check_invariants(&config, &trace, &r);
}

#[test]
fn single_channel_hbm() {
    // One pseudo channel: all fetches serialize through one bus. Retained
    // sets are timing-dependent under OOE (a key decided before the
    // threshold matures survives), so channel count may shift borderline
    // keys — but the *margin core* (keys provably within the guard margin
    // of the true maximum, which no safe run may prune) must be retained
    // by both runs, and both must satisfy every safety invariant.
    let trace = tiny_trace(128, 4, 7);
    let mut narrow = PadeConfig::standard();
    narrow.hbm.channels = 1;
    let wide = PadeConfig::standard();
    let a = PadeAccelerator::new(narrow.clone()).run_trace(&trace);
    let b = PadeAccelerator::new(wide.clone()).run_trace(&trace);
    check_invariants(&narrow, &trace, &a);
    check_invariants(&wide, &trace, &b);
    for row in 0..trace.queries().rows() {
        let logits = trace.exact_logits(row);
        let max = logits.iter().fold(f32::NEG_INFINITY, |x, &y| x.max(y));
        for (j, &l) in logits.iter().enumerate() {
            if l > max - narrow.guard_margin() {
                assert!(a.retained[row].contains(&j), "row {row}: core key {j} pruned (1ch)");
                assert!(b.retained[row].contains(&j), "row {row}: core key {j} pruned (16ch)");
            }
        }
    }
}

#[test]
fn tile_size_one() {
    let trace = tiny_trace(64, 2, 8);
    let config = PadeConfig { tile_bc: 1, ..PadeConfig::standard() };
    let r = PadeAccelerator::new(config.clone()).run_trace(&trace);
    check_invariants(&config, &trace, &r);
}

#[test]
fn engine_accepts_block_smaller_than_pe_rows() {
    let trace = tiny_trace(32, 2, 9);
    let config = PadeConfig::standard();
    let keys = BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), 8)
        .expect("keys decompose");
    let queries: Vec<&[i8]> = vec![trace.queries().row(0)];
    let r = run_qk_block(&config, &queries, &keys, trace.logit_scale());
    assert_eq!(r.retained.len(), 1);
    assert!(!r.retained[0].is_empty());
}

#[test]
#[should_panic(expected = "more query rows than PE rows")]
fn engine_rejects_oversized_block() {
    let trace = tiny_trace(16, 2, 10);
    let config = PadeConfig { pe_rows: 1, ..PadeConfig::standard() };
    let keys = BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), 8)
        .expect("keys decompose");
    let queries: Vec<&[i8]> = vec![trace.queries().row(0), trace.queries().row(1)];
    let _ = run_qk_block(&config, &queries, &keys, trace.logit_scale());
}

#[test]
fn engine_config_fuzz() {
    // Randomized small configurations: the invariants must hold under any
    // combination of feature toggles, layouts and resource sizes.
    let layouts =
        [KeyLayout::BitPlaneInterleaved, KeyLayout::BitPlaneLinear, KeyLayout::ValueRowMajor];
    let mut state = 0x243F6A8885A308D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for case in 0..24 {
        let trace = tiny_trace(16 + (next() % 80) as usize, 1 + (next() % 4) as usize, next());
        let config = PadeConfig {
            scoreboard_entries: 1 + (next() % 32) as usize,
            alpha: (next() % 11) as f32 / 10.0,
            tile_bc: 1 + (next() % 16) as usize,
            layout: layouts[(next() % 3) as usize],
            enable_bs: next() % 2 == 0,
            enable_ooe: next() % 2 == 0,
            enable_rars: next() % 2 == 0,
            enable_interleave: next() % 2 == 0,
            ..PadeConfig::standard()
        };
        let r = PadeAccelerator::new(config.clone()).run_trace(&trace);
        check_invariants(&config, &trace, &r);
        // Tiny margins legitimately shed softmax mass; only moderate ones
        // promise near-exact outputs.
        if config.alpha >= 0.5 {
            assert!(r.fidelity > 0.9, "case {case}: fidelity {} under {config:?}", r.fidelity);
        } else {
            assert!(r.fidelity > 0.5, "case {case}: fidelity {} under {config:?}", r.fidelity);
        }
    }
}

#[test]
fn run_is_pure_repeated_calls_agree() {
    let trace = tiny_trace(128, 4, 11);
    let acc = PadeAccelerator::new(PadeConfig::standard());
    let a = acc.run_trace(&trace);
    let b = acc.run_trace(&trace);
    assert_eq!(a.retained, b.retained);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.traffic.dram_read_bytes, b.stats.traffic.dram_read_bytes);
}
