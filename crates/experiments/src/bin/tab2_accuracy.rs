//! Table II — task metrics under MXINT8 / FP16 / INT8 (published values)
//! and the PADE standard / aggressive configurations (predicted from the
//! measured output fidelity via the calibrated sensitivity model; see
//! DESIGN.md §1 for the substitution rationale).

use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, Table};
use pade_experiments::runner::{run_pade, Workload};
use pade_workload::quality::predict_metric;
use pade_workload::task::{table2_baseline, table2_layout};
use pade_workload::{model, task};

fn model_by_name(name: &str) -> pade_workload::model::ModelConfig {
    model::zoo().into_iter().find(|m| m.name == name).expect("model in zoo")
}

fn main() {
    banner("Table II", "Accuracy across models and tasks (S: standard, A: aggressive)");
    let mut table = Table::new(vec![
        "model", "task", "metric", "MXINT8*", "FP16*", "INT8*", "PADE(S)", "paper S", "PADE(A)",
        "paper A", "keep S", "keep A",
    ]);
    let _ = task::mmlu();
    for (model_name, tasks) in table2_layout() {
        let m = model_by_name(model_name);
        for t in tasks {
            let b = table2_baseline(model_name, t.name).expect("published baselines");
            let w = Workload::new(m, t, 7 + t.seq_len as u64);
            let (std_run, _) = run_pade(&w, PadeConfig::standard());
            let (agg_run, _) = run_pade(&w, PadeConfig::aggressive());
            let pade_s = predict_metric(&t, b.int8, std_run.fidelity);
            let pade_a = predict_metric(&t, b.int8, agg_run.fidelity);
            table.row(vec![
                model_name.into(),
                t.name.into(),
                t.metric.unit().into(),
                format!("{:.1}", b.mxint8),
                format!("{:.1}", b.fp16),
                format!("{:.1}", b.int8),
                format!("{pade_s:.1}"),
                format!("{:.1}", b.pade_standard),
                format!("{pade_a:.1}"),
                format!("{:.1}", b.pade_aggressive),
                format!("{:.2}", std_run.stats.keep_ratio()),
                format!("{:.2}", agg_run.stats.keep_ratio()),
            ]);
        }
    }
    println!("{}", table.render());
    println!("* MXINT8 / FP16 / INT8 columns are the published reference values");
    println!("  (Table II); PADE(S)/PADE(A) are this reproduction's predictions");
    println!("  from measured output fidelity, next to the paper's PADE rows.");
    println!("Shape to check: standard ≈ INT8 (0% loss), aggressive within ~1%,");
    println!("generation tasks (MBPP/Dolly) degrade before reasoning (MMLU).");
}
