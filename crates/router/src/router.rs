//! The router proper: one global clock, N serving nodes, one placement
//! decision per arrival.
//!
//! The fleet replays a seeded arrival trace in **global arrival order**.
//! For each arrival the router first advances every node's lockstep loop
//! to the arrival's cycle (so load reads are consistent across nodes at
//! that instant), then places the request:
//!
//! * [`RoutePolicy::Affinity`] — a returning session goes to its home
//!   node (where its stored cache lives); a new session whose prompt's
//!   leading chunks hash ([`prefix_shard_key`]) to a shard some node has
//!   already ingested goes there (the decomposed chunks are resident);
//!   anything else takes deterministic least-loaded placement and
//!   *claims* its shard key for that node.
//! * [`RoutePolicy::RoundRobin`] / [`RoutePolicy::LeastLoaded`] — the
//!   cache-blind baselines.
//!
//! Placement changes **which node pays the KV-prep cost**, never what
//! any request computes: per-request outputs are placement-independent
//! (each block simulates its own memory system), so the fleet's merged
//! outputs are byte-identical to a single-node run of the same trace at
//! every node count and policy — the invariant `tests/` pins against
//! the seed oracle.

use std::collections::HashMap;

use pade_cache::prefix_shard_key;
use pade_serve::node::Node;
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{Completion, ServeConfig, ServeReport};
use pade_sim::Cycle;
use pade_trace::{track as trace_track, Tracer};
use pade_workload::trace::RequestArrival;

use crate::metrics::{merge_node_reports, RouterSummary};
use crate::policy::{RouteDecision, RoutePolicy, RouteReason};

/// Configuration of one routed fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Per-node serving configurations — one entry per node. Usually
    /// homogeneous ([`RouterConfig::homogeneous`]); heterogeneous fleets
    /// (including degraded zero-slot nodes) are allowed and must not
    /// deadlock.
    pub nodes: Vec<ServeConfig>,
    /// The placement policy.
    pub policy: RoutePolicy,
    /// Leading prompt chunks (of `kv_chunk_tokens` tokens each) hashed
    /// into the affinity shard key. Small values cluster more
    /// aggressively (every prompt sharing one system prompt maps to one
    /// key); the default 1 clusters on the first chunk.
    pub affinity_chunks: usize,
}

impl RouterConfig {
    /// `n_nodes` identical nodes under `policy`.
    ///
    /// A configured [`cache_file`](ServeConfig::cache_file) is made
    /// **per-node** (`<path>.node<k>`): each node owns its own cache
    /// manager, so sharing one image path would have the last node to
    /// finish silently overwrite every other node's warm state.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    #[must_use]
    pub fn homogeneous(node: ServeConfig, n_nodes: usize, policy: RoutePolicy) -> Self {
        assert!(n_nodes > 0, "a fleet needs at least one node");
        let nodes = (0..n_nodes)
            .map(|k| {
                let mut node = node.clone();
                if let Some(path) = &node.cache_file {
                    let mut file = path.as_os_str().to_os_string();
                    file.push(format!(".node{k}"));
                    node.cache_file = Some(file.into());
                }
                node
            })
            .collect();
        Self { nodes, policy, affinity_chunks: 1 }
    }
}

/// The result of one routed fleet run.
#[derive(Debug)]
pub struct RouterReport {
    /// The placement policy that produced this report.
    pub policy: RoutePolicy,
    /// One routing decision per arrival, in arrival order — the
    /// determinism fingerprint (equal seeds ⇒ equal decision logs).
    pub decisions: Vec<RouteDecision>,
    /// Per-node serve reports, in node order. Nodes that received no
    /// requests report zero completions.
    pub node_reports: Vec<ServeReport>,
    /// The fleet-level digest.
    pub summary: RouterSummary,
}

impl RouterReport {
    /// All completions across the fleet, sorted by request id.
    #[must_use]
    pub fn completions_by_id(&self) -> Vec<&Completion> {
        let mut out: Vec<&Completion> =
            self.node_reports.iter().flat_map(|r| r.completions.iter()).collect();
        out.sort_by_key(|c| c.id);
        out
    }

    /// The node each request was placed on, indexed by request id.
    #[must_use]
    pub fn placement(&self) -> HashMap<usize, usize> {
        self.decisions.iter().map(|d| (d.id, d.node)).collect()
    }
}

/// Replays `arrivals` through an N-node fleet under `config.policy`,
/// every node serving under `mode`.
///
/// # Panics
///
/// Panics if `arrivals` or `config.nodes` is empty, or any node's engine
/// configuration is invalid.
#[must_use]
pub fn route(
    config: &RouterConfig,
    arrivals: &[RequestArrival],
    mode: ScheduleMode,
) -> RouterReport {
    route_traced(config, arrivals, mode, &Tracer::disabled())
}

/// [`route`] with telemetry: node `k` records onto its `k`-owned serve,
/// engine, cache and quant tracks of `tracer`, and the router itself
/// records one `router.route` span bracketing the arrival replay, a
/// `router.place` instant plus a per-reason counter per decision. With a
/// disabled tracer this **is** [`route`]; either way the report is
/// byte-identical — tracing is a pure side channel (property-tested in
/// `tests/`).
///
/// # Panics
///
/// Panics if `arrivals` or `config.nodes` is empty, or any node's engine
/// configuration is invalid.
#[must_use]
pub fn route_traced(
    config: &RouterConfig,
    arrivals: &[RequestArrival],
    mode: ScheduleMode,
    tracer: &Tracer,
) -> RouterReport {
    assert!(!arrivals.is_empty(), "at least one request required");
    assert!(!config.nodes.is_empty(), "at least one node required");
    // Each node saves its own cache image at finish; two nodes sharing
    // one path would overwrite each other, destroying warm state.
    for (i, a) in config.nodes.iter().enumerate() {
        for b in &config.nodes[i + 1..] {
            assert!(
                a.cache_file.is_none() || a.cache_file != b.cache_file,
                "two nodes share cache file {:?}; give each node its own path \
                 (RouterConfig::homogeneous derives <path>.node<k> automatically)",
                a.cache_file
            );
        }
    }
    let n = config.nodes.len();
    let mut nodes: Vec<Node> = config.nodes.iter().map(|c| Node::new(c, mode)).collect();
    for (k, node) in nodes.iter_mut().enumerate() {
        node.set_tracer(tracer.clone(), k as u32);
    }
    // The shard-key granularity must match what the nodes' cache
    // managers index, or affinity would cluster on boundaries no node
    // shares chunks at — so an affinity fleet must agree on it.
    let chunk_tokens = config.nodes[0].kv_chunk_tokens.max(1);
    if config.policy == RoutePolicy::Affinity {
        for (k, node) in config.nodes.iter().enumerate() {
            assert!(
                node.kv_chunk_tokens.max(1) == chunk_tokens,
                "affinity routing needs one chunk granularity fleet-wide: node {k} indexes \
                 {}-token chunks but the shard key hashes {}-token chunks",
                node.kv_chunk_tokens.max(1),
                chunk_tokens
            );
        }
    }

    let mut sorted: Vec<&RequestArrival> = arrivals.iter().collect();
    sorted.sort_by_key(|r| (r.arrival_cycle, r.id));

    let mut session_home: HashMap<u64, usize> = HashMap::new();
    let mut prefix_home: HashMap<u64, usize> = HashMap::new();
    let mut decisions: Vec<RouteDecision> = Vec::with_capacity(sorted.len());

    // Buffered so the bracketing span's Begin precedes every placement
    // instant in stream order (sorted arrivals keep clocks monotone).
    let mut router_ctx = tracer.ctx(trace_track::id(trace_track::ROUTER, 0, 0));
    router_ctx.begin_timed("router.route", Cycle(sorted[0].arrival_cycle));

    for (i, spec) in sorted.iter().enumerate() {
        let now = Cycle(spec.arrival_cycle);
        for node in &mut nodes {
            node.advance_to(now);
        }
        // Deterministic least-loaded: fewest in system, lowest id wins
        // ties. The argmin is over a Vec walk, never hash-map order.
        let least_loaded =
            (0..n).min_by_key(|&k| (nodes[k].in_system(), k)).expect("fleet has at least one node");
        // Shard-key hashing and home-map bookkeeping live entirely in
        // the affinity arm: the cache-blind baselines never read them,
        // and their timed route loop must not pay for them either.
        let (target, reason) = match config.policy {
            RoutePolicy::RoundRobin => (i % n, RouteReason::RoundRobin),
            RoutePolicy::LeastLoaded => (least_loaded, RouteReason::LeastLoaded),
            RoutePolicy::Affinity => {
                let shard_key = spec
                    .prompt
                    .as_ref()
                    .and_then(|p| prefix_shard_key(p.ids(), chunk_tokens, config.affinity_chunks));
                let (target, reason) = if let Some(&home) = session_home.get(&spec.session) {
                    (home, RouteReason::SessionAffinity)
                } else if let Some(&home) = shard_key.and_then(|k| prefix_home.get(&k)) {
                    (home, RouteReason::PrefixAffinity)
                } else {
                    (least_loaded, RouteReason::LeastLoaded)
                };
                session_home.insert(spec.session, target);
                if let Some(key) = shard_key {
                    // First claim wins: the node that first decomposes a
                    // shard's chunks stays its home even if later load
                    // pulls sessions elsewhere — moving the shard would
                    // strand the planes.
                    prefix_home.entry(key).or_insert(target);
                }
                (target, reason)
            }
        };
        nodes[target].enqueue(spec);
        router_ctx.instant("router.place", now);
        router_ctx.count(reason_counter(reason), now, 1);
        decisions.push(RouteDecision { id: spec.id, session: spec.session, node: target, reason });
    }
    router_ctx.end(Cycle(sorted.last().expect("non-empty").arrival_cycle));
    drop(router_ctx);

    let node_reports: Vec<ServeReport> = nodes
        .into_iter()
        .map(|mut node| {
            node.drain();
            node.finish()
        })
        .collect();
    let summary = merge_node_reports(&node_reports, &decisions);
    RouterReport { policy: config.policy, decisions, node_reports, summary }
}

/// Counter name for a placement reason (static, for the trace registry).
fn reason_counter(reason: RouteReason) -> &'static str {
    match reason {
        RouteReason::SessionAffinity => "router.place_session_affinity",
        RouteReason::PrefixAffinity => "router.place_prefix_affinity",
        RouteReason::LeastLoaded => "router.place_least_loaded",
        RouteReason::RoundRobin => "router.place_round_robin",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::prompt::{generate_multi_tenant_arrivals, MultiTenantConfig};

    fn workload() -> Vec<RequestArrival> {
        generate_multi_tenant_arrivals(&MultiTenantConfig::small_demo())
    }

    fn fleet(n: usize, policy: RoutePolicy) -> RouterConfig {
        RouterConfig::homogeneous(
            ServeConfig { kv_chunk_tokens: 32, ..ServeConfig::standard() },
            n,
            policy,
        )
    }

    #[test]
    fn every_request_completes_exactly_once_across_the_fleet() {
        let arrivals = workload();
        for policy in [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded] {
            let report = route(&fleet(3, policy), &arrivals, ScheduleMode::Batched);
            let ids: Vec<usize> = report.completions_by_id().iter().map(|c| c.id).collect();
            assert_eq!(ids, (0..arrivals.len()).collect::<Vec<_>>(), "{}", policy.label());
            assert_eq!(report.decisions.len(), arrivals.len());
            assert_eq!(report.summary.tokens, report.summary.node_tokens.iter().sum::<u64>());
        }
    }

    #[test]
    fn round_robin_rotates_and_affinity_keeps_sessions_home() {
        let arrivals = workload();
        let rr = route(&fleet(3, RoutePolicy::RoundRobin), &arrivals, ScheduleMode::Batched);
        for (i, d) in rr.decisions.iter().enumerate() {
            assert_eq!(d.node, i % 3);
        }
        let aff = route(&fleet(3, RoutePolicy::Affinity), &arrivals, ScheduleMode::Batched);
        // All turns of one session land on one node.
        let mut home: HashMap<u64, usize> = HashMap::new();
        for d in &aff.decisions {
            assert_eq!(*home.entry(d.session).or_insert(d.node), d.node);
        }
        // The multi-turn workload must exercise session affinity.
        assert!(aff.summary.session_affinity_routes > 0);
    }

    #[test]
    fn affinity_outhits_round_robin_at_two_nodes() {
        let arrivals = workload();
        let aff = route(&fleet(2, RoutePolicy::Affinity), &arrivals, ScheduleMode::Batched);
        let rr = route(&fleet(2, RoutePolicy::RoundRobin), &arrivals, ScheduleMode::Batched);
        assert!(
            aff.summary.cache_hit_tokens >= rr.summary.cache_hit_tokens,
            "affinity {} vs round-robin {} hit tokens",
            aff.summary.cache_hit_tokens,
            rr.summary.cache_hit_tokens
        );
        assert!(aff.summary.cache_decomposed_tokens <= rr.summary.cache_decomposed_tokens);
    }

    #[test]
    fn homogeneous_fleets_get_per_node_cache_files() {
        let node = ServeConfig {
            cache_file: Some(std::path::PathBuf::from("/tmp/fleet.bin")),
            ..ServeConfig::standard()
        };
        let fleet = RouterConfig::homogeneous(node, 3, RoutePolicy::Affinity);
        let files: Vec<String> = fleet
            .nodes
            .iter()
            .map(|n| n.cache_file.as_ref().unwrap().display().to_string())
            .collect();
        assert_eq!(files, ["/tmp/fleet.bin.node0", "/tmp/fleet.bin.node1", "/tmp/fleet.bin.node2"]);
        // Without a cache file nothing is invented.
        let plain = RouterConfig::homogeneous(ServeConfig::standard(), 2, RoutePolicy::Affinity);
        assert!(plain.nodes.iter().all(|n| n.cache_file.is_none()));
    }

    #[test]
    #[should_panic(expected = "share cache file")]
    fn shared_cache_file_across_nodes_is_rejected() {
        let node = ServeConfig {
            cache_file: Some(std::path::PathBuf::from("/tmp/clobber.bin")),
            ..ServeConfig::standard()
        };
        let fleet = RouterConfig {
            nodes: vec![node.clone(), node],
            policy: RoutePolicy::Affinity,
            affinity_chunks: 1,
        };
        let _ = route(&fleet, &workload(), ScheduleMode::Batched);
    }

    #[test]
    fn single_node_fleet_matches_plain_serve() {
        let arrivals = workload();
        let config = ServeConfig { kv_chunk_tokens: 32, ..ServeConfig::standard() };
        let solo = pade_serve::server::serve(&config, &arrivals, ScheduleMode::Batched);
        for policy in [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded] {
            let fleet = route(
                &RouterConfig::homogeneous(config.clone(), 1, policy),
                &arrivals,
                ScheduleMode::Batched,
            );
            assert_eq!(fleet.node_reports.len(), 1);
            let node = &fleet.node_reports[0];
            assert_eq!(node.completion_order(), solo.completion_order(), "{}", policy.label());
            assert_eq!(node.summary, solo.summary, "{}", policy.label());
            for (a, b) in node.completions.iter().zip(&solo.completions) {
                assert_eq!(a, b);
            }
        }
    }
}
