//! Bit-wise out-of-order QK execution engine — §IV-B / §V, Figs. 8 & 11.
//!
//! The QK-PU streams key bit planes from DRAM on demand: a key's next
//! plane is fetched only if BUI-GF could not resolve it. Each fetch costs
//! tens of cycles of DRAM latency (Fig. 5(d)), so an in-order lane would
//! idle between planes. The OOE engine keeps up to a scoreboard's worth of
//! keys in flight per lane: while one key's plane travels from DRAM, the
//! lane computes whichever other plane has already arrived (Fig. 8(e)).
//!
//! The engine simulates all `pe_rows × lanes_per_row` lanes cycle by cycle
//! against the shared [`HbmModel`]. Fetched planes land in the shared K
//! SRAM buffer, so the eight PE rows working on different queries reuse
//! each other's fetches — a plane reaches DRAM only on the *first* row
//! that needs it. The result carries each query row's retained key set,
//! exact integer scores for retained keys, and the per-lane busy/stall
//! breakdown behind Fig. 23(a).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use pade_mem::{HbmModel, KeyLayout, SramBuffer};
use pade_quant::{BitPlaneMatrix, KeyCacheSnapshot, PlaneSource};
use pade_sim::{Cycle, EventQueue, OpCounts, TrafficCounts, UtilizationCounter};
use pade_trace::{track as trace_track, Tracer};

use crate::bitserial::{plane_contribution, plane_contribution_planes, q_sum, BsMode, QRowPlanes};
use crate::bui::Bui;
use crate::config::PadeConfig;
use crate::filter::{Decision, GuardFilter};
use crate::gsat::{Gsat, PlaneAbsorb};
use crate::scoreboard::Scoreboard;

/// Result of one QK block (up to `pe_rows` query rows over all keys).
#[derive(Debug, Clone, PartialEq)]
pub struct QkBlockResult {
    /// End-to-end QK-PU latency.
    pub cycles: Cycle,
    /// Per query row: retained `(token, exact integer score)` pairs in
    /// token order.
    pub retained: Vec<Vec<(usize, i64)>>,
    /// Per-lane utilization (busy / intra-stall / inter-stall).
    pub lane_utils: Vec<UtilizationCounter>,
    /// Arithmetic events.
    pub ops: OpCounts,
    /// Memory traffic (DRAM via the HBM model + K/Q SRAM).
    pub traffic: TrafficCounts,
    /// Unique bit planes fetched from DRAM.
    pub planes_fetched: u64,
    /// Unique bit planes a dense bit-serial execution would fetch.
    pub planes_dense: u64,
    /// DRAM row-buffer hit rate over the run.
    pub row_hit_rate: f64,
    /// Fraction of peak DRAM bandwidth used.
    pub bandwidth_utilization: f64,
}

#[derive(Debug, Clone, Copy)]
struct Job {
    token: usize,
    plane: u32,
}

#[derive(Debug)]
struct Lane {
    row: usize,
    keys: Vec<usize>,
    next_key: usize,
    ready: VecDeque<Job>,
    outstanding: usize,
    inflight_keys: usize,
    resolved_keys: usize,
    sb: Scoreboard,
    busy_until: Cycle,
    util: UtilizationCounter,
    done: bool,
}

/// Shared K-buffer plane state: in flight from DRAM or already on chip.
#[derive(Debug, Clone, Copy)]
enum PlaneState {
    InFlight(Cycle),
    Present,
}

/// Runs the QK-PU over one block of query rows.
///
/// `queries[r]` is the r-th query row (all rows share the key tensor);
/// `logit_scale` maps integer scores to logits for the guard margin.
///
/// Delegates to the generic [`run_qk_block_on`]; see there for the
/// allocation-lean hot-path details.
///
/// # Panics
///
/// Panics if `queries` is empty, exceeds `config.pe_rows`, or any row's
/// length differs from the key dimension.
#[must_use]
pub fn run_qk_block(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &BitPlaneMatrix,
    logit_scale: f32,
) -> QkBlockResult {
    run_qk_block_on(config, queries, keys, logit_scale)
}

/// The optimized engine over any [`PlaneSource`] — a from-scratch
/// [`BitPlaneMatrix`], an `Arc`-shared tensor or a chunked
/// [`KeyCacheSnapshot`] of a growable per-session cache.
///
/// This is the allocation-lean hot path: the shared K-buffer state lives
/// in a flat `Vec` indexed by `(token, plane)` instead of a hash map, each
/// query row is decomposed once into [`QRowPlanes`] so every plane
/// absorption is weighted `popcount(q_plane & k_plane)` borrowed read-only
/// by all of the row's lanes, and per-plane GSAT bookkeeping runs through
/// the single-sweep [`Gsat::absorb_stats`], memoized per `(token, plane)`
/// across the block's query rows (the stats are query-independent).
/// Results are bit-identical to [`run_qk_block_reference`]
/// (property-tested below): the restructuring only changes *how* the same
/// integers are computed, and the storage behind `keys` never reaches the
/// arithmetic — only the per-token
/// [`TokenPlanes`](pade_quant::TokenPlanes) do.
///
/// # Panics
///
/// Panics if `queries` is empty, exceeds `config.pe_rows`, or any row's
/// length differs from the key dimension.
#[must_use]
pub fn run_qk_block_on<K: PlaneSource + ?Sized>(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &K,
    logit_scale: f32,
) -> QkBlockResult {
    run_qk_block_on_traced(config, queries, keys, logit_scale, &Tracer::disabled(), 0)
}

/// [`run_qk_block_on`] with telemetry: the query-decompose and block stage
/// spans plus kernel counters (plane-AND words, popcounts, LUT lookups,
/// bytes touched) are recorded through `tracer` onto
/// [`DISPATCH_STRIDE`](pade_trace::track::DISPATCH_STRIDE) consecutive
/// tracks starting at `track`. Telemetry never feeds back into the
/// simulation: the returned [`QkBlockResult`] is byte-identical to the
/// untraced call (and to [`run_qk_block_reference`]) whether `tracer` is
/// recording, disabled, or compiled out.
///
/// # Panics
///
/// As [`run_qk_block_on`].
#[must_use]
pub fn run_qk_block_on_traced<K: PlaneSource + ?Sized>(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &K,
    logit_scale: f32,
    tracer: &Tracer,
    track: u64,
) -> QkBlockResult {
    let q_wall = tracer.is_active().then(std::time::Instant::now);
    let qplanes: Vec<QRowPlanes> = queries.iter().map(|q| QRowPlanes::new(q)).collect();
    let borrowed: Vec<&QRowPlanes> = qplanes.iter().collect();
    if let Some(t0) = q_wall {
        tracer.span_at(
            track,
            "engine.q_decompose",
            Cycle::ZERO,
            Cycle::ZERO,
            t0.elapsed().as_nanos() as u64,
        );
    }
    run_qk_block_prepared(
        config,
        queries,
        &borrowed,
        keys,
        logit_scale,
        BlockTrace { tracer, track },
    )
}

/// [`run_qk_block_on`] with the per-row query decompositions already
/// built. The fused dispatch uses this to share one decomposition across
/// every head (and layer) scoring the same query rows; `qplanes[r]` must
/// be the decomposition of `queries[r]`.
///
/// Telemetry hookup of one engine block dispatch: a tracer handle plus the
/// dispatch's base track id. Recording is a pure side channel — nothing
/// here reaches the simulated arithmetic or timing.
#[derive(Clone, Copy)]
struct BlockTrace<'a> {
    tracer: &'a Tracer,
    track: u64,
}

/// # Panics
///
/// As [`run_qk_block_on`]; additionally if `qplanes.len() != queries.len()`
/// or any decomposition's width differs from its query row's.
fn run_qk_block_prepared<K: PlaneSource + ?Sized>(
    config: &PadeConfig,
    queries: &[&[i8]],
    qplanes: &[&QRowPlanes],
    keys: &K,
    logit_scale: f32,
    trace: BlockTrace<'_>,
) -> QkBlockResult {
    config.validate();
    // Telemetry accumulators — folded away entirely when the `trace`
    // feature is off (`is_active` is then a constant `false`).
    let tr_active = trace.tracer.is_active();
    let wall_start = tr_active.then(std::time::Instant::now);
    let mut tr_popcounts = 0u64;
    let mut tr_and_words = 0u64;
    let mut tr_absorb_cycles = 0u64;
    let mut tr_gsat_sweeps = 0u64;
    let mut tr_gsat_cycles = 0u64;
    let mut tr_memo_hits = 0u64;
    assert_eq!(qplanes.len(), queries.len(), "one decomposition per query row");
    for (q, qp) in queries.iter().zip(qplanes) {
        assert_eq!(qp.len(), q.len(), "decomposition width must match its query row");
    }
    assert!(!queries.is_empty(), "at least one query row required");
    assert!(queries.len() <= config.pe_rows, "more query rows than PE rows");
    for q in queries {
        assert_eq!(q.len(), keys.dims(), "query width must match key dimension");
    }
    let bits = keys.bits();
    let dims = keys.dims();
    let n_keys = keys.tokens();
    let gsat = Gsat::new(config.gsat_width, config.subgroup);
    let window = if config.enable_ooe { config.scoreboard_entries } else { 1 };

    let mut hbm = HbmModel::new(config.hbm);
    let mut k_sram = SramBuffer::new("kv", config.kv_buffer_kb as u64 * 1024);
    let mut q_sram = SramBuffer::new("q", config.q_buffer_kb as u64 * 1024);
    let mut events: EventQueue<(usize, Job)> = EventQueue::new();
    let mut ops = OpCounts::default();
    // Flat shared K-buffer state: slot `token_key·bits + plane_key` (the
    // layout-dependent cache key always satisfies `token_key < n_keys`).
    let mut plane_cache: Vec<SlotState> = vec![SlotState::Unfetched; n_keys * bits as usize];
    let mut planes_fetched = 0u64;

    // Per-row pruning state; the QRowLuts are the per-row read-only plane
    // tables every lane of the row borrows.
    let mut filters: Vec<GuardFilter> = queries
        .iter()
        .map(|_| {
            let margin = if config.enable_bui_gf { config.guard_margin() } else { f32::INFINITY };
            let margin = if margin.is_finite() { margin } else { 1e30 };
            GuardFilter::new(margin, logit_scale, bits)
        })
        .collect();
    let buis: Vec<Bui> = queries.iter().map(|q| Bui::new(q, bits)).collect();
    let mut retained: Vec<Vec<(usize, i64)>> = vec![Vec::new(); queries.len()];
    // GSAT absorption stats are query-independent, so each `(token, plane)`
    // is swept once and reused by every other query row of the block.
    let mut gsat_memo: Vec<Option<PlaneAbsorb>> = vec![None; n_keys * bits as usize];

    for q in queries {
        q_sram.write(q.len() as u64);
    }

    // Lanes: row-major, keys distributed round-robin within each row.
    let mut lanes: Vec<Lane> = Vec::new();
    for row in 0..queries.len() {
        for lane_idx in 0..config.lanes_per_row {
            lanes.push(Lane {
                row,
                keys: (lane_idx..n_keys).step_by(config.lanes_per_row).collect(),
                next_key: 0,
                ready: VecDeque::new(),
                outstanding: 0,
                inflight_keys: 0,
                resolved_keys: 0,
                sb: Scoreboard::new(config.scoreboard_entries),
                busy_until: Cycle::ZERO,
                util: UtilizationCounter::new(),
                done: false,
            });
        }
    }

    let plane_sram_bytes = keys.plane_bytes() as u64;
    let mut now = Cycle::ZERO;
    let hard_stop = Cycle(100_000_000); // defensive livelock bound

    let coalesce = match config.layout {
        KeyLayout::BitPlaneInterleaved => {
            (config.hbm.burst_bytes / plane_sram_bytes.max(1)).max(1) as usize
        }
        _ => 1,
    };
    let bits_us = bits as usize;
    let cache_slot = |token: usize, plane: u32| -> usize {
        match config.layout {
            KeyLayout::ValueRowMajor => token * bits_us,
            KeyLayout::BitPlaneLinear => token * bits_us + plane as usize,
            KeyLayout::BitPlaneInterleaved => {
                let c = config.hbm.channels;
                let channel = token % c;
                let idx = token / c;
                ((idx / coalesce) * coalesce * c + channel) * bits_us + plane as usize
            }
        }
    };

    let request_plane = |token: usize,
                         plane: u32,
                         now: Cycle,
                         hbm: &mut HbmModel,
                         cache: &mut [SlotState],
                         fetched: &mut u64|
     -> Cycle {
        let slot = cache_slot(token, plane);
        match cache[slot] {
            SlotState::Present => now + Cycle(1),
            SlotState::InFlight(t) => t.max(now + Cycle(1)),
            SlotState::Unfetched => {
                let fetch = config.layout.plane_fetch(token, plane, dims, bits, &config.hbm);
                let arrival = hbm.access(fetch.loc, fetch.bytes, now).complete;
                cache[slot] = SlotState::InFlight(arrival);
                *fetched += 1;
                arrival
            }
        }
    };

    // One subtractor fires per potentially-flipped sub-group under
    // per-sub-group BS (constant per plane: the group count of pass 0).
    let extra_subs =
        if config.enable_bs { (config.gsat_width / config.subgroup) as u64 / 2 } else { 0 };

    while lanes.iter().any(|l| !l.done) && now < hard_stop {
        // Deliver arrivals due this cycle.
        while let Some((lane_id, job)) = events.pop_ready(now) {
            let lane = &mut lanes[lane_id];
            lane.outstanding -= 1;
            lane.ready.push_back(job);
            let slot = cache_slot(job.token, job.plane);
            if let SlotState::InFlight(_) = plane_cache[slot] {
                plane_cache[slot] = SlotState::Present;
                k_sram.write(config.hbm.burst_bytes);
            }
        }

        // `lane_id` travels into the event queue alongside the borrow, so
        // the indexed form is clearer than enumerate-with-reborrow here.
        #[allow(clippy::needless_range_loop)]
        for lane_id in 0..lanes.len() {
            let lane = &mut lanes[lane_id];
            if lane.done || now < lane.busy_until {
                continue;
            }

            let dynamic_window =
                if config.enable_ooe { window.min(2 + 2 * lane.resolved_keys) } else { 1 };
            while lane.inflight_keys < dynamic_window && lane.next_key < lane.keys.len() {
                let token = lane.keys[lane.next_key];
                lane.next_key += 1;
                lane.inflight_keys += 1;
                lane.outstanding += 1;
                let arrival =
                    request_plane(token, 0, now, &mut hbm, &mut plane_cache, &mut planes_fetched);
                events.schedule(arrival, (lane_id, Job { token, plane: 0 }));
                if !config.enable_ooe {
                    break;
                }
            }

            if let Some(job) = lane.ready.pop_front() {
                let plane = keys.token(job.token).plane(job.plane);
                k_sram.read(plane_sram_bytes);
                let contrib =
                    plane_contribution_planes(qplanes[lane.row], plane, job.plane, bits, false);
                let memo_slot = job.token * bits_us + job.plane as usize;
                let stats = match gsat_memo[memo_slot] {
                    Some(s) => {
                        if tr_active {
                            tr_memo_hits += 1;
                        }
                        s
                    }
                    None => {
                        let s = gsat.absorb_stats(plane, config.enable_bs);
                        gsat_memo[memo_slot] = Some(s);
                        if tr_active {
                            tr_gsat_sweeps += 1;
                            tr_gsat_cycles += s.cycles;
                        }
                        s
                    }
                };
                let (cycles, selected) = (stats.cycles, stats.selected);
                let balanced = stats.balanced;
                if tr_active {
                    tr_popcounts += 1;
                    tr_and_words += plane.words().len() as u64;
                    tr_absorb_cycles += balanced;
                }
                lane.util.busy(balanced);
                lane.util.stall_intra(cycles - balanced);
                lane.busy_until = now + Cycle(cycles);
                ops.bit_serial_acc += u64::from(selected) + extra_subs;
                ops.shift_add += 1; // plane-weight application

                // Fold into the scoreboard and decide.
                let partial = match lane.sb.lookup(job.token) {
                    Some(e) => {
                        let p = e.partial + contrib.value;
                        lane.sb.update(job.token, job.plane + 1, p);
                        p
                    }
                    None => {
                        lane.sb
                            .insert(job.token, job.plane + 1, contrib.value)
                            .expect("window bounds in-flight keys to scoreboard capacity");
                        contrib.value
                    }
                };
                let f = &mut filters[lane.row];
                let bui = &buis[lane.row];
                f.observe_lower_bound(bui.lower_bound(partial, job.plane));
                ops.lut_lookup += 1; // BUI LUT read
                match f.decide(bui.upper_bound(partial, job.plane), job.plane) {
                    Decision::Prune => {
                        lane.sb.evict(job.token);
                        lane.inflight_keys -= 1;
                        lane.resolved_keys += 1;
                    }
                    Decision::Retain => {
                        lane.sb.evict(job.token);
                        lane.inflight_keys -= 1;
                        lane.resolved_keys += 1;
                        retained[lane.row].push((job.token, partial));
                    }
                    Decision::NeedMore => {
                        lane.outstanding += 1;
                        let arrival = request_plane(
                            job.token,
                            job.plane + 1,
                            now,
                            &mut hbm,
                            &mut plane_cache,
                            &mut planes_fetched,
                        );
                        events.schedule(
                            arrival,
                            (lane_id, Job { token: job.token, plane: job.plane + 1 }),
                        );
                    }
                }
            } else if lane.outstanding > 0 {
                lane.util.stall_mem(1);
            } else if lane.inflight_keys == 0 && lane.next_key >= lane.keys.len() {
                lane.done = true;
            } else {
                lane.util.stall_mem(1);
            }
        }

        // Advance to the next interesting time (skip long memory waits).
        let next_busy =
            lanes.iter().filter(|l| !l.done && l.busy_until > now).map(|l| l.busy_until).min();
        let next_event = events.next_time().filter(|&t| t > now);
        let target = match (next_busy, next_event) {
            (Some(b), Some(e)) => b.min(e),
            (Some(b), None) => b,
            (None, Some(e)) => e,
            (None, None) => now + Cycle(1),
        }
        .max(now + Cycle(1));
        let skipped = (target - now).0;
        if skipped > 1 {
            for lane in lanes.iter_mut().filter(|l| !l.done) {
                if lane.busy_until <= now && lane.ready.is_empty() && lane.outstanding > 0 {
                    lane.util.stall_mem(skipped - 1);
                }
            }
        }
        now = target;
    }

    for r in &mut retained {
        r.sort_unstable_by_key(|&(t, _)| t);
    }

    let mut traffic = hbm.traffic();
    traffic.merge(&k_sram.traffic());
    traffic.merge(&q_sram.traffic());
    for f in &filters {
        ops.compare += f.compares();
    }

    let horizon = now;
    let mut lane_utils = Vec::with_capacity(lanes.len());
    for mut lane in lanes {
        lane.util.pad_to(horizon);
        lane_utils.push(lane.util);
    }

    if let Some(t0) = wall_start {
        // The block span rides the dispatch's main track; the per-stage
        // aggregates are *summed lane-time*, not bracketed intervals
        // (lanes overlap), so they get their own subtracks and every
        // track stays strictly nested.
        let t = trace.tracer;
        let tk = trace.track;
        t.span_at(tk, "engine.qk_block", Cycle::ZERO, horizon, t0.elapsed().as_nanos() as u64);
        t.span_at(tk + 1, "engine.plane_and_popcount", Cycle::ZERO, Cycle(tr_absorb_cycles), 0);
        t.span_at(tk + 2, "engine.gsat_absorb", Cycle::ZERO, Cycle(tr_gsat_cycles), 0);
        t.count(tk, "engine.popcounts", horizon, tr_popcounts);
        t.count(tk, "engine.plane_and_words", horizon, tr_and_words);
        t.count(tk, "engine.gsat_sweeps", horizon, tr_gsat_sweeps);
        t.count(tk, "engine.gsat_memo_hits", horizon, tr_memo_hits);
        t.count(tk, "engine.lut_lookups", horizon, ops.lut_lookup);
        t.count(tk, "engine.planes_fetched", horizon, planes_fetched);
        t.count(tk, "engine.dram_read_bytes", horizon, traffic.dram_read_bytes);
        t.count(tk, "engine.sram_read_bytes", horizon, traffic.sram_read_bytes);
    }

    QkBlockResult {
        cycles: horizon,
        retained,
        lane_utils,
        ops,
        traffic,
        planes_fetched,
        planes_dense: dense_fetches(n_keys, bits, config, coalesce),
        row_hit_rate: hbm.row_hit_rate(),
        bandwidth_utilization: hbm.bandwidth_utilization(horizon),
    }
}

/// Shared K-buffer slot state for the flat plane cache.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    Unfetched,
    InFlight(Cycle),
    Present,
}

/// Runs a batch of query rows as a sequence of independent
/// `config.pe_rows`-sized blocks (how a prefill of many query rows maps
/// onto one QK-PU): block `i` covers `queries[i·pe_rows ..]`.
///
/// # Panics
///
/// Panics if any row's length differs from the key dimension.
#[must_use]
pub fn run_qk_blocks(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &BitPlaneMatrix,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    run_qk_blocks_on(config, queries, keys, logit_scale)
}

/// [`run_qk_blocks`] over any [`PlaneSource`].
///
/// # Panics
///
/// Panics if any row's length differs from the key dimension.
#[must_use]
pub fn run_qk_blocks_on<K: PlaneSource + ?Sized>(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &K,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    queries
        .chunks(config.pe_rows)
        .map(|block| run_qk_block_on(config, block, keys, logit_scale))
        .collect()
}

/// Parallel variant of [`run_qk_blocks`]: blocks fan out across worker
/// threads and are merged back in block order. Each block simulates its
/// own HBM/SRAM instances (exactly as in the sequential loop), so the
/// returned vector is **bit-identical** to [`run_qk_blocks`] regardless
/// of thread count.
///
/// # Panics
///
/// Panics if any row's length differs from the key dimension.
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_blocks_par(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &BitPlaneMatrix,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    run_qk_blocks_par_on(config, queries, keys, logit_scale)
}

/// [`run_qk_blocks_par`] over any [`PlaneSource`].
///
/// # Panics
///
/// Panics if any row's length differs from the key dimension.
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_blocks_par_on<K: PlaneSource + Sync + ?Sized>(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &K,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    let blocks: Vec<&[&[i8]]> = queries.chunks(config.pe_rows).collect();
    pade_par::par_map(&blocks, |block| run_qk_block_on(config, block, keys, logit_scale))
}

/// [`run_qk_blocks_par_on`] with telemetry: block `i` records onto tracks
/// `base_track + i·DISPATCH_STRIDE`. Block indices — not worker identity —
/// assign the tracks, so recorded traces are identical at any
/// `PADE_THREADS`. Results stay byte-identical to the untraced call.
///
/// # Panics
///
/// As [`run_qk_blocks_par`].
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_blocks_par_traced<K: PlaneSource + Sync + ?Sized>(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &K,
    logit_scale: f32,
    tracer: &Tracer,
    base_track: u64,
) -> Vec<QkBlockResult> {
    let blocks: Vec<&[&[i8]]> = queries.chunks(config.pe_rows).collect();
    pade_par::par_map_indexed(blocks.len(), |i| {
        run_qk_block_on_traced(
            config,
            blocks[i],
            keys,
            logit_scale,
            tracer,
            base_track + i as u64 * trace_track::DISPATCH_STRIDE,
        )
    })
}

/// [`run_qk_block`] over a [`KeyCacheSnapshot`] — one engine block against
/// the frozen prefix of a growable per-session key cache (prefix planes +
/// fresh tail), without materializing a contiguous tensor.
///
/// # Panics
///
/// As [`run_qk_block`].
#[must_use]
pub fn run_qk_block_cached(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &KeyCacheSnapshot,
    logit_scale: f32,
) -> QkBlockResult {
    run_qk_block_on(config, queries, keys, logit_scale)
}

/// [`run_qk_blocks`] over a [`KeyCacheSnapshot`].
///
/// # Panics
///
/// As [`run_qk_blocks`].
#[must_use]
pub fn run_qk_blocks_cached(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &KeyCacheSnapshot,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    run_qk_blocks_on(config, queries, keys, logit_scale)
}

/// [`run_qk_blocks_par`] over a [`KeyCacheSnapshot`]: worker threads
/// borrow the snapshot's `Arc`-shared chunks instead of cloning planes.
///
/// # Panics
///
/// As [`run_qk_blocks_par`].
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_blocks_cached_par(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &KeyCacheSnapshot,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    run_qk_blocks_par_on(config, queries, keys, logit_scale)
}

/// A key bit-plane tensor shared across blocks, sessions and worker
/// threads without cloning.
///
/// The serving front end (`pade-serve`) decomposes each request's KV
/// cache into bit planes **once** at admission and then dispatches many
/// engine blocks (prefill chunks, decode steps) against the same
/// immutable planes; `Arc` makes that sharing explicit and keeps the
/// plane memory alive exactly as long as any in-flight block needs it.
pub type SharedKeyPlanes = Arc<BitPlaneMatrix>;

/// [`run_qk_block`] over an [`Arc`]-shared key tensor.
///
/// Delegates to [`run_qk_block`]; results are identical. Exists so
/// session-style callers holding [`SharedKeyPlanes`] don't have to spell
/// the double deref at every call site.
///
/// # Panics
///
/// As [`run_qk_block`].
#[must_use]
pub fn run_qk_block_shared(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &SharedKeyPlanes,
    logit_scale: f32,
) -> QkBlockResult {
    run_qk_block(config, queries, keys, logit_scale)
}

/// [`run_qk_blocks`] over an [`Arc`]-shared key tensor.
///
/// # Panics
///
/// As [`run_qk_blocks`].
#[must_use]
pub fn run_qk_blocks_shared(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &SharedKeyPlanes,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    run_qk_blocks(config, queries, keys, logit_scale)
}

/// [`run_qk_blocks_par`] over an [`Arc`]-shared key tensor: worker
/// threads borrow the one plane allocation instead of the caller cloning
/// key planes per block.
///
/// # Panics
///
/// As [`run_qk_blocks_par`].
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_blocks_par_shared(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &SharedKeyPlanes,
    logit_scale: f32,
) -> Vec<QkBlockResult> {
    run_qk_blocks_par(config, queries, keys, logit_scale)
}

/// The key planes one batched engine block attends over: either a whole
/// [`Arc`]-shared tensor (decomposed once at admission, the prefill path)
/// or a [`KeyCacheSnapshot`] of a growable per-session cache (the
/// multi-step decode path, where each step appends one token).
///
/// Both variants are cheap to clone (refcounts, not planes) and read
/// through [`PlaneSource`], so the engine is oblivious to which one a
/// scheduler hands it.
#[derive(Debug, Clone)]
pub enum KeySource {
    /// A whole, immutable key tensor shared behind an [`Arc`].
    Planes(SharedKeyPlanes),
    /// A frozen prefix of a [`GrowableKeyCache`](pade_quant::GrowableKeyCache).
    Cache(KeyCacheSnapshot),
}

impl PlaneSource for KeySource {
    fn tokens(&self) -> usize {
        match self {
            KeySource::Planes(p) => PlaneSource::tokens(p),
            KeySource::Cache(c) => c.tokens(),
        }
    }
    fn dims(&self) -> usize {
        match self {
            KeySource::Planes(p) => PlaneSource::dims(p),
            KeySource::Cache(c) => c.dims(),
        }
    }
    fn bits(&self) -> u32 {
        match self {
            KeySource::Planes(p) => PlaneSource::bits(p),
            KeySource::Cache(c) => c.bits(),
        }
    }
    fn token(&self, j: usize) -> &pade_quant::TokenPlanes {
        match self {
            KeySource::Planes(p) => PlaneSource::token(p, j),
            KeySource::Cache(c) => c.token(j),
        }
    }
    fn plane_bytes(&self) -> usize {
        match self {
            KeySource::Planes(p) => PlaneSource::plane_bytes(p),
            KeySource::Cache(c) => c.plane_bytes(),
        }
    }
}

impl From<SharedKeyPlanes> for KeySource {
    fn from(planes: SharedKeyPlanes) -> Self {
        KeySource::Planes(planes)
    }
}

impl From<BitPlaneMatrix> for KeySource {
    fn from(planes: BitPlaneMatrix) -> Self {
        KeySource::Planes(Arc::new(planes))
    }
}

impl From<KeyCacheSnapshot> for KeySource {
    fn from(snapshot: KeyCacheSnapshot) -> Self {
        KeySource::Cache(snapshot)
    }
}

/// One engine block of a heterogeneous batch: its query rows, the
/// [`KeySource`] it attends over and the logit scale mapping its integer
/// scores.
///
/// Unlike [`run_qk_blocks`], a batch may mix blocks from *different*
/// requests with different key tensors — and mix whole shared tensors
/// with growable-cache snapshots — the unit of work the serving layer's
/// iteration-level scheduler dispatches.
#[derive(Debug, Clone)]
pub struct QkBatchJob<'a> {
    /// Query rows of this block (at most `config.pe_rows`).
    pub queries: Vec<&'a [i8]>,
    /// Key planes of this block (cheap to clone: refcounts only).
    pub keys: KeySource,
    /// Logit scale of this block's operands.
    pub logit_scale: f32,
}

/// Runs a heterogeneous batch of engine blocks sequentially.
///
/// Each job simulates its own HBM/SRAM instances (exactly as
/// [`run_qk_blocks`] does per block), so `results[i]` is **bit-identical**
/// to running job `i` alone through [`run_qk_block`] — and therefore to
/// the seed oracle [`run_qk_block_reference`]. Batching changes wall-clock
/// and scheduling, never outputs; this is the property the serving
/// layer's bit-identity tests pin down.
///
/// # Panics
///
/// As [`run_qk_block`], per job.
#[must_use]
pub fn run_qk_batch(config: &PadeConfig, jobs: &[QkBatchJob<'_>]) -> Vec<QkBlockResult> {
    jobs.iter()
        .map(|job| run_qk_block_on(config, &job.queries, &job.keys, job.logit_scale))
        .collect()
}

/// [`run_qk_batch`] with telemetry: job `i` records onto tracks
/// `base_track + i·DISPATCH_STRIDE`. Results stay byte-identical to the
/// untraced call.
///
/// # Panics
///
/// As [`run_qk_block`], per job.
#[must_use]
pub fn run_qk_batch_traced(
    config: &PadeConfig,
    jobs: &[QkBatchJob<'_>],
    tracer: &Tracer,
    base_track: u64,
) -> Vec<QkBlockResult> {
    jobs.iter()
        .enumerate()
        .map(|(i, job)| {
            run_qk_block_on_traced(
                config,
                &job.queries,
                &job.keys,
                job.logit_scale,
                tracer,
                base_track + i as u64 * trace_track::DISPATCH_STRIDE,
            )
        })
        .collect()
}

/// Parallel variant of [`run_qk_batch`]: jobs fan out across worker
/// threads and are merged back in job order, bit-identical to the
/// sequential loop regardless of thread count.
///
/// # Panics
///
/// As [`run_qk_block`], per job.
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_batch_par(config: &PadeConfig, jobs: &[QkBatchJob<'_>]) -> Vec<QkBlockResult> {
    pade_par::par_map(jobs, |job| run_qk_block_on(config, &job.queries, &job.keys, job.logit_scale))
}

/// [`run_qk_batch_par`] with telemetry; job indices (not worker identity)
/// assign tracks, so traces are identical at any `PADE_THREADS`.
///
/// # Panics
///
/// As [`run_qk_block`], per job.
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_batch_par_traced(
    config: &PadeConfig,
    jobs: &[QkBatchJob<'_>],
    tracer: &Tracer,
    base_track: u64,
) -> Vec<QkBlockResult> {
    pade_par::par_map_indexed(jobs.len(), |i| {
        let job = &jobs[i];
        run_qk_block_on_traced(
            config,
            &job.queries,
            &job.keys,
            job.logit_scale,
            tracer,
            base_track + i as u64 * trace_track::DISPATCH_STRIDE,
        )
    })
}

/// Every head (and, stacked across layers, every layer-head) of one token
/// step, fused into a single kernel dispatch.
///
/// The serving layer's per-step work is `H` (or `L·H`) engine blocks that
/// all score the *same* step's query rows against per-head key planes.
/// Dispatching them one by one costs one scheduling round-trip — and one
/// query bit-plane decomposition per row — per head. A fused job instead:
///
/// 1. decomposes every distinct query row **once** (rows are deduplicated
///    by slice identity, so heads sharing a row — the multi-layer and
///    grouped-query cases — share one [`QRowPlanes`]), and
/// 2. fans all blocks of all heads out in **one** `pade-par` round-trip.
///
/// Results are byte-identical to running each head through
/// [`run_qk_blocks`] on its own — fusion changes scheduling, never
/// outputs.
#[derive(Debug, Clone)]
pub struct QkFusedJob<'a> {
    /// One entry per head (or layer-head): its query rows, key planes and
    /// logit scale. Unlike [`QkBatchJob`], entries may carry more than
    /// `config.pe_rows` rows; each entry is chunked into engine blocks
    /// exactly as [`run_qk_blocks`] would.
    pub heads: Vec<QkBatchJob<'a>>,
}

/// One (head, block) unit of a fused dispatch: the head index, the
/// block's query rows, and per-row indices into the shared
/// [`QRowPlanes`] pool.
type FusedUnit<'a> = (usize, &'a [&'a [i8]], Vec<usize>);

/// Shared prepass of the fused dispatch: decompose every distinct query
/// row once and hand each (head, block) unit borrowed decompositions.
fn fused_prepass<'a>(
    config: &PadeConfig,
    job: &'a QkFusedJob<'a>,
) -> (Vec<QRowPlanes>, Vec<FusedUnit<'a>>) {
    let mut dedup: HashMap<(usize, usize), usize> = HashMap::new();
    let mut qplanes: Vec<QRowPlanes> = Vec::new();
    let mut units: Vec<FusedUnit<'a>> = Vec::new();
    for (head, entry) in job.heads.iter().enumerate() {
        for block in entry.queries.chunks(config.pe_rows) {
            let plane_ids = block
                .iter()
                .map(|q| {
                    *dedup.entry((q.as_ptr() as usize, q.len())).or_insert_with(|| {
                        qplanes.push(QRowPlanes::new(q));
                        qplanes.len() - 1
                    })
                })
                .collect();
            units.push((head, block, plane_ids));
        }
    }
    (qplanes, units)
}

/// Runs a fused multi-head job sequentially: one shared query-decomposition
/// prepass, then every block of every head in submission order.
///
/// `results[h]` is byte-identical to
/// `run_qk_blocks_on(config, &job.heads[h].queries, …)`.
///
/// # Panics
///
/// As [`run_qk_block`], per block.
#[must_use]
pub fn run_qk_fused(config: &PadeConfig, job: &QkFusedJob<'_>) -> Vec<Vec<QkBlockResult>> {
    run_qk_fused_traced(config, job, &Tracer::disabled(), 0)
}

/// [`run_qk_fused`] with telemetry: the shared query-decompose prepass and
/// the fan-out span record onto the dispatcher track `base_track`; unit
/// `u` (in deterministic prepass order) records onto tracks
/// `base_track + (1 + u)·DISPATCH_STRIDE`. Results stay byte-identical to
/// the untraced call.
///
/// # Panics
///
/// As [`run_qk_block`], per block.
#[must_use]
pub fn run_qk_fused_traced(
    config: &PadeConfig,
    job: &QkFusedJob<'_>,
    tracer: &Tracer,
    base_track: u64,
) -> Vec<Vec<QkBlockResult>> {
    let prep_wall = tracer.is_active().then(std::time::Instant::now);
    let (qplanes, units) = fused_prepass(config, job);
    if let Some(t0) = prep_wall {
        tracer.span_at(
            base_track,
            "engine.q_decompose",
            Cycle::ZERO,
            Cycle::ZERO,
            t0.elapsed().as_nanos() as u64,
        );
    }
    let fan_wall = tracer.is_active().then(std::time::Instant::now);
    let mut results: Vec<Vec<QkBlockResult>> = job.heads.iter().map(|_| Vec::new()).collect();
    for (u, (head, block, plane_ids)) in units.iter().enumerate() {
        let borrowed: Vec<&QRowPlanes> = plane_ids.iter().map(|&i| &qplanes[i]).collect();
        let entry = &job.heads[*head];
        results[*head].push(run_qk_block_prepared(
            config,
            block,
            &borrowed,
            &entry.keys,
            entry.logit_scale,
            BlockTrace {
                tracer,
                track: base_track + (1 + u as u64) * trace_track::DISPATCH_STRIDE,
            },
        ));
    }
    emit_fanout_span(tracer, base_track, fan_wall, &results);
    results
}

/// Parallel variant of [`run_qk_fused`]: all blocks of all heads fan out
/// in **one** `pade-par` round-trip (instead of one spawn round per head),
/// sharing the one query-decomposition prepass. Byte-identical to
/// [`run_qk_fused`] and to the per-head loop regardless of thread count.
///
/// # Panics
///
/// As [`run_qk_block`], per block.
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_fused_par(config: &PadeConfig, job: &QkFusedJob<'_>) -> Vec<Vec<QkBlockResult>> {
    run_qk_fused_par_traced(config, job, &Tracer::disabled(), 0)
}

/// [`run_qk_fused_par`] with telemetry, laid out exactly as
/// [`run_qk_fused_traced`]: unit indices from the deterministic prepass —
/// not worker identity — assign tracks, so the recorded trace is identical
/// at any `PADE_THREADS`.
///
/// # Panics
///
/// As [`run_qk_block`], per block.
#[cfg(feature = "parallel")]
#[must_use]
pub fn run_qk_fused_par_traced(
    config: &PadeConfig,
    job: &QkFusedJob<'_>,
    tracer: &Tracer,
    base_track: u64,
) -> Vec<Vec<QkBlockResult>> {
    let prep_wall = tracer.is_active().then(std::time::Instant::now);
    let (qplanes, units) = fused_prepass(config, job);
    if let Some(t0) = prep_wall {
        tracer.span_at(
            base_track,
            "engine.q_decompose",
            Cycle::ZERO,
            Cycle::ZERO,
            t0.elapsed().as_nanos() as u64,
        );
    }
    let fan_wall = tracer.is_active().then(std::time::Instant::now);
    let flat = pade_par::par_map_indexed(units.len(), |u| {
        let (head, block, plane_ids) = &units[u];
        let borrowed: Vec<&QRowPlanes> = plane_ids.iter().map(|&i| &qplanes[i]).collect();
        let entry = &job.heads[*head];
        (
            *head,
            run_qk_block_prepared(config, block, &borrowed, &entry.keys, entry.logit_scale, {
                BlockTrace {
                    tracer,
                    track: base_track + (1 + u as u64) * trace_track::DISPATCH_STRIDE,
                }
            }),
        )
    });
    let mut results: Vec<Vec<QkBlockResult>> = job.heads.iter().map(|_| Vec::new()).collect();
    for (head, result) in flat {
        results[head].push(result);
    }
    emit_fanout_span(tracer, base_track, fan_wall, &results);
    results
}

/// Closes the fused-dispatch fan-out span: logical length = the longest
/// block horizon of the dispatch (blocks run concurrently on hardware),
/// wall annotation = measured fan-out time.
fn emit_fanout_span(
    tracer: &Tracer,
    base_track: u64,
    fan_wall: Option<std::time::Instant>,
    results: &[Vec<QkBlockResult>],
) {
    if let Some(t0) = fan_wall {
        let horizon = results.iter().flatten().map(|r| r.cycles).max().unwrap_or(Cycle::ZERO);
        tracer.span_at(
            base_track,
            "engine.fused_fanout",
            Cycle::ZERO,
            horizon,
            t0.elapsed().as_nanos() as u64,
        );
    }
}

/// The seed's hash-map-based implementation, kept verbatim as the
/// bit-exact oracle for [`run_qk_block`] and as the sequential baseline
/// the `pade-bench` harness measures speedups against.
///
/// # Panics
///
/// Panics if `queries` is empty, exceeds `config.pe_rows`, or any row's
/// length differs from the key dimension.
#[must_use]
pub fn run_qk_block_reference(
    config: &PadeConfig,
    queries: &[&[i8]],
    keys: &BitPlaneMatrix,
    logit_scale: f32,
) -> QkBlockResult {
    config.validate();
    assert!(!queries.is_empty(), "at least one query row required");
    assert!(queries.len() <= config.pe_rows, "more query rows than PE rows");
    for q in queries {
        assert_eq!(q.len(), keys.dims(), "query width must match key dimension");
    }
    let bits = keys.bits();
    let dims = keys.dims();
    let n_keys = keys.tokens();
    let gsat = Gsat::new(config.gsat_width, config.subgroup);
    let window = if config.enable_ooe { config.scoreboard_entries } else { 1 };

    let mut hbm = HbmModel::new(config.hbm);
    let mut k_sram = SramBuffer::new("kv", config.kv_buffer_kb as u64 * 1024);
    let mut q_sram = SramBuffer::new("q", config.q_buffer_kb as u64 * 1024);
    let mut events: EventQueue<(usize, Job)> = EventQueue::new();
    let mut ops = OpCounts::default();
    let mut plane_cache: HashMap<(usize, u32), PlaneState> = HashMap::new();
    let mut planes_fetched = 0u64;

    // Per-row pruning state.
    let mut filters: Vec<GuardFilter> = queries
        .iter()
        .map(|_| {
            let margin = if config.enable_bui_gf { config.guard_margin() } else { f32::INFINITY };
            let margin = if margin.is_finite() { margin } else { 1e30 };
            GuardFilter::new(margin, logit_scale, bits)
        })
        .collect();
    let buis: Vec<Bui> = queries.iter().map(|q| Bui::new(q, bits)).collect();
    let q_sums: Vec<i64> = queries.iter().map(|q| q_sum(q)).collect();
    let mut retained: Vec<Vec<(usize, i64)>> = vec![Vec::new(); queries.len()];

    for q in queries {
        q_sram.write(q.len() as u64);
    }

    // Lanes: row-major, keys distributed round-robin within each row.
    let mut lanes: Vec<Lane> = Vec::new();
    for row in 0..queries.len() {
        for lane_idx in 0..config.lanes_per_row {
            lanes.push(Lane {
                row,
                keys: (lane_idx..n_keys).step_by(config.lanes_per_row).collect(),
                next_key: 0,
                ready: VecDeque::new(),
                outstanding: 0,
                inflight_keys: 0,
                resolved_keys: 0,
                sb: Scoreboard::new(config.scoreboard_entries),
                busy_until: Cycle::ZERO,
                util: UtilizationCounter::new(),
                done: false,
            });
        }
    }

    let plane_sram_bytes = keys.plane_bytes() as u64;
    let mut now = Cycle::ZERO;
    let hard_stop = Cycle(100_000_000); // defensive livelock bound

    // Under the bit-plane-interleaved layout (Fig. 22) one DRAM burst packs
    // the same plane of several consecutive tokens-in-channel, so a single
    // fetch serves that whole group (they even belong to the same lane).
    let coalesce = match config.layout {
        KeyLayout::BitPlaneInterleaved => {
            (config.hbm.burst_bytes / plane_sram_bytes.max(1)).max(1) as usize
        }
        _ => 1,
    };
    let cache_key = |token: usize, plane: u32| -> (usize, u32) {
        match config.layout {
            KeyLayout::ValueRowMajor => (token, 0),
            KeyLayout::BitPlaneLinear => (token, plane),
            KeyLayout::BitPlaneInterleaved => {
                let c = config.hbm.channels;
                let channel = token % c;
                let idx = token / c;
                ((idx / coalesce) * coalesce * c + channel, plane)
            }
        }
    };

    // Requests a plane through the shared K buffer; returns its arrival
    // cycle. Only the first requester pays DRAM; value-major layouts carry
    // all planes of a token in their first fetch, and interleaved layouts
    // deliver a whole coalescing group per burst.
    let request_plane = |token: usize,
                         plane: u32,
                         now: Cycle,
                         hbm: &mut HbmModel,
                         cache: &mut HashMap<(usize, u32), PlaneState>,
                         fetched: &mut u64|
     -> Cycle {
        let key = cache_key(token, plane);
        match cache.get(&key) {
            Some(PlaneState::Present) => now + Cycle(1),
            Some(PlaneState::InFlight(t)) => (*t).max(now + Cycle(1)),
            None => {
                let fetch = config.layout.plane_fetch(token, plane, dims, bits, &config.hbm);
                let arrival = hbm.access(fetch.loc, fetch.bytes, now).complete;
                cache.insert(key, PlaneState::InFlight(arrival));
                *fetched += 1;
                arrival
            }
        }
    };

    while lanes.iter().any(|l| !l.done) && now < hard_stop {
        // Deliver arrivals due this cycle.
        while let Some((lane_id, job)) = events.pop_ready(now) {
            let lane = &mut lanes[lane_id];
            lane.outstanding -= 1;
            lane.ready.push_back(job);
            let key = cache_key(job.token, job.plane);
            if let Some(state @ PlaneState::InFlight(_)) = plane_cache.get_mut(&key) {
                *state = PlaneState::Present;
                k_sram.write(config.hbm.burst_bytes);
            }
        }

        // `lane_id` travels into the event queue alongside the borrow, so
        // the indexed form is clearer than enumerate-with-reborrow here.
        #[allow(clippy::needless_range_loop)]
        for lane_id in 0..lanes.len() {
            let lane = &mut lanes[lane_id];
            if lane.done || now < lane.busy_until {
                continue;
            }

            // Issue new first-plane fetches while the OOE window allows.
            // The window starts small and grows as keys resolve — the
            // observation-window semantics of Fig. 9: early keys mature the
            // threshold before the bulk enters flight.
            let dynamic_window =
                if config.enable_ooe { window.min(2 + 2 * lane.resolved_keys) } else { 1 };
            while lane.inflight_keys < dynamic_window && lane.next_key < lane.keys.len() {
                let token = lane.keys[lane.next_key];
                lane.next_key += 1;
                lane.inflight_keys += 1;
                lane.outstanding += 1;
                let arrival =
                    request_plane(token, 0, now, &mut hbm, &mut plane_cache, &mut planes_fetched);
                events.schedule(arrival, (lane_id, Job { token, plane: 0 }));
                if !config.enable_ooe {
                    break;
                }
            }

            if let Some(job) = lane.ready.pop_front() {
                let plane = keys.token(job.token).plane(job.plane);
                k_sram.read(plane_sram_bytes);
                // Numeric value is mode-independent (Eq. 6); timing and op
                // counts depend on the selection scheme: per-sub-group BS
                // bounds every sub-group at half occupancy (§V-D), one-sided
                // selection does not.
                let contrib = plane_contribution(
                    queries[lane.row],
                    plane,
                    job.plane,
                    bits,
                    q_sums[lane.row],
                    false,
                );
                let (cycles, selected, extra_subs) = if config.enable_bs {
                    let sel = gsat.bs_selected_total(plane);
                    let flipped_groups = gsat.bs_subgroup_selected(plane, 0).len() as u64; // one potential subtract per group
                    (gsat.bs_plane_cycles(plane), sel, flipped_groups / 2)
                } else {
                    (gsat.plane_cycles(plane, BsMode::Ones), plane.count_ones(), 0)
                };
                let balanced = gsat.balanced_cycles(plane, BsMode::Ones).min(cycles);
                lane.util.busy(balanced);
                lane.util.stall_intra(cycles - balanced);
                lane.busy_until = now + Cycle(cycles);
                ops.bit_serial_acc += u64::from(selected) + extra_subs;
                ops.shift_add += 1; // plane-weight application

                // Fold into the scoreboard and decide.
                let partial = match lane.sb.lookup(job.token) {
                    Some(e) => {
                        let p = e.partial + contrib.value;
                        lane.sb.update(job.token, job.plane + 1, p);
                        p
                    }
                    None => {
                        lane.sb
                            .insert(job.token, job.plane + 1, contrib.value)
                            .expect("window bounds in-flight keys to scoreboard capacity");
                        contrib.value
                    }
                };
                let f = &mut filters[lane.row];
                let bui = &buis[lane.row];
                f.observe_lower_bound(bui.lower_bound(partial, job.plane));
                ops.lut_lookup += 1; // BUI LUT read
                match f.decide(bui.upper_bound(partial, job.plane), job.plane) {
                    Decision::Prune => {
                        lane.sb.evict(job.token);
                        lane.inflight_keys -= 1;
                        lane.resolved_keys += 1;
                    }
                    Decision::Retain => {
                        lane.sb.evict(job.token);
                        lane.inflight_keys -= 1;
                        lane.resolved_keys += 1;
                        retained[lane.row].push((job.token, partial));
                    }
                    Decision::NeedMore => {
                        lane.outstanding += 1;
                        let arrival = request_plane(
                            job.token,
                            job.plane + 1,
                            now,
                            &mut hbm,
                            &mut plane_cache,
                            &mut planes_fetched,
                        );
                        events.schedule(
                            arrival,
                            (lane_id, Job { token: job.token, plane: job.plane + 1 }),
                        );
                    }
                }
            } else if lane.outstanding > 0 {
                lane.util.stall_mem(1);
            } else if lane.inflight_keys == 0 && lane.next_key >= lane.keys.len() {
                lane.done = true;
            } else {
                lane.util.stall_mem(1);
            }
        }

        // Advance to the next interesting time (skip long memory waits).
        let next_busy =
            lanes.iter().filter(|l| !l.done && l.busy_until > now).map(|l| l.busy_until).min();
        let next_event = events.next_time().filter(|&t| t > now);
        let target = match (next_busy, next_event) {
            (Some(b), Some(e)) => b.min(e),
            (Some(b), None) => b,
            (None, Some(e)) => e,
            (None, None) => now + Cycle(1),
        }
        .max(now + Cycle(1));
        let skipped = (target - now).0;
        if skipped > 1 {
            for lane in lanes.iter_mut().filter(|l| !l.done) {
                if lane.busy_until <= now && lane.ready.is_empty() && lane.outstanding > 0 {
                    lane.util.stall_mem(skipped - 1);
                }
            }
        }
        now = target;
    }

    for r in &mut retained {
        r.sort_unstable_by_key(|&(t, _)| t);
    }

    let mut traffic = hbm.traffic();
    traffic.merge(&k_sram.traffic());
    traffic.merge(&q_sram.traffic());
    for f in &filters {
        ops.compare += f.compares();
    }

    let horizon = now;
    let mut lane_utils = Vec::with_capacity(lanes.len());
    for mut lane in lanes {
        lane.util.pad_to(horizon);
        lane_utils.push(lane.util);
    }

    QkBlockResult {
        cycles: horizon,
        retained,
        lane_utils,
        ops,
        traffic,
        planes_fetched,
        planes_dense: dense_fetches(n_keys, bits, config, coalesce),
        row_hit_rate: hbm.row_hit_rate(),
        bandwidth_utilization: hbm.bandwidth_utilization(horizon),
    }
}

/// DRAM fetches a dense (no-pruning) bit-serial run issues under `layout`.
fn dense_fetches(n_keys: usize, bits: u32, config: &PadeConfig, coalesce: usize) -> u64 {
    match config.layout {
        KeyLayout::ValueRowMajor => n_keys as u64,
        KeyLayout::BitPlaneLinear => n_keys as u64 * u64::from(bits),
        KeyLayout::BitPlaneInterleaved => {
            let c = config.hbm.channels;
            let groups: u64 = (0..c)
                .map(|ch| {
                    let tokens_in_channel = (n_keys + c - 1 - ch) / c;
                    tokens_in_channel.div_ceil(coalesce) as u64
                })
                .sum();
            groups * u64::from(bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::trace::{AttentionTrace, TraceConfig};

    fn small_trace() -> AttentionTrace {
        AttentionTrace::generate(&TraceConfig::small_demo())
    }

    fn run(config: &PadeConfig, trace: &AttentionTrace) -> QkBlockResult {
        let keys =
            BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), config.bits)
                .expect("key bit planes");
        let queries: Vec<&[i8]> =
            (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
        run_qk_block(config, &queries, &keys, trace.logit_scale())
    }

    #[test]
    fn retained_scores_are_exact_dot_products() {
        let trace = small_trace();
        let result = run(&PadeConfig::standard(), &trace);
        for (row, retained) in result.retained.iter().enumerate() {
            let logits = trace.exact_logits(row);
            for &(token, score) in retained {
                let expect = (logits[token] / trace.logit_scale()).round() as i64;
                assert_eq!(score, expect, "row {row} token {token}");
            }
        }
    }

    #[test]
    fn pruning_is_safe_every_retained_max_survives() {
        let trace = small_trace();
        let result = run(&PadeConfig::standard(), &trace);
        for (row, retained) in result.retained.iter().enumerate() {
            assert!(!retained.is_empty(), "row {row} must retain something");
            let logits = trace.exact_logits(row);
            let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let best_retained =
                retained.iter().map(|&(t, _)| logits[t]).fold(f32::NEG_INFINITY, f32::max);
            assert!(
                (best_retained - max).abs() < 1e-3,
                "row {row}: the argmax key must be retained ({best_retained} vs {max})"
            );
        }
    }

    #[test]
    fn pruned_tokens_sit_below_guard_margin() {
        let trace = small_trace();
        let config = PadeConfig::standard();
        let result = run(&config, &trace);
        for (row, retained) in result.retained.iter().enumerate() {
            let logits = trace.exact_logits(row);
            let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let kept: Vec<usize> = retained.iter().map(|&(t, _)| t).collect();
            for (j, &logit) in logits.iter().enumerate() {
                if !kept.contains(&j) {
                    assert!(
                        logit <= max - config.guard_margin() + 0.1,
                        "row {row}: pruned token {j} at {logit} vs max {max}"
                    );
                }
            }
        }
    }

    #[test]
    fn disabling_bui_gf_retains_everything() {
        let trace = small_trace();
        let config = PadeConfig { enable_bui_gf: false, ..PadeConfig::standard() };
        let result = run(&config, &trace);
        for retained in &result.retained {
            assert_eq!(retained.len(), trace.keys().rows());
        }
        // Dense bit-serial fetches every unique plane exactly once.
        assert_eq!(result.planes_fetched, result.planes_dense);
    }

    #[test]
    fn pruning_reduces_plane_fetches() {
        // Needs a sequence long enough for the guard threshold to mature
        // past the first OOE wave (burst groups stay alive while any member
        // key is undecided, so short sequences barely save fetches).
        let trace = AttentionTrace::generate(&pade_workload::trace::TraceConfig {
            seq_len: 1024,
            n_queries: 4,
            ..pade_workload::trace::TraceConfig::small_demo()
        });
        let sparse = run(&PadeConfig::standard(), &trace);
        let dense = run(&PadeConfig { enable_bui_gf: false, ..PadeConfig::standard() }, &trace);
        assert!(
            (sparse.planes_fetched as f64) < 0.85 * dense.planes_fetched as f64,
            "early termination should cut plane fetches: {} vs {}",
            sparse.planes_fetched,
            dense.planes_fetched
        );
        assert!(sparse.traffic.dram_read_bytes < dense.traffic.dram_read_bytes);
        // Compute shrinks much harder than fetches (groups amortize).
        assert!(
            (sparse.ops.bit_serial_acc as f64) < 0.75 * dense.ops.bit_serial_acc as f64,
            "compute: {} vs {}",
            sparse.ops.bit_serial_acc,
            dense.ops.bit_serial_acc
        );
    }

    #[test]
    fn ooe_outperforms_in_order() {
        let trace = small_trace();
        let ooe = run(&PadeConfig::standard(), &trace);
        let in_order = run(&PadeConfig { enable_ooe: false, ..PadeConfig::standard() }, &trace);
        assert!(
            ooe.cycles < in_order.cycles,
            "OOE {} should beat in-order {}",
            ooe.cycles,
            in_order.cycles
        );
    }

    #[test]
    fn bs_improves_ops_and_plane_time() {
        let trace = small_trace();
        let with_bs = run(&PadeConfig::standard(), &trace);
        let without = run(&PadeConfig { enable_bs: false, ..PadeConfig::standard() }, &trace);
        // BS accumulates the rarer bit value: never more gated adds, and
        // never more total plane-absorption time (busy + intra stalls).
        assert!(with_bs.ops.bit_serial_acc <= without.ops.bit_serial_acc);
        let time_with: u64 =
            with_bs.lane_utils.iter().map(|u| u.busy_cycles() + u.intra_stalls()).sum();
        let time_without: u64 =
            without.lane_utils.iter().map(|u| u.busy_cycles() + u.intra_stalls()).sum();
        assert!(
            time_with <= time_without,
            "BS should not lengthen plane time: {time_with} vs {time_without}"
        );
    }

    #[test]
    fn interleaved_layout_beats_linear_layout() {
        let trace = small_trace();
        let with_dl = run(&PadeConfig::standard(), &trace);
        let without_dl = run(
            &PadeConfig { layout: KeyLayout::BitPlaneLinear, ..PadeConfig::standard() },
            &trace,
        );
        // The co-designed layout coalesces plane fetches into shared bursts
        // and spreads planes across banks: fewer fetches, faster finish.
        assert!(with_dl.planes_fetched < without_dl.planes_fetched);
        assert!(with_dl.cycles < without_dl.cycles);
        assert!(
            with_dl.traffic.dram_read_bytes < without_dl.traffic.dram_read_bytes,
            "{} vs {}",
            with_dl.traffic.dram_read_bytes,
            without_dl.traffic.dram_read_bytes
        );
    }

    #[test]
    fn shared_plane_cache_deduplicates_fetches_across_rows() {
        let trace = small_trace();
        let config = PadeConfig { enable_bui_gf: false, ..PadeConfig::standard() };
        let result = run(&config, &trace);
        // 4 query rows × 256 keys × 8 planes of compute, but DRAM only sees
        // one burst per (coalescing group, plane): 256 tokens / (16 channels
        // × 4 tokens-per-burst) = 4 groups per channel → 64 × 8 = 512.
        assert_eq!(result.planes_fetched, 512);
        let compute_planes = result.ops.shift_add;
        assert_eq!(compute_planes, 4 * 256 * 8);
    }

    #[test]
    fn optimized_engine_is_bit_identical_to_reference() {
        // Every config axis that touches the restructured code paths:
        // BS on/off (absorb_stats), layouts (flat cache indexing), OOE.
        let trace = small_trace();
        let configs = [
            PadeConfig::standard(),
            PadeConfig { enable_bs: false, ..PadeConfig::standard() },
            PadeConfig { enable_ooe: false, ..PadeConfig::standard() },
            PadeConfig { enable_bui_gf: false, ..PadeConfig::standard() },
            PadeConfig { layout: KeyLayout::BitPlaneLinear, ..PadeConfig::standard() },
            PadeConfig { layout: KeyLayout::ValueRowMajor, ..PadeConfig::standard() },
            PadeConfig { scoreboard_entries: 4, ..PadeConfig::standard() },
        ];
        for config in configs {
            let keys = BitPlaneMatrix::from_rows(
                trace.keys().as_slice(),
                trace.keys().cols(),
                config.bits,
            )
            .unwrap();
            let queries: Vec<&[i8]> =
                (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
            let fast = run_qk_block(&config, &queries, &keys, trace.logit_scale());
            let reference = run_qk_block_reference(&config, &queries, &keys, trace.logit_scale());
            assert_eq!(fast, reference, "layout {:?} bs {}", config.layout, config.enable_bs);
        }
    }

    #[test]
    fn single_row_block_matches_reference() {
        let trace = small_trace();
        let config = PadeConfig::standard();
        let keys =
            BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), config.bits)
                .unwrap();
        let row: Vec<&[i8]> = vec![trace.queries().row(0)];
        let fast = run_qk_block(&config, &row, &keys, trace.logit_scale());
        let reference = run_qk_block_reference(&config, &row, &keys, trace.logit_scale());
        assert_eq!(fast, reference);
    }

    #[test]
    fn batched_blocks_partition_the_rows() {
        let trace = AttentionTrace::generate(&pade_workload::trace::TraceConfig {
            n_queries: 20, // 3 blocks of 8, 8, 4 under the standard config
            ..pade_workload::trace::TraceConfig::small_demo()
        });
        let config = PadeConfig::standard();
        let keys =
            BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), config.bits)
                .unwrap();
        let queries: Vec<&[i8]> =
            (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
        let blocks = run_qk_blocks(&config, &queries, &keys, trace.logit_scale());
        assert_eq!(blocks.len(), 3);
        let rows: usize = blocks.iter().map(|b| b.retained.len()).sum();
        assert_eq!(rows, 20);
        // Each block is exactly the standalone block run.
        for (i, chunk) in queries.chunks(config.pe_rows).enumerate() {
            let solo = run_qk_block(&config, chunk, &keys, trace.logit_scale());
            assert_eq!(blocks[i], solo, "block {i}");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_blocks_are_bit_identical_to_sequential() {
        let trace = AttentionTrace::generate(&pade_workload::trace::TraceConfig {
            n_queries: 20,
            seq_len: 512,
            ..pade_workload::trace::TraceConfig::small_demo()
        });
        let config = PadeConfig::standard();
        let keys =
            BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), config.bits)
                .unwrap();
        let queries: Vec<&[i8]> =
            (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
        let seq = run_qk_blocks(&config, &queries, &keys, trace.logit_scale());
        let par = run_qk_blocks_par(&config, &queries, &keys, trace.logit_scale());
        assert_eq!(seq, par);
    }

    #[test]
    fn shared_plane_entries_match_borrowed_entries() {
        let trace = small_trace();
        let config = PadeConfig::standard();
        let keys: SharedKeyPlanes = Arc::new(
            BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), config.bits)
                .unwrap(),
        );
        let queries: Vec<&[i8]> =
            (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
        let scale = trace.logit_scale();
        assert_eq!(
            run_qk_block_shared(&config, &queries, &keys, scale),
            run_qk_block(&config, &queries, &keys, scale)
        );
        assert_eq!(
            run_qk_blocks_shared(&config, &queries, &keys, scale),
            run_qk_blocks(&config, &queries, &keys, scale)
        );
        // The Arc is genuinely shared, not cloned per call.
        assert_eq!(Arc::strong_count(&keys), 1);
    }

    #[test]
    fn mixed_key_batch_is_bit_identical_to_solo_blocks() {
        // Two requests with different key tensors batched together must
        // each produce exactly the result of running alone — through the
        // optimized engine AND the seed oracle.
        let config = PadeConfig::standard();
        let traces: Vec<AttentionTrace> = [3u64, 4]
            .iter()
            .map(|&seed| {
                AttentionTrace::generate(&TraceConfig {
                    seed,
                    ..pade_workload::trace::TraceConfig::small_demo()
                })
            })
            .collect();
        let keys: Vec<SharedKeyPlanes> = traces
            .iter()
            .map(|t| {
                Arc::new(
                    BitPlaneMatrix::from_rows(t.keys().as_slice(), t.keys().cols(), config.bits)
                        .unwrap(),
                )
            })
            .collect();
        let jobs: Vec<QkBatchJob> = traces
            .iter()
            .zip(&keys)
            .map(|(t, k)| QkBatchJob {
                queries: (0..t.queries().rows()).map(|i| t.queries().row(i)).collect(),
                keys: Arc::clone(k).into(),
                logit_scale: t.logit_scale(),
            })
            .collect();
        let batch = run_qk_batch(&config, &jobs);
        assert_eq!(batch.len(), 2);
        for (i, job) in jobs.iter().enumerate() {
            let solo = run_qk_block(&config, &job.queries, &keys[i], job.logit_scale);
            assert_eq!(batch[i], solo, "job {i} diverged from its solo run");
            let oracle = run_qk_block_reference(&config, &job.queries, &keys[i], job.logit_scale);
            assert_eq!(batch[i], oracle, "job {i} diverged from the seed oracle");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let config = PadeConfig::standard();
        let traces: Vec<AttentionTrace> = (0..4u64)
            .map(|seed| {
                AttentionTrace::generate(&TraceConfig {
                    seed,
                    ..pade_workload::trace::TraceConfig::small_demo()
                })
            })
            .collect();
        let jobs: Vec<QkBatchJob> = traces
            .iter()
            .map(|t| QkBatchJob {
                queries: (0..t.queries().rows()).map(|i| t.queries().row(i)).collect(),
                keys: BitPlaneMatrix::from_rows(t.keys().as_slice(), t.keys().cols(), config.bits)
                    .unwrap()
                    .into(),
                logit_scale: t.logit_scale(),
            })
            .collect();
        assert_eq!(run_qk_batch(&config, &jobs), run_qk_batch_par(&config, &jobs));
    }

    /// A fused "token step": H heads sharing one set of query rows, each
    /// head with its own key tensor (mixing whole tensors and growable
    /// cache snapshots so both `KeySource` variants flow through the
    /// fused path).
    fn fused_fixture(n_heads: usize, n_queries: usize) -> (AttentionTrace, Vec<KeySource>, f32) {
        let trace =
            AttentionTrace::generate(&TraceConfig { n_queries, ..TraceConfig::small_demo() });
        let config = PadeConfig::standard();
        let dims = trace.keys().cols();
        let sources: Vec<KeySource> = (0..n_heads)
            .map(|h| {
                // Per-head keys: rotate the key rows so heads differ.
                let mut data = trace.keys().as_slice().to_vec();
                data.rotate_left(h * dims);
                if h % 2 == 0 {
                    BitPlaneMatrix::from_rows(&data, dims, config.bits).unwrap().into()
                } else {
                    let mut cache =
                        pade_quant::GrowableKeyCache::new(dims, config.bits, 48).unwrap();
                    for row in data.chunks(dims) {
                        cache.append_token(row).unwrap();
                    }
                    cache.snapshot().into()
                }
            })
            .collect();
        (trace, sources, 0.01)
    }

    #[test]
    fn fused_dispatch_is_byte_identical_to_per_head_loop() {
        let config = PadeConfig::standard();
        // 12 query rows → two engine blocks per head under pe_rows = 8.
        let (trace, sources, scale) = fused_fixture(3, 12);
        let queries: Vec<&[i8]> =
            (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
        let job = QkFusedJob {
            heads: sources
                .iter()
                .map(|keys| QkBatchJob {
                    queries: queries.clone(),
                    keys: keys.clone(),
                    logit_scale: scale,
                })
                .collect(),
        };
        let fused = run_qk_fused(&config, &job);
        assert_eq!(fused.len(), sources.len());
        for (h, keys) in sources.iter().enumerate() {
            let solo = run_qk_blocks_on(&config, &queries, keys, scale);
            assert_eq!(fused[h], solo, "head {h} diverged from its per-head loop");
        }
        #[cfg(feature = "parallel")]
        assert_eq!(run_qk_fused_par(&config, &job), fused);
    }

    #[test]
    fn fused_single_head_decode_step_matches_solo_block() {
        // The decode shape: one query row, several heads, one block each.
        let config = PadeConfig::standard();
        let (trace, sources, scale) = fused_fixture(4, 1);
        let row: Vec<&[i8]> = vec![trace.queries().row(0)];
        let job = QkFusedJob {
            heads: sources
                .iter()
                .map(|keys| QkBatchJob {
                    queries: row.clone(),
                    keys: keys.clone(),
                    logit_scale: scale,
                })
                .collect(),
        };
        let fused = run_qk_fused(&config, &job);
        for (h, keys) in sources.iter().enumerate() {
            assert_eq!(fused[h].len(), 1);
            let solo = run_qk_block_on(&config, &row, keys, scale);
            assert_eq!(fused[h][0], solo, "head {h}");
            let oracle = match keys {
                KeySource::Planes(p) => run_qk_block_reference(&config, &row, p, scale),
                KeySource::Cache(_) => solo.clone(),
            };
            assert_eq!(fused[h][0], oracle, "head {h} vs seed oracle");
        }
        #[cfg(feature = "parallel")]
        assert_eq!(run_qk_fused_par(&config, &job), fused);
    }

    #[test]
    fn cache_snapshot_runs_bit_identical_to_from_scratch() {
        // Grow a cache token by token (the decode path), snapshot it, and
        // run the engine over the snapshot: outputs must be byte-identical
        // to a from-scratch decomposition — and to the seed oracle.
        let trace = small_trace();
        let config = PadeConfig::standard();
        let dims = trace.keys().cols();
        let mut cache = pade_quant::GrowableKeyCache::new(dims, config.bits, 48).unwrap();
        for j in 0..trace.keys().rows() {
            cache.append_token(trace.keys().row(j)).unwrap();
        }
        let snap = cache.snapshot();
        let scratch =
            BitPlaneMatrix::from_rows(trace.keys().as_slice(), dims, config.bits).unwrap();
        let queries: Vec<&[i8]> =
            (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
        let scale = trace.logit_scale();
        let cached = run_qk_block_cached(&config, &queries, &snap, scale);
        assert_eq!(cached, run_qk_block(&config, &queries, &scratch, scale));
        assert_eq!(cached, run_qk_block_reference(&config, &queries, &scratch, scale));
        assert_eq!(
            run_qk_blocks_cached(&config, &queries, &snap, scale),
            run_qk_blocks(&config, &queries, &scratch, scale)
        );
        // A KeySource wrapping the snapshot reads the same planes.
        let source = KeySource::from(snap.clone());
        assert_eq!(run_qk_block_on(&config, &queries, &source, scale), cached);
        #[cfg(feature = "parallel")]
        assert_eq!(
            run_qk_blocks_cached_par(&config, &queries, &snap, scale),
            run_qk_blocks(&config, &queries, &scratch, scale)
        );
    }

    #[test]
    fn utilization_accounts_for_full_horizon() {
        let trace = small_trace();
        let result = run(&PadeConfig::standard(), &trace);
        for u in &result.lane_utils {
            assert_eq!(u.total(), result.cycles.0, "every lane accounts every cycle");
        }
    }
}
