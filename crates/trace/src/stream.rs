//! Bounded-memory on-disk trace streaming: the [`StreamSink`] appends
//! events to a `.padetrace` binary file during the run, and
//! [`read_stream`] reconstructs a [`TraceSnapshot`] that is
//! fingerprint-identical to what an in-memory [`Recorder`](crate::Recorder)
//! would have captured on the same run.
//!
//! # Format
//!
//! The file opens with an 8-byte magic (`PADETRC` + version byte) and a
//! little-endian `u32` frame size, then consists of fixed-size frames:
//!
//! ```text
//! [4B "PTFR"][u32 payload_len][u64 FNV-1a(payload)][payload][zero pad]
//! ```
//!
//! Frames are written whole, so a torn tail (crash mid-write) is
//! detectable: the strict reader rejects it, the lossy reader returns
//! every intact prior frame. Payload records never span frames.
//!
//! Records intern names and track ids into per-file tables (`NameDef` /
//! `TrackDef` records, emitted before first use) and store event clocks
//! as per-track varint deltas (`clock.wrapping_sub(last)`, reconstructed
//! with `wrapping_add`, so even non-monotone inputs round-trip exactly).
//! Resident memory while writing is one frame buffer plus the intern
//! tables and per-track clock cursors — O(frame + distinct tracks), never
//! O(events).

use crate::sink::{TraceSink, TraceSnapshot, TrackEvents};
use crate::TraceEvent;
use pade_sim::Cycle;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Mutex;

/// File magic: `PADETRC` + format version byte.
pub const FILE_MAGIC: [u8; 8] = *b"PADETRC\x01";
/// Per-frame magic.
const FRAME_MAGIC: [u8; 4] = *b"PTFR";
/// Bytes of frame header before the payload (magic + len + checksum).
const FRAME_HEADER: usize = 4 + 4 + 8;
/// Default frame size: large enough that framing overhead is noise.
pub const DEFAULT_FRAME_SIZE: usize = 64 * 1024;
/// Smallest accepted frame size — every record our emitters produce
/// (longest stage name + worst-case varints) fits a 128-byte payload.
pub const MIN_FRAME_SIZE: usize = FRAME_HEADER + 128;

const TAG_NAME_DEF: u8 = 0x01;
const TAG_TRACK_DEF: u8 = 0x02;
const TAG_BEGIN: u8 = 0x10;
const TAG_END: u8 = 0x11;
const TAG_INSTANT: u8 = 0x12;
const TAG_COUNT: u8 = 0x13;
const TAG_GAUGE: u8 = 0x14;
const TAG_LINK: u8 = 0x15;

fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or("varint runs off the record payload")?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint longer than 64 bits".to_string());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Leaked-string intern pool so reconstructed events can carry the
/// `&'static str` names [`TraceEvent`] requires. Stage-name sets are
/// small and fixed per build, so the leak is bounded.
fn intern(name: &str) -> &'static str {
    static POOL: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut pool = POOL.lock().expect("intern pool poisoned");
    if let Some(&s) = pool.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    pool.insert(name.to_owned(), leaked);
    leaked
}

struct StreamState {
    out: Box<dyn Write + Send>,
    /// Payload bytes of the frame under construction.
    frame: Vec<u8>,
    /// Payload capacity per frame (`frame_size - FRAME_HEADER`).
    capacity: usize,
    frame_size: usize,
    names: BTreeMap<&'static str, u64>,
    tracks: BTreeMap<u64, u64>,
    /// Last emitted clock per track index, for delta encoding.
    last_clock: BTreeMap<u64, u64>,
    /// First I/O or encoding error, surfaced by [`StreamSink::finish`].
    error: Option<String>,
    peak_buffered: usize,
    frames_written: u64,
    finished: bool,
}

impl StreamState {
    fn flush_frame(&mut self) {
        if self.frame.is_empty() || self.error.is_some() {
            return;
        }
        let mut header = [0u8; FRAME_HEADER];
        header[..4].copy_from_slice(&FRAME_MAGIC);
        header[4..8].copy_from_slice(&(self.frame.len() as u32).to_le_bytes());
        header[8..16].copy_from_slice(&fnv1a(&self.frame).to_le_bytes());
        let pad = self.capacity - self.frame.len();
        let res =
            self.out.write_all(&header).and_then(|()| self.out.write_all(&self.frame)).and_then(
                |()| {
                    // Zero padding keeps frames fixed-size so readers can
                    // seek by frame index and torn tails are unambiguous.
                    self.out.write_all(&vec![0u8; pad])
                },
            );
        if let Err(e) = res {
            self.error = Some(format!("writing frame {}: {e}", self.frames_written));
        }
        self.frames_written += 1;
        self.frame.clear();
    }

    /// Appends one encoded record, flushing the current frame first when
    /// the record would not fit.
    fn push_record(&mut self, record: &[u8]) {
        if record.len() > self.capacity {
            self.error = Some(format!(
                "record of {} bytes exceeds the frame payload capacity of {} — raise the \
                 frame size",
                record.len(),
                self.capacity
            ));
            return;
        }
        if self.frame.len() + record.len() > self.capacity {
            self.flush_frame();
        }
        self.frame.extend_from_slice(record);
        self.peak_buffered = self.peak_buffered.max(self.frame.len());
    }

    fn name_index(&mut self, name: &'static str, scratch: &mut Vec<u8>) -> u64 {
        if let Some(&idx) = self.names.get(name) {
            return idx;
        }
        let idx = self.names.len() as u64;
        self.names.insert(name, idx);
        scratch.clear();
        scratch.push(TAG_NAME_DEF);
        put_varint(scratch, idx);
        put_varint(scratch, name.len() as u64);
        scratch.extend_from_slice(name.as_bytes());
        let record = std::mem::take(scratch);
        self.push_record(&record);
        *scratch = record;
        idx
    }

    fn track_index(&mut self, track: u64, scratch: &mut Vec<u8>) -> u64 {
        if let Some(&idx) = self.tracks.get(&track) {
            return idx;
        }
        let idx = self.tracks.len() as u64;
        self.tracks.insert(track, idx);
        self.last_clock.insert(idx, 0);
        scratch.clear();
        scratch.push(TAG_TRACK_DEF);
        put_varint(scratch, idx);
        put_varint(scratch, track);
        let record = std::mem::take(scratch);
        self.push_record(&record);
        *scratch = record;
        idx
    }

    fn encode_event(&mut self, track_idx: u64, event: &TraceEvent, scratch: &mut Vec<u8>) {
        let last = self.last_clock.get(&track_idx).copied().unwrap_or(0);
        let clock = event.clock().0;
        let delta = clock.wrapping_sub(last);
        self.last_clock.insert(track_idx, clock);
        // Interning may itself emit a NameDef record, so resolve names
        // before the event record starts.
        let name_idx = match *event {
            TraceEvent::Begin { name, .. }
            | TraceEvent::Instant { name, .. }
            | TraceEvent::Count { name, .. }
            | TraceEvent::Gauge { name, .. }
            | TraceEvent::Link { name, .. } => Some(self.name_index(name, scratch)),
            TraceEvent::End { .. } => None,
        };
        scratch.clear();
        match *event {
            TraceEvent::Begin { .. } => {
                scratch.push(TAG_BEGIN);
                put_varint(scratch, track_idx);
                put_varint(scratch, name_idx.expect("begin has a name"));
                put_varint(scratch, delta);
            }
            TraceEvent::End { wall_nanos, .. } => {
                scratch.push(TAG_END);
                put_varint(scratch, track_idx);
                put_varint(scratch, delta);
                put_varint(scratch, wall_nanos);
            }
            TraceEvent::Instant { .. } => {
                scratch.push(TAG_INSTANT);
                put_varint(scratch, track_idx);
                put_varint(scratch, name_idx.expect("instant has a name"));
                put_varint(scratch, delta);
            }
            TraceEvent::Count { delta: count_delta, .. } => {
                scratch.push(TAG_COUNT);
                put_varint(scratch, track_idx);
                put_varint(scratch, name_idx.expect("count has a name"));
                put_varint(scratch, delta);
                put_varint(scratch, count_delta);
            }
            TraceEvent::Gauge { value, .. } => {
                scratch.push(TAG_GAUGE);
                put_varint(scratch, track_idx);
                put_varint(scratch, name_idx.expect("gauge has a name"));
                put_varint(scratch, delta);
                scratch.extend_from_slice(&value.to_bits().to_le_bytes());
            }
            TraceEvent::Link { request, info, .. } => {
                scratch.push(TAG_LINK);
                put_varint(scratch, track_idx);
                put_varint(scratch, name_idx.expect("link has a name"));
                put_varint(scratch, delta);
                put_varint(scratch, request);
                put_varint(scratch, info);
            }
        }
        let record = std::mem::take(scratch);
        self.push_record(&record);
        *scratch = record;
    }
}

/// Append-only on-disk [`TraceSink`]: events stream to a `.padetrace`
/// file in fixed-size frames as the run progresses, so resident memory
/// stays bounded by the frame size no matter how long the run is.
///
/// Call [`finish`](StreamSink::finish) when the run ends to flush the
/// final partial frame and surface any deferred I/O error; dropping the
/// sink flushes best-effort.
pub struct StreamSink {
    state: Mutex<StreamState>,
}

impl std::fmt::Debug for StreamSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StreamSink")
    }
}

impl StreamSink {
    /// Creates (truncating) `path` with the default frame size.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and header-write errors.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::with_frame_size(path, DEFAULT_FRAME_SIZE)
    }

    /// Creates (truncating) `path` with an explicit frame size — small
    /// frames force multi-frame output in tests, large frames amortize
    /// syscalls in soaks.
    ///
    /// # Errors
    ///
    /// Rejects frame sizes under [`MIN_FRAME_SIZE`]; propagates
    /// file-creation and header-write errors.
    pub fn with_frame_size(path: impl AsRef<Path>, frame_size: usize) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Self::from_writer(Box::new(io::BufWriter::new(file)), frame_size)
    }

    /// Streams into an arbitrary writer (in-memory buffers in tests).
    ///
    /// # Errors
    ///
    /// Rejects frame sizes under [`MIN_FRAME_SIZE`]; propagates
    /// header-write errors.
    pub fn from_writer(mut out: Box<dyn Write + Send>, frame_size: usize) -> io::Result<Self> {
        if frame_size < MIN_FRAME_SIZE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame size {frame_size} is below the minimum {MIN_FRAME_SIZE}"),
            ));
        }
        out.write_all(&FILE_MAGIC)?;
        out.write_all(&(frame_size as u32).to_le_bytes())?;
        Ok(Self {
            state: Mutex::new(StreamState {
                out,
                frame: Vec::with_capacity(frame_size - FRAME_HEADER),
                capacity: frame_size - FRAME_HEADER,
                frame_size,
                names: BTreeMap::new(),
                tracks: BTreeMap::new(),
                last_clock: BTreeMap::new(),
                error: None,
                peak_buffered: 0,
                frames_written: 0,
                finished: false,
            }),
        })
    }

    /// Flushes the final partial frame and the underlying writer, and
    /// returns the first error deferred from any earlier submission.
    /// Idempotent.
    ///
    /// # Errors
    ///
    /// Surfaces deferred encoding/I/O errors and final-flush failures.
    ///
    /// # Panics
    ///
    /// Panics if a submitting thread panicked while holding the lock.
    pub fn finish(&self) -> io::Result<()> {
        let mut state = self.state.lock().expect("stream sink lock poisoned");
        if !state.finished {
            state.flush_frame();
            state.finished = true;
            if state.error.is_none() {
                if let Err(e) = state.out.flush() {
                    state.error = Some(format!("final flush: {e}"));
                }
            }
        }
        match &state.error {
            Some(e) => Err(io::Error::other(e.clone())),
            None => Ok(()),
        }
    }

    /// High-water mark of the frame buffer, in bytes — the bounded-memory
    /// claim the tests assert (`peak ≤ frame payload capacity`).
    ///
    /// # Panics
    ///
    /// Panics if a submitting thread panicked while holding the lock.
    #[must_use]
    pub fn peak_buffered_bytes(&self) -> usize {
        self.state.lock().expect("stream sink lock poisoned").peak_buffered
    }

    /// Frames flushed to the writer so far (excluding any partial frame).
    ///
    /// # Panics
    ///
    /// Panics if a submitting thread panicked while holding the lock.
    #[must_use]
    pub fn frames_written(&self) -> u64 {
        self.state.lock().expect("stream sink lock poisoned").frames_written
    }

    /// The configured frame size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if a submitting thread panicked while holding the lock.
    #[must_use]
    pub fn frame_size(&self) -> usize {
        self.state.lock().expect("stream sink lock poisoned").frame_size
    }
}

impl TraceSink for StreamSink {
    fn submit(&self, track: u64, events: &[TraceEvent]) {
        let mut state = self.state.lock().expect("stream sink lock poisoned");
        if state.finished || state.error.is_some() {
            return;
        }
        let mut scratch = Vec::new();
        let track_idx = state.track_index(track, &mut scratch);
        for event in events {
            state.encode_event(track_idx, event, &mut scratch);
        }
    }
}

impl Drop for StreamSink {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

/// Outcome of a lossy stream read: every intact frame's events plus what
/// was skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyRead {
    /// Events reconstructed from intact frames.
    pub snapshot: TraceSnapshot,
    /// Intact frames decoded.
    pub frames: u64,
    /// `true` when a torn/corrupt tail was skipped.
    pub torn: bool,
}

/// `true` when `path` starts with the `.padetrace` file magic.
#[must_use]
pub fn is_stream_file(path: impl AsRef<Path>) -> bool {
    let mut magic = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|()| magic == FILE_MAGIC)
        .unwrap_or(false)
}

/// Strict read: reconstructs the full snapshot, rejecting torn tails,
/// checksum mismatches and malformed records.
///
/// # Errors
///
/// I/O errors, a bad header, or any malformed/torn frame.
pub fn read_stream(path: impl AsRef<Path>) -> io::Result<TraceSnapshot> {
    let bytes = std::fs::read(path)?;
    let lossy = decode(&bytes).map_err(io::Error::other)?;
    if lossy.torn {
        return Err(io::Error::other(
            "stream has a torn or corrupt final frame (use the lossy reader to salvage \
             prior frames)",
        ));
    }
    Ok(lossy.snapshot)
}

/// Lossy read: returns every event from intact frames, flagging (not
/// failing on) a torn/corrupt tail — the crash-recovery path.
///
/// # Errors
///
/// I/O errors and malformed file headers only; frame damage is reported
/// via [`LossyRead::torn`].
pub fn read_stream_lossy(path: impl AsRef<Path>) -> io::Result<LossyRead> {
    let bytes = std::fs::read(path)?;
    decode(&bytes).map_err(io::Error::other)
}

fn decode(bytes: &[u8]) -> Result<LossyRead, String> {
    if bytes.len() < FILE_MAGIC.len() + 4 {
        return Err("file too short for a .padetrace header".to_string());
    }
    if bytes[..8] != FILE_MAGIC {
        return Err("bad file magic: not a .padetrace stream".to_string());
    }
    let frame_size = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    if frame_size < MIN_FRAME_SIZE {
        return Err(format!("header frame size {frame_size} is below the minimum"));
    }
    let capacity = frame_size - FRAME_HEADER;
    let mut names: Vec<&'static str> = Vec::new();
    let mut track_ids: Vec<u64> = Vec::new();
    let mut last_clock: Vec<u64> = Vec::new();
    let mut tracks: BTreeMap<u64, Vec<TraceEvent>> = BTreeMap::new();
    let mut offset = 12usize;
    let mut frames = 0u64;
    let mut torn = false;
    while offset < bytes.len() {
        if offset + frame_size > bytes.len() {
            torn = true;
            break;
        }
        let frame = &bytes[offset..offset + frame_size];
        offset += frame_size;
        if frame[..4] != FRAME_MAGIC {
            torn = true;
            break;
        }
        let payload_len = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes")) as usize;
        if payload_len > capacity {
            torn = true;
            break;
        }
        let checksum = u64::from_le_bytes(frame[8..16].try_into().expect("8 bytes"));
        let payload = &frame[FRAME_HEADER..FRAME_HEADER + payload_len];
        if fnv1a(payload) != checksum {
            torn = true;
            break;
        }
        decode_frame(payload, &mut names, &mut track_ids, &mut last_clock, &mut tracks)?;
        frames += 1;
    }
    Ok(LossyRead {
        snapshot: TraceSnapshot {
            tracks: tracks
                .into_iter()
                .map(|(track, events)| TrackEvents { track, events })
                .collect(),
        },
        frames,
        torn,
    })
}

fn decode_frame(
    payload: &[u8],
    names: &mut Vec<&'static str>,
    track_ids: &mut Vec<u64>,
    last_clock: &mut Vec<u64>,
    tracks: &mut BTreeMap<u64, Vec<TraceEvent>>,
) -> Result<(), String> {
    let mut pos = 0usize;
    while pos < payload.len() {
        let tag = payload[pos];
        pos += 1;
        match tag {
            TAG_NAME_DEF => {
                let idx = get_varint(payload, &mut pos)?;
                let len = get_varint(payload, &mut pos)? as usize;
                let end = pos.checked_add(len).filter(|&e| e <= payload.len());
                let end = end.ok_or("name def runs off the frame")?;
                let name = std::str::from_utf8(&payload[pos..end])
                    .map_err(|_| "name def is not UTF-8".to_string())?;
                pos = end;
                if idx as usize != names.len() {
                    return Err(format!("name def index {idx} out of order"));
                }
                names.push(intern(name));
            }
            TAG_TRACK_DEF => {
                let idx = get_varint(payload, &mut pos)?;
                let track = get_varint(payload, &mut pos)?;
                if idx as usize != track_ids.len() {
                    return Err(format!("track def index {idx} out of order"));
                }
                track_ids.push(track);
                last_clock.push(0);
            }
            TAG_BEGIN | TAG_END | TAG_INSTANT | TAG_COUNT | TAG_GAUGE | TAG_LINK => {
                let track_idx = get_varint(payload, &mut pos)? as usize;
                let track =
                    *track_ids.get(track_idx).ok_or("event references an undefined track")?;
                let name = if tag == TAG_END {
                    ""
                } else {
                    let name_idx = get_varint(payload, &mut pos)? as usize;
                    *names.get(name_idx).ok_or("event references an undefined name")?
                };
                let delta = get_varint(payload, &mut pos)?;
                let clock = last_clock[track_idx].wrapping_add(delta);
                last_clock[track_idx] = clock;
                let clock = Cycle(clock);
                let event = match tag {
                    TAG_BEGIN => TraceEvent::Begin { name, clock },
                    TAG_END => {
                        let wall_nanos = get_varint(payload, &mut pos)?;
                        TraceEvent::End { clock, wall_nanos }
                    }
                    TAG_INSTANT => TraceEvent::Instant { name, clock },
                    TAG_COUNT => {
                        let count_delta = get_varint(payload, &mut pos)?;
                        TraceEvent::Count { name, clock, delta: count_delta }
                    }
                    TAG_GAUGE => {
                        let end = pos
                            .checked_add(8)
                            .filter(|&e| e <= payload.len())
                            .ok_or("gauge value runs off the frame")?;
                        let bits =
                            u64::from_le_bytes(payload[pos..end].try_into().expect("8 bytes"));
                        pos = end;
                        TraceEvent::Gauge { name, clock, value: f64::from_bits(bits) }
                    }
                    TAG_LINK => {
                        let request = get_varint(payload, &mut pos)?;
                        let info = get_varint(payload, &mut pos)?;
                        TraceEvent::Link { name, clock, request, info }
                    }
                    _ => unreachable!("tag filtered above"),
                };
                tracks.entry(track).or_default().push(event);
            }
            other => return Err(format!("unknown record tag 0x{other:02x}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    /// A deterministic synthetic event mix exercising every variant.
    fn workload() -> Vec<(u64, Vec<TraceEvent>)> {
        let mut batches = Vec::new();
        for owner in 0..3u32 {
            let track = crate::track::id(crate::track::SERVE, owner, 0);
            let mut events = Vec::new();
            for i in 0..40u64 {
                let base = i * 10;
                events.push(TraceEvent::Begin { name: "serve.prefill", clock: Cycle(base) });
                events.push(TraceEvent::Count {
                    name: "serve.tokens",
                    clock: Cycle(base + 1),
                    delta: i,
                });
                events.push(TraceEvent::Gauge {
                    name: "serve.queue_depth",
                    clock: Cycle(base + 2),
                    value: i as f64 * 0.5,
                });
                events.push(TraceEvent::Link {
                    name: "req.admit",
                    clock: Cycle(base + 3),
                    request: i,
                    info: u64::from(owner),
                });
                events.push(TraceEvent::Instant { name: "serve.retire", clock: Cycle(base + 4) });
                events.push(TraceEvent::End { clock: Cycle(base + 5), wall_nanos: 7 });
            }
            batches.push((track, events));
        }
        batches
    }

    fn run_both(frame_size: usize) -> (TraceSnapshot, TraceSnapshot, usize, u64) {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pade_stream_test_{frame_size}.padetrace"));
        let stream = StreamSink::with_frame_size(&path, frame_size).unwrap();
        let recorder = Recorder::new();
        for (track, events) in workload() {
            // Submit in chunks to mimic real flush interleaving.
            for chunk in events.chunks(7) {
                stream.submit(track, chunk);
                recorder.submit(track, chunk);
            }
        }
        stream.finish().unwrap();
        let peak = stream.peak_buffered_bytes();
        let frames = stream.frames_written();
        let snap = read_stream(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        (snap, recorder.snapshot(), peak, frames)
    }

    #[test]
    fn round_trip_matches_recorder_bit_for_bit() {
        let (streamed, recorded, _, _) = run_both(DEFAULT_FRAME_SIZE);
        assert_eq!(streamed, recorded);
        assert_eq!(streamed.fingerprint(), recorded.fingerprint());
        streamed.check_well_formed().unwrap();
    }

    #[test]
    fn tiny_frames_force_multi_frame_output_and_bound_memory() {
        let (streamed, recorded, peak, frames) = run_both(MIN_FRAME_SIZE);
        assert_eq!(streamed.fingerprint(), recorded.fingerprint());
        assert!(frames > 10, "expected many frames, got {frames}");
        assert!(
            peak <= MIN_FRAME_SIZE,
            "frame buffer peaked at {peak} bytes, above the {MIN_FRAME_SIZE}-byte frame"
        );
    }

    #[test]
    fn torn_final_frame_rejected_strictly_salvaged_lossily() {
        let dir = std::env::temp_dir();
        let path = dir.join("pade_stream_torn.padetrace");
        let stream = StreamSink::with_frame_size(&path, MIN_FRAME_SIZE).unwrap();
        for (track, events) in workload() {
            stream.submit(track, &events);
        }
        stream.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Tear the file mid-way through its final frame.
        let torn_len = full.len() - MIN_FRAME_SIZE / 2;
        std::fs::write(&path, &full[..torn_len]).unwrap();

        assert!(read_stream(&path).is_err(), "strict read must reject a torn tail");
        let lossy = read_stream_lossy(&path).unwrap();
        assert!(lossy.torn);
        assert!(lossy.frames > 0);
        assert!(lossy.snapshot.event_count() > 0);

        // Corrupt a checksum: same story.
        let mut corrupt = full.clone();
        let frame0 = 12 + 8; // first frame's checksum bytes
        corrupt[frame0] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();
        assert!(read_stream(&path).is_err());
        let lossy = read_stream_lossy(&path).unwrap();
        assert!(lossy.torn);
        assert_eq!(lossy.frames, 0);

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn detects_stream_files_by_magic() {
        let dir = std::env::temp_dir();
        let path = dir.join("pade_stream_magic.padetrace");
        let stream = StreamSink::create(&path).unwrap();
        stream.finish().unwrap();
        assert!(is_stream_file(&path));
        std::fs::write(&path, b"{\"traceEvents\":[]}").unwrap();
        assert!(!is_stream_file(&path));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_stream_reads_back_empty() {
        let dir = std::env::temp_dir();
        let path = dir.join("pade_stream_empty.padetrace");
        let stream = StreamSink::create(&path).unwrap();
        stream.finish().unwrap();
        let snap = read_stream(&path).unwrap();
        assert!(snap.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_undersized_frames() {
        let dir = std::env::temp_dir();
        let path = dir.join("pade_stream_small.padetrace");
        assert!(StreamSink::with_frame_size(&path, 16).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_monotone_clocks_round_trip_via_wrapping_deltas() {
        let dir = std::env::temp_dir();
        let path = dir.join("pade_stream_wrap.padetrace");
        let stream = StreamSink::with_frame_size(&path, MIN_FRAME_SIZE).unwrap();
        let recorder = Recorder::new();
        let events = [
            TraceEvent::Instant { name: "a", clock: Cycle(100) },
            TraceEvent::Instant { name: "b", clock: Cycle(3) },
            TraceEvent::Instant { name: "c", clock: Cycle(u64::MAX) },
            TraceEvent::Instant { name: "d", clock: Cycle(0) },
        ];
        stream.submit(1, &events);
        recorder.submit(1, &events);
        stream.finish().unwrap();
        let snap = read_stream(&path).unwrap();
        assert_eq!(snap, recorder.snapshot());
        let _ = std::fs::remove_file(&path);
    }
}
