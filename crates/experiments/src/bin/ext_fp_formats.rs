//! Extension (paper §VI-F) — FP-format queries via exponent alignment.
//!
//! Keys stay INT8 (softmax suppresses their quantization noise); queries
//! arrive in FP16 and are *exponent-aligned* into a fixed-point row with
//! one shared power-of-two scale — a shift-only conversion after which the
//! bit-serial QK-PU runs unmodified. This experiment verifies the two
//! claims that make the extension sound:
//!
//! 1. the alignment's worst-case score perturbation stays far inside the
//!    guard radius, so the BUI pruning guarantee carries over, and
//! 2. the FP path's retention and output fidelity match the mainline INT8
//!    PTQ path.

use pade_core::config::PadeConfig;
use pade_core::multibit::run_multibit_row;
use pade_experiments::report::{banner, pct, Table};
use pade_experiments::runner::Workload;
use pade_linalg::metrics::cosine_similarity;
use pade_quant::fp::align_f32_row;
use pade_quant::DigitPlaneMatrix;
use pade_workload::{model, task};

fn main() {
    banner("Ext. 2", "FP16 queries through exponent alignment (§VI-F)");
    let config = PadeConfig::standard();
    let w = Workload::new(model::llama2_7b(), task::wikitext2(), 1234);
    let trace = &w.trace;
    let dims = trace.keys().cols();
    let q_scale = trace.queries().params().scale();
    let keys = DigitPlaneMatrix::from_rows(trace.keys().as_slice(), dims, 1, 8)
        .expect("key tensor decomposes");

    let mut table = Table::new(vec![
        "query row",
        "align scale",
        "worst dot err (logits)",
        "guard radius",
        "retention overlap",
        "|INT8|",
        "|FP16|",
        "output cosine",
    ]);
    let mut overlap_sum = 0.0;
    let mut fid_sum = 0.0;
    let n_rows = trace.queries().rows();
    for row in 0..n_rows {
        // Mainline path: PTQ INT8 query codes.
        let q_int = trace.queries().row(row);
        let int8 = run_multibit_row(q_int, &keys, config.guard_margin(), trace.logit_scale());

        // FP path: reconstruct the real-valued query, ingest as FP16,
        // exponent-align back to 8-bit fixed point.
        let q_real: Vec<f32> = q_int.iter().map(|&c| f32::from(c) * q_scale).collect();
        let aligned = align_f32_row(&q_real, 8).expect("width 8 is supported");
        let fp16 = run_multibit_row(
            aligned.codes(),
            &keys,
            config.guard_margin(),
            trace.logit_scale() * aligned.scale() / q_scale,
        );

        // Worst-case score perturbation from alignment, in logits.
        let k_l1_max = (0..trace.keys().rows())
            .map(|j| trace.keys().row(j).iter().map(|&v| f64::from(v).abs()).sum::<f64>() as u64)
            .max()
            .unwrap_or(0);
        let worst_err_logits = f64::from(aligned.element_error_bound())
            * k_l1_max as f64
            * f64::from(trace.logit_scale())
            / f64::from(q_scale);

        let int8_ids: Vec<usize> = int8.retained.iter().map(|&(j, _)| j).collect();
        let fp_ids: Vec<usize> = fp16.retained.iter().map(|&(j, _)| j).collect();
        let inter = int8_ids.iter().filter(|j| fp_ids.contains(j)).count();
        let union = int8_ids.len() + fp_ids.len() - inter;
        let overlap = if union == 0 { 1.0 } else { inter as f64 / union as f64 };
        overlap_sum += overlap;

        let out_int8 = trace.subset_output(row, &int8_ids);
        let out_fp = trace.subset_output(row, &fp_ids);
        let fid = f64::from(cosine_similarity(&out_int8, &out_fp));
        fid_sum += fid;

        table.row(vec![
            row.to_string(),
            format!("2^{}", aligned.scale().log2() as i32),
            format!("{worst_err_logits:.3}"),
            format!("{:.1}", config.guard_margin()),
            pct(overlap),
            int8_ids.len().to_string(),
            fp_ids.len().to_string(),
            format!("{fid:.5}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "mean retention overlap {} | mean output cosine {:.5}",
        pct(overlap_sum / n_rows as f64),
        fid_sum / n_rows as f64
    );
    println!(
        "\nshape check: the alignment perturbation is orders of magnitude below\n\
         the guard radius, retention agrees almost exactly with the INT8 path,\n\
         and outputs over the two retained sets are numerically identical —\n\
         FP16 queries ride the integer bit-serial pipeline for free."
    );
}
