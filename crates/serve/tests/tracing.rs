//! Observability invariants of the serving loop:
//!
//! 1. **Telemetry is a pure side channel** — `serve_traced` with a
//!    recorder attached, with a disabled tracer, or compiled without the
//!    `trace` feature produces byte-identical completions and an
//!    identical metrics summary; spot-checked against the solo seed
//!    oracle (`run_qk_block_reference`).
//! 2. **Span streams are well-formed and deterministic** — strictly
//!    nested begin/end pairs with monotone per-track clocks, and the
//!    snapshot fingerprint is identical at any `PADE_THREADS` (tracks
//!    are keyed by logical dispatch index, never worker identity).

use std::sync::Arc;

use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, serve_traced, Completion, ServeConfig, ServeReport};
use pade_serve::{output_bytes, reference_outputs};
use pade_trace::{Recorder, TraceSink, Tracer};
use pade_workload::prompt::{generate_shared_prefix_arrivals, SharedPrefixConfig};
use proptest::prelude::*;

/// A small shared-prefix / multi-turn workload whose requests carry
/// prompt token-id sequences, so the cache and quant layers emit too.
fn prompt_workload(seed: u64) -> SharedPrefixConfig {
    SharedPrefixConfig {
        n_sessions: 3,
        turns_per_session: 2,
        shared_prefix_tokens: 40,
        unique_suffix_tokens: 12,
        turn_suffix_tokens: 12,
        decode_steps: 2,
        prefill_rows: 6,
        mean_interarrival_cycles: 2_000.0,
        turn_gap_cycles: 50_000,
        head_dim: 64,
        seed,
        ..SharedPrefixConfig::small_demo()
    }
}

fn by_id(report: &ServeReport) -> Vec<&Completion> {
    let mut v: Vec<&Completion> = report.completions.iter().collect();
    v.sort_by_key(|c| c.id);
    v
}

fn recording_tracer() -> (Arc<Recorder>, Tracer) {
    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn TraceSink>);
    (recorder, tracer)
}

/// Sweeps explicit worker counts via `PADE_THREADS`. All env twiddling
/// in this binary lives in this one test; the proptest below is
/// thread-count-agnostic (that is the very property this file proves),
/// so concurrent execution never observes a half-set variable.
#[test]
fn traced_serve_is_identical_and_fingerprint_stable_across_worker_counts() {
    let arrivals = generate_shared_prefix_arrivals(&prompt_workload(2026));
    let config = ServeConfig::standard();
    let baseline = serve(&config, &arrivals, ScheduleMode::Batched);
    let baseline_by_id = by_id(&baseline);

    let mut fingerprints = Vec::new();
    for workers in ["1", "2", "4"] {
        std::env::set_var("PADE_THREADS", workers);
        let (recorder, tracer) = recording_tracer();
        let report = serve_traced(&config, &arrivals, ScheduleMode::Batched, &tracer, 0);
        assert_eq!(report.summary, baseline.summary, "workers={workers}");
        for (traced, untraced) in by_id(&report).iter().zip(&baseline_by_id) {
            assert_eq!(traced.id, untraced.id);
            assert!(
                traced.output_bytes() == untraced.output_bytes(),
                "workers={workers}: tracing changed request {} output bytes",
                traced.id
            );
        }
        let snap = recorder.snapshot();
        snap.check_well_formed().unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        fingerprints.push(snap.fingerprint());
        if cfg!(feature = "trace") {
            let stages = snap.stage_names();
            assert!(stages.len() >= 6, "workers={workers}: stages {stages:?}");
            for expect in ["serve.prefill", "serve.decode", "cache.attach", "engine.qk_block"] {
                assert!(stages.contains(expect), "workers={workers}: missing {expect}");
            }
        } else {
            assert_eq!(snap.event_count(), 0);
        }
    }
    std::env::remove_var("PADE_THREADS");
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "snapshot fingerprints varied with worker count: {fingerprints:?}"
    );
}

proptest! {
    /// Telemetry on, off, or compiled out never changes a byte: the
    /// traced run equals the untraced run request for request (and the
    /// first request equals the solo seed oracle).
    #[test]
    fn tracing_never_changes_serve_outputs(seed in any::<u64>()) {
        let arrivals = generate_shared_prefix_arrivals(&prompt_workload(seed));
        let config = ServeConfig::standard();
        let untraced = serve(&config, &arrivals, ScheduleMode::Batched);
        let (recorder, tracer) = recording_tracer();
        let traced = serve_traced(&config, &arrivals, ScheduleMode::Batched, &tracer, 0);
        prop_assert_eq!(untraced.completion_order(), traced.completion_order());
        prop_assert_eq!(untraced.summary, traced.summary);
        for (a, b) in by_id(&untraced).iter().zip(by_id(&traced)) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.output_bytes(), b.output_bytes());
        }
        let first = by_id(&traced)[0];
        let oracle = reference_outputs(&arrivals[first.id], &config.engine);
        prop_assert_eq!(first.output_bytes(), output_bytes(&oracle));
        prop_assert!(recorder.snapshot().check_well_formed().is_ok());
    }
}
