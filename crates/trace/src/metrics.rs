//! Typed metrics registry and the per-stage report built from a snapshot.

use crate::{TraceEvent, TraceSnapshot};
use pade_sim::{Cycle, LatencyStats, LatencySummary};
use std::collections::BTreeMap;

/// A deterministic metrics store: monotonic counters, last-write gauges
/// and latency histograms (reusing [`LatencyStats`] exact-sample merge
/// semantics). Keys are sorted, so iteration — and therefore any report
/// built from a registry — is deterministic.
///
/// # Example
///
/// ```
/// use pade_sim::Cycle;
/// use pade_trace::MetricsRegistry;
///
/// let mut m = MetricsRegistry::new();
/// m.add("engine.popcounts", 3);
/// m.add("engine.popcounts", 2);
/// m.observe("serve.latency", Cycle(40));
/// assert_eq!(m.counter("engine.popcounts"), 5);
/// assert_eq!(m.histogram("serve.latency").unwrap().count, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyStats>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named monotonic counter.
    pub fn add(&mut self, name: impl Into<String>, delta: u64) {
        *self.counters.entry(name.into()).or_insert(0) += delta;
    }

    /// Sets the named gauge (last write wins).
    pub fn set_gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.insert(name.into(), value);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: impl Into<String>, sample: Cycle) {
        self.histograms.entry(name.into()).or_default().record(sample);
    }

    /// Current value of a counter (0 when never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Percentile digest of a histogram, if it has samples.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<LatencySummary> {
        self.histograms.get(name).map(LatencyStats::summary)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms' raw collectors, sorted by name — for callers that
    /// digest or re-pool samples themselves (e.g. the per-tenant SLO
    /// attainment lines of `pade-serve`/`pade-router`).
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyStats)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry in: counters add, gauges keep the maximum,
    /// histograms pool their samples.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(v);
            *g = g.max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// Aggregate of one span stage across a whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageStat {
    /// Stage (span) name.
    pub name: String,
    /// Number of spans.
    pub spans: u64,
    /// Summed logical duration (end − begin) in cycles.
    pub total_cycles: u64,
    /// Summed wall-clock annotations in nanoseconds (0 for untimed spans).
    pub total_wall_nanos: u64,
}

/// Per-stage attribution report: where the cycles went, stage by stage —
/// the record `pade-bench` embeds in `BENCH_7.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    /// Stage aggregates, sorted by name.
    pub stages: Vec<StageStat>,
    /// Counter totals `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl StageBreakdown {
    /// Folds a snapshot's spans and counters into per-stage totals.
    #[must_use]
    pub fn from_snapshot(snapshot: &TraceSnapshot) -> Self {
        let mut stages: BTreeMap<&'static str, StageStat> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
        for t in &snapshot.tracks {
            let mut open: Vec<(&'static str, Cycle)> = Vec::new();
            for e in &t.events {
                match *e {
                    TraceEvent::Begin { name, clock } => open.push((name, clock)),
                    TraceEvent::End { clock, wall_nanos } => {
                        if let Some((name, begin)) = open.pop() {
                            let s = stages.entry(name).or_insert_with(|| StageStat {
                                name: name.to_string(),
                                ..StageStat::default()
                            });
                            s.spans += 1;
                            s.total_cycles += (clock - begin).0;
                            s.total_wall_nanos += wall_nanos;
                        }
                    }
                    TraceEvent::Count { name, delta, .. } => {
                        *counters.entry(name).or_insert(0) += delta;
                    }
                    _ => {}
                }
            }
        }
        Self {
            stages: stages.into_values().collect(),
            counters: counters.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// Looks up one stage by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&StageStat> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Hand-rolled JSON object (the workspace ships no serde), suitable
    /// for embedding in a larger report.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"spans\":{},\"total_cycles\":{},\"total_wall_nanos\":{}}}",
                crate::chrome::escape(&s.name),
                s.spans,
                s.total_cycles,
                s.total_wall_nanos
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", crate::chrome::escape(name), value));
        }
        out.push_str("}}");
        out
    }
}

impl TraceSnapshot {
    /// Folds all [`TraceEvent::Count`] and [`TraceEvent::Gauge`] events
    /// into a registry (gauges keep their maximum observed level).
    #[must_use]
    pub fn registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for t in &self.tracks {
            for e in &t.events {
                match *e {
                    TraceEvent::Count { name, delta, .. } => reg.add(name, delta),
                    TraceEvent::Gauge { name, value, .. } => {
                        let cur = reg.gauge(name).unwrap_or(f64::MIN);
                        reg.set_gauge(name, cur.max(value));
                    }
                    _ => {}
                }
            }
        }
        reg
    }

    /// Per-stage attribution of this snapshot.
    #[must_use]
    pub fn breakdown(&self) -> StageBreakdown {
        StageBreakdown::from_snapshot(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, TraceSink};

    #[test]
    fn registry_merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.add("c", 2);
        a.set_gauge("g", 3.0);
        a.observe("h", Cycle(10));
        let mut b = MetricsRegistry::new();
        b.add("c", 5);
        b.set_gauge("g", 1.0);
        b.observe("h", Cycle(30));
        a.merge(&b);
        assert_eq!(a.counter("c"), 7);
        assert_eq!(a.gauge("g"), Some(3.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, Cycle(30));
    }

    #[test]
    fn breakdown_aggregates_spans_and_counters() {
        let rec = Recorder::new();
        rec.submit(
            1,
            &[
                TraceEvent::Begin { name: "outer", clock: Cycle(0) },
                TraceEvent::Begin { name: "inner", clock: Cycle(2) },
                TraceEvent::Count { name: "n", clock: Cycle(2), delta: 4 },
                TraceEvent::End { clock: Cycle(5), wall_nanos: 100 },
                TraceEvent::End { clock: Cycle(10), wall_nanos: 0 },
            ],
        );
        rec.submit(
            2,
            &[
                TraceEvent::Begin { name: "inner", clock: Cycle(1) },
                TraceEvent::Count { name: "n", clock: Cycle(1), delta: 1 },
                TraceEvent::End { clock: Cycle(2), wall_nanos: 50 },
            ],
        );
        let snap = rec.snapshot();
        let bd = snap.breakdown();
        let inner = bd.get("inner").unwrap();
        assert_eq!(inner.spans, 2);
        assert_eq!(inner.total_cycles, 4);
        assert_eq!(inner.total_wall_nanos, 150);
        assert_eq!(bd.get("outer").unwrap().total_cycles, 10);
        assert_eq!(bd.counters, vec![("n".to_string(), 5)]);
        assert_eq!(snap.registry().counter("n"), 5);
        let json = bd.to_json();
        assert!(json.contains("\"inner\""));
        assert!(json.contains("\"n\":5"));
    }
}
