//! Distributed PADE (paper §VII, future-work direction 1): shard a long
//! context across wafer-scale chips and merge partial attention states
//! over the fabric.
//!
//! ```text
//! cargo run --release --example distributed_wafer
//! ```

use pade::dist::wafer::{DistributedPade, WaferConfig};
use pade::dist::InterconnectConfig;
use pade::workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    let trace = AttentionTrace::generate(&TraceConfig {
        seq_len: 4096,
        head_dim: 64,
        n_queries: 8,
        ..TraceConfig::small_demo()
    });

    println!("Sequence-parallel PADE on S = 4096 (ring fabric, guard synced)");
    println!("chips  compute cyc  comm cyc  comm share  speedup  fidelity");
    println!("--------------------------------------------------------------");
    let base = DistributedPade::new(WaferConfig::standard(1)).run_trace(&trace);
    for chips in [1usize, 2, 4, 8, 16] {
        let cfg = WaferConfig { sync_guard: true, ..WaferConfig::standard(chips) };
        let r = DistributedPade::new(cfg).run_trace(&trace);
        println!(
            "{:<5}  {:<11}  {:<8}  {:<10.1}  {:<7.2}  {:.5}",
            chips,
            r.compute_cycles.0,
            (r.comm_cycles.0 + r.sync_cycles.0),
            r.comm_share() * 100.0,
            base.total_cycles.0 as f64 / r.total_cycles.0 as f64,
            r.fidelity
        );
    }

    let mesh = DistributedPade::new(WaferConfig {
        chips: 16,
        interconnect: InterconnectConfig::wafer_mesh(),
        sync_guard: true,
        ..WaferConfig::standard(16)
    })
    .run_trace(&trace);
    println!(
        "\n16 chips on a 2-D mesh: comm {} cycles (ring pays {} steps, mesh {}),\n\
         merged output fidelity {:.5} — the (m, l, O) merge is associative, so\n\
         the fabric topology changes cost, never the result.",
        mesh.comm_cycles.0,
        InterconnectConfig::wafer_ring().reduce_steps(16),
        InterconnectConfig::wafer_mesh().reduce_steps(16),
        mesh.fidelity
    );
}
