/// Numerically stable softmax of a score slice.
///
/// # Example
///
/// ```
/// let p = pade_linalg::softmax(&[1.0, 2.0, 3.0]);
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// assert!(p[2] > p[1] && p[1] > p[0]);
/// ```
#[must_use]
pub fn softmax(scores: &[f32]) -> Vec<f32> {
    let mut out = scores.to_vec();
    softmax_in_place(&mut out);
    out
}

/// In-place variant of [`softmax`]. Empty slices are left untouched.
pub fn softmax_in_place(scores: &mut [f32]) {
    if scores.is_empty() {
        return;
    }
    let m = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - m).exp();
        sum += *s;
    }
    if sum > 0.0 {
        for s in scores.iter_mut() {
            *s /= sum;
        }
    }
}

/// Streaming softmax-weighted accumulation — the `(m, l, O)` recurrence of
/// FlashAttention that ISTA (Fig. 10(c)) evaluates tile by tile:
///
/// ```text
/// m⁽ʲ⁾ = max(m⁽ʲ⁻¹⁾, rowmax(S⁽ʲ⁾))
/// P⁽ʲ⁾ = exp(S⁽ʲ⁾ − m⁽ʲ⁾)
/// l⁽ʲ⁾ = exp(m⁽ʲ⁻¹⁾ − m⁽ʲ⁾)·l⁽ʲ⁻¹⁾ + rowsum(P⁽ʲ⁾)
/// O⁽ʲ⁾ = diag(exp(m⁽ʲ⁻¹⁾ − m⁽ʲ⁾))·O⁽ʲ⁻¹⁾ + P⁽ʲ⁾·V⁽ʲ⁾
/// ```
///
/// The accumulator also counts how many tile updates *changed the running
/// maximum*; each such change triggers the extra rescaling work that the
/// paper's head–tail interleaving (§IV-C) exists to avoid.
///
/// # Example
///
/// ```
/// use pade_linalg::OnlineSoftmax;
///
/// let mut acc = OnlineSoftmax::new(2);
/// acc.update(&[0.0, 1.0], &[&[1.0, 0.0], &[0.0, 1.0]]);
/// acc.update(&[2.0], &[&[4.0, 4.0]]);
/// let out = acc.finalize();
/// let total: f32 = out.iter().sum();
/// assert!(total > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct OnlineSoftmax {
    running_max: f32,
    denom: f32,
    acc: Vec<f32>,
    max_updates: usize,
    tiles: usize,
    rescale_ops: u64,
}

impl OnlineSoftmax {
    /// Creates an accumulator producing an output vector of `dims` elements.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        Self {
            running_max: f32::NEG_INFINITY,
            denom: 0.0,
            acc: vec![0.0; dims],
            max_updates: 0,
            tiles: 0,
            rescale_ops: 0,
        }
    }

    /// Absorbs one tile: `scores[t]` weights value row `values[t]`.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != values.len()` or any value row has the
    /// wrong dimensionality.
    pub fn update(&mut self, scores: &[f32], values: &[&[f32]]) {
        assert_eq!(scores.len(), values.len(), "one value row per score");
        if scores.is_empty() {
            return;
        }
        self.tiles += 1;
        let tile_max = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let new_max = self.running_max.max(tile_max);
        if new_max > self.running_max && self.running_max != f32::NEG_INFINITY {
            // Rescaling the accumulator costs one subtraction, one exp and
            // two scalar×vector multiplies (paper lines 11–12 of Fig. 10(c)).
            self.max_updates += 1;
            self.rescale_ops += 2 + 2 * self.acc.len() as u64;
        }
        if self.running_max != f32::NEG_INFINITY && new_max > self.running_max {
            let correction = (self.running_max - new_max).exp();
            self.denom *= correction;
            for a in &mut self.acc {
                *a *= correction;
            }
        }
        self.running_max = new_max;
        for (&s, &v) in scores.iter().zip(values) {
            assert_eq!(v.len(), self.acc.len(), "value row dimensionality mismatch");
            let p = (s - self.running_max).exp();
            self.denom += p;
            for (a, &x) in self.acc.iter_mut().zip(v) {
                *a += p * x;
            }
        }
    }

    /// Number of tiles whose arrival raised the running maximum (and thus
    /// forced an accumulator rescale).
    #[must_use]
    pub fn max_updates(&self) -> usize {
        self.max_updates
    }

    /// Number of tiles absorbed so far.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.tiles
    }

    /// Equivalent scalar additions spent on max-update rescaling, using the
    /// arithmetic-complexity normalization of the paper (§IV-C).
    #[must_use]
    pub fn rescale_ops(&self) -> u64 {
        self.rescale_ops
    }

    /// Current running denominator `l`.
    #[must_use]
    pub fn denom(&self) -> f32 {
        self.denom
    }

    /// Produces the normalized output `diag(l)⁻¹·O`.
    ///
    /// Returns zeros when no scores were ever absorbed.
    #[must_use]
    pub fn finalize(self) -> Vec<f32> {
        if self.denom == 0.0 {
            return self.acc;
        }
        self.acc.into_iter().map(|a| a / self.denom).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference(scores: &[f32], values: &[Vec<f32>]) -> Vec<f32> {
        let p = softmax(scores);
        let dims = values[0].len();
        let mut out = vec![0.0f32; dims];
        for (w, v) in p.iter().zip(values) {
            for (o, &x) in out.iter_mut().zip(v) {
                *o += w * x;
            }
        }
        out
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotonic() {
        let p = softmax(&[-3.0, 0.0, 5.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[0] < p[1] && p[1] < p[2]);
    }

    #[test]
    fn softmax_handles_large_scores_without_overflow() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_softmax_is_noop() {
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn online_matches_reference_across_tiles() {
        let scores = [0.3f32, -1.0, 2.0, 0.7, 1.5];
        let values: Vec<Vec<f32>> =
            (0..5).map(|i| (0..3).map(|j| (i * 3 + j) as f32 * 0.25 - 1.0).collect()).collect();
        let expect = reference(&scores, &values);

        let mut acc = OnlineSoftmax::new(3);
        acc.update(&scores[0..2], &[&values[0], &values[1]]);
        acc.update(&scores[2..3], &[&values[2]]);
        acc.update(&scores[3..5], &[&values[3], &values[4]]);
        let got = acc.finalize();
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn descending_tiles_never_trigger_max_updates() {
        let mut acc = OnlineSoftmax::new(1);
        acc.update(&[5.0], &[&[1.0]]);
        acc.update(&[4.0], &[&[1.0]]);
        acc.update(&[3.0], &[&[1.0]]);
        assert_eq!(acc.max_updates(), 0);
        assert_eq!(acc.rescale_ops(), 0);
    }

    #[test]
    fn ascending_tiles_trigger_a_max_update_each() {
        let mut acc = OnlineSoftmax::new(4);
        for t in 0..5 {
            acc.update(&[t as f32], &[&[0.0, 0.0, 0.0, 0.0]]);
        }
        assert_eq!(acc.max_updates(), 4);
        // 2 scalar ops + 2 vector ops of width 4 per update.
        assert_eq!(acc.rescale_ops(), 4 * (2 + 8));
    }

    #[test]
    fn finalize_without_updates_is_zero() {
        let out = OnlineSoftmax::new(3).finalize();
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    proptest! {
        #[test]
        fn prop_online_equals_batch_softmax(
            scores in proptest::collection::vec(-8.0f32..8.0, 1..40),
            dims in 1usize..6,
            chunk in 1usize..7,
            seed in any::<u64>(),
        ) {
            let values: Vec<Vec<f32>> = (0..scores.len())
                .map(|i| (0..dims)
                    .map(|j| {
                        let h = seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(((i * dims + j) as u64).wrapping_mul(1442695040888963407));
                        ((h >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                    })
                    .collect())
                .collect();
            let expect = reference(&scores, &values);
            let mut acc = OnlineSoftmax::new(dims);
            for (s_chunk, v_chunk) in scores.chunks(chunk).zip(values.chunks(chunk)) {
                let refs: Vec<&[f32]> = v_chunk.iter().map(|v| v.as_slice()).collect();
                acc.update(s_chunk, &refs);
            }
            let got = acc.finalize();
            for (a, b) in got.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
            }
        }
    }
}
