//! Extension (paper §VII, direction 1) — distributed PADE on a wafer-scale
//! fabric.
//!
//! Shards the key/value stream across 1–16 cycle-level PADE chips
//! (sequence parallelism), merges the per-chip `(m, l, O)` states over a
//! ring or 2-D-mesh interconnect, and reports the scaling behaviour:
//! compute shrinks with the shard, communication grows with the chip
//! count, and shard-local guard thresholds inflate retention unless one
//! scalar max per row is synchronized.

use pade_dist::wafer::{DistributedPade, WaferConfig};
use pade_dist::InterconnectConfig;
use pade_experiments::report::{banner, pct, times, Table};
use pade_experiments::runner::Workload;
use pade_workload::{model, task};

fn main() {
    banner("Ext. 3", "Sequence-parallel PADE across wafer-scale chips (§VII)");
    let w = Workload::new(model::llama2_7b(), task::dolly(), 2024);
    let trace = &w.trace;
    println!(
        "workload: Llama2-7B / Dolly, simulated context S = {} (8 query rows)\n",
        trace.keys().rows()
    );

    let base = DistributedPade::new(WaferConfig::standard(1)).run_trace(trace);
    let mut table = Table::new(vec![
        "chips",
        "guard",
        "compute cyc",
        "comm cyc",
        "comm share",
        "speedup",
        "retained",
        "inflation",
        "fidelity",
        "comm energy (nJ)",
    ]);
    for chips in [1usize, 2, 4, 8, 16] {
        for sync in [false, true] {
            if chips == 1 && sync {
                continue;
            }
            let cfg = WaferConfig { sync_guard: sync, ..WaferConfig::standard(chips) };
            let r = DistributedPade::new(cfg).run_trace(trace);
            table.row(vec![
                chips.to_string(),
                if sync { "synced" } else { "local" }.to_string(),
                r.compute_cycles.0.to_string(),
                (r.comm_cycles.0 + r.sync_cycles.0).to_string(),
                pct(r.comm_share()),
                times(base.total_cycles.0 as f64 / r.total_cycles.0 as f64),
                r.retained_keys.to_string(),
                pct(r.retained_keys as f64 / base.retained_keys as f64 - 1.0),
                format!("{:.5}", r.fidelity),
                format!("{:.1}", r.comm_energy_pj / 1e3),
            ]);
        }
    }
    println!("{}", table.render());

    println!("fabric comparison at fixed chip count (reduction steps dominate):");
    let mut fab = Table::new(vec!["chips", "fabric", "reduce steps", "comm cyc", "speedup"]);
    for chips in [16usize, 64] {
        for (name, ic) in
            [("ring", InterconnectConfig::wafer_ring()), ("mesh", InterconnectConfig::wafer_mesh())]
        {
            let cfg = WaferConfig { interconnect: ic, ..WaferConfig::standard(chips) };
            let r = DistributedPade::new(cfg).run_trace(trace);
            fab.row(vec![
                chips.to_string(),
                name.to_string(),
                ic.reduce_steps(chips).to_string(),
                r.comm_cycles.0.to_string(),
                times(base.total_cycles.0 as f64 / r.total_cycles.0 as f64),
            ]);
        }
    }
    println!("{}", fab.render());

    println!(
        "shape check: near-linear compute scaling while the shard stays large,\n\
         communication share growing with chips (mesh flattens it at 64),\n\
         retention inflated by shard-local thresholds and recovered by the\n\
         one-scalar guard sync at negligible cycle cost; fidelity never drops\n\
         below the single-chip run (extra retention only adds softmax mass)."
    );
}
