//! Fig. 4(c) — memory-access and computation reduction over dense
//! attention: stage splitting (Sanger-style) vs bit-serial stage fusion
//! (PADE), across four Llama-2-7B layers plus the geometric mean.

use pade_baselines::sanger;
use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, pct, Table};
use pade_experiments::runner::{run_baseline, run_pade, Workload};
use pade_linalg::metrics::geomean;
use pade_workload::{model, task};

fn main() {
    banner("Fig. 4(c)", "Stage splitting vs BSF: reduction over dense attention");
    let mut table = Table::new(vec![
        "layer",
        "split mem red.",
        "BSF mem red.",
        "split comp red.",
        "BSF comp red.",
    ]);
    let mut split_mem = Vec::new();
    let mut bsf_mem = Vec::new();
    let mut split_comp = Vec::new();
    let mut bsf_comp = Vec::new();
    for layer in 1..=4u64 {
        // Different seeds stand in for the attention statistics of
        // different layers.
        let mut t = task::wikilingua();
        t.seq_len = 2048;
        let w = Workload::new(model::llama2_7b(), t, 100 + layer);
        let (_, dense) = run_pade(&w, PadeConfig::dense_baseline());
        let (_, split) = run_baseline(&w, &sanger());
        let (_, bsf) = run_pade(&w, PadeConfig::standard());

        let dense_mem = dense.stats.total_traffic().dram_total_bytes() as f64;
        let dense_comp = dense.stats.total_ops().equivalent_adds() as f64;
        let sm = 1.0 - split.stats.total_traffic().dram_total_bytes() as f64 / dense_mem;
        let bm = 1.0 - bsf.stats.total_traffic().dram_total_bytes() as f64 / dense_mem;
        let sc = 1.0 - split.stats.total_ops().equivalent_adds() as f64 / dense_comp;
        let bc = 1.0 - bsf.stats.total_ops().equivalent_adds() as f64 / dense_comp;
        split_mem.push(1.0 - sm);
        bsf_mem.push(1.0 - bm);
        split_comp.push(1.0 - sc);
        bsf_comp.push(1.0 - bc);
        table.row(vec![layer.to_string(), pct(sm), pct(bm), pct(sc), pct(bc)]);
    }
    let gm = |v: &[f64]| 1.0 - geomean(v);
    table.row(vec![
        "GeoMean".into(),
        pct(gm(&split_mem)),
        pct(gm(&bsf_mem)),
        pct(gm(&split_comp)),
        pct(gm(&bsf_comp)),
    ]);
    println!("{}", table.render());
    let mem_ratio = (1.0 - gm(&split_mem)) / (1.0 - gm(&bsf_mem));
    let comp_ratio = (1.0 - gm(&split_comp)) / (1.0 - gm(&bsf_comp));
    println!("BSF residual-memory advantage over stage splitting: {mem_ratio:.2}x");
    println!("BSF residual-compute advantage over stage splitting: {comp_ratio:.2}x");
    println!("Paper: BSF reaches 55% mem / 57% comp reduction (4.6x / 2.1x");
    println!("advantage over stage splitting's 12% / 27%).");
}
