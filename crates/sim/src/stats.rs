use crate::{Cycle, UtilizationCounter};

/// Arithmetic event counts produced by one accelerator run.
///
/// Every model in the workspace counts work in these categories; the
/// `pade-energy` crate assigns a 28 nm energy cost to each. Keeping raw
/// counts (instead of pre-multiplied energy) lets the experiments vary the
/// technology constants without re-simulating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Full INT8×INT8 multiply-accumulates (dense executor, V-PU systolic).
    pub int8_mac: u64,
    /// INT4×INT4 multiply-accumulates (e.g. Sanger's MSB predictor).
    pub int4_mac: u64,
    /// Bit-serial gated accumulates: one 8-bit addend conditionally summed
    /// by a 1-bit key plane value (PADE's GSAT datapath).
    pub bit_serial_acc: u64,
    /// Shift-and-add events applying a bit-plane weight to a partial sum.
    pub shift_add: u64,
    /// FP16 exponentials (softmax / APM).
    pub fp_exp: u64,
    /// FP16 multiplies.
    pub fp_mul: u64,
    /// FP16 additions.
    pub fp_add: u64,
    /// Comparisons (threshold checks, top-k sorting steps, max updates).
    pub compare: u64,
    /// Table lookups (BUI LUT, log-domain LUTs).
    pub lut_lookup: u64,
}

impl OpCounts {
    /// Elementwise accumulation.
    pub fn merge(&mut self, other: &OpCounts) {
        self.int8_mac += other.int8_mac;
        self.int4_mac += other.int4_mac;
        self.bit_serial_acc += other.bit_serial_acc;
        self.shift_add += other.shift_add;
        self.fp_exp += other.fp_exp;
        self.fp_mul += other.fp_mul;
        self.fp_add += other.fp_add;
        self.compare += other.compare;
        self.lut_lookup += other.lut_lookup;
    }

    /// Total events normalized into *equivalent additions* using the
    /// arithmetic-complexity model the paper cites for Fig. 10(b)
    /// (multiplier ≈ 8 adds at INT8, exp ≈ 20 adds, bit-serial acc ≈ 1 add).
    #[must_use]
    pub fn equivalent_adds(&self) -> u64 {
        self.int8_mac * 8
            + self.int4_mac * 2
            + self.bit_serial_acc
            + self.shift_add
            + self.fp_exp * 20
            + self.fp_mul * 8
            + self.fp_add * 2
            + self.compare
            + self.lut_lookup
    }
}

/// Memory traffic counts produced by one accelerator run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounts {
    /// Bytes read from off-chip DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to off-chip DRAM.
    pub dram_write_bytes: u64,
    /// DRAM row activations (precharge + activate pairs).
    pub dram_row_activations: u64,
    /// DRAM bursts issued.
    pub dram_bursts: u64,
    /// Bytes read from on-chip SRAM.
    pub sram_read_bytes: u64,
    /// Bytes written to on-chip SRAM.
    pub sram_write_bytes: u64,
}

impl TrafficCounts {
    /// Elementwise accumulation.
    pub fn merge(&mut self, other: &TrafficCounts) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.dram_row_activations += other.dram_row_activations;
        self.dram_bursts += other.dram_bursts;
        self.sram_read_bytes += other.sram_read_bytes;
        self.sram_write_bytes += other.sram_write_bytes;
    }

    /// Total off-chip bytes moved.
    #[must_use]
    pub fn dram_total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Total on-chip bytes moved.
    #[must_use]
    pub fn sram_total_bytes(&self) -> u64 {
        self.sram_read_bytes + self.sram_write_bytes
    }
}

/// The result record of one accelerator run (one attention workload on one
/// design point).
///
/// # Example
///
/// ```
/// use pade_sim::{Cycle, RunStats};
///
/// let mut s = RunStats::new("pade");
/// s.cycles = Cycle(1000);
/// s.retained_keys = 200;
/// s.total_keys = 1000;
/// assert!((s.keep_ratio() - 0.2).abs() < 1e-9);
/// assert!((s.sparsity() - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Design-point label (e.g. `"pade"`, `"sanger"`).
    pub label: String,
    /// End-to-end latency of the run.
    pub cycles: Cycle,
    /// Arithmetic events, split by the stage that performed them: the
    /// *predictor* (separate sparsity-prediction stage; empty for PADE) and
    /// the *executor*.
    pub predictor_ops: OpCounts,
    /// Executor arithmetic events.
    pub ops: OpCounts,
    /// Memory traffic attributable to the predictor stage.
    pub predictor_traffic: TrafficCounts,
    /// Memory traffic attributable to the executor stage.
    pub traffic: TrafficCounts,
    /// Aggregate PE utilization.
    pub pe_util: UtilizationCounter,
    /// Query–key pairs retained (computed at full precision).
    pub retained_keys: u64,
    /// Total query–key pairs in the workload.
    pub total_keys: u64,
}

impl RunStats {
    /// A zeroed record with the given label.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            cycles: Cycle::ZERO,
            predictor_ops: OpCounts::default(),
            ops: OpCounts::default(),
            predictor_traffic: TrafficCounts::default(),
            traffic: TrafficCounts::default(),
            pe_util: UtilizationCounter::new(),
            retained_keys: 0,
            total_keys: 0,
        }
    }

    /// Fraction of QK pairs kept (`retained / total`); `1.0` when the run
    /// saw no keys.
    #[must_use]
    pub fn keep_ratio(&self) -> f64 {
        if self.total_keys == 0 {
            1.0
        } else {
            self.retained_keys as f64 / self.total_keys as f64
        }
    }

    /// Fraction of QK pairs pruned (`1 − keep_ratio`).
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.keep_ratio()
    }

    /// Combined predictor + executor op counts.
    #[must_use]
    pub fn total_ops(&self) -> OpCounts {
        let mut o = self.predictor_ops;
        o.merge(&self.ops);
        o
    }

    /// Combined predictor + executor traffic.
    #[must_use]
    pub fn total_traffic(&self) -> TrafficCounts {
        let mut t = self.predictor_traffic;
        t.merge(&self.traffic);
        t
    }

    /// Accumulates another run (e.g. per-layer records into a model total).
    /// Latencies add; the label of `self` is kept.
    pub fn merge(&mut self, other: &RunStats) {
        self.cycles += other.cycles;
        self.predictor_ops.merge(&other.predictor_ops);
        self.ops.merge(&other.ops);
        self.predictor_traffic.merge(&other.predictor_traffic);
        self.traffic.merge(&other.traffic);
        self.pe_util.merge(&other.pe_util);
        self.retained_keys += other.retained_keys;
        self.total_keys += other.total_keys;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_ratio_defaults_to_one() {
        assert_eq!(RunStats::new("x").keep_ratio(), 1.0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = RunStats::new("a");
        a.cycles = Cycle(10);
        a.ops.int8_mac = 5;
        a.traffic.dram_read_bytes = 100;
        a.retained_keys = 1;
        a.total_keys = 2;
        let mut b = RunStats::new("b");
        b.cycles = Cycle(20);
        b.ops.int8_mac = 7;
        b.predictor_ops.int4_mac = 3;
        b.predictor_traffic.dram_read_bytes = 50;
        b.retained_keys = 1;
        b.total_keys = 2;
        a.merge(&b);
        assert_eq!(a.label, "a");
        assert_eq!(a.cycles, Cycle(30));
        assert_eq!(a.ops.int8_mac, 12);
        assert_eq!(a.total_ops().int4_mac, 3);
        assert_eq!(a.total_traffic().dram_read_bytes, 150);
        assert_eq!(a.keep_ratio(), 0.5);
    }

    #[test]
    fn equivalent_adds_weighting() {
        let ops = OpCounts { int8_mac: 1, fp_exp: 1, bit_serial_acc: 3, ..OpCounts::default() };
        assert_eq!(ops.equivalent_adds(), 8 + 20 + 3);
    }

    #[test]
    fn traffic_totals() {
        let t = TrafficCounts {
            dram_read_bytes: 10,
            dram_write_bytes: 5,
            sram_read_bytes: 3,
            sram_write_bytes: 2,
            ..TrafficCounts::default()
        };
        assert_eq!(t.dram_total_bytes(), 15);
        assert_eq!(t.sram_total_bytes(), 5);
    }
}
