//! Fig. 10(b) — the cost of running-max updates across ISTA tiles:
//! left-to-right vs head-tail interleaved tile order, S = 2048, Bc = 16.
//!
//! The interleaving pays when the row maximum lives in the *recent* region
//! (attention locality): left-to-right execution walks up the recency ramp
//! and rescales the accumulator at almost every tile, while head-tail
//! visits the recent region second and locks the maximum immediately.

use pade_core::ista::{run_ista, TileOrder};
use pade_core::vpu::Vpu;
use pade_experiments::report::{banner, pct, Table};
use pade_workload::profile::ScoreProfile;
use pade_workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    banner("Fig. 10(b)", "Max-update overhead across tiles: LTR vs head-tail (S=2048)");
    // Recency-dominant rows (decode-like steps where the newest tokens
    // carry the highest weights alongside the initial sinks).
    let profile = ScoreProfile {
        sink_tokens: 4,
        sink_strength: 9.0,
        locality_window: 512,
        locality_strength: 12.0,
        tail_rate: 0.01,
        tail_strength: 8.0,
        noise_sigma: 1.0,
    };
    let trace = AttentionTrace::generate(&TraceConfig {
        seq_len: 2048,
        head_dim: 64,
        n_queries: 8,
        profile,
        bits: 8,
        seed: 55,
    });

    let vpu = Vpu::default();
    let mut table = Table::new(vec![
        "Bc",
        "LTR max-updates",
        "HT max-updates",
        "LTR rescale ops",
        "HT rescale ops",
        "op reduction",
    ]);
    for bc in [8usize, 16, 32] {
        let mut ltr_updates = 0usize;
        let mut ht_updates = 0usize;
        let mut ltr_ops = 0u64;
        let mut ht_ops = 0u64;
        for row in 0..trace.queries().rows() {
            let logits = trace.exact_logits(row);
            // Full rows: ISTA tiling applies to the retained stream; here we
            // measure the scheduling effect itself on unpruned rows.
            let retained: Vec<(usize, f32)> =
                logits.iter().enumerate().map(|(j, &x)| (j, x)).collect();
            let ltr = run_ista(&retained, trace.values_f32(), bc, TileOrder::LeftToRight, &vpu);
            let ht = run_ista(&retained, trace.values_f32(), bc, TileOrder::HeadTail, &vpu);
            ltr_updates += ltr.max_updates;
            ht_updates += ht.max_updates;
            ltr_ops += ltr.rescale_ops;
            ht_ops += ht.rescale_ops;
        }
        let red = if ltr_ops == 0 { 0.0 } else { 1.0 - ht_ops as f64 / ltr_ops as f64 };
        table.row(vec![
            bc.to_string(),
            ltr_updates.to_string(),
            ht_updates.to_string(),
            ltr_ops.to_string(),
            ht_ops.to_string(),
            pct(red),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: head-tail interleaving cuts 20-40% of the update-related");
    println!("operations (more at smaller Bc); with no locality it degrades to");
    println!("parity, never worse — asserted by the ISTA property tests.");
}
