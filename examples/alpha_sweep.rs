//! Sweep the guard parameter α (Eq. 4): the accuracy/sparsity dial of
//! BUI-GF (Fig. 16(b)).
//!
//! ```text
//! cargo run --release --example alpha_sweep
//! ```

use pade::core::accelerator::PadeAccelerator;
use pade::core::config::PadeConfig;
use pade::workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    let trace = AttentionTrace::generate(&TraceConfig {
        seq_len: 1024,
        n_queries: 8,
        ..TraceConfig::small_demo()
    });
    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>14}",
        "alpha", "margin", "keep", "fidelity", "planes/dense"
    );
    println!("{}", "-".repeat(53));
    for alpha in [1.0f32, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3] {
        let cfg = PadeConfig { alpha, ..PadeConfig::standard() };
        let margin = cfg.guard_margin();
        let r = PadeAccelerator::new(cfg).run_trace(&trace);
        println!(
            "{alpha:>6.1} {margin:>9.2} {:>9.1}% {:>10.4} {:>14.2}",
            r.stats.keep_ratio() * 100.0,
            r.fidelity,
            r.planes_fetched as f64 / r.planes_dense as f64,
        );
    }
    println!();
    println!("Smaller α prunes harder: sparsity and early termination improve");
    println!("while fidelity decays — the paper balances at α ≈ 0.5-0.6 plus a");
    println!("standard point at α = 1 for zero loss.");
}
