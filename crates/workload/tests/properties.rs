//! Crate-level property tests for the workload substrate: trace
//! determinism, score-structure guarantees per profile, model-zoo
//! consistency and the Table II baseline wiring. The reproduction's
//! accuracy claims are only as good as these generators.

use pade_workload::model;
use pade_workload::profile::ScoreProfile;
use pade_workload::task;
use pade_workload::trace::{AttentionTrace, TraceConfig};
use proptest::prelude::*;

fn config(seq_len: usize, seed: u64, profile: ScoreProfile) -> TraceConfig {
    TraceConfig { seq_len, head_dim: 32, n_queries: 4, profile, bits: 8, seed }
}

proptest! {
    /// Identical seeds produce bit-identical traces; different seeds
    /// produce different key tensors.
    #[test]
    fn generation_is_deterministic_per_seed(seed in any::<u64>()) {
        let cfg = config(64, seed, ScoreProfile::standard());
        let a = AttentionTrace::generate(&cfg);
        let b = AttentionTrace::generate(&cfg);
        prop_assert_eq!(a.keys().as_slice(), b.keys().as_slice());
        prop_assert_eq!(a.queries().as_slice(), b.queries().as_slice());
        let c = AttentionTrace::generate(&config(64, seed.wrapping_add(1), ScoreProfile::standard()));
        prop_assert_ne!(a.keys().as_slice(), c.keys().as_slice());
    }

    /// Every profile produces rows whose softmax mass concentrates on a
    /// strict subset — the property dynamic sparsity exists to exploit.
    #[test]
    fn score_rows_are_compressible(seed in any::<u64>()) {
        for profile in [
            ScoreProfile::standard(),
            ScoreProfile::long_context(),
            ScoreProfile::vision(),
            ScoreProfile::reasoning(),
        ] {
            let t = AttentionTrace::generate(&config(128, seed, profile));
            for row in 0..t.queries().rows() {
                let logits = t.exact_logits(row);
                let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                // Keys within 5 logits of the max carry almost all mass and
                // are a minority of the sequence.
                let vital = logits.iter().filter(|&&l| l > max - 5.0).count();
                prop_assert!(vital < 128, "row {row}: nothing prunable");
                prop_assert!(vital >= 1);
            }
        }
    }

    /// Reference outputs are convex combinations of value rows: each
    /// output coordinate lies within the min/max of the value column.
    #[test]
    fn reference_output_is_convex_combination(seed in any::<u64>()) {
        let t = AttentionTrace::generate(&config(48, seed, ScoreProfile::standard()));
        let v = t.values_f32();
        for row in 0..t.queries().rows() {
            let out = t.reference_output(row);
            for (j, &o) in out.iter().enumerate() {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for i in 0..v.rows() {
                    lo = lo.min(v.get(i, j));
                    hi = hi.max(v.get(i, j));
                }
                prop_assert!(o >= lo - 1e-4 && o <= hi + 1e-4, "coord {j}: {o} ∉ [{lo}, {hi}]");
            }
        }
    }

    /// Subset output over all keys equals the dense reference.
    #[test]
    fn subset_of_everything_is_reference(seed in any::<u64>()) {
        let t = AttentionTrace::generate(&config(40, seed, ScoreProfile::standard()));
        let all: Vec<usize> = (0..40).collect();
        for row in 0..t.queries().rows() {
            let a = t.subset_output(row, &all);
            let b = t.reference_output(row);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}

mod zoo {
    use super::*;

    /// The flattened (QAT-like) profile retains more guard-margin keys
    /// than the standard profile *in expectation* — the Fig. 26(a)
    /// mechanism. Individual seeds can cross, so this aggregates.
    #[test]
    fn flattened_profile_is_less_sparse_on_average() {
        let margin = 5.0f32;
        let count_vital = |p: fn() -> ScoreProfile| -> usize {
            (0..10u64)
                .map(|seed| {
                    let t = AttentionTrace::generate(&config(256, seed, p()));
                    (0..t.queries().rows())
                        .map(|r| {
                            let l = t.exact_logits(r);
                            let max = l.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                            l.iter().filter(|&&x| x > max - margin).count()
                        })
                        .sum::<usize>()
                })
                .sum()
        };
        let flat = count_vital(ScoreProfile::flattened);
        let std = count_vital(ScoreProfile::standard);
        assert!(flat > std, "flattened {flat} must exceed standard {std}");
    }

    #[test]
    fn model_zoo_shapes_are_consistent() {
        for m in model::zoo() {
            assert!(m.heads >= m.kv_heads, "{}: more KV heads than Q heads", m.name);
            assert!(m.heads % m.kv_heads == 0, "{}: ragged GQA groups", m.name);
            assert!(m.head_dim > 0 && m.layers > 0);
            assert!(m.dense_macs_per_layer(1024) > 0);
        }
        // GQA models actually share KV heads.
        assert!(model::llama3_8b().group_size() > 1);
        assert_eq!(model::llama2_7b().group_size(), 1);
    }

    #[test]
    fn table2_covers_every_model_task_cell() {
        for (model_name, tasks) in task::table2_layout() {
            for t in &tasks {
                assert!(
                    task::table2_baseline(model_name, t.name).is_some(),
                    "missing Table II baseline for {model_name}/{}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn long_context_tasks_have_long_contexts() {
        assert!(task::dolly().seq_len >= 15_000);
        assert!(task::infinitebench().seq_len >= 200_000);
        assert!(task::niah().seq_len >= 1_000_000);
        assert!(task::winogrande().seq_len <= 512);
    }
}
