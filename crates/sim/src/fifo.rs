use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Error returned when pushing into a full [`BoundedFifo`]; carries the
/// rejected element back to the caller so it can be retried next cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoFullError<T>(pub T);

impl<T> fmt::Display for FifoFullError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: fmt::Debug> Error for FifoFullError<T> {}

/// A bounded FIFO queue modeling an on-chip buffer between pipeline stages
/// (e.g. the Score-FIFO and IDX-FIFO between QK-PU and V-PU in Fig. 11(a)).
///
/// Pushing into a full queue fails — that is how backpressure propagates in
/// the cycle-level models. High-water occupancy is tracked for sizing
/// studies.
///
/// # Example
///
/// ```
/// use pade_sim::BoundedFifo;
///
/// let mut f = BoundedFifo::new(1);
/// f.push("req").unwrap();
/// assert!(f.is_full());
/// assert_eq!(f.pop(), Some("req"));
/// assert!(f.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    total_pushed: u64,
    rejected: u64,
}

impl<T> BoundedFifo<T> {
    /// Creates a FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
            total_pushed: 0,
            rejected: 0,
        }
    }

    /// Enqueues an element.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] containing the element when full.
    pub fn push(&mut self, item: T) -> Result<(), FifoFullError<T>> {
        if self.items.len() == self.capacity {
            self.rejected += 1;
            return Err(FifoFullError(item));
        }
        self.items.push_back(item);
        self.total_pushed += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest element without removing it.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when at capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum occupancy ever observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of successful pushes over the queue's lifetime.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Number of pushes rejected by backpressure.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_order() {
        let mut f = BoundedFifo::new(4);
        for i in 0..4 {
            f.push(i).unwrap();
        }
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.pop(), Some(1));
        f.push(9).unwrap();
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(9));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_push_returns_element() {
        let mut f = BoundedFifo::new(1);
        f.push(7).unwrap();
        let err = f.push(8).unwrap_err();
        assert_eq!(err.0, 8);
        assert_eq!(f.rejected(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = BoundedFifo::new(8);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.high_water(), 2);
        assert_eq!(f.total_pushed(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedFifo<u8> = BoundedFifo::new(0);
    }
}
