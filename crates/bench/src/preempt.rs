//! The `preempt` scenario: SLO-aware preemptive scheduling under a
//! background prefill flood.
//!
//! A latency-sensitive foreground tenant decodes under a p99 SLO while a
//! low-priority background tenant floods long prefill prompts onto the
//! same node. [`run_preempt_matrix`] replays the identical two-tenant
//! trace through non-preemptive FCFS and through the SLO-aware policy
//! with chunked prefill + forced preemption, hard-checks that every
//! request's outputs are byte-identical across both policies **and**
//! against solo `run_qk_block_reference` oracle runs, and hard-asserts
//! the foreground tenant's p99 decode latency stays under its SLO in the
//! preemptive run. [`write_preempt_json`] serializes the comparison to
//! the `BENCH_<n>.json` trajectory schema (`BENCH_8.json` records the
//! scheduling PR).

use std::io::Write as _;
use std::time::Instant;

use pade_serve::scheduler::{ScheduleMode, SchedulePolicy};
use pade_serve::server::{serve, ServeConfig, ServeReport};
use pade_serve::{output_bytes, reference_outputs};
use pade_workload::trace::{generate_tenant_mix, ArrivalConfig, RequestArrival, TenantLoad};

/// Tenant id of the latency-sensitive foreground decode tenant.
const FOREGROUND: u32 = 0;

/// The two-tenant contention trace plus the knobs that shaped it, kept
/// together so the JSON metadata stays tied to what actually ran.
#[derive(Debug, Clone)]
pub struct PreemptWorkload {
    /// Foreground p99 decode-latency SLO in core cycles.
    pub slo_cycles: u64,
    /// Foreground decode requests.
    pub n_foreground: usize,
    /// Background prefill requests.
    pub n_background: usize,
    /// Prompt rows per background prefill request.
    pub background_prefill_rows: usize,
    /// Key context length shared by both tenants.
    pub seq_len: usize,
    /// Trace seed.
    pub seed: u64,
    /// The merged arrival trace (sorted, densely re-numbered ids).
    pub arrivals: Vec<RequestArrival>,
}

/// Builds the contention trace: foreground tenant 0 (priority 10,
/// decode-only, SLO-carrying) against background tenant 1 (priority 0,
/// prefill-only, long prompts at a tighter arrival gap). `quick` trims
/// context and request counts for CI smoke runs.
#[must_use]
pub fn preempt_workload(quick: bool) -> PreemptWorkload {
    // The SLO targets are calibrated against the deterministic simulated
    // latencies: tight enough that the non-preemptive FCFS baseline's
    // foreground p99 blows past the full-workload target under the
    // background flood, with the SLO-aware policy comfortably inside it.
    let (slo, n_fg, n_bg, bg_rows, seq_len, fg_gap, bg_gap, decode_steps) = if quick {
        (5_000, 3usize, 2usize, 16usize, 128usize, 900.0, 300.0, 2usize)
    } else {
        (6_000, 8, 6, 48, 512, 3_000.0, 800.0, 4)
    };
    let seed = 2026;
    let fg = ArrivalConfig {
        n_requests: n_fg,
        mean_interarrival_cycles: fg_gap,
        decode_fraction: 1.0,
        decode_steps,
        seq_len,
        seed,
        ..ArrivalConfig::small_demo()
    };
    let bg = ArrivalConfig {
        n_requests: n_bg,
        mean_interarrival_cycles: bg_gap,
        decode_fraction: 0.0,
        prefill_rows: bg_rows,
        seq_len,
        seed: seed ^ 0x9E37_79B9,
        ..ArrivalConfig::small_demo()
    };
    let arrivals = generate_tenant_mix(&[
        TenantLoad { tenant: FOREGROUND, priority: 10, tenant_slo: Some(slo), arrivals: fg },
        TenantLoad { tenant: 1, priority: 0, tenant_slo: None, arrivals: bg },
    ]);
    PreemptWorkload {
        slo_cycles: slo,
        n_foreground: n_fg,
        n_background: n_bg,
        background_prefill_rows: bg_rows,
        seq_len,
        seed,
        arrivals,
    }
}

/// The digest of one scheduling policy on the contention trace.
#[derive(Debug, Clone, Copy)]
pub struct PolicySummary {
    /// Foreground median latency in cycles.
    pub fg_p50_cycles: u64,
    /// Foreground 99th-percentile latency in cycles — the SLO figure.
    pub fg_p99_cycles: u64,
    /// Foreground completions within the SLO target.
    pub fg_met: u64,
    /// Foreground completions total.
    pub fg_total: u64,
    /// Sessions descheduled at a chunk/step boundary after having run.
    pub preemptions: u64,
    /// Previously-preempted sessions scheduled again.
    pub resumes: u64,
    /// Makespan in cycles.
    pub makespan_cycles: u64,
    /// Simulated tokens per second at the core clock.
    pub tokens_per_s: f64,
    /// Host wall-clock seconds of the serve run.
    pub wall_s: f64,
}

impl PolicySummary {
    fn from_report(report: &ServeReport, wall_s: f64) -> Self {
        let fg = report
            .summary
            .slo
            .iter()
            .find(|t| t.tenant == u64::from(FOREGROUND))
            .expect("the foreground tenant carries an SLO, so it gets an attainment line");
        Self {
            fg_p50_cycles: fg.latency.p50.0,
            fg_p99_cycles: fg.latency.p99.0,
            fg_met: fg.met,
            fg_total: fg.total,
            preemptions: report.metrics.preemptions,
            resumes: report.metrics.resumes,
            makespan_cycles: report.summary.makespan.0,
            tokens_per_s: report.summary.tokens_per_s,
            wall_s,
        }
    }
}

/// Measured outcome of the contention trace under both policies.
#[derive(Debug, Clone)]
pub struct PreemptScenarioResult {
    /// The workload both policies replayed.
    pub workload: PreemptWorkload,
    /// Non-preemptive FCFS baseline (no prefill chunking).
    pub fcfs: PolicySummary,
    /// SLO-aware policy with chunked prefill and a forced preemption
    /// cadence.
    pub slo_aware: PolicySummary,
    /// `fcfs.fg_p99_cycles / slo_aware.fg_p99_cycles` — how much the
    /// preemptive policy shrinks the foreground tail.
    pub fg_p99_gain: f64,
    /// Whether the SLO-aware run kept the foreground p99 under the SLO
    /// (hard-asserted; a miss panics before this is ever recorded
    /// false).
    pub slo_met: bool,
    /// Whether every request's outputs were byte-identical across both
    /// policies and the solo seed-oracle runs (hard-checked; a mismatch
    /// panics before this is ever recorded false).
    pub bit_identical: bool,
}

/// Both policies contend on a deliberately narrow node so the background
/// flood actually queues against the foreground decodes.
fn node_config(policy: SchedulePolicy) -> ServeConfig {
    let preemptive = policy == SchedulePolicy::SloAware;
    ServeConfig {
        engine_slots: 2,
        policy,
        prefill_chunk_tokens: preemptive.then_some(2),
        preempt_every: preemptive.then_some(4),
        ..ServeConfig::standard()
    }
}

/// Checks that every request's outputs are identical across both policy
/// runs and equal the solo seed-oracle (`run_qk_block_reference`)
/// outputs, byte for byte.
///
/// # Panics
///
/// Panics on any divergence — bit-identity is a hard invariant, not a
/// metric.
fn check_bit_identity(
    arrivals: &[RequestArrival],
    config: &ServeConfig,
    fcfs: &ServeReport,
    slo_aware: &ServeReport,
) {
    assert_eq!(fcfs.completions.len(), arrivals.len());
    pade_serve::assert_outputs_identical(fcfs, slo_aware);
    for completion in &fcfs.completions {
        let oracle = reference_outputs(&arrivals[completion.id], &config.engine);
        assert!(
            completion.output_bytes() == output_bytes(&oracle),
            "request {}: output diverged from the solo seed oracle",
            completion.id
        );
    }
}

/// Replays the contention trace through both policies and cross-checks
/// outputs, SLO attainment and preemption accounting.
///
/// # Panics
///
/// Panics if outputs diverge, if the SLO-aware run misses the foreground
/// SLO, or if the preemptive run never actually preempts.
#[must_use]
pub fn run_preempt_matrix(quick: bool) -> PreemptScenarioResult {
    let workload = preempt_workload(quick);

    let start = Instant::now();
    let fcfs_report =
        serve(&node_config(SchedulePolicy::Fcfs), &workload.arrivals, ScheduleMode::Batched);
    let fcfs_wall = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let slo_config = node_config(SchedulePolicy::SloAware);
    let slo_report = serve(&slo_config, &workload.arrivals, ScheduleMode::Batched);
    let slo_wall = start.elapsed().as_secs_f64();

    check_bit_identity(&workload.arrivals, &slo_config, &fcfs_report, &slo_report);

    let fcfs = PolicySummary::from_report(&fcfs_report, fcfs_wall);
    let slo_aware = PolicySummary::from_report(&slo_report, slo_wall);
    assert_eq!(fcfs.fg_total as usize, workload.n_foreground);
    assert_eq!(slo_aware.fg_total as usize, workload.n_foreground);
    assert!(
        slo_aware.fg_p99_cycles <= workload.slo_cycles,
        "SLO-aware foreground p99 {} exceeds the {}-cycle SLO under the background flood",
        slo_aware.fg_p99_cycles,
        workload.slo_cycles
    );
    assert!(
        slo_aware.preemptions > 0,
        "chunked prefill + forced cadence on a contended node must preempt"
    );

    PreemptScenarioResult {
        fg_p99_gain: fcfs.fg_p99_cycles as f64 / slo_aware.fg_p99_cycles.max(1) as f64,
        slo_met: true,
        bit_identical: true,
        workload,
        fcfs,
        slo_aware,
    }
}

fn write_policy(f: &mut std::fs::File, name: &str, p: &PolicySummary) -> std::io::Result<()> {
    writeln!(f, "  \"{name}\": {{")?;
    writeln!(f, "    \"fg_p50_cycles\": {},", p.fg_p50_cycles)?;
    writeln!(f, "    \"fg_p99_cycles\": {},", p.fg_p99_cycles)?;
    writeln!(f, "    \"fg_met\": {},", p.fg_met)?;
    writeln!(f, "    \"fg_total\": {},", p.fg_total)?;
    writeln!(f, "    \"preemptions\": {},", p.preemptions)?;
    writeln!(f, "    \"resumes\": {},", p.resumes)?;
    writeln!(f, "    \"makespan_cycles\": {},", p.makespan_cycles)?;
    writeln!(f, "    \"tokens_per_s_sim\": {:.1},", p.tokens_per_s)?;
    writeln!(f, "    \"wall_s\": {:.6}", p.wall_s)?;
    write!(f, "  }}")?;
    Ok(())
}

/// Serializes the preempt comparison to the `BENCH_<n>.json` trajectory
/// schema.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_preempt_json(
    path: &std::path::Path,
    result: &PreemptScenarioResult,
    mode: &str,
) -> std::io::Result<()> {
    let w = &result.workload;
    let config = node_config(SchedulePolicy::SloAware);
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench_id\": {},", crate::bench_id_from_path(path))?;
    writeln!(f, "  \"tool\": \"pade-bench\",")?;
    writeln!(f, "  \"scenario\": \"preempt\",")?;
    writeln!(f, "  \"mode\": \"{mode}\",")?;
    writeln!(f, "  \"worker_threads\": {},", pade_par::max_threads())?;
    writeln!(
        f,
        "  \"paths\": {{\"slo_aware\": \"SLO-aware preemptive scheduling (chunked prefill \
         {} rows, forced preemption every {} iterations, {} slots)\", \"baseline\": \
         \"non-preemptive FCFS, same node\"}},",
        config.prefill_chunk_tokens.unwrap_or(0),
        config.preempt_every.unwrap_or(0),
        config.engine_slots
    )?;
    writeln!(
        f,
        "  \"workload\": {{\"slo_cycles\": {}, \"n_foreground\": {}, \"n_background\": {}, \
         \"background_prefill_rows\": {}, \"seq_len\": {}, \"seed\": {}}},",
        w.slo_cycles, w.n_foreground, w.n_background, w.background_prefill_rows, w.seq_len, w.seed
    )?;
    write_policy(&mut f, "fcfs", &result.fcfs)?;
    writeln!(f, ",")?;
    write_policy(&mut f, "slo_aware", &result.slo_aware)?;
    writeln!(f, ",")?;
    writeln!(
        f,
        "  \"headline\": {{\"slo_cycles\": {}, \"fcfs_fg_p99_cycles\": {}, \
         \"slo_aware_fg_p99_cycles\": {}, \"fg_p99_gain\": {:.3}, \"slo_met\": {}, \
         \"preemptions\": {}, \"bit_identical\": {}}}",
        w.slo_cycles,
        result.fcfs.fg_p99_cycles,
        result.slo_aware.fg_p99_cycles,
        result.fg_p99_gain,
        result.slo_met,
        result.slo_aware.preemptions,
        result.bit_identical
    )?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preempt_matrix_meets_slo_and_stays_bit_identical() {
        let result = run_preempt_matrix(true);
        assert!(result.slo_met);
        assert!(result.bit_identical);
        assert!(result.slo_aware.fg_p99_cycles <= result.workload.slo_cycles);
        assert_eq!(result.fcfs.fg_total, result.slo_aware.fg_total);
        assert!(result.slo_aware.preemptions > 0);
        assert!(result.slo_aware.resumes > 0);
        assert!(result.fg_p99_gain > 0.0);
    }

    #[test]
    fn preempt_json_is_well_formed_enough() {
        let result = run_preempt_matrix(true);
        let path = std::env::temp_dir().join("pade_preempt_bench_test.json");
        write_preempt_json(&path, &result, "quick").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert_eq!(text.matches("\"fg_p99_cycles\"").count(), 2);
        assert!(text.contains("\"scenario\": \"preempt\""));
        assert!(text.contains("\"slo_met\": true"));
        let _ = std::fs::remove_file(&path);
    }
}
