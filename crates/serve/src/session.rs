//! Session lifecycle: one admitted request, its operands and its engine
//! blocks.
//!
//! A session is created at admission: the request's synthetic operand
//! trace is generated and its key tensor decomposed into bit planes
//! **once**, then held behind [`SharedKeyPlanes`] so every block the
//! scheduler dispatches — and every worker thread running one — borrows
//! the same immutable plane allocation instead of rebuilding it per call.
//!
//! Blocks are the scheduling quantum: a prefill request of `R` rows
//! yields `⌈R / pe_rows⌉` blocks (exactly the chunking of
//! [`pade_core::engine::run_qk_blocks`]), a decode request of `T` steps
//! yields `T` single-row blocks. Because each block simulates its own
//! HBM/SRAM instances, the session's outputs are bit-identical to running
//! the same request alone — the property `tests/` pins against the seed
//! oracle [`run_qk_block_reference`].
//!
//! [`run_qk_block_reference`]: pade_core::engine::run_qk_block_reference

use std::ops::Range;
use std::sync::Arc;

use pade_core::config::PadeConfig;
use pade_core::engine::{QkBatchJob, QkBlockResult, SharedKeyPlanes};
use pade_quant::BitPlaneMatrix;
use pade_sim::Cycle;
use pade_workload::trace::{AttentionTrace, RequestArrival, RequestKind};

/// One admitted request with its operands, shared key planes and progress.
#[derive(Debug)]
pub struct Session {
    spec: RequestArrival,
    trace: AttentionTrace,
    keys: SharedKeyPlanes,
    rows_per_block: usize,
    blocks_total: usize,
    next_block: usize,
    results: Vec<QkBlockResult>,
    admitted: Cycle,
}

impl Session {
    /// Admits a request at time `admitted`: generates its operand trace
    /// and decomposes the key tensor into shared bit planes (once).
    ///
    /// # Panics
    ///
    /// Panics if the request's trace cannot be decomposed under
    /// `config.bits`.
    #[must_use]
    pub fn admit(spec: &RequestArrival, config: &PadeConfig, admitted: Cycle) -> Self {
        let trace = AttentionTrace::generate(&spec.trace);
        let keys: SharedKeyPlanes = Arc::new(
            BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), config.bits)
                .expect("request key tensor decomposes into bit planes"),
        );
        let (rows_per_block, blocks_total) = match spec.kind {
            // Prefill chunks by PE-row height, exactly as run_qk_blocks.
            RequestKind::Prefill { rows } => (config.pe_rows, rows.div_ceil(config.pe_rows)),
            // Decode: one query row per step.
            RequestKind::Decode { steps } => (1, steps),
        };
        Self {
            spec: *spec,
            trace,
            keys,
            rows_per_block,
            blocks_total,
            next_block: 0,
            results: Vec::with_capacity(blocks_total),
            admitted,
        }
    }

    /// The admitted request.
    #[must_use]
    pub fn spec(&self) -> &RequestArrival {
        &self.spec
    }

    /// Admission time (≥ the request's arrival time).
    #[must_use]
    pub fn admitted(&self) -> Cycle {
        self.admitted
    }

    /// Engine blocks this request decomposes into.
    #[must_use]
    pub fn blocks_total(&self) -> usize {
        self.blocks_total
    }

    /// Blocks already executed.
    #[must_use]
    pub fn blocks_done(&self) -> usize {
        self.results.len()
    }

    /// Whether every block has been executed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.results.len() == self.blocks_total
    }

    /// Query rows (≙ tokens) this request executes in total.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.spec.kind.tokens() as u64
    }

    /// The query-row range of block `block`.
    fn block_rows(&self, block: usize) -> Range<usize> {
        let total = self.spec.kind.tokens();
        let lo = block * self.rows_per_block;
        lo..((lo + self.rows_per_block).min(total))
    }

    /// Query-row (token) cost of the next block — the unit the scheduler's
    /// max-batch-tokens cap counts.
    ///
    /// # Panics
    ///
    /// Panics if the session is finished.
    #[must_use]
    pub fn next_block_tokens(&self) -> usize {
        assert!(!self.is_finished(), "finished session has no next block");
        self.block_rows(self.next_block).len()
    }

    /// The next block as a dispatchable engine job borrowing this
    /// session's operands and sharing its key planes.
    ///
    /// # Panics
    ///
    /// Panics if the session is finished.
    #[must_use]
    pub fn next_job(&self) -> QkBatchJob<'_> {
        assert!(!self.is_finished(), "finished session has no next job");
        let rows = self.block_rows(self.next_block);
        QkBatchJob {
            queries: rows.map(|i| self.trace.queries().row(i)).collect(),
            keys: Arc::clone(&self.keys),
            logit_scale: self.trace.logit_scale(),
        }
    }

    /// Records the result of the block handed out by the last
    /// [`next_job`](Self::next_job) call.
    pub fn absorb(&mut self, result: QkBlockResult) {
        debug_assert!(!self.is_finished());
        self.next_block += 1;
        self.results.push(result);
    }

    /// Per-block engine results, in block order.
    #[must_use]
    pub fn results(&self) -> &[QkBlockResult] {
        &self.results
    }

    /// Consumes the session into its per-block results.
    #[must_use]
    pub fn into_results(self) -> Vec<QkBlockResult> {
        self.results
    }
}

/// Serializes per-block retained outputs into a canonical byte string —
/// the "per-request output bytes" the bit-identity property compares.
///
/// Layout per block, little-endian: for each query row a `u32` pair count
/// followed by `(u32 token, i64 score)` pairs in token order.
#[must_use]
pub fn output_bytes(results: &[QkBlockResult]) -> Vec<u8> {
    let mut out = Vec::new();
    for block in results {
        for row in &block.retained {
            out.extend_from_slice(&u32::try_from(row.len()).expect("row fits u32").to_le_bytes());
            for &(token, score) in row {
                out.extend_from_slice(&u32::try_from(token).expect("token fits u32").to_le_bytes());
                out.extend_from_slice(&score.to_le_bytes());
            }
        }
    }
    out
}

/// Runs every block of `spec` alone through the seed oracle
/// [`run_qk_block_reference`] — the ground truth the batched server's
/// per-request outputs must match byte for byte.
///
/// [`run_qk_block_reference`]: pade_core::engine::run_qk_block_reference
#[must_use]
pub fn reference_outputs(spec: &RequestArrival, config: &PadeConfig) -> Vec<QkBlockResult> {
    let session = Session::admit(spec, config, Cycle::ZERO);
    (0..session.blocks_total())
        .map(|b| {
            let rows = session.block_rows(b);
            let queries: Vec<&[i8]> = rows.map(|i| session.trace.queries().row(i)).collect();
            pade_core::engine::run_qk_block_reference(
                config,
                &queries,
                &session.keys,
                session.trace.logit_scale(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::trace::{generate_arrivals, ArrivalConfig};

    fn specs() -> Vec<RequestArrival> {
        generate_arrivals(&ArrivalConfig::small_demo())
    }

    #[test]
    fn prefill_chunks_by_pe_rows_and_decode_by_step() {
        let config = PadeConfig::standard();
        for spec in specs() {
            let s = Session::admit(&spec, &config, Cycle::ZERO);
            match spec.kind {
                RequestKind::Prefill { rows } => {
                    assert_eq!(s.blocks_total(), rows.div_ceil(config.pe_rows));
                    assert_eq!(s.next_block_tokens(), rows.min(config.pe_rows));
                }
                RequestKind::Decode { steps } => {
                    assert_eq!(s.blocks_total(), steps);
                    assert_eq!(s.next_block_tokens(), 1);
                }
            }
        }
    }

    #[test]
    fn session_blocks_cover_every_query_row_once() {
        let config = PadeConfig::standard();
        let spec = specs().into_iter().find(|s| s.kind.tokens() > config.pe_rows).unwrap();
        let session = Session::admit(&spec, &config, Cycle::ZERO);
        let mut covered = Vec::new();
        for b in 0..session.blocks_total() {
            covered.extend(session.block_rows(b));
        }
        assert_eq!(covered, (0..spec.kind.tokens()).collect::<Vec<_>>());
    }

    #[test]
    fn key_planes_are_shared_not_cloned() {
        let config = PadeConfig::standard();
        let session = Session::admit(&specs()[0], &config, Cycle::ZERO);
        let job_a = session.next_job();
        let job_b = session.next_job();
        assert!(Arc::ptr_eq(&job_a.keys, &job_b.keys));
        assert_eq!(Arc::strong_count(&session.keys), 3);
    }

    #[test]
    fn output_bytes_round_trip_distinguish_results() {
        let config = PadeConfig::standard();
        let all = specs();
        let a = reference_outputs(&all[0], &config);
        let b = reference_outputs(&all[1], &config);
        assert_eq!(output_bytes(&a), output_bytes(&a));
        assert_ne!(output_bytes(&a), output_bytes(&b));
        assert!(!output_bytes(&a).is_empty());
    }
}
