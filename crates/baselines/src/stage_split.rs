//! The generic stage-splitting accelerator and the concrete SOTA designs.
//!
//! A stage-splitting design = predictor + selection rule + executor. The
//! selection rule guards against the predictor's estimation error: a
//! threshold rule widens its margin by an empirical error band (keeping
//! more keys than an exact predictor would need), a top-k rule simply
//! keeps a fixed fraction. Both reproduce the paper's observation that
//! noisy estimation costs either accuracy or sparsity.

use pade_workload::trace::AttentionTrace;

use crate::common::{finish_result, Accelerator, BaselineResult};
use crate::predictors::{
    LogDomainPredictor, LowRankPredictor, MsbPredictor, Predictor, PrevLayerPredictor,
};

/// Key-selection rule applied to estimated logits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// Keep keys whose estimate is within `margin` logits of the estimated
    /// maximum, widened by `guard_sigmas` standard deviations of the
    /// estimator's error (measured on the fly against a small probe).
    Threshold {
        /// Base margin in logits.
        margin: f32,
        /// Error guard band in standard deviations.
        guard_sigmas: f32,
    },
    /// Keep the top `ratio` fraction of keys by estimated score.
    TopK {
        /// Kept fraction of keys per row.
        ratio: f32,
    },
    /// Keep a fixed number of keys per row (the budget form real top-k
    /// designs tune per layer; sparsity then grows with context length).
    TopCount {
        /// Kept keys per row.
        k: usize,
    },
}

/// A stage-splitting dynamic-sparsity accelerator.
pub struct StageSplitAccelerator {
    name: &'static str,
    predictor: Box<dyn Predictor + Send + Sync>,
    selection: Selection,
    /// Executor precision in bits.
    exec_bits: u32,
    /// Fraction of predictor/executor overlap (cross-stage tiling).
    overlap: f64,
    /// Optional second-round refinement (Energon's progressive precision):
    /// candidates surviving round one are re-estimated at higher precision.
    refine: Option<MsbPredictor>,
}

impl std::fmt::Debug for StageSplitAccelerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageSplitAccelerator")
            .field("name", &self.name)
            .field("selection", &self.selection)
            .field("exec_bits", &self.exec_bits)
            .finish_non_exhaustive()
    }
}

impl StageSplitAccelerator {
    /// Builds a custom stage-splitting design.
    #[must_use]
    pub fn new(
        name: &'static str,
        predictor: Box<dyn Predictor + Send + Sync>,
        selection: Selection,
        exec_bits: u32,
        overlap: f64,
    ) -> Self {
        Self { name, predictor, selection, exec_bits, overlap, refine: None }
    }

    /// Adds a progressive refinement round (Energon).
    #[must_use]
    pub fn with_refinement(mut self, refine: MsbPredictor) -> Self {
        self.refine = Some(refine);
        self
    }

    /// Changes the executor precision (Fig. 2's bit-width study).
    #[must_use]
    pub fn with_exec_bits(mut self, bits: u32) -> Self {
        self.exec_bits = bits;
        self
    }

    /// Changes the selection rule (accuracy/sparsity sweeps).
    #[must_use]
    pub fn with_selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    fn select(&self, estimates: &[f32], exact: &[f32]) -> Vec<usize> {
        match self.selection {
            Selection::Threshold { margin, guard_sigmas } => {
                // Estimator error band, calibrated near the decision
                // boundary: the hardware profiles the error of its highest
                // estimates offline per layer (errors of obviously-pruned
                // keys are irrelevant to the cut).
                let probe = estimates.len().min(32);
                let mut order: Vec<usize> = (0..estimates.len()).collect();
                order.sort_by(|&a, &b| {
                    estimates[b].partial_cmp(&estimates[a]).expect("estimates must not be NaN")
                });
                let mut err = 0.0f64;
                for &idx in order.iter().take(probe) {
                    let d = f64::from(estimates[idx] - exact[idx]);
                    err += d * d;
                }
                let sigma = (err / probe as f64).sqrt() as f32;
                let max = estimates.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
                let cut = max - margin - guard_sigmas * sigma;
                (0..estimates.len()).filter(|&j| estimates[j] >= cut).collect()
            }
            Selection::TopK { ratio } => {
                let k =
                    ((estimates.len() as f32 * ratio).ceil() as usize).clamp(1, estimates.len());
                let mut order: Vec<usize> = (0..estimates.len()).collect();
                order.sort_by(|&a, &b| {
                    estimates[b].partial_cmp(&estimates[a]).expect("estimates must not be NaN")
                });
                let mut kept: Vec<usize> = order.into_iter().take(k).collect();
                kept.sort_unstable();
                kept
            }
            Selection::TopCount { k } => {
                let k = k.clamp(1, estimates.len());
                let mut order: Vec<usize> = (0..estimates.len()).collect();
                order.sort_by(|&a, &b| {
                    estimates[b].partial_cmp(&estimates[a]).expect("estimates must not be NaN")
                });
                let mut kept: Vec<usize> = order.into_iter().take(k).collect();
                kept.sort_unstable();
                kept
            }
        }
    }
}

impl Accelerator for StageSplitAccelerator {
    fn name(&self) -> &'static str {
        self.name
    }

    fn run(&self, trace: &AttentionTrace) -> BaselineResult {
        let n_q = trace.queries().rows();
        let s = trace.keys().rows();
        let h = trace.keys().cols();

        let (mut pred_ops, mut pred_traffic, mut pred_cycles) = self.predictor.cost(n_q, s, h);
        let mut retained = Vec::with_capacity(n_q);
        for row in 0..n_q {
            let exact = trace.exact_logits(row);
            let mut estimates = self.predictor.estimate(trace, row);
            if let Some(refine) = &self.refine {
                // Progressive precision: the top half by the coarse
                // estimate is re-estimated at higher precision.
                let loose = {
                    let mut order: Vec<usize> = (0..s).collect();
                    order.sort_by(|&a, &b| {
                        estimates[b].partial_cmp(&estimates[a]).expect("estimates must not be NaN")
                    });
                    order.truncate(s.div_ceil(2));
                    order
                };
                let better = refine.estimate(trace, row);
                // Progressive filtering: round-1 losers are dropped here
                // and never reach the selection stage.
                let keep: std::collections::BTreeSet<usize> = loose.iter().copied().collect();
                for j in 0..s {
                    estimates[j] = if keep.contains(&j) { better[j] } else { f32::NEG_INFINITY };
                }
                let (o2, t2, c2) = refine.cost(1, loose.len().max(1), h);
                pred_ops.merge(&o2);
                pred_traffic.merge(&t2);
                pred_cycles += c2;
            }
            retained.push(self.select(&estimates, &exact));
        }

        finish_result(
            self.name,
            trace,
            retained,
            pred_ops,
            pred_traffic,
            pred_cycles,
            self.exec_bits,
            self.overlap,
        )
    }
}

/// Sanger: 4-bit MSB prediction + threshold selection, 8-bit executor.
#[must_use]
pub fn sanger() -> StageSplitAccelerator {
    StageSplitAccelerator::new(
        "Sanger",
        Box::new(MsbPredictor { bits: 4 }),
        Selection::Threshold { margin: 5.0, guard_sigmas: 3.0 },
        8,
        0.0,
    )
}

/// DOTA: low-rank approximation prediction + threshold selection.
#[must_use]
pub fn dota() -> StageSplitAccelerator {
    StageSplitAccelerator::new(
        "DOTA",
        Box::new(LowRankPredictor { rank: 16 }),
        Selection::Threshold { margin: 5.0, guard_sigmas: 3.0 },
        8,
        0.0,
    )
}

/// SOFA: log-domain prediction + top-k, with cross-stage coordinated
/// tiling overlapping most of the predictor with the executor.
#[must_use]
pub fn sofa() -> StageSplitAccelerator {
    StageSplitAccelerator::new(
        "SOFA",
        Box::new(LogDomainPredictor),
        Selection::TopK { ratio: 0.30 },
        8,
        0.65,
    )
}

/// Energon: progressive mix-precision filtering (2-bit sweep, 4-bit
/// refinement) + threshold selection.
#[must_use]
pub fn energon() -> StageSplitAccelerator {
    StageSplitAccelerator::new(
        "Energon",
        Box::new(MsbPredictor { bits: 2 }),
        Selection::Threshold { margin: 5.0, guard_sigmas: 3.0 },
        8,
        0.0,
    )
    .with_refinement(MsbPredictor { bits: 4 })
}

/// SpAtten without finetuning: previous-layer cascade top-k (large drift).
#[must_use]
pub fn spatten() -> StageSplitAccelerator {
    StageSplitAccelerator::new(
        "SpAtten",
        Box::new(PrevLayerPredictor { drift_logits: 2.5 }),
        Selection::TopK { ratio: 0.45 },
        8,
        0.2,
    )
}

/// SpAtten* with finetuning: drift largely recovered, tighter top-k.
#[must_use]
pub fn spatten_finetuned() -> StageSplitAccelerator {
    StageSplitAccelerator::new(
        "SpAtten*",
        Box::new(PrevLayerPredictor { drift_logits: 1.0 }),
        Selection::TopK { ratio: 0.30 },
        8,
        0.2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::trace::TraceConfig;

    fn trace() -> AttentionTrace {
        AttentionTrace::generate(&TraceConfig::small_demo())
    }

    #[test]
    fn all_designs_run_and_are_sparse_yet_faithful() {
        // S = 512 so the recency window is a proper subset of the context
        // (small_demo's 256-token window spans the whole sequence).
        let t =
            AttentionTrace::generate(&TraceConfig { seq_len: 512, ..TraceConfig::small_demo() });
        for design in [sanger(), dota(), sofa(), energon(), spatten_finetuned()] {
            let r = design.run(&t);
            assert!(r.stats.sparsity() > 0.15, "{} sparsity {}", design.name(), r.stats.sparsity());
            assert!(r.fidelity > 0.9, "{} fidelity {}", design.name(), r.fidelity);
        }
    }

    #[test]
    fn unfinetuned_spatten_misranks_keys() {
        // At an equal, tight budget, larger cross-layer drift misses more
        // of the true top keys (the mechanism behind SpAtten's accuracy
        // loss without finetuning).
        let t = trace();
        let budget = Selection::TopK { ratio: 0.08 };
        let raw = spatten().with_selection(budget).run(&t);
        let tuned = spatten_finetuned().with_selection(budget).run(&t);
        let recall = |r: &crate::BaselineResult| -> f64 {
            let mut acc = 0.0;
            for (row, ids) in r.retained.iter().enumerate() {
                let logits = t.exact_logits(row);
                acc += f64::from(pade_linalg::metrics::topk_recall(&logits, ids, ids.len()));
            }
            acc / r.retained.len() as f64
        };
        let (raw_recall, tuned_recall) = (recall(&raw), recall(&tuned));
        assert!(
            raw_recall < tuned_recall,
            "drift should hurt top-k recall: {raw_recall} vs {tuned_recall}"
        );
        assert!(raw.retained_mass <= tuned.retained_mass + 0.02);
    }

    #[test]
    fn predictor_cost_is_paid_by_all_stage_split_designs() {
        let t = trace();
        for design in [sanger(), dota(), sofa(), energon()] {
            let r = design.run(&t);
            let pred = r.stats.predictor_ops.equivalent_adds();
            assert!(pred > 0, "{} has no predictor cost", design.name());
        }
        // SpAtten's predictor is nearly free (previous-layer reuse)...
        let sp = spatten().run(&t);
        assert!(
            sp.stats.predictor_ops.equivalent_adds()
                < sanger().run(&t).stats.predictor_ops.equivalent_adds() / 10
        );
    }

    #[test]
    fn sanger_predictor_traffic_matches_4bit_k_stream() {
        let t = trace();
        let r = sanger().run(&t);
        let s = t.keys().rows();
        let h = t.keys().cols();
        assert_eq!(r.stats.predictor_traffic.dram_read_bytes, (s * h / 2) as u64);
    }

    #[test]
    fn topk_keeps_exactly_the_ratio() {
        let t = trace();
        let r = sofa().run(&t);
        let s = t.keys().rows();
        for row in &r.retained {
            assert_eq!(row.len(), (s as f32 * 0.30).ceil() as usize);
        }
    }

    #[test]
    fn wider_margin_keeps_more_keys() {
        let t = trace();
        let tight = sanger()
            .with_selection(Selection::Threshold { margin: 2.0, guard_sigmas: 1.0 })
            .run(&t);
        let wide = sanger()
            .with_selection(Selection::Threshold { margin: 8.0, guard_sigmas: 3.0 })
            .run(&t);
        assert!(wide.stats.retained_keys > tight.stats.retained_keys);
        assert!(wide.fidelity >= tight.fidelity);
    }

    #[test]
    fn lower_exec_bits_shrink_executor_traffic() {
        let t = trace();
        let a = sanger().run(&t);
        let b = sanger().with_exec_bits(4).run(&t);
        assert!(b.stats.traffic.dram_read_bytes < a.stats.traffic.dram_read_bytes);
    }

    #[test]
    fn sofa_overlap_shortens_latency_vs_serialized_equivalent() {
        let t = trace();
        let fused = sofa().run(&t);
        let serialized = StageSplitAccelerator::new(
            "SOFA-serial",
            Box::new(LogDomainPredictor),
            Selection::TopK { ratio: 0.30 },
            8,
            0.0,
        )
        .run(&t);
        assert!(fused.stats.cycles < serialized.stats.cycles);
    }
}
