//! Off-chip HBM2 and on-chip SRAM models for PADE.
//!
//! Table III of the paper fixes the memory system: HBM2 with 16×64-bit
//! pseudo channels at 2 Gbps (16 GB/s per channel, 256 GB/s aggregate),
//! `BL = 4×64b` bursts and `tRC = 50 ns`; on chip, a 320 KB key/value buffer
//! and a 32 KB query buffer. The bit-serial execution model makes DRAM
//! behaviour a first-order effect twice over:
//!
//! 1. **Exposed latency** — each next bit plane of a key is a separate,
//!    data-dependent fetch; the out-of-order engine exists to hide that
//!    latency (Fig. 8).
//! 2. **Data layout** — storing keys bit-plane-interleaved (each bank holds
//!    one bit plane, Fig. 22) turns plane streams into row-buffer hits;
//!    a value-row-major layout forces each plane fetch to drag the whole
//!    8-bit value row across the bus (Fig. 23(b), "PADE w/o DL").
//!
//! [`HbmModel`] is a per-bank row-buffer timing model, [`KeyLayout`] maps
//! (token, plane) fetches to physical locations under either layout, and
//! [`SramBuffer`] counts on-chip traffic against a capacity budget.
//!
//! # Example
//!
//! ```
//! use pade_mem::{HbmConfig, HbmModel, PhysLoc};
//! use pade_sim::Cycle;
//!
//! let mut hbm = HbmModel::new(HbmConfig::default());
//! let loc = PhysLoc { channel: 0, bank: 0, row: 3 };
//! let first = hbm.access(loc, 32, Cycle(0));
//! assert!(!first.row_hit);               // cold row: activation
//! let second = hbm.access(loc, 32, first.complete);
//! assert!(second.row_hit);               // same row: fast path
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hbm;
mod layout;
mod sram;

pub use hbm::{AccessResult, HbmConfig, HbmModel, PhysLoc};
pub use layout::{KeyLayout, PlaneFetch, QvLayout};
pub use sram::SramBuffer;
