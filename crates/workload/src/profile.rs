//! Attention score-structure profiles.
//!
//! A [`ScoreProfile`] controls the synthetic generator in [`crate::trace`]:
//! how much softmax mass sits on attention-sink tokens, on a recency
//! window, and on a scattered heavy tail — the three structures that
//! determine a dynamic-sparsity accelerator's pruning ratio, load balance
//! and memory traffic. Presets are calibrated per task category so longer
//! contexts exhibit the higher sparsity the paper reports (Fig. 2(b):
//! "increased sparsity in longer sequences").

use crate::task::{TaskConfig, TaskKind};

/// Parameters of the synthetic attention score structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreProfile {
    /// Number of initial sink tokens with elevated scores.
    pub sink_tokens: usize,
    /// Logit boost of sink tokens over the noise floor.
    pub sink_strength: f32,
    /// Width of the recency window (tokens before the query position).
    pub locality_window: usize,
    /// Logit boost of the recency window.
    pub locality_strength: f32,
    /// Expected fraction of remaining tokens that are "important".
    pub tail_rate: f32,
    /// Logit boost of tail tokens.
    pub tail_strength: f32,
    /// Standard deviation of the background score noise, in logits.
    pub noise_sigma: f32,
}

impl ScoreProfile {
    /// A balanced mid-sparsity profile (short-context LLM prefill).
    ///
    /// Structure logits sit ~10σ above the noise floor so that, as in real
    /// LLM attention, the vast majority of softmax mass lives on a small
    /// retained set (sinks + recency window + heavy tail).
    #[must_use]
    pub fn standard() -> Self {
        Self {
            sink_tokens: 4,
            sink_strength: 12.0,
            locality_window: 256,
            locality_strength: 10.0,
            tail_rate: 0.03,
            tail_strength: 11.0,
            noise_sigma: 1.2,
        }
    }

    /// A long-context profile: sharp sinks, a recency window, and a sparse
    /// but *decisive* heavy tail (retrieval targets scattered mid-context —
    /// the tokens a static sink+window pattern like StreamingLLM misses).
    #[must_use]
    pub fn long_context() -> Self {
        Self {
            sink_tokens: 4,
            sink_strength: 14.0,
            locality_window: 384,
            locality_strength: 9.0,
            tail_rate: 0.015,
            tail_strength: 13.5,
            noise_sigma: 1.0,
        }
    }

    /// A vision profile: flatter distribution (2-D locality smears scores),
    /// lower achievable sparsity, no sink tokens.
    #[must_use]
    pub fn vision() -> Self {
        Self {
            sink_tokens: 1,
            sink_strength: 4.0,
            locality_window: 96,
            locality_strength: 7.0,
            tail_rate: 0.16,
            tail_strength: 6.5,
            noise_sigma: 1.8,
        }
    }

    /// A reasoning profile: few vital tokens carry the answer, the rest is
    /// highly redundant (the paper observes reasoning tolerates pruning
    /// better than generation, Fig. 16(b)).
    #[must_use]
    pub fn reasoning() -> Self {
        Self {
            sink_tokens: 2,
            sink_strength: 12.0,
            locality_window: 128,
            locality_strength: 9.0,
            tail_rate: 0.02,
            tail_strength: 12.0,
            noise_sigma: 1.0,
        }
    }

    /// A QAT-like profile: quantization-aware training flattens the score
    /// distribution, reducing exploitable sparsity (Fig. 26(a)).
    #[must_use]
    pub fn flattened() -> Self {
        Self {
            sink_tokens: 2,
            sink_strength: 5.0,
            locality_window: 192,
            locality_strength: 4.0,
            tail_rate: 0.25,
            tail_strength: 4.5,
            noise_sigma: 2.0,
        }
    }

    /// Chooses the preset matching a task category.
    #[must_use]
    pub fn for_task(task: &TaskConfig) -> Self {
        match task.kind {
            TaskKind::Generation => {
                if task.seq_len > 8192 {
                    Self::long_context()
                } else {
                    Self::standard()
                }
            }
            TaskKind::Reasoning => Self::reasoning(),
            TaskKind::LanguageModeling => Self::standard(),
            TaskKind::Vision => Self::vision(),
            TaskKind::LongContext => Self::long_context(),
        }
    }
}

impl Default for ScoreProfile {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task;

    #[test]
    fn long_context_has_sparser_tail_than_standard() {
        assert!(ScoreProfile::long_context().tail_rate < ScoreProfile::standard().tail_rate);
    }

    #[test]
    fn vision_is_flatter_than_llm() {
        let v = ScoreProfile::vision();
        let s = ScoreProfile::standard();
        assert!(v.sink_strength < s.sink_strength);
        assert!(v.tail_rate > s.tail_rate);
    }

    #[test]
    fn task_dispatch_picks_expected_presets() {
        assert_eq!(ScoreProfile::for_task(&task::dolly()), ScoreProfile::long_context());
        assert_eq!(ScoreProfile::for_task(&task::mbpp()), ScoreProfile::standard());
        assert_eq!(ScoreProfile::for_task(&task::mmlu()), ScoreProfile::reasoning());
        assert_eq!(ScoreProfile::for_task(&task::imagenet()), ScoreProfile::vision());
        assert_eq!(ScoreProfile::for_task(&task::pg19()), ScoreProfile::long_context());
    }

    #[test]
    fn flattened_profile_reduces_contrast() {
        let f = ScoreProfile::flattened();
        assert!(f.sink_strength < ScoreProfile::standard().sink_strength);
        assert!(f.noise_sigma > ScoreProfile::standard().noise_sigma);
    }
}
