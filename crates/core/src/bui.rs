//! Bit-wise Uncertainty Interval (BUI) — §IV-A, Fig. 6 and Fig. 11(c).
//!
//! In two's complement every plane except the sign plane contributes
//! non-negatively (Eq. 2), so once the first `r+1` planes of a key are
//! known, each element's missing contribution lies in `[0, U_r]` with
//! `U_r = 2^(bits-1-r) − 1`. For a dot product against a *known* query row
//! the residual therefore lies in
//!
//! ```text
//! [ U_r · Σ min(q_j, 0),   U_r · Σ max(q_j, 0) ]   =  [I_r^min, I_r^max]
//! ```
//!
//! — eight interval pairs that depend only on the query, precomputed once
//! per row into a LUT (the BUI Generator of Fig. 11(c)). The guarantee
//! `S_r + I_r^min ≤ q·k ≤ S_r + I_r^max` is property-tested below.

use pade_quant::{mxint::MxVector, uncertainty_span};

/// The BUI lookup table of one query row.
///
/// # Example
///
/// ```
/// use pade_core::bui::Bui;
///
/// let bui = Bui::new(&[6, -5, 9, -4], 8);
/// let (lo, hi) = bui.interval(0);
/// assert!(lo < 0 && hi > 0);
/// // After the LSB plane nothing is uncertain.
/// assert_eq!(bui.interval(7), (0, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bui {
    pos_sum: i64,
    neg_sum: i64,
    bits: u32,
}

impl Bui {
    /// Precomputes the interval LUT for a query row (one pass; the
    /// hardware's Q-sum generator).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8`.
    #[must_use]
    pub fn new(q_row: &[i8], bits: u32) -> Self {
        assert!((2..=8).contains(&bits), "bit width must be in 2..=8");
        let mut pos = 0i64;
        let mut neg = 0i64;
        for &q in q_row {
            if q > 0 {
                pos += i64::from(q);
            } else {
                neg += i64::from(q);
            }
        }
        Self { pos_sum: pos, neg_sum: neg, bits }
    }

    /// Sum of the positive query entries (`Σ max(q_j, 0)`).
    #[must_use]
    pub fn pos_sum(&self) -> i64 {
        self.pos_sum
    }

    /// Sum of the negative query entries (`Σ min(q_j, 0)`).
    #[must_use]
    pub fn neg_sum(&self) -> i64 {
        self.neg_sum
    }

    /// The interval `(I_r^min, I_r^max)` after planes `0..=r` of the key
    /// are known.
    ///
    /// # Panics
    ///
    /// Panics if `r >= bits`.
    #[must_use]
    pub fn interval(&self, r: u32) -> (i64, i64) {
        let u = i64::from(uncertainty_span(r, self.bits));
        (u * self.neg_sum, u * self.pos_sum)
    }

    /// Upper bound of the true dot product given the conservative partial
    /// score `s_r` (unknown bits taken as zero) after round `r`.
    #[must_use]
    pub fn upper_bound(&self, s_r: i64, r: u32) -> i64 {
        s_r + self.interval(r).1
    }

    /// Lower bound of the true dot product after round `r`.
    #[must_use]
    pub fn lower_bound(&self, s_r: i64, r: u32) -> i64 {
        s_r + self.interval(r).0
    }
}

/// BUI for MX-format (group-quantized) operands — Fig. 25.
///
/// Each 32-element group gets its own integer BUI, scaled into the
/// accumulation domain by `Δ_Q(g)·Δ_K(g)`; group intervals then add.
/// The result bounds the *real-valued* dot product.
#[derive(Debug, Clone, PartialEq)]
pub struct MxBui {
    group_buis: Vec<Bui>,
    group_scales: Vec<f64>,
    bits: u32,
}

impl MxBui {
    /// Builds the group-wise BUI for an MX query vector against keys
    /// quantized with per-group scales `k_scales`.
    ///
    /// # Panics
    ///
    /// Panics if `k_scales.len()` differs from the query's group count.
    #[must_use]
    pub fn new(q: &MxVector, k_scales: &[f32]) -> Self {
        assert_eq!(q.groups(), k_scales.len(), "one key scale per group");
        let group_buis: Vec<Bui> =
            (0..q.groups()).map(|g| Bui::new(q.group_codes(g), q.bits())).collect();
        let group_scales =
            (0..q.groups()).map(|g| f64::from(q.group_scale(g)) * f64::from(k_scales[g])).collect();
        Self { group_buis, group_scales, bits: q.bits() }
    }

    /// Real-valued interval after round `r` given the per-group integer
    /// partial scores `s_r` (step ❶–❷ of Fig. 25(b): scale each group's
    /// bounds, then add them).
    ///
    /// # Panics
    ///
    /// Panics if `partials.len()` differs from the group count.
    #[must_use]
    pub fn bounds(&self, partials: &[i64], r: u32) -> (f64, f64) {
        assert_eq!(partials.len(), self.group_buis.len(), "one partial score per group");
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for ((bui, &scale), &s) in self.group_buis.iter().zip(&self.group_scales).zip(partials) {
            let (gl, gh) = bui.interval(r);
            lo += scale * (s + gl) as f64;
            hi += scale * (s + gh) as f64;
        }
        (lo, hi)
    }

    /// Number of groups.
    #[must_use]
    pub fn groups(&self) -> usize {
        self.group_buis.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_quant::{plane_weight, TokenPlanes};
    use proptest::prelude::*;

    /// Conservative partial score: planes 0..=r with unknown bits zeroed.
    fn partial_score(q: &[i8], k: &TokenPlanes, r: u32) -> i64 {
        (0..=r)
            .map(|p| i64::from(plane_weight(p, k.bits())) * i64::from(k.plane(p).masked_sum(q)))
            .sum()
    }

    fn exact_dot(q: &[i8], k: &[i8]) -> i64 {
        q.iter().zip(k).map(|(&a, &b)| i64::from(a) * i64::from(b)).sum()
    }

    #[test]
    fn paper_fig6_example() {
        // Fig. 6: Q = [6, -5, 9, -4] (8-bit), K = [reconstructed values].
        // With only the MSB of K known, S⁰ = -32 and the BUI is
        // [I⁰min, I⁰max] = [-69.75, 116.25] in the paper's fractional scale.
        // The paper uses a Q1.6-style fractional weighting (2⁻² LSB); in
        // integer weighting the same example scales by 4: U_0 = 127·??
        // We verify the *integer* invariant on the same vectors instead,
        // plus the exact ratio structure of the paper's interval.
        let q: [i8; 4] = [6, -5, 9, -4];
        let bui = Bui::new(&q, 8);
        assert_eq!(bui.pos_sum(), 15);
        assert_eq!(bui.neg_sum(), -9);
        let (lo, hi) = bui.interval(0);
        // U_0 = 127 → I_max = 127·15, I_min = -127·9.
        assert_eq!(hi, 127 * 15);
        assert_eq!(lo, -127 * 9);
        // Paper's fractional numbers: I_min = -69.75 = -9·7.75, I_max =
        // 116.25 = 15·7.75 — same ±(pos/neg)·U structure with U = 7.75.
        assert!((f64::from(-9i32) * 7.75 - (-69.75)).abs() < 1e-9);
        assert!((f64::from(15i32) * 7.75 - 116.25).abs() < 1e-9);
    }

    #[test]
    fn interval_shrinks_monotonically() {
        let bui = Bui::new(&[5, -3, 7, -2, 1], 8);
        let mut prev_width = i64::MAX;
        for r in 0..8 {
            let (lo, hi) = bui.interval(r);
            let width = hi - lo;
            assert!(width <= prev_width, "round {r}: {width} > {prev_width}");
            prev_width = width;
        }
        assert_eq!(bui.interval(7), (0, 0));
    }

    #[test]
    fn bounds_are_exact_at_lsb() {
        let q: [i8; 3] = [3, -7, 2];
        let k: [i8; 3] = [-50, 99, 4];
        let planes = TokenPlanes::from_values(&k, 8);
        let bui = Bui::new(&q, 8);
        let s = partial_score(&q, &planes, 7);
        assert_eq!(bui.upper_bound(s, 7), exact_dot(&q, &k));
        assert_eq!(bui.lower_bound(s, 7), exact_dot(&q, &k));
    }

    proptest! {
        #[test]
        fn prop_bui_always_bounds_true_dot(
            q in proptest::collection::vec(any::<i8>(), 1..80),
            seed in any::<u64>(),
            r in 0u32..8,
        ) {
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    let h = seed.wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((i as u64).wrapping_mul(0xBF58476D1CE4E5B9));
                    (h >> 24) as u8 as i8
                })
                .collect();
            let planes = TokenPlanes::from_values(&k, 8);
            let bui = Bui::new(&q, 8);
            let exact = exact_dot(&q, &k);
            for round in 0..=r {
                let s = partial_score(&q, &planes, round);
                prop_assert!(bui.lower_bound(s, round) <= exact,
                    "round {}: lb {} > exact {}", round, bui.lower_bound(s, round), exact);
                prop_assert!(bui.upper_bound(s, round) >= exact,
                    "round {}: ub {} < exact {}", round, bui.upper_bound(s, round), exact);
            }
        }

        #[test]
        fn prop_bui_bounds_for_int4(
            q in proptest::collection::vec(-8i8..=7, 1..40),
            seed in any::<u64>(),
        ) {
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    let h = seed.wrapping_add((i as u64).wrapping_mul(0x94D049BB133111EB));
                    ((h >> 13) % 16) as i8 - 8
                })
                .collect();
            let planes = TokenPlanes::from_values(&k, 4);
            let bui = Bui::new(&q, 4);
            let exact = exact_dot(&q, &k);
            for round in 0..4u32 {
                let s: i64 = (0..=round)
                    .map(|p| i64::from(plane_weight(p, 4)) * i64::from(planes.plane(p).masked_sum(&q)))
                    .sum();
                prop_assert!(bui.lower_bound(s, round) <= exact);
                prop_assert!(bui.upper_bound(s, round) >= exact);
            }
        }
    }

    mod mx {
        use super::*;
        use pade_quant::mxint::{mx_dot, MxVector};

        #[test]
        fn mx_bounds_contain_real_dot() {
            let qf: Vec<f32> = (0..64).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
            let kf: Vec<f32> = (0..64).map(|i| ((i * 11) % 17) as f32 - 8.0).collect();
            let q = MxVector::quantize(&qf, 32, 8).unwrap();
            let k = MxVector::quantize(&kf, 32, 8).unwrap();
            let k_scales: Vec<f32> = (0..k.groups()).map(|g| k.group_scale(g)).collect();
            let bui = MxBui::new(&q, &k_scales);
            let real = mx_dot(&q, &k).unwrap() as f64;
            for r in 0..8u32 {
                // Per-group conservative partial scores.
                let partials: Vec<i64> = (0..q.groups())
                    .map(|g| {
                        let planes = TokenPlanes::from_values(k.group_codes(g), 8);
                        (0..=r)
                            .map(|p| {
                                i64::from(plane_weight(p, 8))
                                    * i64::from(planes.plane(p).masked_sum(q.group_codes(g)))
                            })
                            .sum()
                    })
                    .collect();
                let (lo, hi) = bui.bounds(&partials, r);
                assert!(lo <= real + 1e-3, "round {r}: lo {lo} > {real}");
                assert!(hi >= real - 1e-3, "round {r}: hi {hi} < {real}");
            }
        }

        #[test]
        fn mx_interval_is_sum_of_group_intervals() {
            let qf = vec![1.0f32; 64];
            let q = MxVector::quantize(&qf, 32, 8).unwrap();
            let bui = MxBui::new(&q, &[1.0, 1.0]);
            assert_eq!(bui.groups(), 2);
            let (lo, hi) = bui.bounds(&[0, 0], 0);
            assert_eq!(lo, 0.0); // all-positive query: no negative interval
            assert!(hi > 0.0);
        }
    }
}
