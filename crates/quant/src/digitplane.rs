//! Multi-bit (digit-serial) plane decomposition — the paper's future-work
//! extension (§VII, direction 2).
//!
//! PADE's main configuration streams keys one *bit* plane per round. A
//! natural generalization streams `d` consecutive bit planes per round — a
//! radix-`2^d` *digit*. Fewer rounds means fewer pruning decisions and less
//! scoreboard traffic, at the cost of fetching `d` bits of every key that a
//! 1-bit design would have terminated after its first plane. `d = bits`
//! degenerates to value-level execution (one round, no early termination
//! inside the key).
//!
//! The MSB-first digit of a `p`-bit two's-complement integer with
//! `d | p` is:
//!
//! * round 0: the top `d` bits interpreted as a **signed** `d`-bit value
//!   (it contains the sign bit), weighted by `2^(p-d)`;
//! * round `r ≥ 1`: the next `d` bits interpreted **unsigned**, weighted
//!   by `2^(p-d(r+1))`.
//!
//! Only round 0 can contribute negatively, so the uncertainty structure of
//! the BUI carries over unchanged: after rounds `0..=r` the missing
//! contribution of each element lies in `[0, 2^(p-d(r+1)) − 1]` — exactly
//! the bit-plane span after plane `d(r+1) − 1`. A digit-serial BUI is
//! therefore the ordinary [`Bui`](crate::uncertainty_span) LUT sampled at
//! digit boundaries; no new uncertainty math is required.

use crate::QuantError;

/// Number of digit rounds for a `bits`-wide value at `digit_bits` per round.
///
/// # Panics
///
/// Panics if `digit_bits` is zero or does not divide `bits`.
///
/// # Example
///
/// ```
/// assert_eq!(pade_quant::digit_rounds(8, 2), 4);
/// assert_eq!(pade_quant::digit_rounds(8, 8), 1);
/// ```
#[must_use]
pub fn digit_rounds(bits: u32, digit_bits: u32) -> u32 {
    assert!(digit_bits > 0, "digit width must be positive");
    assert_eq!(bits % digit_bits, 0, "digit width {digit_bits} must divide {bits}");
    bits / digit_bits
}

/// Positional weight of digit round `r` (MSB-first): `2^(bits − d(r+1))`.
///
/// Unlike [`plane_weight`](crate::plane_weight) the sign is *inside* the
/// digit value (round 0 is signed), so the weight itself is always
/// positive.
///
/// # Panics
///
/// Panics if `digit_bits` does not divide `bits` or `r` is out of range.
///
/// # Example
///
/// ```
/// assert_eq!(pade_quant::digit_weight(0, 2, 8), 64);
/// assert_eq!(pade_quant::digit_weight(3, 2, 8), 1);
/// ```
#[must_use]
pub fn digit_weight(r: u32, digit_bits: u32, bits: u32) -> i32 {
    let rounds = digit_rounds(bits, digit_bits);
    assert!(r < rounds, "digit round {r} out of range ({rounds} rounds)");
    1i32 << (bits - digit_bits * (r + 1))
}

/// Maximum total contribution of the digits still unknown after round `r`:
/// `2^(bits − d(r+1)) − 1`, i.e. the bit-plane
/// [`uncertainty_span`](crate::uncertainty_span) at plane `d(r+1) − 1`.
///
/// # Panics
///
/// Panics if `digit_bits` does not divide `bits` or `r` is out of range.
///
/// # Example
///
/// ```
/// // After the first 2-bit digit of an 8-bit value, 63 is still in play.
/// assert_eq!(pade_quant::digit_uncertainty_span(0, 2, 8), 63);
/// assert_eq!(pade_quant::digit_uncertainty_span(3, 2, 8), 0);
/// // d = 1 coincides with the bit-plane span.
/// assert_eq!(
///     pade_quant::digit_uncertainty_span(2, 1, 8),
///     pade_quant::uncertainty_span(2, 8),
/// );
/// ```
#[must_use]
pub fn digit_uncertainty_span(r: u32, digit_bits: u32, bits: u32) -> i32 {
    let rounds = digit_rounds(bits, digit_bits);
    assert!(r < rounds, "digit round {r} out of range ({rounds} rounds)");
    (1i32 << (bits - digit_bits * (r + 1))) - 1
}

/// The bit plane index whose knowledge is equivalent to digit round `r`:
/// `d(r+1) − 1`. Useful for reusing a bit-plane BUI LUT at digit
/// granularity.
///
/// # Panics
///
/// Panics if `digit_bits` does not divide `bits` or `r` is out of range.
#[must_use]
pub fn digit_round_to_plane(r: u32, digit_bits: u32, bits: u32) -> u32 {
    let rounds = digit_rounds(bits, digit_bits);
    assert!(r < rounds, "digit round {r} out of range ({rounds} rounds)");
    digit_bits * (r + 1) - 1
}

/// One digit round of one token vector: a `digit_bits`-wide value per
/// hidden dimension.
///
/// Round 0 values are signed (`−2^(d−1) ..= 2^(d−1)−1`); later rounds are
/// unsigned (`0 ..= 2^d − 1`). Both fit an `i16`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitRow {
    digits: Vec<i16>,
    digit_bits: u32,
    signed: bool,
}

impl DigitRow {
    /// Per-dimension digit values.
    #[must_use]
    pub fn digits(&self) -> &[i16] {
        &self.digits
    }

    /// Digit width in bits.
    #[must_use]
    pub fn digit_bits(&self) -> u32 {
        self.digit_bits
    }

    /// `true` for the sign-carrying round-0 digit.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Number of hidden dimensions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// `true` when the row covers zero dimensions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// Number of non-zero digits — the work a digit-skipping PE performs.
    #[must_use]
    pub fn count_nonzero(&self) -> u32 {
        self.digits.iter().filter(|&&d| d != 0).count() as u32
    }

    /// Unweighted dot product against a query row: `Σ q_j · digit_j`
    /// (the caller applies [`digit_weight`]).
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != self.len()`.
    #[must_use]
    pub fn masked_dot(&self, q: &[i8]) -> i64 {
        assert_eq!(q.len(), self.digits.len(), "query length must match digit row");
        self.digits.iter().zip(q).map(|(&d, &qv)| i64::from(d) * i64::from(qv)).sum()
    }

    /// Payload size of one digit round in bits (`d` bits per dimension).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        self.digits.len() * self.digit_bits as usize
    }
}

/// All digit rounds of one token vector, MSB first.
///
/// # Example
///
/// ```
/// use pade_quant::DigitPlanes;
///
/// let d = DigitPlanes::from_values(&[5, -5], 2, 8).unwrap();
/// assert_eq!(d.rounds(), 4);
/// assert_eq!(d.reconstruct(), vec![5, -5]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitPlanes {
    rounds: Vec<DigitRow>,
    digit_bits: u32,
    bits: u32,
    dims: usize,
}

impl DigitPlanes {
    /// Decomposes a token vector into `bits / digit_bits` MSB-first digit
    /// rounds.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedWidth`] when `bits` is outside
    /// `2..=8` or `digit_bits` is zero / does not divide `bits`.
    ///
    /// # Panics
    ///
    /// Panics if a value does not fit `bits`-wide two's complement (a
    /// caller contract violation, as in
    /// [`TokenPlanes`](crate::TokenPlanes)).
    pub fn from_values(values: &[i8], digit_bits: u32, bits: u32) -> Result<Self, QuantError> {
        if !(2..=8).contains(&bits) || digit_bits == 0 || !bits.is_multiple_of(digit_bits) {
            return Err(QuantError::UnsupportedWidth { bits: digit_bits.max(bits) });
        }
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        for &v in values {
            assert!(
                (lo..=hi).contains(&i32::from(v)),
                "value {v} does not fit in {bits}-bit two's complement"
            );
        }
        let n_rounds = bits / digit_bits;
        let mask = (1i32 << digit_bits) - 1;
        let rounds = (0..n_rounds)
            .map(|r| {
                let shift = bits - digit_bits * (r + 1);
                let digits: Vec<i16> = values
                    .iter()
                    .map(|&v| {
                        let raw = (i32::from(v) >> shift) & mask;
                        if r == 0 {
                            // Signed top digit: wrap the range into
                            // [−2^(d−1), 2^(d−1)−1].
                            let half = 1i32 << (digit_bits - 1);
                            (if raw >= half { raw - 2 * half } else { raw }) as i16
                        } else {
                            raw as i16
                        }
                    })
                    .collect();
                DigitRow { digits, digit_bits, signed: r == 0 }
            })
            .collect();
        Ok(Self { rounds, digit_bits, bits, dims: values.len() })
    }

    /// Digit width in bits.
    #[must_use]
    pub fn digit_bits(&self) -> u32 {
        self.digit_bits
    }

    /// Total operand bit width.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of digit rounds.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds.len() as u32
    }

    /// Number of hidden dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow digit round `r` (0 = signed MSB digit).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rounds()`.
    #[must_use]
    pub fn round(&self, r: u32) -> &DigitRow {
        &self.rounds[r as usize]
    }

    /// Reassembles the original integers — the digit analogue of Eq. 2,
    /// used as the module's primary self-check.
    #[must_use]
    pub fn reconstruct(&self) -> Vec<i32> {
        let mut out = vec![0i32; self.dims];
        for (r, row) in self.rounds.iter().enumerate() {
            let w = digit_weight(r as u32, self.digit_bits, self.bits);
            for (o, &d) in out.iter_mut().zip(&row.digits) {
                *o += w * i32::from(d);
            }
        }
        out
    }
}

/// Digit rounds for a whole key matrix (`tokens × dims`), MSB first — the
/// DRAM-resident form of the key tensor under multi-bit stage fusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigitPlaneMatrix {
    tokens: Vec<DigitPlanes>,
    digit_bits: u32,
    bits: u32,
    dims: usize,
}

impl DigitPlaneMatrix {
    /// Decomposes every row of a row-major integer matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::DimensionMismatch`] when `data.len()` is not a
    /// multiple of `dims`, or [`QuantError::UnsupportedWidth`] for a bad
    /// width combination.
    pub fn from_rows(
        data: &[i8],
        dims: usize,
        digit_bits: u32,
        bits: u32,
    ) -> Result<Self, QuantError> {
        if dims == 0 || !data.len().is_multiple_of(dims) {
            return Err(QuantError::DimensionMismatch {
                expected: dims.max(1),
                actual: data.len(),
            });
        }
        let tokens = data
            .chunks(dims)
            .map(|row| DigitPlanes::from_values(row, digit_bits, bits))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { tokens, digit_bits, bits, dims })
    }

    /// Number of tokens (rows).
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Number of hidden dimensions per token.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Digit width of the decomposition.
    #[must_use]
    pub fn digit_bits(&self) -> u32 {
        self.digit_bits
    }

    /// Total operand bit width.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Digit rounds per token.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.bits / self.digit_bits
    }

    /// All digit rounds of token `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.tokens()`.
    #[must_use]
    pub fn token(&self, j: usize) -> &DigitPlanes {
        &self.tokens[j]
    }

    /// Bytes occupied by a single digit round of a single token, rounded up
    /// to whole bytes (what one digit-round fetch transfers).
    #[must_use]
    pub fn round_bytes(&self) -> usize {
        (self.dims * self.digit_bits as usize).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{plane_weight, uncertainty_span, TokenPlanes};
    use proptest::prelude::*;

    #[test]
    fn round_counts_and_weights() {
        assert_eq!(digit_rounds(8, 1), 8);
        assert_eq!(digit_rounds(8, 4), 2);
        assert_eq!(digit_weight(0, 4, 8), 16);
        assert_eq!(digit_weight(1, 4, 8), 1);
        assert_eq!(digit_weight(0, 8, 8), 1);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn ragged_digit_width_is_rejected() {
        let _ = digit_rounds(8, 3);
    }

    #[test]
    fn spans_match_bit_plane_spans_at_digit_boundaries() {
        for d in [1u32, 2, 4, 8] {
            for r in 0..digit_rounds(8, d) {
                assert_eq!(
                    digit_uncertainty_span(r, d, 8),
                    uncertainty_span(digit_round_to_plane(r, d, 8), 8),
                    "d={d} r={r}"
                );
            }
        }
    }

    #[test]
    fn top_digit_is_signed_rest_unsigned() {
        let d = DigitPlanes::from_values(&[-128, 127, -1, 0], 4, 8).unwrap();
        // -128 = 1000_0000 → top digit 1000 = -8, low digit 0000 = 0.
        assert_eq!(d.round(0).digits(), &[-8, 7, -1, 0]);
        assert_eq!(d.round(1).digits(), &[0, 15, 15, 0]);
        assert!(d.round(0).is_signed());
        assert!(!d.round(1).is_signed());
    }

    #[test]
    fn single_round_digit_is_the_value_itself() {
        let vals: [i8; 5] = [-128, -5, 0, 5, 127];
        let d = DigitPlanes::from_values(&vals, 8, 8).unwrap();
        assert_eq!(d.rounds(), 1);
        let digits: Vec<i16> = vals.iter().map(|&v| i16::from(v)).collect();
        assert_eq!(d.round(0).digits(), digits.as_slice());
    }

    #[test]
    fn masked_dot_is_plain_dot_of_digits() {
        let d = DigitPlanes::from_values(&[5, -5, 64], 2, 8).unwrap();
        let q: [i8; 3] = [1, 2, 3];
        // Round 0 digits of [5, -5, 64]: 5=0000_0101→00→0; -5=1111_1011→11→-1;
        // 64=0100_0000→01→1.
        assert_eq!(d.round(0).digits(), &[0, -1, 1]);
        assert_eq!(d.round(0).masked_dot(&q), 0 - 2 + 3);
    }

    #[test]
    fn matrix_round_trip_and_payloads() {
        let data: Vec<i8> = vec![6, -5, 9, -4, 127, -128, 0, 1];
        let m = DigitPlaneMatrix::from_rows(&data, 4, 2, 8).unwrap();
        assert_eq!(m.tokens(), 2);
        assert_eq!(m.rounds(), 4);
        assert_eq!(m.round_bytes(), 1);
        let rec: Vec<i32> = (0..2).flat_map(|j| m.token(j).reconstruct()).collect();
        assert_eq!(rec, data.iter().map(|&v| i32::from(v)).collect::<Vec<_>>());
    }

    #[test]
    fn matrix_rejects_bad_shapes() {
        assert!(DigitPlaneMatrix::from_rows(&[1, 2, 3], 2, 2, 8).is_err());
        assert!(DigitPlaneMatrix::from_rows(&[1, 2], 2, 3, 8).is_err());
        assert!(DigitPlaneMatrix::from_rows(&[1, 2], 0, 2, 8).is_err());
    }

    proptest! {
        #[test]
        fn prop_digit_reconstruction_is_exact(
            values in proptest::collection::vec(any::<i8>(), 1..150),
            d in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        ) {
            let planes = DigitPlanes::from_values(&values, d, 8).unwrap();
            prop_assert_eq!(
                planes.reconstruct(),
                values.iter().map(|&v| i32::from(v)).collect::<Vec<_>>()
            );
        }

        #[test]
        fn prop_digit_partial_equals_bit_partial_at_boundaries(
            q in proptest::collection::vec(any::<i8>(), 1..64),
            seed in any::<u64>(),
            d in prop_oneof![Just(1u32), Just(2), Just(4)],
        ) {
            // The digit-serial partial after round r must equal the
            // bit-serial partial after plane d(r+1)−1: multi-bit fusion
            // changes the schedule, never the numbers.
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    let h = seed.wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((i as u64).wrapping_mul(0xD1B54A32D192ED03));
                    (h >> 17) as u8 as i8
                })
                .collect();
            let digits = DigitPlanes::from_values(&k, d, 8).unwrap();
            let bits = TokenPlanes::from_values(&k, 8);
            let mut digit_partial = 0i64;
            for r in 0..digit_rounds(8, d) {
                digit_partial += i64::from(digit_weight(r, d, 8)) * digits.round(r).masked_dot(&q);
                let plane_r = digit_round_to_plane(r, d, 8);
                let bit_partial: i64 = (0..=plane_r)
                    .map(|p| i64::from(plane_weight(p, 8)) * i64::from(bits.plane(p).masked_sum(&q)))
                    .sum();
                prop_assert_eq!(digit_partial, bit_partial, "d={} round {}", d, r);
            }
        }

        #[test]
        fn prop_full_digit_sum_is_exact_dot(
            q in proptest::collection::vec(any::<i8>(), 1..64),
            seed in any::<u64>(),
            d in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        ) {
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    (seed.wrapping_add((i as u64).wrapping_mul(0xA24BAED4963EE407)) >> 23) as u8
                        as i8
                })
                .collect();
            let digits = DigitPlanes::from_values(&k, d, 8).unwrap();
            let exact: i64 = q.iter().zip(&k).map(|(&a, &b)| i64::from(a) * i64::from(b)).sum();
            let total: i64 = (0..digit_rounds(8, d))
                .map(|r| i64::from(digit_weight(r, d, 8)) * digits.round(r).masked_dot(&q))
                .sum();
            prop_assert_eq!(total, exact);
        }

        #[test]
        fn prop_unknown_digits_bounded_by_span(
            v in any::<i8>(),
            d in prop_oneof![Just(1u32), Just(2), Just(4)],
        ) {
            // Zeroing unknown digit rounds under-approximates by at most the
            // digit uncertainty span, never over-approximates.
            let planes = DigitPlanes::from_values(&[v], d, 8).unwrap();
            for r in 0..digit_rounds(8, d) {
                let known: i32 = (0..=r)
                    .map(|p| digit_weight(p, d, 8) * i32::from(planes.round(p).digits()[0]))
                    .sum();
                let diff = i32::from(v) - known;
                prop_assert!(diff >= 0, "d={} r={}: diff {}", d, r, diff);
                prop_assert!(diff <= digit_uncertainty_span(r, d, 8));
            }
        }
    }
}
