//! Fig. 17 — design-space exploration: (a) GSAT sub-group size vs area and
//! power; (b) scoreboard depth vs PE utilization under several sparsity
//! settings.

use pade_core::config::PadeConfig;
use pade_energy::area::gsat_cost;
use pade_experiments::report::{banner, Table};
use pade_experiments::runner::{run_pade, Workload};
use pade_workload::{model, task};

fn main() {
    banner("Fig. 17(a)", "GSAT sub-group size vs normalized area and power");
    let sizes = [2usize, 4, 8, 16, 32, 64];
    let max_area = sizes.iter().map(|&g| gsat_cost(g).0).fold(0.0f64, f64::max);
    let max_power = sizes.iter().map(|&g| gsat_cost(g).1).fold(0.0f64, f64::max);
    let mut table = Table::new(vec!["sub-group", "norm area", "norm power"]);
    for g in sizes {
        let (a, p) = gsat_cost(g);
        table.row(vec![
            g.to_string(),
            format!("{:.2}", a / max_area),
            format!("{:.2}", p / max_power),
        ]);
    }
    println!("{}", table.render());
    println!("Optimal point: sub-group = 8 (the adopted configuration).");

    banner("Fig. 17(b)", "Scoreboard entries vs PE utilization under sparsity");
    let mut t = task::wikilingua();
    t.seq_len = 2048;
    // α controls the achieved sparsity band (≈95/90/85%-like settings).
    let alphas = [(1.0f32, "high sparsity"), (0.7, "mid sparsity"), (0.4, "very high sparsity")];
    let mut table = Table::new(vec!["entries", alphas[0].1, alphas[1].1, alphas[2].1]);
    for entries in [4usize, 8, 16, 32, 64] {
        let mut row = vec![entries.to_string()];
        for (alpha, _) in alphas {
            let w = Workload::new(model::llama2_7b(), t, 1800);
            let cfg = PadeConfig { scoreboard_entries: entries, alpha, ..PadeConfig::standard() };
            let (r, _) = run_pade(&w, cfg);
            // PE utilization = useful fraction of the QK horizon.
            let u = r.stats.pe_util.utilization();
            row.push(format!("{u:.2}"));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!("Shape to check: utilization rises with scoreboard depth and");
    println!("saturates around 32 entries (the adopted size, Table III).");
}
