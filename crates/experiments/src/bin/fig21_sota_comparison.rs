//! Fig. 21 — speedup and energy breakdown versus the SOTA accelerators on
//! Llama-2 (MHA), Llama-3 (GQA), ViT and PVT workloads.

use pade_baselines::{dota, energon, sanger, sofa, spatten_finetuned, Accelerator};
use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, pct, times, Table};
use pade_experiments::runner::{run_baseline, run_pade, Outcome, Workload};
use pade_linalg::metrics::geomean;
use pade_workload::{model, task};

fn breakdown(o: &Outcome) -> (f64, f64, f64) {
    let c = o.energy.combined();
    let total = c.total_pj().max(1e-12);
    (c.dram_pj / total, c.sram_pj / total, c.compute_pj / total)
}

fn main() {
    banner("Fig. 21", "Speedup and energy breakdown vs SOTA accelerators");
    let pairs = vec![
        (model::llama2_7b(), task::wikitext2(), "Llama2-7B (MHA)"),
        (model::llama3_8b(), task::wikitext2(), "Llama3-8B (GQA)"),
        (model::vit_l16(), task::imagenet(), "ViT-L/16"),
        (model::pvt(), task::imagenet(), "PVT (3k)"),
    ];
    let mut table = Table::new(vec![
        "workload",
        "design",
        "speedup vs SpAtten*",
        "energy vs PADE",
        "DRAM %",
        "buffer %",
        "compute %",
    ]);
    let mut speedups: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut savings: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for (m, t, label) in pairs {
        let mut t = t;
        if label.contains("PVT") {
            t.seq_len = 3072;
        }
        let w = Workload::new(m, t, 2300 + t.seq_len as u64);
        let designs: Vec<Box<dyn Accelerator>> = vec![
            Box::new(spatten_finetuned()),
            Box::new(sanger()),
            Box::new(dota()),
            Box::new(energon()),
            Box::new(sofa()),
        ];
        let outcomes: Vec<(String, Outcome)> = designs
            .iter()
            .map(|d| {
                let (_, o) = run_baseline(&w, d.as_ref());
                (d.name().to_string(), o)
            })
            .collect();
        let (_, pade) = run_pade(&w, PadeConfig::standard());
        let base_seconds = outcomes[0].1.seconds;
        for (name, o) in &outcomes {
            let (dram, buf, comp) = breakdown(o);
            table.row(vec![
                label.into(),
                name.clone(),
                times(base_seconds / o.seconds),
                times(o.energy.total_pj() / pade.energy.total_pj()),
                pct(dram),
                pct(buf),
                pct(comp),
            ]);
            speedups
                .entry(Box::leak(name.clone().into_boxed_str()))
                .or_default()
                .push(pade.seconds.recip() / o.seconds.recip());
            savings
                .entry(Box::leak(name.clone().into_boxed_str()))
                .or_default()
                .push(o.energy.total_pj() / pade.energy.total_pj());
        }
        let (dram, buf, comp) = breakdown(&pade);
        table.row(vec![
            label.into(),
            "PADE".into(),
            times(base_seconds / pade.seconds),
            times(1.0),
            pct(dram),
            pct(buf),
            pct(comp),
        ]);
        table.row(vec!["".into()]);
    }
    println!("{}", table.render());
    println!("PADE average speedup / energy saving vs each design:");
    for (name, v) in &speedups {
        println!(
            "  vs {:9} speedup {} | energy saving {}",
            name,
            times(geomean(v)),
            times(geomean(&savings[name])),
        );
    }
    println!("Paper: speedups 3x / 2.2x / 1.9x and energy savings 5.1x / 4.3x /");
    println!("3.4x over Sanger / DOTA / SOFA; larger gains on GQA (scoreboard");
    println!("key reuse) and on longer vision sequences (PVT vs ViT).");
}
