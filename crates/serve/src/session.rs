//! Session lifecycle: one admitted request, its operands and its engine
//! blocks.
//!
//! A session is created at admission. **Prefill** requests generate their
//! synthetic operand trace and decompose the key tensor into bit planes
//! **once**, held behind [`SharedKeyPlanes`] so every block the scheduler
//! dispatches — and every worker thread running one — borrows the same
//! immutable plane allocation. **Decode** requests instead run
//! autoregressive multi-step decode over a growable per-session KV plane
//! cache ([`GrowableKeyCache`]): the prompt prefix is decomposed into the
//! cache at admission, each completed step appends the key of the token
//! it just generated (one `O(H·bits)` decomposition, never a re-scan of
//! the prefix), and the next step attends over the grown prefix through a
//! cheap [`KeyCacheSnapshot`](pade_quant::KeyCacheSnapshot). The growth
//! schedule lives in [`RequestKind::context_len`], shared with the
//! from-scratch oracle below.
//!
//! Blocks are the scheduling quantum: a prefill request of `R` rows
//! yields `⌈R / pe_rows⌉` blocks (exactly the chunking of
//! [`pade_core::engine::run_qk_blocks`]), a decode request of `T` steps
//! yields `T` single-row blocks. Because each block simulates its own
//! HBM/SRAM instances — and because incremental appends decompose tokens
//! exactly as [`BitPlaneMatrix::from_rows`] does — the session's outputs
//! are bit-identical to running the same request alone over from-scratch
//! decompositions: the property `tests/` pins against the seed oracle
//! [`run_qk_block_reference`].
//!
//! [`run_qk_block_reference`]: pade_core::engine::run_qk_block_reference

use std::ops::Range;
use std::sync::Arc;

use pade_cache::{CacheLease, KvCacheManager};
use pade_core::config::PadeConfig;
use pade_core::engine::{run_qk_batch, KeySource, QkBatchJob, QkBlockResult, SharedKeyPlanes};
use pade_quant::{BitPlaneMatrix, GrowableKeyCache};
use pade_sim::Cycle;
use pade_workload::trace::{AttentionTrace, RequestArrival, RequestKind};

/// How a session stores its key planes.
#[derive(Debug)]
enum SessionKeys {
    /// Whole context decomposed once at admission (prefill without a
    /// cache manager).
    Shared(SharedKeyPlanes),
    /// Growable per-session cache: decode sessions append to it after
    /// every completed step; cache-managed sessions (decode *and*
    /// prefill) receive it pre-populated from
    /// [`KvCacheManager::attach`].
    Grown(GrowableKeyCache),
    /// The cache was handed back to the manager at retirement
    /// ([`Session::detach_cache`]); no further jobs exist.
    Detached,
}

/// One admitted request with its operands, key planes and progress.
#[derive(Debug)]
pub struct Session {
    spec: RequestArrival,
    trace: AttentionTrace,
    keys: SessionKeys,
    /// Key rows derived from the prompt token ids (`seq_len × H`,
    /// row-major) when the request carries a prompt; `None` means the
    /// operand trace's keys are the key tensor, as before.
    prompt_rows: Option<Vec<i8>>,
    /// Lease over shared index chunks, surrendered at retirement.
    lease: Option<CacheLease>,
    /// Whether the key planes came from a cache manager (and must go
    /// back to it through [`Session::detach_cache`]).
    managed: bool,
    rows_per_block: usize,
    blocks_total: usize,
    next_block: usize,
    results: Vec<QkBlockResult>,
    admitted: Cycle,
    /// Engine configuration, kept so a chunk-sliced prefill session can
    /// re-run its request through the engine's native `pe_rows` tiling at
    /// completion ([`Self::canonicalize_results`]).
    config: PadeConfig,
}

impl Session {
    /// Admits a request at time `admitted`: generates its operand trace
    /// and prepares its key planes — the whole context for prefill, the
    /// prompt prefix of a growable cache (sealing `kv_chunk_tokens`-token
    /// chunks) for decode.
    ///
    /// Requests carrying a [`prompt`](RequestArrival::prompt) derive
    /// their key rows from the prompt token ids instead of the operand
    /// trace, and — when a [`KvCacheManager`] is supplied — attach
    /// through it: the longest cached prefix (shared index or the
    /// session's stored cache) is adopted without decomposition and only
    /// the unseen suffix is decomposed. With `cache` absent the same
    /// prompt-derived rows are decomposed from scratch, so outputs are
    /// byte-identical with the manager on or off.
    ///
    /// `prefill_chunk_tokens` caps the query rows per prefill block
    /// (chunked prefill): `None` chunks by PE-row height exactly as
    /// [`run_qk_blocks`](pade_core::engine::run_qk_blocks), `Some(c)`
    /// uses `c.clamp(1, pe_rows)` rows per block (the fused dispatcher
    /// requires at most `pe_rows` rows per job). The slices are a
    /// scheduling/timing quantum only: the guard-filter's prune/retain
    /// decisions depend on the block-shared memory system, so a session
    /// sliced off the native tile height re-runs its request through the
    /// canonical `pe_rows` tiling once, at completion
    /// ([`absorb`](Self::absorb)) — per-request output bytes are
    /// therefore identical for every chunk size (property-tested in
    /// `tests/`).
    ///
    /// # Panics
    ///
    /// Panics if the request's trace cannot be decomposed under
    /// `config.bits`, `kv_chunk_tokens` is zero, the prompt length
    /// differs from the trace context, or the manager's shape differs
    /// from the request's.
    #[must_use]
    pub fn admit(
        spec: &RequestArrival,
        config: &PadeConfig,
        kv_chunk_tokens: usize,
        prefill_chunk_tokens: Option<usize>,
        admitted: Cycle,
        cache: Option<&mut KvCacheManager>,
    ) -> Self {
        let trace = AttentionTrace::generate(&spec.trace);
        let dims = trace.keys().cols();
        let seq_len = trace.keys().rows();
        let (rows_per_block, blocks_total) = match spec.kind {
            // Prefill chunks by PE-row height (or the configured chunk),
            // exactly as run_qk_blocks when unset.
            RequestKind::Prefill { rows } => {
                let chunk =
                    prefill_chunk_tokens.map_or(config.pe_rows, |c| c.clamp(1, config.pe_rows));
                (chunk, rows.div_ceil(chunk))
            }
            // Decode: one query row per step.
            RequestKind::Decode { steps } => (1, steps),
        };
        let prompt_rows: Option<Vec<i8>> = spec.prompt.as_ref().map(|p| {
            assert_eq!(p.len(), seq_len, "prompt must carry one token id per key-context token");
            p.key_rows(dims, config.bits)
        });
        // The key prefix a block attends: prompt-derived when a prompt is
        // present, the operand trace's keys otherwise.
        let key_prefix = |tokens: usize| -> &[i8] {
            match &prompt_rows {
                Some(rows) => &rows[..tokens * dims],
                None => trace.key_prefix(tokens),
            }
        };
        // Tokens resident at admission: the whole context for prefill,
        // the step-0 prompt prefix for decode.
        let base = spec.kind.context_len(seq_len, 0);
        let mut lease = None;
        let mut managed = false;
        let keys = match (cache, &spec.prompt) {
            (Some(manager), Some(prompt)) => {
                let attached = manager
                    .attach(spec.session, &prompt.ids()[..base], key_prefix(base))
                    .expect("prompt key rows decompose under the manager's shape");
                lease = Some(attached.lease);
                managed = true;
                SessionKeys::Grown(attached.cache)
            }
            _ => match spec.kind {
                RequestKind::Prefill { .. } => SessionKeys::Shared(Arc::new(
                    BitPlaneMatrix::from_rows(key_prefix(base), dims, config.bits)
                        .expect("request key tensor decomposes into bit planes"),
                )),
                RequestKind::Decode { .. } => {
                    let mut cache = GrowableKeyCache::new(dims, config.bits, kv_chunk_tokens)
                        .expect("request key tensor decomposes into bit planes");
                    cache
                        .append_rows(key_prefix(base))
                        .expect("prompt prefix decomposes into the cache");
                    SessionKeys::Grown(cache)
                }
            },
        };
        Self {
            spec: spec.clone(),
            trace,
            keys,
            prompt_rows,
            lease,
            managed,
            rows_per_block,
            blocks_total,
            next_block: 0,
            results: Vec::with_capacity(blocks_total),
            admitted,
            config: config.clone(),
        }
    }

    /// Binds the session's growable key cache (when it holds one) to
    /// `track` of `tracer`, so each decode-step append and chunk seal is
    /// recorded. A no-op for shared-plane prefill sessions. Outputs are
    /// unaffected.
    pub fn bind_trace(&mut self, tracer: &pade_trace::Tracer, track: u64) {
        if let SessionKeys::Grown(cache) = &mut self.keys {
            cache.set_trace(tracer.clone(), track);
        }
    }

    /// The admitted request.
    #[must_use]
    pub fn spec(&self) -> &RequestArrival {
        &self.spec
    }

    /// Admission time (≥ the request's arrival time).
    #[must_use]
    pub fn admitted(&self) -> Cycle {
        self.admitted
    }

    /// Engine blocks this request decomposes into.
    #[must_use]
    pub fn blocks_total(&self) -> usize {
        self.blocks_total
    }

    /// Blocks already executed. Tracked by dispatch progress, not
    /// `results.len()`: a chunk-sliced prefill session's results collapse
    /// to the canonical tiling at completion
    /// ([`canonicalize_results`](Self::canonicalize_results)).
    #[must_use]
    pub fn blocks_done(&self) -> usize {
        self.next_block
    }

    /// Whether every block has been executed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.next_block == self.blocks_total
    }

    /// Query rows (≙ tokens) this request executes in total.
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.spec.kind.tokens() as u64
    }

    /// Key tokens currently resident in this session's planes (grows step
    /// by step for decode sessions, constant for prefill; zero once the
    /// cache has been detached back to its manager).
    #[must_use]
    pub fn cached_key_tokens(&self) -> usize {
        match &self.keys {
            SessionKeys::Shared(planes) => planes.tokens(),
            SessionKeys::Grown(cache) => cache.tokens(),
            SessionKeys::Detached => 0,
        }
    }

    /// A bitwise fingerprint of this session's resident key planes: the
    /// whole plane set materialized into one [`BitPlaneMatrix`] (whose
    /// derived equality compares the packed plane words of every token).
    /// `None` once the cache has been detached.
    ///
    /// Determinism-suite introspection: the preemption property tests use
    /// it to prove a suspended-then-resumed session's planes are bitwise
    /// equal to a never-suspended session's at the same context length.
    #[must_use]
    pub fn key_planes(&self) -> Option<BitPlaneMatrix> {
        match &self.keys {
            SessionKeys::Shared(planes) => Some(planes.as_ref().clone()),
            SessionKeys::Grown(cache) => Some(cache.snapshot().materialize()),
            SessionKeys::Detached => None,
        }
    }

    /// The query-row range of block `block`.
    fn block_rows(&self, block: usize) -> Range<usize> {
        let total = self.spec.kind.tokens();
        let lo = block * self.rows_per_block;
        lo..((lo + self.rows_per_block).min(total))
    }

    /// Query-row (token) cost of the next block — the unit the scheduler's
    /// max-batch-tokens cap counts.
    ///
    /// # Panics
    ///
    /// Panics if the session is finished.
    #[must_use]
    pub fn next_block_tokens(&self) -> usize {
        assert!(!self.is_finished(), "finished session has no next block");
        self.block_rows(self.next_block).len()
    }

    /// The next block as a dispatchable engine job borrowing this
    /// session's operands and sharing its key planes: prefill blocks carry
    /// the `Arc`-shared whole tensor, decode blocks a snapshot of the
    /// grown prefix.
    ///
    /// # Panics
    ///
    /// Panics if the session is finished.
    #[must_use]
    pub fn next_job(&self) -> QkBatchJob<'_> {
        assert!(!self.is_finished(), "finished session has no next job");
        let rows = self.block_rows(self.next_block);
        let keys = match &self.keys {
            SessionKeys::Shared(planes) => KeySource::Planes(Arc::clone(planes)),
            SessionKeys::Grown(cache) => KeySource::Cache(cache.snapshot()),
            SessionKeys::Detached => unreachable!("detached sessions are finished"),
        };
        QkBatchJob {
            queries: rows.map(|i| self.trace.queries().row(i)).collect(),
            keys,
            logit_scale: self.trace.logit_scale(),
        }
    }

    /// Records the result of the block handed out by the last
    /// [`next_job`](Self::next_job) call. For decode sessions the
    /// completed step appends its generated token's key planes, so the
    /// next step attends over the grown prefix.
    pub fn absorb(&mut self, result: QkBlockResult) {
        debug_assert!(!self.is_finished());
        self.next_block += 1;
        self.results.push(result);
        if self.is_finished() {
            self.canonicalize_results();
        }
        if let SessionKeys::Grown(cache) = &mut self.keys {
            if self.next_block < self.blocks_total {
                let dims = self.trace.keys().cols();
                let target = self.spec.kind.context_len(self.trace.keys().rows(), self.next_block);
                while cache.tokens() < target {
                    let row = cache.tokens();
                    let values = match &self.prompt_rows {
                        Some(rows) => &rows[row * dims..(row + 1) * dims],
                        None => self.trace.keys().row(row),
                    };
                    cache
                        .append_token(values)
                        .expect("generated key row decomposes into the cache");
                }
            }
        }
    }

    /// Replaces a chunk-sliced prefill session's per-slice results with
    /// the request run through the engine's **native** `pe_rows` tiling —
    /// the grouping [`run_qk_blocks`](pade_core::engine::run_qk_blocks)
    /// and the seed oracle use. The guard filter's prune/retain decisions
    /// depend on the order key planes arrive through the block-shared
    /// memory system, so slice-grouped blocks are a timing model only;
    /// the session's *outputs* are always the canonical tiling's, which
    /// is what makes `prefill_chunk_tokens` output-invariant. A no-op for
    /// decode sessions and for prefill at the native tile height (their
    /// dispatched blocks already are canonical).
    fn canonicalize_results(&mut self) {
        let pe_rows = self.config.pe_rows;
        if !matches!(self.spec.kind, RequestKind::Prefill { .. }) || self.rows_per_block == pe_rows
        {
            return;
        }
        let total = self.spec.kind.tokens();
        let keys = match &self.keys {
            SessionKeys::Shared(planes) => KeySource::Planes(Arc::clone(planes)),
            SessionKeys::Grown(cache) => KeySource::Cache(cache.snapshot()),
            SessionKeys::Detached => unreachable!("results are canonicalized before detach"),
        };
        self.results = (0..total.div_ceil(pe_rows))
            .map(|b| {
                let rows = (b * pe_rows)..((b + 1) * pe_rows).min(total);
                let job = QkBatchJob {
                    queries: rows.map(|i| self.trace.queries().row(i)).collect(),
                    keys: keys.clone(),
                    logit_scale: self.trace.logit_scale(),
                };
                run_qk_batch(&self.config, &[job]).pop().expect("one job in, one result out")
            })
            .collect();
    }

    /// Hands a finished cache-managed session's grown planes back to the
    /// manager: the lease over shared index chunks is surrendered and the
    /// cache is stored for the session's next request (multi-turn
    /// resume). A no-op for sessions that were not admitted through a
    /// manager.
    ///
    /// # Panics
    ///
    /// Panics if the session still has blocks to run.
    pub fn detach_cache(&mut self, manager: &mut KvCacheManager) {
        assert!(self.is_finished(), "only finished sessions detach their caches");
        if !self.managed {
            return;
        }
        let SessionKeys::Grown(cache) = std::mem::replace(&mut self.keys, SessionKeys::Detached)
        else {
            unreachable!("managed sessions hold grown caches")
        };
        let prompt = self.spec.prompt.as_ref().expect("managed sessions carry prompts");
        // The store retains the id sequence; hand it the request's Arc
        // instead of letting it copy the ids eagerly.
        manager.detach(
            self.spec.session,
            prompt.shared_ids(),
            cache,
            self.lease.take().unwrap_or_default(),
        );
        self.managed = false;
    }

    /// Per-block engine results, in block order.
    #[must_use]
    pub fn results(&self) -> &[QkBlockResult] {
        &self.results
    }

    /// Consumes the session into its per-block results.
    #[must_use]
    pub fn into_results(self) -> Vec<QkBlockResult> {
        self.results
    }
}

/// Serializes per-block retained outputs into a canonical byte string —
/// the "per-request output bytes" the bit-identity property compares.
///
/// Layout per block, little-endian: for each query row a `u32` pair count
/// followed by `(u32 token, i64 score)` pairs in token order.
#[must_use]
pub fn output_bytes(results: &[QkBlockResult]) -> Vec<u8> {
    let mut out = Vec::new();
    for block in results {
        for row in &block.retained {
            out.extend_from_slice(&u32::try_from(row.len()).expect("row fits u32").to_le_bytes());
            for &(token, score) in row {
                out.extend_from_slice(&u32::try_from(token).expect("token fits u32").to_le_bytes());
                out.extend_from_slice(&score.to_le_bytes());
            }
        }
    }
    out
}

/// Runs every block of `spec` alone through the seed oracle
/// [`run_qk_block_reference`], re-decomposing the key prefix from scratch
/// with [`BitPlaneMatrix::from_rows`] at every block — the ground truth
/// the batched server's per-request outputs (and the growable caches'
/// incremental appends, shared or private) must match byte for byte.
/// Prompt-carrying requests re-derive their key rows from the prompt
/// token ids, exactly as admission does, so the oracle never touches a
/// cache of any kind.
///
/// [`run_qk_block_reference`]: pade_core::engine::run_qk_block_reference
#[must_use]
pub fn reference_outputs(spec: &RequestArrival, config: &PadeConfig) -> Vec<QkBlockResult> {
    let trace = AttentionTrace::generate(&spec.trace);
    let dims = trace.keys().cols();
    let (rows_per_block, blocks_total) = match spec.kind {
        RequestKind::Prefill { rows } => (config.pe_rows, rows.div_ceil(config.pe_rows)),
        RequestKind::Decode { steps } => (1, steps),
    };
    let total = spec.kind.tokens();
    let prompt_rows: Option<Vec<i8>> = spec.prompt.as_ref().map(|p| {
        assert_eq!(p.len(), trace.keys().rows(), "prompt must cover the whole key context");
        p.key_rows(dims, config.bits)
    });
    let decompose_prefix = |prefix: usize| {
        let rows = match &prompt_rows {
            Some(rows) => &rows[..prefix * dims],
            None => trace.key_prefix(prefix),
        };
        BitPlaneMatrix::from_rows(rows, dims, config.bits)
            .expect("key prefix decomposes into bit planes")
    };
    // Prefill blocks all attend the same full context — decompose once;
    // decode steps attend a growing prefix — re-decompose per step.
    let whole = match spec.kind {
        RequestKind::Prefill { .. } => Some(decompose_prefix(trace.keys().rows())),
        RequestKind::Decode { .. } => None,
    };
    (0..blocks_total)
        .map(|b| {
            let grown;
            let keys = match &whole {
                Some(k) => k,
                None => {
                    grown = decompose_prefix(spec.kind.context_len(trace.keys().rows(), b));
                    &grown
                }
            };
            let lo = b * rows_per_block;
            let queries: Vec<&[i8]> =
                (lo..(lo + rows_per_block).min(total)).map(|i| trace.queries().row(i)).collect();
            pade_core::engine::run_qk_block_reference(config, &queries, keys, trace.logit_scale())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_core::engine::run_qk_batch;
    use pade_quant::PlaneSource;
    use pade_workload::trace::{generate_arrivals, ArrivalConfig};

    const KV_CHUNK: usize = 64;

    fn specs() -> Vec<RequestArrival> {
        generate_arrivals(&ArrivalConfig::small_demo())
    }

    #[test]
    fn prefill_chunks_by_pe_rows_and_decode_by_step() {
        let config = PadeConfig::standard();
        for spec in specs() {
            let s = Session::admit(&spec, &config, KV_CHUNK, None, Cycle::ZERO, None);
            match spec.kind {
                RequestKind::Prefill { rows } => {
                    assert_eq!(s.blocks_total(), rows.div_ceil(config.pe_rows));
                    assert_eq!(s.next_block_tokens(), rows.min(config.pe_rows));
                }
                RequestKind::Decode { steps } => {
                    assert_eq!(s.blocks_total(), steps);
                    assert_eq!(s.next_block_tokens(), 1);
                }
            }
        }
    }

    #[test]
    fn session_blocks_cover_every_query_row_once() {
        let config = PadeConfig::standard();
        let spec = specs().into_iter().find(|s| s.kind.tokens() > config.pe_rows).unwrap();
        let session = Session::admit(&spec, &config, KV_CHUNK, None, Cycle::ZERO, None);
        let mut covered = Vec::new();
        for b in 0..session.blocks_total() {
            covered.extend(session.block_rows(b));
        }
        assert_eq!(covered, (0..spec.kind.tokens()).collect::<Vec<_>>());
    }

    #[test]
    fn prefill_key_planes_are_shared_not_cloned() {
        let config = PadeConfig::standard();
        let spec =
            specs().into_iter().find(|s| matches!(s.kind, RequestKind::Prefill { .. })).unwrap();
        let session = Session::admit(&spec, &config, KV_CHUNK, None, Cycle::ZERO, None);
        let job_a = session.next_job();
        let job_b = session.next_job();
        match (&job_a.keys, &job_b.keys) {
            (KeySource::Planes(a), KeySource::Planes(b)) => assert!(Arc::ptr_eq(a, b)),
            other => panic!("prefill jobs must carry shared planes, got {other:?}"),
        }
    }

    #[test]
    fn decode_prefix_grows_one_key_per_completed_step() {
        let config = PadeConfig::standard();
        let spec =
            specs().into_iter().find(|s| matches!(s.kind, RequestKind::Decode { .. })).unwrap();
        let seq_len = spec.trace.seq_len;
        let mut session = Session::admit(&spec, &config, KV_CHUNK, None, Cycle::ZERO, None);
        let mut prefixes = Vec::new();
        while !session.is_finished() {
            let step = session.blocks_done();
            assert_eq!(session.cached_key_tokens(), spec.kind.context_len(seq_len, step));
            let job = session.next_job();
            match &job.keys {
                KeySource::Cache(snap) => prefixes.push(snap.tokens()),
                other => panic!("decode jobs must carry cache snapshots, got {other:?}"),
            }
            let result = run_qk_batch(&config, &[job]).pop().unwrap();
            session.absorb(result);
        }
        // One more key per step; the final step attends over the full
        // prefix minus the token it is itself generating.
        let expect: Vec<usize> =
            (0..spec.kind.tokens()).map(|t| spec.kind.context_len(seq_len, t)).collect();
        assert_eq!(prefixes, expect);
        assert_eq!(*prefixes.last().unwrap(), seq_len - 1);
        for w in prefixes.windows(2) {
            assert_eq!(w[1], w[0] + 1, "prefix grows by exactly one key per step");
        }
    }

    #[test]
    fn decode_session_matches_growing_oracle() {
        let config = PadeConfig::standard();
        let spec =
            specs().into_iter().find(|s| matches!(s.kind, RequestKind::Decode { .. })).unwrap();
        let mut session = Session::admit(&spec, &config, KV_CHUNK, None, Cycle::ZERO, None);
        while !session.is_finished() {
            let job = session.next_job();
            let result = run_qk_batch(&config, &[job]).pop().unwrap();
            session.absorb(result);
        }
        let oracle = reference_outputs(&spec, &config);
        assert_eq!(output_bytes(session.results()), output_bytes(&oracle));
    }

    #[test]
    fn output_bytes_round_trip_distinguish_results() {
        let config = PadeConfig::standard();
        let all = specs();
        let a = reference_outputs(&all[0], &config);
        let b = reference_outputs(&all[1], &config);
        assert_eq!(output_bytes(&a), output_bytes(&a));
        assert_ne!(output_bytes(&a), output_bytes(&b));
        assert!(!output_bytes(&a).is_empty());
    }
}
