//! Sharded-output merge verification over `pade-dist`'s `(m, l, O)`
//! machinery.
//!
//! The router shards *requests* across nodes, so per query row exactly
//! one node holds a non-empty retained set and every other node holds
//! the neutral state. A downstream fabric that gathers the fleet's
//! outputs therefore reduces, per row, one real [`PartialAttention`]
//! state against `N − 1` neutral ones — and because merging with the
//! neutral state is exact (no rescaling happens: the non-empty operand
//! is copied or returned unchanged), the reduced state is
//! **byte-for-byte** the owning node's own state, in every reduction
//! order. [`verify_partial_merge`] checks exactly that for every row of
//! every completion: build the per-node states, reduce them in node
//! order and in reverse, and compare the finalized `f32` outputs *by bit
//! pattern* against the single-node state.
//!
//! Scope, precisely: this pins the **reduction step** of a
//! request-sharded fleet — the `(m, l, O)` gather a downstream fabric
//! would run is bitwise-lossless. It deliberately does *not* re-check
//! placement or output correctness; those are pinned separately by the
//! byte-comparison of every fleet completion against the single-node
//! run and the seed oracle (router tests and the route bench both do
//! this). Together the two checks cover the ISSUE 5 obligation:
//! sharded outputs merge to the single-node result byte for byte.

use pade_dist::partial::{reduce_states, PartialAttention};

use crate::router::RouterReport;

/// Logit scale used to map retained integer scores into the softmax
/// domain for the merge check. Any fixed positive value proves the same
/// identity; this one keeps `exp` comfortably in range for the engine's
/// i64 scores.
const CHECK_SCALE: f32 = 1e-4;

/// A deterministic synthetic value row for a retained token — the merge
/// identity holds for arbitrary values, so the check synthesizes them
/// instead of regenerating every request's operand trace.
fn value_row(token: usize, dims: usize) -> Vec<f32> {
    (0..dims)
        .map(|d| {
            let mut z = (token as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((d as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// Verifies, for every query row of every completion in `report`, that
/// reducing the per-node `(m, l, O)` states — the owning node's real
/// state plus one neutral state per other node — reproduces the owning
/// node's finalized output **byte for byte**, in node order and in
/// reverse node order. Returns the number of rows verified.
///
/// # Panics
///
/// Panics on any bit-level divergence — the merge identity is an
/// invariant of the sharding, not a metric.
pub fn verify_partial_merge(report: &RouterReport, dims: usize) -> usize {
    let n_nodes = report.node_reports.len();
    let mut rows_checked = 0usize;
    for (owner, node_report) in report.node_reports.iter().enumerate() {
        for completion in &node_report.completions {
            for block in &completion.results {
                for retained in &block.retained {
                    let scores: Vec<f32> =
                        retained.iter().map(|&(_, s)| s as f32 * CHECK_SCALE).collect();
                    let values: Vec<Vec<f32>> =
                        retained.iter().map(|&(t, _)| value_row(t, dims)).collect();
                    let refs: Vec<&[f32]> = values.iter().map(Vec::as_slice).collect();
                    let single = PartialAttention::from_scores(dims, &scores, &refs).finalize();

                    // One state per node: the owner's real state, neutral
                    // elsewhere — the fleet's reduction payload for this row.
                    let states: Vec<PartialAttention> = (0..n_nodes)
                        .map(|k| {
                            if k == owner {
                                PartialAttention::from_scores(dims, &scores, &refs)
                            } else {
                                PartialAttention::new(dims)
                            }
                        })
                        .collect();
                    let forward = reduce_states(dims, &states).finalize();
                    let mut reversed = states;
                    reversed.reverse();
                    let backward = reduce_states(dims, &reversed).finalize();

                    for ((a, b), c) in single.iter().zip(&forward).zip(&backward) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "request {}: forward-merged shard output diverged bitwise",
                            completion.id
                        );
                        assert_eq!(
                            a.to_bits(),
                            c.to_bits(),
                            "request {}: reduction order changed the merged bits",
                            completion.id
                        );
                    }
                    rows_checked += 1;
                }
            }
        }
    }
    rows_checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RoutePolicy;
    use crate::router::{route, RouterConfig};
    use pade_serve::scheduler::ScheduleMode;
    use pade_serve::server::ServeConfig;
    use pade_workload::prompt::{generate_multi_tenant_arrivals, MultiTenantConfig};

    #[test]
    fn merged_shard_states_are_bitwise_single_node() {
        let arrivals = generate_multi_tenant_arrivals(&MultiTenantConfig {
            tenants: 2,
            sessions_per_tenant: 2,
            ..MultiTenantConfig::small_demo()
        });
        let config = RouterConfig::homogeneous(
            ServeConfig { kv_chunk_tokens: 32, ..ServeConfig::standard() },
            3,
            RoutePolicy::Affinity,
        );
        let report = route(&config, &arrivals, ScheduleMode::Batched);
        let rows = verify_partial_merge(&report, 8);
        assert!(rows > 0, "the check must cover at least one retained row");
    }

    #[test]
    fn value_rows_are_deterministic_and_bounded() {
        assert_eq!(value_row(42, 6), value_row(42, 6));
        assert_ne!(value_row(42, 6), value_row(43, 6));
        assert!(value_row(7, 64).iter().all(|v| (-1.0..=1.0).contains(v)));
    }
}
