//! Shared seeded-RNG and random-tensor helpers for the workspace's tests.
//!
//! Before this crate, every `tests/` directory (and several inline
//! `mod tests`) carried its own copy of the same golden-ratio hash mix
//! and "fill a vector from a seed" loop. Those copies drifted in
//! constants and ranges, which made cross-crate property tests subtly
//! non-comparable. This crate is the single home for the idiom:
//!
//! * deterministic — a pure function of `(seed, index)`, no global RNG,
//!   no wall clock, identical on every machine (the same discipline the
//!   vendored `proptest` shim and `pade_workload`'s trace generator
//!   follow);
//! * dependency-light — hash mixing only, so it can be a
//!   `dev-dependency` of any crate (including `pade-linalg` itself:
//!   dev-dependency cycles are fine with Cargo).
//!
//! Use [`vec_f32`]/[`mat_f32`] for float tensors, [`vec_i8`] /
//! [`vec_i8_bits`] for quantized operands that must fit a two's-complement
//! width, and [`mix`] when a test needs raw hash bits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pade_linalg::MatF32;

/// SplitMix64-style finalizer: a well-mixed pure function of `x`.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixed hash of `(seed, index)` — the per-element bit source behind
/// every helper here.
#[must_use]
pub fn mix(seed: u64, index: usize) -> u64 {
    splitmix64(seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A seeded `f32` vector with elements approximately uniform in
/// `[-span, span]`.
#[must_use]
pub fn vec_f32(n: usize, seed: u64, span: f32) -> Vec<f32> {
    (0..n).map(|i| ((mix(seed, i) >> 40) as f32 / (1u64 << 24) as f32 - 0.5) * 2.0 * span).collect()
}

/// A seeded `rows × cols` float matrix with elements approximately
/// uniform in `[-span, span]`.
#[must_use]
pub fn mat_f32(rows: usize, cols: usize, seed: u64, span: f32) -> MatF32 {
    MatF32::from_vec(vec_f32(rows * cols, seed, span), rows, cols)
}

/// A seeded `i8` vector covering the full `[-128, 127]` range.
#[must_use]
pub fn vec_i8(n: usize, seed: u64) -> Vec<i8> {
    (0..n).map(|i| (mix(seed, i) >> 40) as u8 as i8).collect()
}

/// A seeded `i8` vector whose values fit `bits`-wide two's complement
/// (`-2^(bits-1) ..= 2^(bits-1)-1`) — valid operands for
/// `TokenPlanes::from_values` and friends at any supported width.
///
/// # Panics
///
/// Panics if `bits` is outside `1..=8`.
#[must_use]
pub fn vec_i8_bits(n: usize, seed: u64, bits: u32) -> Vec<i8> {
    assert!((1..=8).contains(&bits), "{bits}-bit values do not fit i8");
    let span = 1i64 << bits;
    (0..n)
        .map(|i| {
            let pattern = ((mix(seed, i) >> 40) as i64).rem_euclid(span);
            let value = if pattern >= span / 2 { pattern - span } else { pattern };
            i8::try_from(value).expect("pattern fits the width by construction")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_deterministic_per_seed() {
        assert_eq!(vec_f32(16, 3, 2.0), vec_f32(16, 3, 2.0));
        assert_ne!(vec_f32(16, 3, 2.0), vec_f32(16, 4, 2.0));
        assert_eq!(vec_i8(16, 5), vec_i8(16, 5));
        assert_eq!(vec_i8_bits(16, 5, 4), vec_i8_bits(16, 5, 4));
        assert_eq!(mix(9, 7), mix(9, 7));
        assert_ne!(mix(9, 7), mix(9, 8));
    }

    #[test]
    fn float_values_respect_the_span() {
        for &span in &[0.5f32, 4.0, 100.0] {
            assert!(vec_f32(256, 11, span).iter().all(|x| x.abs() <= span));
        }
        let m = mat_f32(5, 7, 2, 3.0);
        assert_eq!((m.rows(), m.cols()), (5, 7));
    }

    #[test]
    fn i8_values_fit_their_width() {
        for bits in 1..=8u32 {
            let lo = -(1i32 << (bits - 1));
            let hi = (1i32 << (bits - 1)) - 1;
            let v = vec_i8_bits(512, 7, bits);
            assert!(v.iter().all(|&x| (lo..=hi).contains(&i32::from(x))), "bits={bits}");
        }
        // The full-range helper actually exercises the extremes.
        let full = vec_i8(4096, 1);
        assert!(full.iter().any(|&x| x < -100));
        assert!(full.iter().any(|&x| x > 100));
    }

    #[test]
    fn narrow_widths_cover_both_signs() {
        let v = vec_i8_bits(256, 3, 2);
        assert!(v.iter().any(|&x| x < 0) && v.iter().any(|&x| x >= 0));
        assert!(v.iter().all(|&x| (-2..=1).contains(&x)));
    }
}
