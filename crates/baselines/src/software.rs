//! Software-only sparse attention methods (Fig. 15).
//!
//! These methods choose retained keys in software and run on stock
//! hardware; the figure compares their accuracy at equal *sparsity level*
//! (the ratio of sparse execution cost — prediction plus computation — to
//! dense execution cost) and their end-to-end gains.
//!
//! * **StreamingLLM** — static pattern: attention sinks + a recency
//!   window. No prediction cost, no adaptivity.
//! * **MInference** — dynamic prediction constrained to predefined
//!   pattern families (we model the vertical-slash family: per-head
//!   column importance shared across query rows).
//! * **DoubleSparsity** — flexible dynamic top-k from a channel-sparse
//!   estimate; prediction work is not reusable by the execution step.

use pade_linalg::metrics::{cosine_similarity, retained_mass};
use pade_workload::trace::AttentionTrace;

/// Result of a software method on one block.
#[derive(Debug, Clone)]
pub struct SoftwareResult {
    /// Method name.
    pub name: &'static str,
    /// Retained keys per query row.
    pub retained: Vec<Vec<usize>>,
    /// Mean output cosine fidelity.
    pub fidelity: f64,
    /// Mean retained softmax mass.
    pub retained_mass: f64,
    /// Sparsity level: (prediction + sparse execution) cost over dense
    /// execution cost, in MAC-equivalents (the x-axis of Fig. 15(a)(b)).
    pub sparsity_level: f64,
}

fn summarize(
    name: &'static str,
    trace: &AttentionTrace,
    retained: Vec<Vec<usize>>,
    prediction_macs_per_row: f64,
) -> SoftwareResult {
    let n_q = trace.queries().rows();
    let s = trace.keys().rows();
    let h = trace.keys().cols();
    let dense_macs = (2 * s * h) as f64;
    let mut fid = 0.0;
    let mut mass = 0.0;
    let mut cost = 0.0;
    for (row, ids) in retained.iter().enumerate() {
        let logits = trace.exact_logits(row);
        mass += f64::from(retained_mass(&logits, ids));
        let out = trace.subset_output(row, ids);
        let reference = trace.reference_output(row);
        fid += f64::from(cosine_similarity(&out, &reference));
        cost += (prediction_macs_per_row + (2 * ids.len() * h) as f64) / dense_macs;
    }
    SoftwareResult {
        name,
        retained,
        fidelity: fid / n_q as f64,
        retained_mass: mass / n_q as f64,
        sparsity_level: cost / n_q as f64,
    }
}

/// StreamingLLM: keep `sinks` initial tokens plus a `window`-token recency
/// window. The pattern is static — it never adapts to content.
#[must_use]
pub fn streaming_llm(trace: &AttentionTrace, sinks: usize, window: usize) -> SoftwareResult {
    let s = trace.keys().rows();
    let n_q = trace.queries().rows();
    let per_row: Vec<usize> =
        (0..s).filter(|&j| j < sinks || j >= s.saturating_sub(window)).collect();
    let retained = vec![per_row; n_q];
    summarize("StreamingLLM", trace, retained, 0.0)
}

/// MInference-style pattern-constrained dynamic sparsity: sinks + window
/// plus the strongest vertical lines (columns ranked by a strided estimate
/// shared across the block's query rows).
#[must_use]
pub fn minference(trace: &AttentionTrace, budget_ratio: f32) -> SoftwareResult {
    let s = trace.keys().rows();
    let n_q = trace.queries().rows();
    let h = trace.keys().cols();
    let sinks = 4.min(s);
    let window = (s / 16).max(8).min(s);
    let budget = ((s as f32 * budget_ratio) as usize).clamp(1, s);

    // Column scores: the strongest logit a column reaches across the
    // block's query rows (vertical-line detection — a column that any
    // query depends on strongly becomes a kept vertical).
    let mut column_score = vec![f32::NEG_INFINITY; s];
    for row in 0..n_q {
        let logits = trace.exact_logits(row);
        for j in 0..s {
            column_score[j] = column_score[j].max(logits[j]);
        }
    }
    let mut order: Vec<usize> = (0..s).collect();
    order.sort_by(|&a, &b| {
        column_score[b].partial_cmp(&column_score[a]).expect("scores must not be NaN")
    });

    let mut kept: Vec<usize> =
        (0..s).filter(|&j| j < sinks || j >= s.saturating_sub(window)).collect();
    for &j in &order {
        if kept.len() >= budget {
            break;
        }
        if !kept.contains(&j) {
            kept.push(j);
        }
    }
    kept.sort_unstable();
    let retained = vec![kept; n_q];
    // Pattern-detection pass: one strided estimate over the block.
    let prediction_macs = (s * h) as f64 / 4.0;
    summarize("MInference", trace, retained, prediction_macs)
}

/// DoubleSparsity: per-row top-k from a channel-sparse estimate using the
/// `channels` highest-magnitude query channels. Prediction work is thrown
/// away after selection (the paper's reuse critique).
#[must_use]
pub fn double_sparsity(trace: &AttentionTrace, keep_ratio: f32, channels: usize) -> SoftwareResult {
    let s = trace.keys().rows();
    let n_q = trace.queries().rows();
    let h = trace.keys().cols();
    let channels = channels.clamp(1, h);
    let k = ((s as f32 * keep_ratio).ceil() as usize).clamp(1, s);

    let mut retained = Vec::with_capacity(n_q);
    for row in 0..n_q {
        let q = trace.queries().row(row);
        // Top channels of |q|.
        let mut dims: Vec<usize> = (0..h).collect();
        dims.sort_by_key(|&d| std::cmp::Reverse(q[d].unsigned_abs()));
        let active = &dims[..channels];
        let estimates: Vec<f32> = (0..s)
            .map(|j| {
                let krow = trace.keys().row(j);
                active.iter().map(|&d| f32::from(q[d]) * f32::from(krow[d])).sum::<f32>()
                    * trace.logit_scale()
            })
            .collect();
        let mut order: Vec<usize> = (0..s).collect();
        order.sort_by(|&a, &b| {
            estimates[b].partial_cmp(&estimates[a]).expect("estimates must not be NaN")
        });
        let mut kept: Vec<usize> = order.into_iter().take(k).collect();
        kept.sort_unstable();
        retained.push(kept);
    }
    let prediction_macs = (s * channels) as f64;
    summarize("DoubleSparsity", trace, retained, prediction_macs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::profile::ScoreProfile;
    use pade_workload::trace::TraceConfig;

    fn trace() -> AttentionTrace {
        AttentionTrace::generate(&TraceConfig {
            seq_len: 512,
            profile: ScoreProfile::long_context(),
            ..TraceConfig::small_demo()
        })
    }

    #[test]
    fn streaming_llm_is_static_and_cheap() {
        let t = trace();
        let r = streaming_llm(&t, 4, 64);
        assert_eq!(r.retained[0].len(), 68);
        // Same set for every row.
        assert!(r.retained.windows(2).all(|w| w[0] == w[1]));
        // No prediction cost: sparsity level == execution share.
        assert!(r.sparsity_level < 0.2);
    }

    #[test]
    fn dynamic_methods_beat_static_at_equal_budget() {
        let t = trace();
        let budget = 0.12f32;
        let stat = streaming_llm(&t, 4, (512.0 * budget) as usize - 4);
        let ds = double_sparsity(&t, budget, 16);
        assert!(
            ds.fidelity >= stat.fidelity,
            "dynamic {} vs static {}",
            ds.fidelity,
            stat.fidelity
        );
    }

    #[test]
    fn minference_beats_static_at_matched_budget() {
        let t = trace();
        let mi = minference(&t, 0.15);
        let matched_window = mi.retained[0].len().saturating_sub(4);
        let stat = streaming_llm(&t, 4, matched_window);
        assert!(
            mi.fidelity > stat.fidelity,
            "pattern adaptivity should pay: {} vs {}",
            mi.fidelity,
            stat.fidelity
        );
        assert!(mi.sparsity_level > stat.sparsity_level, "prediction costs something");
    }

    #[test]
    fn double_sparsity_prediction_is_unreusable_overhead() {
        let t = trace();
        let r = double_sparsity(&t, 0.1, 16);
        let exec_share = r.retained[0].len() as f64 * 2.0 * 64.0 / (2.0 * 512.0 * 64.0);
        assert!(r.sparsity_level > exec_share, "sparsity level must include prediction");
    }

    #[test]
    fn keep_ratio_controls_budget() {
        let t = trace();
        let small = double_sparsity(&t, 0.05, 16);
        let large = double_sparsity(&t, 0.3, 16);
        assert!(large.retained[0].len() > small.retained[0].len());
        assert!(large.fidelity >= small.fidelity);
    }
}
