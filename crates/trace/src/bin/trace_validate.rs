//! `pade-trace-validate` — checks a Chrome-trace JSON file emitted by
//! `--trace-out`: the file must parse as JSON and every `B` event must be
//! closed by an `E` on the same track. Used by the CI smoke step.
//!
//! Usage: `pade-trace-validate <trace.json> [--min-stages N]`

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut path: Option<String> = None;
    let mut min_stages = 0usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-stages" => {
                let v = args.next().unwrap_or_default();
                match v.parse() {
                    Ok(n) => min_stages = n,
                    Err(_) => {
                        eprintln!("error: --min-stages needs an integer, got '{v}'");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: pade-trace-validate <trace.json> [--min-stages N]");
                return ExitCode::SUCCESS;
            }
            other if path.is_none() => path = Some(other.to_string()),
            other => {
                eprintln!("error: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: pade-trace-validate <trace.json> [--min-stages N]");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match pade_trace::validate_chrome_trace(&text) {
        Ok(summary) => {
            println!(
                "{path}: valid — {} events, {} spans, {} counter events, {} stage names",
                summary.events,
                summary.spans,
                summary.counter_events,
                summary.stage_names.len()
            );
            for name in &summary.stage_names {
                println!("  stage {name}");
            }
            if summary.stage_names.len() < min_stages {
                eprintln!(
                    "error: only {} distinct stage names, need >= {min_stages}",
                    summary.stage_names.len()
                );
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
