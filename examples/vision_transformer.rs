//! Vision transformer scenario: flatter attention distributions (ViT vs
//! the long-sequence PVT), showing how achievable sparsity and PADE's
//! advantage grow with sequence length (Fig. 21's ViT-vs-PVT observation).
//!
//! ```text
//! cargo run --release --example vision_transformer
//! ```

use pade::core::accelerator::PadeAccelerator;
use pade::core::config::PadeConfig;
use pade::workload::profile::ScoreProfile;
use pade::workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    println!(
        "{:<12} {:>6} {:>8} {:>10} {:>12} {:>12}",
        "model", "S", "keep", "fidelity", "QK cycles", "dense cyc"
    );
    println!("{}", "-".repeat(64));
    for (name, s) in [("ViT-L/16", 576usize), ("PVT", 3072)] {
        let trace = AttentionTrace::generate(&TraceConfig {
            seq_len: s,
            head_dim: 64,
            n_queries: 8,
            profile: ScoreProfile::vision(),
            bits: 8,
            seed: 31,
        });
        let pade = PadeAccelerator::new(PadeConfig::standard()).run_trace(&trace);
        let dense = PadeAccelerator::new(PadeConfig::dense_baseline()).run_trace(&trace);
        println!(
            "{:<12} {:>6} {:>7.1}% {:>10.4} {:>12} {:>12}",
            name,
            s,
            pade.stats.keep_ratio() * 100.0,
            pade.fidelity,
            pade.stats.cycles.0,
            dense.stats.cycles.0,
        );
    }
    println!();
    println!("Patch attention is flatter than language attention, so vision");
    println!("keep ratios are higher — but the longer PVT sequence still gives");
    println!("PADE a larger relative win than the short ViT one.");
}
