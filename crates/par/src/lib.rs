//! Deterministic ordered fork-join fan-out.
//!
//! The build environment is offline, so this crate stands in for `rayon`
//! with the two primitives the workspace's `parallel` features need:
//! ordered parallel map over an index range / slice, and disjoint-chunk
//! parallel mutation. Work is split into one contiguous range per worker
//! on `std::thread::scope`; results are concatenated in range order, so
//! output ordering (and therefore every downstream reduction) is
//! identical to the sequential loop regardless of thread count or
//! scheduling. Swap for `rayon` when a registry is reachable.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::thread;

/// Worker-thread budget: `PADE_THREADS` if set, else the machine's
/// available parallelism.
#[must_use]
pub fn max_threads() -> usize {
    if let Ok(v) = std::env::var("PADE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Splits `0..n` into at most `workers` contiguous ranges of near-equal
/// length (never empty).
fn split_ranges(n: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = workers.clamp(1, n.max(1));
    let base = n / workers;
    let extra = n % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        if len == 0 {
            break;
        }
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Ordered parallel map over `0..n`: returns `[f(0), f(1), ..., f(n-1)]`.
///
/// Falls back to a sequential loop for a single worker or tiny `n`, so
/// the result is always identical to `(0..n).map(f).collect()`.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = max_threads();
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = split_ranges(n, workers);
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
    thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| {
                let f = &f;
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("pade-par worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Ordered parallel map over a slice.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Applies `f(chunk_index, chunk)` to disjoint `chunk_len`-sized pieces of
/// `data` in parallel (last chunk may be shorter). Chunks are disjoint
/// `&mut` borrows, so this is safe without any synchronization.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let workers = max_threads();
    if workers <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    thread::scope(|scope| {
        let mut handles = Vec::new();
        let n_chunks = data.len().div_ceil(chunk_len);
        let per_worker = n_chunks.div_ceil(workers);
        let mut rest = data;
        let mut next_index = 0;
        while !rest.is_empty() {
            let take = (per_worker * chunk_len).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = next_index;
            next_index += head.len().div_ceil(chunk_len);
            let f = &f;
            handles.push(scope.spawn(move || {
                for (i, chunk) in head.chunks_mut(chunk_len).enumerate() {
                    f(base + i, chunk);
                }
            }));
        }
        for h in handles {
            h.join().expect("pade-par worker panicked");
        }
    });
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if max_threads() <= 1 {
        return (a(), b());
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("pade-par worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let got = par_map_indexed(1000, |i| i * 3);
        let want: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_over_slice() {
        let items: Vec<u32> = (0..257).collect();
        assert_eq!(par_map(&items, |&x| x + 1), (1..258).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn chunks_cover_all_elements_in_order() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 17, |idx, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = (idx * 17 + k) as u64;
            }
        });
        let want: Vec<u64> = (0..1003).collect();
        assert_eq!(data, want);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn split_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for w in [1usize, 2, 3, 8, 64] {
                let r = split_ranges(n, w);
                let total: usize = r.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, n, "n={n} w={w}");
                for win in r.windows(2) {
                    assert_eq!(win[0].1, win[1].0);
                }
            }
        }
    }
}
