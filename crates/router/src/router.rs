//! The router proper: one global clock, N serving nodes, one placement
//! decision per arrival.
//!
//! The fleet replays a seeded arrival trace in **global arrival order**.
//! For each arrival the router first advances every node's lockstep loop
//! to the arrival's cycle (so load reads are consistent across nodes at
//! that instant), then places the request:
//!
//! * [`RoutePolicy::Affinity`] — a returning session goes to its home
//!   node (where its stored cache lives); a new session whose prompt's
//!   leading chunks hash ([`prefix_shard_key`]) to a shard some node has
//!   already ingested goes there (the decomposed chunks are resident);
//!   anything else takes deterministic least-loaded placement and
//!   *claims* its shard key for that node.
//! * [`RoutePolicy::RoundRobin`] / [`RoutePolicy::LeastLoaded`] — the
//!   cache-blind baselines.
//!
//! With a [`FleetTierConfig`] the router also moves warm state, not
//! just requests: shards whose placement count crosses the hot
//! threshold are **replicated** (their content-addressed chunk records
//! copied to a second node, placements then balancing across the
//! residents), and a [`DrainPlan`] makes a node's shards **migrate**
//! to wherever its traffic re-homes. Transfers are costed against the
//! `pade-dist` interconnect model as pure accounting — node clocks
//! never include them.
//!
//! Placement changes **which node pays the KV-prep cost**, never what
//! any request computes: per-request outputs are placement-independent
//! (each block simulates its own memory system), so the fleet's merged
//! outputs are byte-identical to a single-node run of the same trace at
//! every node count and policy — the invariant `tests/` pins against
//! the seed oracle.

use std::collections::HashMap;

use pade_cache::{prefix_shard_key, ChunkRecord};
use pade_dist::{InterconnectConfig, Topology};
use pade_serve::node::Node;
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{Completion, ServeConfig, ServeReport};
use pade_sim::Cycle;
use pade_trace::{flight::hop, track as trace_track, Tracer};
use pade_workload::trace::RequestArrival;

use crate::metrics::{merge_node_reports, RouterSummary};
use crate::policy::{RouteDecision, RoutePolicy, RouteReason};

/// Configuration of one routed fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Per-node serving configurations — one entry per node. Usually
    /// homogeneous ([`RouterConfig::homogeneous`]); heterogeneous fleets
    /// (including degraded zero-slot nodes) are allowed and must not
    /// deadlock.
    pub nodes: Vec<ServeConfig>,
    /// The placement policy.
    pub policy: RoutePolicy,
    /// Leading prompt chunks (of `kv_chunk_tokens` tokens each) hashed
    /// into the affinity shard key. Small values cluster more
    /// aggressively (every prompt sharing one system prompt maps to one
    /// key); the default 1 clusters on the first chunk.
    pub affinity_chunks: usize,
    /// Fleet tier behavior: the interconnect model chunk-record
    /// transfers are costed against, and the hot-shard replication
    /// threshold. `None` disables replication and books transfers
    /// (e.g. drain migrations) without interconnect cost.
    pub tier: Option<FleetTierConfig>,
    /// A scheduled node drain. `None` drains nothing.
    pub drain: Option<DrainPlan>,
}

/// Fleet-level tier behavior: how peer chunk-record transfers are
/// costed and when a hot shard earns a replica.
///
/// Transfers move sealed, content-addressed plane chunks
/// ([`ChunkRecord`]) between node cache managers; importers re-derive
/// every record's key, so a replica is byte-identical to the home copy
/// by construction. All costs are **accounting only** — node clocks
/// never include transfer cycles, so fleet outputs stay byte-identical
/// with the tier on, off, or mid-migration.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTierConfig {
    /// The interconnect model transfers are costed against (hop latency
    /// plus link serialization, per-hop energy).
    pub interconnect: InterconnectConfig,
    /// A shard placed this many times — with proven cache hits at its
    /// home node — gets one replica on the least-loaded other node,
    /// after which residency-aware placement picks the least-loaded
    /// resident. `0` disables replication.
    pub replicate_hot_after: u64,
    /// Most chunks moved per transfer (prefix-leading chunks first).
    pub fetch_chunks: usize,
}

impl Default for FleetTierConfig {
    fn default() -> Self {
        Self {
            interconnect: InterconnectConfig::wafer_ring(),
            replicate_hot_after: 3,
            fetch_chunks: 64,
        }
    }
}

/// A scheduled drain: from arrival index `after_arrivals` of the
/// globally sorted trace on, node `node` takes no new placements, and
/// affinity traffic that would have gone there re-homes to the
/// least-loaded node **with its shard's chunk records migrated along**,
/// so the drained node's warm state follows the load instead of
/// stranding. Inert on single-node fleets (nowhere else to place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainPlan {
    /// The node to drain.
    pub node: usize,
    /// Arrival index at which the drain begins (`0` = from the start).
    pub after_arrivals: usize,
}

impl RouterConfig {
    /// `n_nodes` identical nodes under `policy`.
    ///
    /// A configured [`cache_file`](ServeConfig::cache_file) is made
    /// **per-node** (`<path>.node<k>`): each node owns its own cache
    /// manager, so sharing one image path would have the last node to
    /// finish silently overwrite every other node's warm state.
    ///
    /// # Panics
    ///
    /// Panics if `n_nodes` is zero.
    #[must_use]
    pub fn homogeneous(node: ServeConfig, n_nodes: usize, policy: RoutePolicy) -> Self {
        assert!(n_nodes > 0, "a fleet needs at least one node");
        let nodes = (0..n_nodes)
            .map(|k| {
                let mut node = node.clone();
                if let Some(path) = &node.cache_file {
                    let mut file = path.as_os_str().to_os_string();
                    file.push(format!(".node{k}"));
                    node.cache_file = Some(file.into());
                }
                node
            })
            .collect();
        Self { nodes, policy, affinity_chunks: 1, tier: None, drain: None }
    }
}

/// The result of one routed fleet run.
#[derive(Debug)]
pub struct RouterReport {
    /// The placement policy that produced this report.
    pub policy: RoutePolicy,
    /// One routing decision per arrival, in arrival order — the
    /// determinism fingerprint (equal seeds ⇒ equal decision logs).
    pub decisions: Vec<RouteDecision>,
    /// Per-node serve reports, in node order. Nodes that received no
    /// requests report zero completions.
    pub node_reports: Vec<ServeReport>,
    /// The fleet-level digest.
    pub summary: RouterSummary,
}

impl RouterReport {
    /// All completions across the fleet, sorted by request id.
    #[must_use]
    pub fn completions_by_id(&self) -> Vec<&Completion> {
        let mut out: Vec<&Completion> =
            self.node_reports.iter().flat_map(|r| r.completions.iter()).collect();
        out.sort_by_key(|c| c.id);
        out
    }

    /// The node each request was placed on, indexed by request id.
    #[must_use]
    pub fn placement(&self) -> HashMap<usize, usize> {
        self.decisions.iter().map(|d| (d.id, d.node)).collect()
    }
}

/// Replays `arrivals` through an N-node fleet under `config.policy`,
/// every node serving under `mode`.
///
/// # Panics
///
/// Panics if `arrivals` or `config.nodes` is empty, or any node's engine
/// configuration is invalid.
#[must_use]
pub fn route(
    config: &RouterConfig,
    arrivals: &[RequestArrival],
    mode: ScheduleMode,
) -> RouterReport {
    route_traced(config, arrivals, mode, &Tracer::disabled())
}

/// [`route`] with telemetry: node `k` records onto its `k`-owned serve,
/// engine, cache and quant tracks of `tracer`, and the router itself
/// records one `router.route` span bracketing the arrival replay, a
/// `router.place` instant plus a per-reason counter per decision. With a
/// disabled tracer this **is** [`route`]; either way the report is
/// byte-identical — tracing is a pure side channel (property-tested in
/// `tests/`).
///
/// # Panics
///
/// Panics if `arrivals` or `config.nodes` is empty, or any node's engine
/// configuration is invalid.
#[must_use]
pub fn route_traced(
    config: &RouterConfig,
    arrivals: &[RequestArrival],
    mode: ScheduleMode,
    tracer: &Tracer,
) -> RouterReport {
    assert!(!arrivals.is_empty(), "at least one request required");
    assert!(!config.nodes.is_empty(), "at least one node required");
    // Each node saves its own cache image at finish; two nodes sharing
    // one path would overwrite each other, destroying warm state.
    for (i, a) in config.nodes.iter().enumerate() {
        for b in &config.nodes[i + 1..] {
            assert!(
                a.cache_file.is_none() || a.cache_file != b.cache_file,
                "two nodes share cache file {:?}; give each node its own path \
                 (RouterConfig::homogeneous derives <path>.node<k> automatically)",
                a.cache_file
            );
        }
    }
    let n = config.nodes.len();
    let mut nodes: Vec<Node> = config.nodes.iter().map(|c| Node::new(c, mode)).collect();
    for (k, node) in nodes.iter_mut().enumerate() {
        node.set_tracer(tracer.clone(), k as u32);
    }
    // The shard-key granularity must match what the nodes' cache
    // managers index, or affinity would cluster on boundaries no node
    // shares chunks at — so an affinity fleet must agree on it.
    let chunk_tokens = config.nodes[0].kv_chunk_tokens.max(1);
    if config.policy == RoutePolicy::Affinity {
        for (k, node) in config.nodes.iter().enumerate() {
            assert!(
                node.kv_chunk_tokens.max(1) == chunk_tokens,
                "affinity routing needs one chunk granularity fleet-wide: node {k} indexes \
                 {}-token chunks but the shard key hashes {}-token chunks",
                node.kv_chunk_tokens.max(1),
                chunk_tokens
            );
        }
    }

    let mut sorted: Vec<&RequestArrival> = arrivals.iter().collect();
    sorted.sort_by_key(|r| (r.arrival_cycle, r.id));

    let mut session_home: HashMap<u64, usize> = HashMap::new();
    let mut prefix_home: HashMap<u64, usize> = HashMap::new();
    // Fleet-tier state: per-shard placement counts (the heat signal),
    // established replicas, and the transfer ledger. Every keyed walk
    // below is over owned Vec data — never hash-map iteration order.
    let mut shard_routed: HashMap<u64, u64> = HashMap::new();
    let mut shard_replicas: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut ledger = TransferLedger::default();
    let fetch_chunks = config.tier.as_ref().map_or(usize::MAX, |t| t.fetch_chunks.max(1));
    let replicate_after = config.tier.as_ref().map_or(0, |t| t.replicate_hot_after);
    let mut decisions: Vec<RouteDecision> = Vec::with_capacity(sorted.len());

    // Buffered so the bracketing span's Begin precedes every placement
    // instant in stream order (sorted arrivals keep clocks monotone).
    let mut router_ctx = tracer.ctx(trace_track::id(trace_track::ROUTER, 0, 0));
    router_ctx.begin_timed("router.route", Cycle(sorted[0].arrival_cycle));

    for (i, spec) in sorted.iter().enumerate() {
        let now = Cycle(spec.arrival_cycle);
        for node in &mut nodes {
            node.advance_to(now);
        }
        // A draining node takes no new placements once its plan fires.
        // Inert on a single-node fleet — there is nowhere else to place.
        let drained = config
            .drain
            .as_ref()
            .filter(|p| n > 1 && p.node < n && i >= p.after_arrivals)
            .map(|p| p.node);
        // Deterministic least-loaded: fewest in system, lowest id wins
        // ties. The argmin is over a Vec walk, never hash-map order.
        let least_loaded = (0..n)
            .filter(|&k| Some(k) != drained)
            .min_by_key(|&k| (nodes[k].in_system(), k))
            .expect("fleet has at least one undrained node");
        // Shard-key hashing and home-map bookkeeping live entirely in
        // the affinity arm: the cache-blind baselines never read them,
        // and their timed route loop must not pay for them either.
        let (target, reason) = match config.policy {
            RoutePolicy::RoundRobin => {
                let t = i % n;
                (if Some(t) == drained { least_loaded } else { t }, RouteReason::RoundRobin)
            }
            RoutePolicy::LeastLoaded => (least_loaded, RouteReason::LeastLoaded),
            RoutePolicy::Affinity => {
                let shard_key = spec
                    .prompt
                    .as_ref()
                    .and_then(|p| prefix_shard_key(p.ids(), chunk_tokens, config.affinity_chunks));
                let (mut target, mut reason) = if let Some(&home) = session_home.get(&spec.session)
                {
                    (home, RouteReason::SessionAffinity)
                } else if let Some(&home) = shard_key.and_then(|k| prefix_home.get(&k)) {
                    // Residency-aware placement: the home and every
                    // established replica hold the shard's chunks, so
                    // the least-loaded resident takes the request.
                    let mut residents = vec![home];
                    if let Some(replicas) = shard_key.and_then(|k| shard_replicas.get(&k)) {
                        residents.extend(replicas.iter().copied());
                    }
                    match residents
                        .into_iter()
                        .filter(|&k| Some(k) != drained)
                        .min_by_key(|&k| (nodes[k].in_system(), k))
                    {
                        Some(resident) => (resident, RouteReason::PrefixAffinity),
                        None => (least_loaded, RouteReason::LeastLoaded),
                    }
                } else {
                    (least_loaded, RouteReason::LeastLoaded)
                };
                if Some(target) == drained {
                    // Load-following migration: this traffic re-homes to
                    // the least-loaded node, and the drained node's
                    // records for its prefix move along with it, so the
                    // affinity hit survives the drain.
                    let dst = least_loaded;
                    if let Some(p) = &spec.prompt {
                        let records = nodes[target].export_prefix_records(p.ids(), fetch_chunks);
                        if !records.is_empty() {
                            // The push pays wire cost for the full batch
                            // either way; the importer dedups receiver-side
                            // (records it already holds adopt as no-ops).
                            nodes[dst].import_chunk_records(&records);
                            ledger.charge(config.tier.as_ref(), n, target, dst, &records);
                            ledger.migrations += 1;
                            router_ctx.instant("router.migrate", now);
                            router_ctx.count("router.migrations", now, 1);
                        }
                    }
                    if let Some(key) = shard_key {
                        prefix_home.insert(key, dst);
                    }
                    target = dst;
                    reason = RouteReason::LeastLoaded;
                }
                session_home.insert(spec.session, target);
                if let Some(key) = shard_key {
                    // First claim wins: the node that first decomposes a
                    // shard's chunks stays its home even if later load
                    // pulls sessions elsewhere — moving the shard would
                    // strand the planes.
                    prefix_home.entry(key).or_insert(target);
                }
                if replicate_after > 0 {
                    if let (Some(key), Some(p)) = (shard_key, &spec.prompt) {
                        let routed = shard_routed.entry(key).or_insert(0);
                        *routed += 1;
                        let home = *prefix_home.get(&key).expect("claimed above");
                        let replicated = shard_replicas.get(&key).is_some_and(|r| !r.is_empty());
                        // Hot once its placements cross the threshold AND
                        // the home shows proven hits (a shard nobody
                        // re-uses is traffic, not heat). Retries until
                        // the export lands — the home may not have sealed
                        // the chunks at the first qualifying arrival.
                        if *routed >= replicate_after
                            && !replicated
                            && Some(home) != drained
                            && nodes[home].cache_stats().hit_tokens > 0
                        {
                            let dst = (0..n)
                                .filter(|&k| k != home && Some(k) != drained)
                                .min_by_key(|&k| (nodes[k].in_system(), k));
                            if let Some(dst) = dst {
                                let records =
                                    nodes[home].export_prefix_records(p.ids(), fetch_chunks);
                                if !records.is_empty() {
                                    // After the push the destination
                                    // provably holds the shard (imported
                                    // or already ingested) — either way
                                    // it is now a resident.
                                    nodes[dst].import_chunk_records(&records);
                                    shard_replicas.entry(key).or_default().push(dst);
                                    ledger.charge(config.tier.as_ref(), n, home, dst, &records);
                                    ledger.replications += 1;
                                    router_ctx.instant("router.replicate", now);
                                    router_ctx.count("router.replications", now, 1);
                                }
                            }
                        }
                    }
                }
                (target, reason)
            }
        };
        nodes[target].enqueue(spec);
        router_ctx.instant("router.place", now);
        // The first hop of the request's causality chain: the flight
        // recorder joins it to the node-side admit→retire hops.
        router_ctx.link(hop::PLACE, now, spec.id as u64, target as u64);
        router_ctx.count(reason_counter(reason), now, 1);
        decisions.push(RouteDecision { id: spec.id, session: spec.session, node: target, reason });
    }
    router_ctx.end(Cycle(sorted.last().expect("non-empty").arrival_cycle));
    drop(router_ctx);

    let node_reports: Vec<ServeReport> = nodes
        .into_iter()
        .map(|mut node| {
            node.drain();
            node.finish()
        })
        .collect();
    let mut summary = merge_node_reports(&node_reports, &decisions);
    // The merge pools node-local counters; transfers are a router-level
    // phenomenon booked here from the ledger.
    summary.peer_fetches = ledger.peer_fetches;
    summary.replications = ledger.replications;
    summary.migrations = ledger.migrations;
    summary.transfer_bytes = ledger.bytes;
    summary.transfer_cycles = ledger.cycles;
    summary.transfer_pj = ledger.pj;
    RouterReport { policy: config.policy, decisions, node_reports, summary }
}

/// Running totals of inter-node chunk-record transfers, costed against
/// the fleet interconnect model. Pure accounting: node clocks never
/// include these cycles, so outputs stay byte-identical.
#[derive(Debug, Default)]
struct TransferLedger {
    peer_fetches: u64,
    replications: u64,
    migrations: u64,
    bytes: u64,
    cycles: u64,
    pj: f64,
}

impl TransferLedger {
    /// Books one record batch moved `src → dst` on an `n`-node fabric.
    /// Interconnect cost (hop latency + link serialization, per-hop
    /// energy) is modeled only when a fleet tier configuration is
    /// present; the byte total is booked either way.
    fn charge(
        &mut self,
        tier: Option<&FleetTierConfig>,
        n: usize,
        src: usize,
        dst: usize,
        records: &[ChunkRecord],
    ) {
        let bytes = records_bytes(records);
        self.peer_fetches += 1;
        self.bytes += bytes;
        if let Some(tier) = tier {
            let ic = &tier.interconnect;
            let hops = transfer_hops(ic.topology, n, src, dst);
            self.cycles +=
                hops * ic.hop_latency_cycles + bytes.div_ceil(ic.link_bytes_per_cycle.max(1));
            self.pj += bytes as f64 * ic.pj_per_byte * hops as f64;
        }
    }
}

/// Hop count between `src` and `dst` on an `n`-node fabric (minimum 1 —
/// any transfer crosses at least one link in this model).
fn transfer_hops(topology: Topology, n: usize, src: usize, dst: usize) -> u64 {
    let hops = match topology {
        Topology::Ring => {
            let d = src.abs_diff(dst);
            d.min(n - d)
        }
        Topology::Mesh2D => {
            let side = (n as f64).sqrt().ceil().max(1.0) as usize;
            (src / side).abs_diff(dst / side) + (src % side).abs_diff(dst % side)
        }
    };
    hops.max(1) as u64
}

/// Wire size of a record batch: plane-word payload plus token ids plus
/// a fixed per-record framing overhead (key, parent, shape).
fn records_bytes(records: &[ChunkRecord]) -> u64 {
    records.iter().map(|r| r.plane_bytes() + r.ids.len() as u64 * 4 + 64).sum()
}

/// Counter name for a placement reason (static, for the trace registry).
fn reason_counter(reason: RouteReason) -> &'static str {
    match reason {
        RouteReason::SessionAffinity => "router.place_session_affinity",
        RouteReason::PrefixAffinity => "router.place_prefix_affinity",
        RouteReason::LeastLoaded => "router.place_least_loaded",
        RouteReason::RoundRobin => "router.place_round_robin",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::prompt::{generate_multi_tenant_arrivals, MultiTenantConfig};

    fn workload() -> Vec<RequestArrival> {
        generate_multi_tenant_arrivals(&MultiTenantConfig::small_demo())
    }

    fn fleet(n: usize, policy: RoutePolicy) -> RouterConfig {
        RouterConfig::homogeneous(
            ServeConfig { kv_chunk_tokens: 32, ..ServeConfig::standard() },
            n,
            policy,
        )
    }

    #[test]
    fn every_request_completes_exactly_once_across_the_fleet() {
        let arrivals = workload();
        for policy in [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded] {
            let report = route(&fleet(3, policy), &arrivals, ScheduleMode::Batched);
            let ids: Vec<usize> = report.completions_by_id().iter().map(|c| c.id).collect();
            assert_eq!(ids, (0..arrivals.len()).collect::<Vec<_>>(), "{}", policy.label());
            assert_eq!(report.decisions.len(), arrivals.len());
            assert_eq!(report.summary.tokens, report.summary.node_tokens.iter().sum::<u64>());
        }
    }

    #[test]
    fn round_robin_rotates_and_affinity_keeps_sessions_home() {
        let arrivals = workload();
        let rr = route(&fleet(3, RoutePolicy::RoundRobin), &arrivals, ScheduleMode::Batched);
        for (i, d) in rr.decisions.iter().enumerate() {
            assert_eq!(d.node, i % 3);
        }
        let aff = route(&fleet(3, RoutePolicy::Affinity), &arrivals, ScheduleMode::Batched);
        // All turns of one session land on one node.
        let mut home: HashMap<u64, usize> = HashMap::new();
        for d in &aff.decisions {
            assert_eq!(*home.entry(d.session).or_insert(d.node), d.node);
        }
        // The multi-turn workload must exercise session affinity.
        assert!(aff.summary.session_affinity_routes > 0);
    }

    #[test]
    fn affinity_outhits_round_robin_at_two_nodes() {
        let arrivals = workload();
        let aff = route(&fleet(2, RoutePolicy::Affinity), &arrivals, ScheduleMode::Batched);
        let rr = route(&fleet(2, RoutePolicy::RoundRobin), &arrivals, ScheduleMode::Batched);
        assert!(
            aff.summary.cache_hit_tokens >= rr.summary.cache_hit_tokens,
            "affinity {} vs round-robin {} hit tokens",
            aff.summary.cache_hit_tokens,
            rr.summary.cache_hit_tokens
        );
        assert!(aff.summary.cache_decomposed_tokens <= rr.summary.cache_decomposed_tokens);
    }

    #[test]
    fn homogeneous_fleets_get_per_node_cache_files() {
        let node = ServeConfig {
            cache_file: Some(std::path::PathBuf::from("/tmp/fleet.bin")),
            ..ServeConfig::standard()
        };
        let fleet = RouterConfig::homogeneous(node, 3, RoutePolicy::Affinity);
        let files: Vec<String> = fleet
            .nodes
            .iter()
            .map(|n| n.cache_file.as_ref().unwrap().display().to_string())
            .collect();
        assert_eq!(files, ["/tmp/fleet.bin.node0", "/tmp/fleet.bin.node1", "/tmp/fleet.bin.node2"]);
        // Without a cache file nothing is invented.
        let plain = RouterConfig::homogeneous(ServeConfig::standard(), 2, RoutePolicy::Affinity);
        assert!(plain.nodes.iter().all(|n| n.cache_file.is_none()));
    }

    #[test]
    #[should_panic(expected = "share cache file")]
    fn shared_cache_file_across_nodes_is_rejected() {
        let node = ServeConfig {
            cache_file: Some(std::path::PathBuf::from("/tmp/clobber.bin")),
            ..ServeConfig::standard()
        };
        let fleet = RouterConfig {
            nodes: vec![node.clone(), node],
            policy: RoutePolicy::Affinity,
            affinity_chunks: 1,
            tier: None,
            drain: None,
        };
        let _ = route(&fleet, &workload(), ScheduleMode::Batched);
    }

    /// Shared-prefix traffic with inter-arrival gaps long enough that
    /// nodes finish turns between arrivals — so cache hits (the
    /// replication heat signal) accrue mid-trace, not only at drain.
    fn spread_workload() -> Vec<RequestArrival> {
        use pade_workload::prompt::{generate_shared_prefix_arrivals, SharedPrefixConfig};
        generate_shared_prefix_arrivals(&SharedPrefixConfig {
            n_sessions: 6,
            turns_per_session: 3,
            pool_size: 2,
            shared_prefix_tokens: 64,
            unique_suffix_tokens: 8,
            turn_suffix_tokens: 8,
            decode_steps: 2,
            mean_interarrival_cycles: 50_000.0,
            turn_gap_cycles: 500_000,
            ..SharedPrefixConfig::small_demo()
        })
    }

    #[test]
    fn affinity_hits_survive_a_node_drain() {
        let arrivals = spread_workload();
        let base = fleet(2, RoutePolicy::Affinity);
        let undrained = route(&base, &arrivals, ScheduleMode::Batched);
        // Drain the node the trace warmed first, mid-trace.
        let hot = undrained.decisions[0].node;
        let cut = arrivals.len() / 2;
        let cfg = RouterConfig {
            tier: Some(FleetTierConfig::default()),
            drain: Some(DrainPlan { node: hot, after_arrivals: cut }),
            ..base
        };
        let drained = route(&cfg, &arrivals, ScheduleMode::Batched);
        // The drained node takes nothing after the cut, and the warm
        // state moved rather than stranded.
        for d in &drained.decisions[cut..] {
            assert_ne!(d.node, hot, "placement on the drained node");
        }
        assert!(drained.summary.migrations >= 1, "drain must migrate the hot shard");
        assert!(drained.summary.transfer_bytes > 0);
        assert!(drained.summary.transfer_cycles > 0);
        // Affinity hit levels survive: migrated records keep serving
        // prefix hits on the new home.
        assert!(
            2 * drained.summary.cache_hit_tokens >= undrained.summary.cache_hit_tokens,
            "hits collapsed under drain: {} vs {} undrained",
            drained.summary.cache_hit_tokens,
            undrained.summary.cache_hit_tokens
        );
        // Placement never changes outputs — drained or not.
        for (a, b) in drained.completions_by_id().iter().zip(undrained.completions_by_id()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.results, b.results, "request {} output changed under drain", a.id);
        }
    }

    #[test]
    fn outputs_stay_byte_identical_mid_migration_at_every_node_count() {
        let arrivals = spread_workload();
        let solo = route(&fleet(1, RoutePolicy::Affinity), &arrivals, ScheduleMode::Batched);
        for n in [1usize, 2, 4] {
            let cfg = RouterConfig {
                tier: Some(FleetTierConfig::default()),
                drain: Some(DrainPlan { node: 0, after_arrivals: arrivals.len() / 2 }),
                ..fleet(n, RoutePolicy::Affinity)
            };
            let report = route(&cfg, &arrivals, ScheduleMode::Batched);
            let ids: Vec<usize> = report.completions_by_id().iter().map(|c| c.id).collect();
            assert_eq!(ids, (0..arrivals.len()).collect::<Vec<_>>(), "n={n}");
            for (a, b) in report.completions_by_id().iter().zip(solo.completions_by_id()) {
                assert_eq!(a.results, b.results, "request {} differs at n={n}", a.id);
            }
            if n > 1 {
                for d in &report.decisions[arrivals.len() / 2..] {
                    assert_ne!(d.node, 0, "placement on the drained node at n={n}");
                }
            } else {
                // A one-node fleet has nowhere to drain to: inert.
                assert_eq!(report.summary.migrations, 0);
            }
        }
    }

    #[test]
    fn hot_shards_earn_replicas_and_outputs_do_not_change() {
        let arrivals = spread_workload();
        let base = fleet(3, RoutePolicy::Affinity);
        let plain = route(&base, &arrivals, ScheduleMode::Batched);
        let cfg = RouterConfig {
            tier: Some(FleetTierConfig { replicate_hot_after: 2, ..FleetTierConfig::default() }),
            ..base
        };
        let report = route(&cfg, &arrivals, ScheduleMode::Batched);
        assert!(report.summary.replications >= 1, "the shared prefix pool must run hot");
        assert!(report.summary.peer_fetches >= report.summary.replications);
        assert!(report.summary.transfer_bytes > 0);
        assert!(report.summary.transfer_pj > 0.0);
        // Replication spreads placements without changing any output.
        for (a, b) in report.completions_by_id().iter().zip(plain.completions_by_id()) {
            assert_eq!(a.results, b.results, "request {} output changed", a.id);
        }
        // Determinism: the same configuration replays identically.
        let again = route(&cfg, &arrivals, ScheduleMode::Batched);
        assert_eq!(report.decisions, again.decisions);
        assert_eq!(report.summary.replications, again.summary.replications);
        assert_eq!(report.summary.transfer_bytes, again.summary.transfer_bytes);
    }

    #[test]
    fn transfer_hops_follow_the_topology() {
        assert_eq!(transfer_hops(Topology::Ring, 4, 0, 3), 1, "ring wraps");
        assert_eq!(transfer_hops(Topology::Ring, 4, 0, 2), 2);
        assert_eq!(transfer_hops(Topology::Ring, 2, 0, 1), 1);
        assert_eq!(transfer_hops(Topology::Mesh2D, 4, 0, 3), 2, "manhattan on a 2x2 grid");
        assert_eq!(transfer_hops(Topology::Mesh2D, 4, 0, 1), 1);
        // Degenerate same-node transfer still crosses one link.
        assert_eq!(transfer_hops(Topology::Ring, 4, 1, 1), 1);
    }

    #[test]
    fn single_node_fleet_matches_plain_serve() {
        let arrivals = workload();
        let config = ServeConfig { kv_chunk_tokens: 32, ..ServeConfig::standard() };
        let solo = pade_serve::server::serve(&config, &arrivals, ScheduleMode::Batched);
        for policy in [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded] {
            let fleet = route(
                &RouterConfig::homogeneous(config.clone(), 1, policy),
                &arrivals,
                ScheduleMode::Batched,
            );
            assert_eq!(fleet.node_reports.len(), 1);
            let node = &fleet.node_reports[0];
            assert_eq!(node.completion_order(), solo.completion_order(), "{}", policy.label());
            assert_eq!(node.summary, solo.summary, "{}", policy.label());
            for (a, b) in node.completions.iter().zip(&solo.completions) {
                assert_eq!(a, b);
            }
        }
    }
}
