//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! re-implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] implementations for integer
//! and float ranges, tuples, [`Just`], `prop_oneof!`, `collection::vec`
//! and `option::of`, plus `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test runs a fixed number of deterministic cases
//! (default 32, overridable via `PROPTEST_CASES`). Failures therefore
//! reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic case RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `name` (FNV-mixed so distinct
    /// tests see distinct streams).
    #[must_use]
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h = 0xCBF29CE484222325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001B3);
        }
        Self { state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15) }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn uniform_below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (u128::from(self.next_u64()) * span) >> 64
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 32).
#[must_use]
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(32)
}

/// A source of values for one property-test argument.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.uniform_below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                (*self.start() as i128 + rng.uniform_below(span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! float_strategy {
    ($($t:ty, $unit:expr);*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * $unit(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start() + (self.end() - self.start()) * $unit(rng)
            }
        }
    )*};
}
float_strategy!(
    f32, |rng: &mut TestRng| (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
    f64, |rng: &mut TestRng| (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
);

/// Marker for types with a full-domain `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws one value over the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, broadly distributed values (no NaN/inf: the tests here
        // all assume finite inputs).
        ((rng.next_u64() >> 40) as f32 / (1u64 << 23) as f32 - 1.0) * 1e3
    }
}

/// Full-domain strategy, `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Builds the full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
);

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty choice list.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    #[must_use]
    pub fn new(choices: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        Self { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.uniform_below(self.choices.len() as u128) as usize;
        self.choices[i].sample(rng)
    }
}

/// Boxing helper for `prop_oneof!` (a method call, unlike an `as` cast,
/// lets integer-literal inference unify across all choices).
pub trait IntoBoxedStrategy {
    /// Value type of the boxed strategy.
    type Value;
    /// Boxes the strategy.
    fn boxed_strategy(self) -> Box<dyn Strategy<Value = Self::Value>>;
}

impl<S: Strategy + 'static> IntoBoxedStrategy for S {
    type Value = S::Value;
    fn boxed_strategy(self) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(self)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait LenSpec {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl LenSpec for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl LenSpec for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl LenSpec for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// `Vec` strategy with element strategy `element` and length `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy, L: LenSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: LenSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `Option` strategy: `None` with probability 1/4.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Builds an `Option` strategy around `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The property-test macro: each `#[test] fn name(arg in strategy, ...)`
/// expands to a plain `#[test]` sampling its arguments for [`cases`]
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            // `#[test]` arrives through `$meta` (capturing it literally
            // alongside doc attributes would make the grammar ambiguous).
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    // Closure so prop_assume! can skip a case via `return`.
                    let mut __proptest_case = || $body;
                    __proptest_case();
                }
            }
        )+
    };
}

/// Uniform choice macro over strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($choice:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $($crate::IntoBoxedStrategy::boxed_strategy($choice)),+
        ])
    };
}

/// Assertion inside a property (panics with the case's inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its sampled inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::{
        any, cases, Any, Arbitrary, IntoBoxedStrategy, Just, OneOf, Strategy, TestRng,
    };
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..1000 {
            let v = (1i64..3000).sample(&mut rng);
            assert!((1..3000).contains(&v));
            let w = (2u32..=8).sample(&mut rng);
            assert!((2..=8).contains(&w));
            let f = (-8.0f32..8.0).sample(&mut rng);
            assert!((-8.0..8.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_honors_length_spec() {
        let mut rng = TestRng::for_case("t2", 1);
        let s = collection::vec(any::<i8>(), 1..40);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..40).contains(&v.len()));
        }
        let fixed = collection::vec(0u64..10, 7usize);
        assert_eq!(fixed.sample(&mut rng).len(), 7);
    }

    proptest! {
        #[test]
        fn macro_expands_and_runs(x in 0u32..10, flag in any::<bool>()) {
            prop_assume!(x != 9);
            prop_assert!(x < 9);
            let _ = flag;
        }

        #[test]
        fn oneof_picks_listed_values(d in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)]) {
            prop_assert!([1, 2, 4, 8].contains(&d));
        }
    }
}
