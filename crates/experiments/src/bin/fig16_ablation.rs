//! Fig. 16(a) — latency ablation: dense baseline → +BUI-GF → +BS-OOE →
//! +ISTA, across four models.

use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, pct, Table};
use pade_experiments::runner::{run_pade, Workload};
use pade_linalg::metrics::geomean;
use pade_workload::{model, task};

fn configs() -> Vec<(&'static str, PadeConfig)> {
    let base = PadeConfig::dense_baseline();
    let gf = PadeConfig {
        enable_bui_gf: true,
        enable_bs: false,
        enable_ooe: false,
        enable_ista: false,
        enable_rars: false,
        enable_interleave: false,
        ..PadeConfig::standard()
    };
    let bsooe = PadeConfig {
        enable_ista: false,
        enable_rars: false,
        enable_interleave: false,
        ..PadeConfig::standard()
    };
    let full = PadeConfig::standard();
    vec![("Baseline", base), ("+BUI-GF", gf), ("+BS-OOE", bsooe), ("+ISTA", full)]
}

fn main() {
    banner("Fig. 16(a)", "Latency ablation for BUI-GF, BS-OOE and ISTA");
    let pairs = vec![
        (model::llama2_7b(), task::wikilingua()),
        (model::llama3_8b(), task::wikilingua()),
        (model::opt_1b3(), task::wikilingua()),
        (model::pvt(), {
            let mut t = task::imagenet();
            t.seq_len = 3072;
            t
        }),
    ];
    let mut table = Table::new(vec!["model", "Baseline", "+BUI-GF", "+BS-OOE", "+ISTA"]);
    let mut per_stage: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (m, t) in pairs {
        let w = Workload::new(m, t, 1600 + t.seq_len as u64);
        let mut row = vec![m.name.to_string()];
        let mut base = 0.0f64;
        for (i, (_, cfg)) in configs().into_iter().enumerate() {
            let (_, o) = run_pade(&w, cfg);
            if i == 0 {
                base = o.seconds;
            }
            per_stage[i].push(o.seconds / base);
            row.push(format!("{:.2}", o.seconds / base));
        }
        table.row(row);
    }
    let avg: Vec<f64> = per_stage.iter().map(|v| geomean(v)).collect();
    table.row(vec![
        "Average".into(),
        format!("{:.2}", avg[0]),
        format!("{:.2}", avg[1]),
        format!("{:.2}", avg[2]),
        format!("{:.2}", avg[3]),
    ]);
    println!("{}", table.render());
    println!(
        "Stage-over-stage latency reductions: BUI-GF {}, BS-OOE {}, ISTA {}",
        pct(1.0 - avg[1] / avg[0]),
        pct(1.0 - avg[2] / avg[1]),
        pct(1.0 - avg[3] / avg[2]),
    );
    println!("Paper: 30% (BUI-GF), 24% (BS-OOE), 27% (ISTA).");
}
