//! Tiered KV plane store — the second cache tier behind
//! [`pade-cache`]'s budgeted resident tier.
//!
//! PR 5's `CacheBudget` eviction simply *drops* decomposed bit planes:
//! under memory pressure a node re-decomposes work it already paid for,
//! which is exactly the cross-stage redundancy PADE's unified execution
//! eliminates on-chip. This crate makes eviction a *demotion* instead:
//!
//! * [`ChunkRecord`] — one sealed, chunk-granular unit of decomposed KV
//!   state (the prefix index's `(key, parent, ids, planes)` quadruple),
//!   serialized as **packed plane words** so re-adoption parses
//!   `⌈dims/64⌉` words per plane instead of re-running bit-plane
//!   decomposition. A round trip is `==`-identical by construction
//!   ([`PlaneRow::from_words`](pade_quant::PlaneRow::from_words)
//!   recomputes every derived field from the words).
//! * [`TierStore`] — the pluggable tier boundary (the vLLM
//!   KV-connector `wait_for`/`maybe_save` shape): `put` on evict,
//!   `get`/`contains` on a later prefix walk. Implementations:
//!   [`MemoryTierStore`] (tests, modeled remote peers) and
//!   [`DiskTierStore`] (one atomic file per chunk in a spill
//!   directory, re-indexed on open so a restart keeps its tier).
//! * [`wire`] — the little-endian wire helpers shared with
//!   `pade-cache`'s `persist` image, so the spill format and the
//!   warm-start image cannot drift apart.
//!
//! Everything here is content-addressed by the prefix index's
//! path-dependent chunk key, so a fetched record re-enters the index
//! under the exact key it left with — byte-identical planes, identical
//! scores, identical outputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pade_quant::BitPlaneMatrix;

pub mod wire;

/// One sealed chunk of decomposed KV plane state, addressed by the
/// prefix index's path-dependent chunk key.
///
/// `planes` rides an `Arc`, so demoting a chunk to the tier never copies
/// the plane words — only serialization (in [`DiskTierStore::put`])
/// touches them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Path-dependent chunk key (`pade-cache`'s `chunk_key(parent, ids)`).
    pub key: u128,
    /// Key of the parent chunk (`None` for a depth-0 chunk). Because keys
    /// are content-addressed, the same prefix chain yields the same
    /// parent key on every node — an importer can verify its walk agrees.
    pub parent: Option<u128>,
    /// The token ids this chunk covers (exactly `chunk_tokens` of them).
    pub ids: Arc<[u32]>,
    /// The sealed decomposed planes.
    pub planes: Arc<BitPlaneMatrix>,
}

impl ChunkRecord {
    /// Heap bytes of the packed plane words this record carries — the
    /// unit tier accounting bills, matching the resident tier's budget
    /// arithmetic.
    #[must_use]
    pub fn plane_bytes(&self) -> u64 {
        self.planes.resident_bytes() as u64
    }
}

/// The pluggable tier boundary behind the cache manager: evicted sealed
/// chunks are `put` instead of dropped, and a later prefix walk `get`s
/// them back instead of re-decomposing.
///
/// Implementations must be content-faithful: `get(key)` after
/// `put(record)` returns a record equal to the original (the cache
/// manager's byte-identity invariant rests on this, and the property
/// tests pin it).
pub trait TierStore: std::fmt::Debug + Send {
    /// Stores (or replaces) a spilled chunk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing medium.
    fn put(&mut self, record: &ChunkRecord) -> io::Result<()>;

    /// Fetches a spilled chunk by key; `None` when the tier never saw it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors, including corruption of a present record.
    fn get(&self, key: u128) -> io::Result<Option<ChunkRecord>>;

    /// Removes a spilled chunk (a migrated-away shard leaves the tier).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the backing medium.
    fn remove(&mut self, key: u128) -> io::Result<bool>;

    /// Whether the tier currently holds `key` — `O(1)`, no I/O, so hit
    /// prediction can probe it on the admission path.
    fn contains(&self, key: u128) -> bool;

    /// Number of chunks currently held.
    fn len(&self) -> usize;

    /// Whether the tier holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total plane-word payload bytes currently held.
    fn spilled_bytes(&self) -> u64;
}

/// How a node builds its spill tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierConfig {
    /// In-process tier (tests, modeled remote peers): survives eviction,
    /// not process exit.
    Memory,
    /// One atomic file per chunk under the given directory; the
    /// directory is re-indexed on open, so a restart keeps its tier.
    Disk(PathBuf),
}

impl TierConfig {
    /// Builds the configured store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or indexing a disk tier's
    /// directory.
    pub fn build(&self) -> io::Result<Box<dyn TierStore>> {
        Ok(match self {
            TierConfig::Memory => Box::new(MemoryTierStore::new()),
            TierConfig::Disk(dir) => Box::new(DiskTierStore::open(dir)?),
        })
    }
}

/// In-memory [`TierStore`]: a `BTreeMap` keyed by chunk key (ordered, so
/// any iteration a test does is deterministic).
#[derive(Debug, Default)]
pub struct MemoryTierStore {
    records: BTreeMap<u128, ChunkRecord>,
    bytes: u64,
}

impl MemoryTierStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl TierStore for MemoryTierStore {
    fn put(&mut self, record: &ChunkRecord) -> io::Result<()> {
        if let Some(old) = self.records.insert(record.key, record.clone()) {
            self.bytes -= old.plane_bytes();
        }
        self.bytes += record.plane_bytes();
        Ok(())
    }

    fn get(&self, key: u128) -> io::Result<Option<ChunkRecord>> {
        Ok(self.records.get(&key).cloned())
    }

    fn remove(&mut self, key: u128) -> io::Result<bool> {
        match self.records.remove(&key) {
            Some(old) => {
                self.bytes -= old.plane_bytes();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn contains(&self, key: u128) -> bool {
        self.records.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn spilled_bytes(&self) -> u64 {
        self.bytes
    }
}

/// On-disk [`TierStore`]: one `chunk_<key>.tier` file per spilled chunk,
/// written atomically (`.tmp` + rename, the `persist` discipline) and
/// re-indexed from the directory listing on [`DiskTierStore::open`].
#[derive(Debug)]
pub struct DiskTierStore {
    dir: PathBuf,
    /// In-memory index: key → payload plane bytes. Ordered so byte
    /// totals and listings never depend on directory iteration order.
    index: BTreeMap<u128, u64>,
}

impl DiskTierStore {
    /// Opens (creating if absent) a spill directory and indexes the
    /// chunk files already in it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a file with the `.tier` suffix but an
    /// unparsable name or header is reported as corruption rather than
    /// silently skipped.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut index = BTreeMap::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let Some(hex) = name.strip_prefix("chunk_").and_then(|n| n.strip_suffix(".tier"))
            else {
                continue;
            };
            let key = u128::from_str_radix(hex, 16).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparsable tier chunk file name {name}"),
                )
            })?;
            let record = read_chunk_file(&path)?;
            if record.key != key {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("tier chunk file {name} holds key {:032x}", record.key),
                ));
            }
            index.insert(key, record.plane_bytes());
        }
        Ok(Self { dir: dir.to_path_buf(), index })
    }

    fn chunk_path(&self, key: u128) -> PathBuf {
        self.dir.join(format!("chunk_{key:032x}.tier"))
    }
}

impl TierStore for DiskTierStore {
    fn put(&mut self, record: &ChunkRecord) -> io::Result<()> {
        let path = self.chunk_path(record.key);
        let tmp = path.with_extension("tier.tmp");
        {
            let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
            write_chunk(&mut f, record)?;
            use std::io::Write as _;
            f.flush()?;
        }
        std::fs::rename(&tmp, &path)?;
        self.index.insert(record.key, record.plane_bytes());
        Ok(())
    }

    fn get(&self, key: u128) -> io::Result<Option<ChunkRecord>> {
        if !self.index.contains_key(&key) {
            return Ok(None);
        }
        let record = read_chunk_file(&self.chunk_path(key))?;
        if record.key != key {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("tier chunk file for {key:032x} holds key {:032x}", record.key),
            ));
        }
        Ok(Some(record))
    }

    fn remove(&mut self, key: u128) -> io::Result<bool> {
        if self.index.remove(&key).is_none() {
            return Ok(false);
        }
        std::fs::remove_file(self.chunk_path(key))?;
        Ok(true)
    }

    fn contains(&self, key: u128) -> bool {
        self.index.contains_key(&key)
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn spilled_bytes(&self) -> u64 {
        self.index.values().sum()
    }
}

/// Magic bytes opening every chunk file (`PADETIER`, version-tagged by
/// the trailing byte).
pub const CHUNK_MAGIC: [u8; 8] = *b"PADETI\x00\x01";

/// Serializes one chunk record to a writer (the on-disk / on-wire chunk
/// format; see [`wire`] for the primitive encodings).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_chunk<W: io::Write>(w: &mut W, record: &ChunkRecord) -> io::Result<()> {
    w.write_all(&CHUNK_MAGIC)?;
    wire::write_u128(w, record.key)?;
    w.write_all(&[u8::from(record.parent.is_some())])?;
    wire::write_u128(w, record.parent.unwrap_or(0))?;
    wire::write_u64(w, record.planes.dims() as u64)?;
    wire::write_u32(w, record.planes.bits())?;
    wire::write_ids(w, &record.ids)?;
    wire::write_planes(w, &record.planes)
}

/// Parses one chunk record from a reader — the inverse of
/// [`write_chunk`], rebuilding planes from packed words without any
/// re-decomposition.
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic/shape and propagates reader
/// errors.
pub fn read_chunk<R: io::Read>(r: &mut R) -> io::Result<ChunkRecord> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if magic != CHUNK_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a pade-tier chunk record"));
    }
    let key = wire::read_u128(r)?;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let parent_raw = wire::read_u128(r)?;
    let parent = match tag[0] {
        0 => None,
        1 => Some(parent_raw),
        t => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad parent tag {t} in tier chunk record"),
            ))
        }
    };
    let dims = wire::read_u64(r)? as usize;
    let bits = wire::read_u32(r)?;
    let ids = wire::read_ids(r)?;
    let planes = wire::read_planes(r, dims, bits)?;
    Ok(ChunkRecord { key, parent, ids: ids.into(), planes: Arc::new(planes) })
}

fn read_chunk_file(path: &Path) -> io::Result<ChunkRecord> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_chunk(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn record(seed: u64, tokens: usize, dims: usize, bits: u32) -> ChunkRecord {
        let rows: Vec<i8> = (0..tokens * dims)
            .map(|i| {
                let h = seed.wrapping_mul(i as u64 + 1).wrapping_add(0x9E37);
                ((h >> 24) as u8 as i8) >> (8 - bits)
            })
            .collect();
        let planes = BitPlaneMatrix::from_rows(&rows, dims, bits).unwrap();
        ChunkRecord {
            key: u128::from(seed) << 64 | 0xBEEF,
            parent: seed.is_multiple_of(2).then_some(u128::from(seed)),
            ids: (0..tokens as u32).collect::<Vec<_>>().into(),
            planes: Arc::new(planes),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pade_tier_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_round_trips_and_accounts_bytes() {
        let mut store = MemoryTierStore::new();
        let a = record(1, 4, 64, 8);
        let b = record(2, 4, 64, 8);
        store.put(&a).unwrap();
        store.put(&b).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.spilled_bytes(), a.plane_bytes() + b.plane_bytes());
        assert!(store.contains(a.key) && !store.contains(999));
        assert_eq!(store.get(a.key).unwrap().unwrap(), a);
        assert!(store.remove(a.key).unwrap());
        assert!(!store.remove(a.key).unwrap());
        assert_eq!(store.spilled_bytes(), b.plane_bytes());
    }

    #[test]
    fn disk_store_round_trips_atomically_and_reindexes_on_open() {
        let dir = temp_dir("roundtrip");
        let a = record(7, 4, 96, 8);
        let b = record(8, 2, 96, 4);
        {
            let mut store = DiskTierStore::open(&dir).unwrap();
            store.put(&a).unwrap();
            store.put(&b).unwrap();
            assert_eq!(store.get(a.key).unwrap().unwrap(), a);
        }
        // A fresh open re-indexes the directory: both chunks survive the
        // "restart" with identical contents and byte accounting.
        let mut store = DiskTierStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.spilled_bytes(), a.plane_bytes() + b.plane_bytes());
        assert_eq!(store.get(a.key).unwrap().unwrap(), a);
        assert_eq!(store.get(b.key).unwrap().unwrap(), b);
        assert!(store.remove(b.key).unwrap());
        assert_eq!(DiskTierStore::open(&dir).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_rejects_corrupt_records() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chunk_00000000000000000000000000000001.tier"), b"garbage!")
            .unwrap();
        assert!(DiskTierStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tier_config_builds_both_backends() {
        assert_eq!(TierConfig::Memory.build().unwrap().len(), 0);
        let dir = temp_dir("config");
        let store = TierConfig::Disk(dir.clone()).build().unwrap();
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #[test]
        fn prop_chunk_record_serialization_is_identity(
            seed in any::<u64>(),
            tokens in 1usize..8,
            dims_sel in 0usize..4,
            bits in 2u32..=8,
        ) {
            // Dims straddling word boundaries: 1, 63, 64, 65.
            let dims = [1usize, 63, 64, 65][dims_sel];
            let rec = record(seed, tokens, dims, bits);
            let mut buf = Vec::new();
            write_chunk(&mut buf, &rec).unwrap();
            let back = read_chunk(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(&back, &rec);
            // The materialized planes are `==`-identical, which (with
            // derived Eq over packed words) is byte-identity of the
            // decomposed state.
            prop_assert_eq!(back.planes.as_ref(), rec.planes.as_ref());
        }
    }
}
