//! Synthetic attention trace generation.
//!
//! A trace holds the quantized Q/K/V operands of one attention head plus
//! the exact INT8 ground truth derived from them. Score structure is
//! injected through a small set of shared *feature directions* rather than
//! per-token boosts: sink tokens carry a sink direction, recent tokens a
//! ramped recency direction, and heavy-tail tokens one of a few retrieval
//! directions that queries subscribe to. This keeps the cross-talk between
//! S ≫ H tokens bounded (it hides in the configured noise floor) while
//! giving precise control over how much softmax mass each structure owns —
//! which is exactly the input property the paper's pruning results depend
//! on.

use pade_linalg::{attention, MatF32};
use pade_quant::{quantize_matrix, quantize_matrix_clipped, QuantizedMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::ScoreProfile;
use crate::prompt::PromptTokens;

/// Number of distinct heavy-tail retrieval directions.
const TAIL_FAMILIES: usize = 4;

/// Configuration of one synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Context length (number of keys/values).
    pub seq_len: usize,
    /// Per-head hidden dimension.
    pub head_dim: usize,
    /// Number of query rows to materialize (PADE processes 8 per head in
    /// prefill; decode traces use 1).
    pub n_queries: usize,
    /// Attention score structure.
    pub profile: ScoreProfile,
    /// Quantization bit width for Q/K/V (8 in the main configuration).
    pub bits: u32,
    /// RNG seed; equal seeds produce identical traces.
    pub seed: u64,
}

impl TraceConfig {
    /// A small deterministic configuration for examples and tests.
    #[must_use]
    pub fn small_demo() -> Self {
        Self {
            seq_len: 256,
            head_dim: 64,
            n_queries: 4,
            profile: ScoreProfile::standard(),
            bits: 8,
            seed: 7,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seq_len: 2048,
            head_dim: 64,
            n_queries: 8,
            profile: ScoreProfile::standard(),
            bits: 8,
            seed: 42,
        }
    }
}

/// One attention head's operands plus exact INT8 ground truth.
#[derive(Debug, Clone)]
pub struct AttentionTrace {
    config: TraceConfig,
    q: QuantizedMatrix,
    k: QuantizedMatrix,
    v: QuantizedMatrix,
    v_f32: MatF32,
    logit_scale: f32,
}

impl AttentionTrace {
    /// Generates a trace from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len`, `head_dim` or `n_queries` is zero.
    #[must_use]
    pub fn generate(config: &TraceConfig) -> Self {
        assert!(config.seq_len > 0 && config.head_dim > 0 && config.n_queries > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let s = config.seq_len;
        let h = config.head_dim;
        let p = &config.profile;

        // Shared feature directions, made exactly orthonormal so structure
        // logits are deterministic and cross-talk lives only in the
        // configured noise floor.
        assert!(h > 2 + TAIL_FAMILIES, "head_dim too small for the feature basis");
        let mut basis: Vec<Vec<f32>> = Vec::with_capacity(2 + TAIL_FAMILIES);
        while basis.len() < 2 + TAIL_FAMILIES {
            let mut v: Vec<f32> = (0..h).map(|_| standard_normal(&mut rng)).collect();
            project_out(&mut v, &basis);
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-3 {
                for x in &mut v {
                    *x /= norm;
                }
                basis.push(v);
            }
        }
        let sink_dir = basis[0].clone();
        let recency_dir = basis[1].clone();
        let tail_dirs: Vec<Vec<f32>> = basis[2..2 + TAIL_FAMILIES].to_vec();

        // Keys: isotropic noise of unit expected norm plus structure flags.
        let inv_sqrt_h = 1.0 / (h as f32).sqrt();
        let mut k = MatF32::zeros(s, h);
        let mut tail_family = vec![usize::MAX; s];
        for j in 0..s {
            let row = k.row_mut(j);
            for x in row.iter_mut() {
                *x = standard_normal(&mut rng) * inv_sqrt_h;
            }
            // Keep key noise out of the feature span so query subscriptions
            // see exactly the configured boosts.
            project_out(row, &basis);
            // Each token carries at most one structure (sink ≻ tail ≻
            // recency); stacking would create outlier logits no real score
            // row exhibits.
            let is_sink = j < p.sink_tokens;
            let is_tail = !is_sink && rng.gen::<f32>() < p.tail_rate;
            if is_tail {
                tail_family[j] = rng.gen_range(0..TAIL_FAMILIES);
            }
            // Recency ramp relative to the sequence end, decaying with
            // distance over the locality window.
            let dist = (s - 1 - j) as f32;
            let ramp = (-dist / p.locality_window.max(1) as f32).exp();
            for d in 0..h {
                if is_sink {
                    row[d] += sink_dir[d];
                } else if is_tail {
                    row[d] += tail_dirs[tail_family[j]][d];
                } else {
                    row[d] += ramp * recency_dir[d];
                }
            }
        }

        // Queries: noise floor with configured logit sigma plus direction
        // subscriptions (every query sees sinks and recency; each query
        // subscribes to one tail family).
        let mut q = MatF32::zeros(config.n_queries, h);
        for i in 0..config.n_queries {
            let family = rng.gen_range(0..TAIL_FAMILIES);
            let row = q.row_mut(i);
            for x in row.iter_mut() {
                *x = standard_normal(&mut rng);
            }
            project_out(row, &basis);
            // |q_noise| = noise_sigma·√H makes q·k_noise ~ N(0, noise_sigma²).
            let target = p.noise_sigma * (h as f32).sqrt();
            let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in row.iter_mut() {
                *x *= target / norm;
            }
            for d in 0..h {
                row[d] += p.sink_strength * sink_dir[d]
                    + p.locality_strength * recency_dir[d]
                    + p.tail_strength * tail_dirs[family][d];
            }
        }

        // Values: plain activations.
        let mut v = MatF32::zeros(s, h);
        for j in 0..s {
            for x in v.row_mut(j).iter_mut() {
                *x = standard_normal(&mut rng) * 0.5;
            }
        }

        // Operands are quantized with outlier clipping (3σ / 2.5σ), the
        // calibration step of any practical INT8 PTQ pipeline; it keeps the
        // integer scale representative of the bulk data, which is also what
        // makes bit-serial early termination effective.
        let qq = quantize_matrix_clipped(q.as_slice(), config.n_queries, h, config.bits, 3.0)
            .expect("query quantization");
        let kq = quantize_matrix_clipped(k.as_slice(), s, h, config.bits, 2.5)
            .expect("key quantization");
        let vq = quantize_matrix(v.as_slice(), s, h, config.bits).expect("value quantization");
        let logit_scale = qq.params().scale() * kq.params().scale();
        Self { config: *config, q: qq, k: kq, v: vq, v_f32: v, logit_scale }
    }

    /// The generating configuration.
    #[must_use]
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Quantized queries (`n_queries × H`).
    #[must_use]
    pub fn queries(&self) -> &QuantizedMatrix {
        &self.q
    }

    /// Quantized keys (`S × H`).
    #[must_use]
    pub fn keys(&self) -> &QuantizedMatrix {
        &self.k
    }

    /// Row-major slice of the first `tokens` quantized key rows — the key
    /// prefix a partially-grown decode session attends over.
    ///
    /// # Panics
    ///
    /// Panics if `tokens > seq_len`.
    #[must_use]
    pub fn key_prefix(&self, tokens: usize) -> &[i8] {
        assert!(tokens <= self.k.rows(), "prefix of {tokens} tokens exceeds the context");
        &self.k.as_slice()[..tokens * self.k.cols()]
    }

    /// Quantized values (`S × H`).
    #[must_use]
    pub fn values(&self) -> &QuantizedMatrix {
        &self.v
    }

    /// The FP32 values used for reference outputs.
    #[must_use]
    pub fn values_f32(&self) -> &MatF32 {
        &self.v_f32
    }

    /// Multiplier mapping an integer Q·K dot product into the logit domain
    /// (`Δq·Δk`; the softmax temperature is already folded into the score
    /// structure at generation time).
    #[must_use]
    pub fn logit_scale(&self) -> f32 {
        self.logit_scale
    }

    /// Exact INT8 logits of query row `i` — the ground truth every pruning
    /// decision is judged against.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_queries`.
    #[must_use]
    pub fn exact_logits(&self, i: usize) -> Vec<f32> {
        let q = self.q.row(i);
        (0..self.k.rows())
            .map(|j| {
                let dot: i32 =
                    q.iter().zip(self.k.row(j)).map(|(&a, &b)| i32::from(a) * i32::from(b)).sum();
                dot as f32 * self.logit_scale
            })
            .collect()
    }

    /// Exact attention output of query row `i` over all keys (INT8 scores,
    /// FP32 values) — the dense reference for fidelity metrics.
    #[must_use]
    pub fn reference_output(&self, i: usize) -> Vec<f32> {
        let logits = self.exact_logits(i);
        let weights = pade_linalg::softmax(&logits);
        let mut out = vec![0.0f32; self.v_f32.cols()];
        for (j, &w) in weights.iter().enumerate() {
            for (o, &x) in out.iter_mut().zip(self.v_f32.row(j)) {
                *o += w * x;
            }
        }
        out
    }

    /// Exact attention output over a retained subset (the ideal result of a
    /// pruning method that kept exactly `retained`).
    #[must_use]
    pub fn subset_output(&self, i: usize, retained: &[usize]) -> Vec<f32> {
        let logits = self.exact_logits(i);
        let scores: Vec<f32> = retained.iter().map(|&j| logits[j]).collect();
        let weights = pade_linalg::softmax(&scores);
        let mut out = vec![0.0f32; self.v_f32.cols()];
        for (&j, &w) in retained.iter().zip(&weights) {
            for (o, &x) in out.iter_mut().zip(self.v_f32.row(j)) {
                *o += w * x;
            }
        }
        out
    }

    /// Dense MAC count for this trace (all queries × all keys × H, for QKᵀ
    /// plus the PV product).
    #[must_use]
    pub fn dense_macs(&self) -> u64 {
        2 * self.config.n_queries as u64 * self.config.seq_len as u64 * self.config.head_dim as u64
    }

    /// Convenience: exact dense attention via the `pade-linalg` reference
    /// (FP32 path; used by cross-checks only).
    #[must_use]
    pub fn dense_reference_f32(&self) -> MatF32 {
        let qf = MatF32::from_vec(self.q.dequantize(), self.q.rows(), self.q.cols());
        let kf = MatF32::from_vec(self.k.dequantize(), self.k.rows(), self.k.cols());
        attention::dense_attention(&qf, &kf, &self.v_f32, 1.0)
    }
}

/// What one served request asks the attention engine to do.
///
/// The serving layer (`pade-serve`) and the `serve` scenario of
/// `pade-bench` both consume these; the variants mirror the two phases of
/// LLM inference the paper models (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Prompt ingestion: `rows` query rows over the full context.
    Prefill {
        /// Query rows the request brings (the prompt chunk height).
        rows: usize,
    },
    /// Token generation: `steps` single-row decode steps, each over the
    /// session's cached context.
    Decode {
        /// Tokens to generate.
        steps: usize,
    },
}

impl RequestKind {
    /// Query rows (≙ produced/ingested tokens) this request executes.
    #[must_use]
    pub fn tokens(&self) -> usize {
        match *self {
            RequestKind::Prefill { rows } => rows,
            RequestKind::Decode { steps } => steps,
        }
    }

    /// Key-prefix length block `step` of this request attends over, given
    /// a `seq_len`-token operand trace.
    ///
    /// Prefill chunks always see the full context. Decode sessions grow
    /// autoregressively: the prompt prefix is the first `seq_len − steps`
    /// keys (at least one), and each completed step appends the next key
    /// row — the token the step just "generated" — so step `t` attends
    /// over `base + t` tokens. The final step (`t = steps − 1`) therefore
    /// attends `seq_len − 1` tokens: the key of the token it is itself
    /// generating is never attended (the result is clamped to `seq_len`
    /// only for out-of-range `step`). This single definition is shared by
    /// the serving layer's growable caches, the from-scratch oracle and
    /// the `decode-growth` bench scenario, so all three stay aligned.
    #[must_use]
    pub fn context_len(&self, seq_len: usize, step: usize) -> usize {
        match *self {
            RequestKind::Prefill { .. } => seq_len,
            RequestKind::Decode { steps } => {
                let base = seq_len.saturating_sub(steps).max(1);
                (base + step).min(seq_len)
            }
        }
    }
}

/// Configuration of a synthetic request-arrival trace.
///
/// Arrivals follow a seeded Poisson-like process: inter-arrival gaps are
/// exponentially distributed with the configured mean, drawn from a
/// [`StdRng`] — **no wall clock and no global RNG**, so equal seeds give
/// byte-identical traces on every run and machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Number of requests to generate.
    pub n_requests: usize,
    /// Mean inter-arrival gap in core cycles (1 / arrival rate).
    pub mean_interarrival_cycles: f64,
    /// Fraction of requests that are decode sessions (the rest prefill).
    pub decode_fraction: f64,
    /// Tokens generated by each decode request.
    pub decode_steps: usize,
    /// Query rows carried by each prefill request.
    pub prefill_rows: usize,
    /// Context length every request attends over.
    pub seq_len: usize,
    /// Per-head hidden dimension.
    pub head_dim: usize,
    /// Quantization bit width.
    pub bits: u32,
    /// Score structure of the per-request operand traces.
    pub profile: ScoreProfile,
    /// RNG seed; equal seeds produce identical arrival traces.
    pub seed: u64,
}

impl ArrivalConfig {
    /// A small deterministic configuration for examples and tests.
    #[must_use]
    pub fn small_demo() -> Self {
        Self {
            n_requests: 8,
            mean_interarrival_cycles: 20_000.0,
            decode_fraction: 0.5,
            decode_steps: 4,
            prefill_rows: 16,
            seq_len: 256,
            head_dim: 64,
            bits: 8,
            profile: ScoreProfile::standard(),
            seed: 7,
        }
    }
}

/// One request of an arrival trace: when it arrives, what it asks for and
/// the (seeded) operand trace it executes against.
///
/// Cloning is cheap: the only non-`Copy` field is the `Arc`-shared
/// [`PromptTokens`].
#[derive(Debug, Clone, PartialEq)]
pub struct RequestArrival {
    /// Request id, dense from 0 in arrival order.
    pub id: usize,
    /// Arrival time in core cycles.
    pub arrival_cycle: u64,
    /// Decode or prefill, with its size.
    pub kind: RequestKind,
    /// Per-request operand trace configuration (seed derived from the
    /// arrival seed and the id, so requests are distinct but reproducible).
    pub trace: TraceConfig,
    /// Session the request belongs to. Requests of one session arrive at
    /// different times but share (and extend) a context; a prefix-sharing
    /// cache manager keys its session store on this. Single-turn traces
    /// use the request id, so every request is its own session.
    pub session: u64,
    /// Prompt token-id sequence covering the request's whole key context,
    /// when the workload models token identity (shared-prefix / multi-turn
    /// traces). `None` means the key tensor comes from the operand trace
    /// alone, as in the plain [`generate_arrivals`] workloads.
    pub prompt: Option<PromptTokens>,
    /// Scheduling priority of the request's tenant — higher runs first
    /// under an SLO-aware scheduler. Priority is a **scheduling** input
    /// only: it may reorder dispatch, never change a request's output
    /// bytes. The plain generators stamp 0 (every request equal, FCFS
    /// semantics preserved).
    pub priority: u8,
    /// The tenant's end-to-end latency SLO in core cycles (completion −
    /// arrival), or `None` when the tenant has no latency objective. An
    /// SLO-aware scheduler orders by `arrival + tenant_slo` deadlines and
    /// the serve metrics report per-tenant attainment against it; like
    /// [`priority`](Self::priority) it never changes output bytes.
    pub tenant_slo: Option<u64>,
}

/// Generates a seeded, reproducible arrival trace.
///
/// Inter-arrival gaps are `⌈-mean · ln(1-U)⌉` cycles with `U` uniform in
/// `[0, 1)` (inverse-CDF exponential sampling), so the process is
/// Poisson-like but fully deterministic per seed.
///
/// # Panics
///
/// Panics if `n_requests` is zero, the mean gap is not positive/finite,
/// or `decode_fraction` is outside `[0, 1]`.
#[must_use]
pub fn generate_arrivals(config: &ArrivalConfig) -> Vec<RequestArrival> {
    assert!(config.n_requests > 0, "at least one request required");
    assert!(
        config.mean_interarrival_cycles > 0.0 && config.mean_interarrival_cycles.is_finite(),
        "mean inter-arrival gap must be positive and finite"
    );
    assert!((0.0..=1.0).contains(&config.decode_fraction), "decode fraction must lie in [0, 1]");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA55E_55ED_5EED_0001);
    let mut now = 0u64;
    let mut out = Vec::with_capacity(config.n_requests);
    for id in 0..config.n_requests {
        let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
        let gap = (-config.mean_interarrival_cycles * (1.0 - u).ln()).ceil() as u64;
        now += gap;
        let kind = if rng.gen::<f64>() < config.decode_fraction {
            RequestKind::Decode { steps: config.decode_steps.max(1) }
        } else {
            RequestKind::Prefill { rows: config.prefill_rows.max(1) }
        };
        let trace = TraceConfig {
            seq_len: config.seq_len,
            head_dim: config.head_dim,
            n_queries: kind.tokens(),
            profile: config.profile,
            bits: config.bits,
            seed: config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(id as u64)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9),
        };
        out.push(RequestArrival {
            id,
            arrival_cycle: now,
            kind,
            trace,
            session: id as u64,
            prompt: None,
            priority: 0,
            tenant_slo: None,
        });
    }
    out
}

/// One tenant's slice of a mixed-tenant arrival trace: a plain
/// [`ArrivalConfig`] workload plus the scheduling attributes its requests
/// carry.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantLoad {
    /// Tenant id, packed into the high 32 bits of every generated
    /// request's session (the [`MultiTenantConfig::tenant_of`] convention).
    ///
    /// [`MultiTenantConfig::tenant_of`]: crate::prompt::MultiTenantConfig::tenant_of
    pub tenant: u32,
    /// Priority stamped on every request of this tenant.
    pub priority: u8,
    /// Latency SLO stamped on every request of this tenant.
    pub tenant_slo: Option<u64>,
    /// Shape of this tenant's arrival process.
    pub arrivals: ArrivalConfig,
}

/// Generates a merged multi-tenant arrival trace from per-tenant loads —
/// the workload of an SLO-aware scheduler evaluation: e.g. a foreground
/// tenant issuing latency-sensitive decodes while a background tenant
/// floods long prefills.
///
/// Per tenant the trace is exactly [`generate_arrivals`] of its config;
/// tenants are merged in `(arrival_cycle, session)` order and request ids
/// are re-assigned densely over the merge, so the result satisfies the
/// same id/ordering contract as every other generator.
///
/// # Panics
///
/// Panics if `loads` is empty, two loads share a tenant id, or any
/// per-tenant config violates the [`generate_arrivals`] preconditions.
#[must_use]
pub fn generate_tenant_mix(loads: &[TenantLoad]) -> Vec<RequestArrival> {
    assert!(!loads.is_empty(), "at least one tenant load required");
    for (i, a) in loads.iter().enumerate() {
        for b in &loads[i + 1..] {
            assert!(a.tenant != b.tenant, "tenant ids must be distinct");
        }
    }
    let mut out: Vec<RequestArrival> = Vec::new();
    for load in loads {
        out.extend(generate_arrivals(&load.arrivals).into_iter().map(|mut r| {
            r.session |= u64::from(load.tenant) << 32;
            r.priority = load.priority;
            r.tenant_slo = load.tenant_slo;
            r
        }));
    }
    // Dense ids in global arrival order; ties break on the (unique per
    // tenant×request) session id so the interleave is deterministic.
    out.sort_by_key(|r| (r.arrival_cycle, r.session));
    for (id, r) in out.iter_mut().enumerate() {
        r.id = id;
    }
    out
}

/// Removes the components of `v` lying in the span of `basis` (which must
/// be orthonormal).
fn project_out(v: &mut [f32], basis: &[Vec<f32>]) {
    for b in basis {
        let dot: f32 = v.iter().zip(b).map(|(x, y)| x * y).sum();
        for (x, y) in v.iter_mut().zip(b) {
            *x -= dot * y;
        }
    }
}

/// Standard normal sample via Box–Muller (keeps the dependency surface to
/// `rand`'s uniform source only).
fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7f32..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ScoreProfile;

    fn small(seed: u64) -> AttentionTrace {
        AttentionTrace::generate(&TraceConfig { seed, ..TraceConfig::small_demo() })
    }

    #[test]
    fn trace_is_deterministic_per_seed() {
        let a = small(3);
        let b = small(3);
        assert_eq!(a.keys().as_slice(), b.keys().as_slice());
        assert_eq!(a.queries().as_slice(), b.queries().as_slice());
        let c = small(4);
        assert_ne!(a.keys().as_slice(), c.keys().as_slice());
    }

    #[test]
    fn sink_tokens_score_high() {
        let t = small(11);
        let sink_count = t.config().profile.sink_tokens;
        for i in 0..t.config().n_queries {
            let logits = t.exact_logits(i);
            let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            for (j, &logit) in logits.iter().enumerate().take(sink_count) {
                assert!(logit > max - 6.0, "sink token {j} at {logit} vs max {max}");
            }
        }
    }

    #[test]
    fn recent_tokens_score_above_middle_tokens() {
        let t = small(5);
        let s = t.config().seq_len;
        let logits = t.exact_logits(0);
        let recent: f32 = logits[s - 8..].iter().sum::<f32>() / 8.0;
        let middle: f32 = logits[s / 2 - 32..s / 2 + 32].iter().sum::<f32>() / 64.0;
        assert!(recent > middle + 1.0, "recent {recent} vs middle {middle}");
    }

    #[test]
    fn long_context_profile_is_sparser_than_vision() {
        // Long-context profiles are parameterized for S ≥ 4k, where the
        // recency window is a vanishing fraction of the sequence.
        let near_max_fraction = |profile: ScoreProfile| {
            let t = AttentionTrace::generate(&TraceConfig {
                seq_len: 4096,
                profile,
                seed: 9,
                ..TraceConfig::small_demo()
            });
            let logits = t.exact_logits(0);
            let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            logits.iter().filter(|&&x| x > max - 5.0).count() as f64 / logits.len() as f64
        };
        let lc = near_max_fraction(ScoreProfile::long_context());
        let vis = near_max_fraction(ScoreProfile::vision());
        assert!(lc < vis, "long-context keep {lc} should be below vision {vis}");
    }

    #[test]
    fn subset_with_all_keys_matches_reference() {
        let t = small(2);
        let all: Vec<usize> = (0..t.config().seq_len).collect();
        let a = t.reference_output(0);
        let b = t.subset_output(0, &all);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn retained_mass_of_near_max_set_is_high() {
        let t = small(13);
        let logits = t.exact_logits(1);
        let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let retained: Vec<usize> = (0..logits.len()).filter(|&j| logits[j] > max - 5.0).collect();
        let mass = pade_linalg::metrics::retained_mass(&logits, &retained);
        assert!(mass > 0.9, "mass {mass}");
        assert!(retained.len() < logits.len() / 2, "retained {} keys", retained.len());
    }

    #[test]
    fn dense_macs_counts_qk_and_pv() {
        let t = small(1);
        let c = t.config();
        assert_eq!(t.dense_macs(), 2 * (c.n_queries * c.seq_len * c.head_dim) as u64);
    }

    #[test]
    fn int4_traces_generate() {
        let t = AttentionTrace::generate(&TraceConfig { bits: 4, ..TraceConfig::small_demo() });
        assert!(t.queries().as_slice().iter().all(|&x| (-8..=7).contains(&x)));
    }

    #[test]
    fn decode_context_grows_one_token_per_step_to_full_length() {
        let kind = RequestKind::Decode { steps: 4 };
        let s = 256;
        assert_eq!(kind.context_len(s, 0), 252);
        assert_eq!(kind.context_len(s, 1), 253);
        assert_eq!(kind.context_len(s, 3), 255);
        // Clamped past the final step and never below one token.
        assert_eq!(kind.context_len(s, 99), s);
        assert_eq!(RequestKind::Decode { steps: 8 }.context_len(4, 0), 1);
        assert_eq!(RequestKind::Decode { steps: 8 }.context_len(4, 2), 3);
        // Prefill chunks always see the whole context.
        assert_eq!(RequestKind::Prefill { rows: 16 }.context_len(s, 0), s);
        assert_eq!(RequestKind::Prefill { rows: 16 }.context_len(s, 5), s);
    }

    #[test]
    fn key_prefix_slices_leading_rows() {
        let t = small(6);
        let h = t.config().head_dim;
        assert_eq!(t.key_prefix(3), &t.keys().as_slice()[..3 * h]);
        assert_eq!(t.key_prefix(0), &[] as &[i8]);
        assert_eq!(t.key_prefix(t.config().seq_len).len(), t.config().seq_len * h);
    }

    #[test]
    fn arrival_trace_is_deterministic_per_seed() {
        let cfg = ArrivalConfig::small_demo();
        let a = generate_arrivals(&cfg);
        let b = generate_arrivals(&cfg);
        assert_eq!(a, b);
        let c = generate_arrivals(&ArrivalConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_times_are_monotone_and_ids_dense() {
        let arrivals =
            generate_arrivals(&ArrivalConfig { n_requests: 64, ..ArrivalConfig::small_demo() });
        assert_eq!(arrivals.len(), 64);
        for (i, r) in arrivals.iter().enumerate() {
            assert_eq!(r.id, i);
            if i > 0 {
                assert!(r.arrival_cycle >= arrivals[i - 1].arrival_cycle);
            }
        }
    }

    #[test]
    fn mean_gap_tracks_the_configured_rate() {
        let cfg = ArrivalConfig {
            n_requests: 512,
            mean_interarrival_cycles: 10_000.0,
            ..ArrivalConfig::small_demo()
        };
        let arrivals = generate_arrivals(&cfg);
        let span = arrivals.last().unwrap().arrival_cycle as f64;
        let mean = span / arrivals.len() as f64;
        assert!(
            (mean / cfg.mean_interarrival_cycles - 1.0).abs() < 0.25,
            "empirical mean gap {mean} vs configured {}",
            cfg.mean_interarrival_cycles
        );
    }

    #[test]
    fn decode_fraction_shapes_the_mix() {
        let all_decode = generate_arrivals(&ArrivalConfig {
            n_requests: 32,
            decode_fraction: 1.0,
            ..ArrivalConfig::small_demo()
        });
        assert!(all_decode.iter().all(|r| matches!(r.kind, RequestKind::Decode { .. })));
        let all_prefill = generate_arrivals(&ArrivalConfig {
            n_requests: 32,
            decode_fraction: 0.0,
            ..ArrivalConfig::small_demo()
        });
        assert!(all_prefill.iter().all(|r| matches!(r.kind, RequestKind::Prefill { .. })));
    }

    #[test]
    fn per_request_traces_are_distinct_but_reproducible() {
        let arrivals = generate_arrivals(&ArrivalConfig::small_demo());
        assert_ne!(arrivals[0].trace.seed, arrivals[1].trace.seed);
        for r in &arrivals {
            assert_eq!(r.trace.n_queries, r.kind.tokens());
            let a = AttentionTrace::generate(&r.trace);
            let b = AttentionTrace::generate(&r.trace);
            assert_eq!(a.keys().as_slice(), b.keys().as_slice());
        }
    }

    #[test]
    fn plain_arrivals_carry_neutral_scheduling_attributes() {
        for r in generate_arrivals(&ArrivalConfig::small_demo()) {
            assert_eq!(r.priority, 0);
            assert_eq!(r.tenant_slo, None);
        }
    }

    #[test]
    fn tenant_mix_merges_stamps_and_renumbers() {
        let fg = TenantLoad {
            tenant: 0,
            priority: 10,
            tenant_slo: Some(50_000),
            arrivals: ArrivalConfig {
                seed: 11,
                decode_fraction: 1.0,
                ..ArrivalConfig::small_demo()
            },
        };
        let bg = TenantLoad {
            tenant: 1,
            priority: 0,
            tenant_slo: None,
            arrivals: ArrivalConfig {
                seed: 12,
                decode_fraction: 0.0,
                ..ArrivalConfig::small_demo()
            },
        };
        let mix = generate_tenant_mix(&[fg.clone(), bg.clone()]);
        assert_eq!(mix.len(), 16);
        for (i, r) in mix.iter().enumerate() {
            assert_eq!(r.id, i, "ids re-assigned densely over the merge");
            if i > 0 {
                assert!(r.arrival_cycle >= mix[i - 1].arrival_cycle);
            }
            match r.session >> 32 {
                0 => {
                    assert_eq!(r.priority, 10);
                    assert_eq!(r.tenant_slo, Some(50_000));
                    assert!(matches!(r.kind, RequestKind::Decode { .. }));
                }
                1 => {
                    assert_eq!(r.priority, 0);
                    assert_eq!(r.tenant_slo, None);
                    assert!(matches!(r.kind, RequestKind::Prefill { .. }));
                }
                t => panic!("unexpected tenant {t}"),
            }
        }
        // Deterministic per input; order-independent of the load list.
        assert_eq!(mix, generate_tenant_mix(&[fg.clone(), bg.clone()]));
        assert_eq!(mix, generate_tenant_mix(&[bg, fg]));
    }

    #[test]
    #[should_panic(expected = "tenant ids must be distinct")]
    fn tenant_mix_rejects_duplicate_tenants() {
        let load = TenantLoad {
            tenant: 0,
            priority: 0,
            tenant_slo: None,
            arrivals: ArrivalConfig::small_demo(),
        };
        let _ = generate_tenant_mix(&[load.clone(), load]);
    }
}
