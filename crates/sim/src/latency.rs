//! Serving-side statistics: latency percentiles and time-weighted gauges.
//!
//! The serving front end (`pade-serve`) measures distributions rather than
//! single runs: per-request latencies want percentiles (p50/p95/p99 are
//! the numbers an SLO is written against), and queue depth or batch
//! occupancy want *time-weighted* means — a queue that is deep for one
//! cycle and empty for a million must not average to "half full".
//!
//! Both collectors are deterministic: they hold exact samples / exact
//! step functions, no reservoir sampling and no clock reads.

use crate::Cycle;

/// Exact-sample latency collector with nearest-rank percentiles.
///
/// # Example
///
/// ```
/// use pade_sim::{Cycle, LatencyStats};
///
/// let mut lat = LatencyStats::new();
/// for c in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
///     lat.record(Cycle(c));
/// }
/// let s = lat.summary();
/// assert_eq!(s.p50, Cycle(50));
/// assert_eq!(s.p99, Cycle(100));
/// assert_eq!(s.max, Cycle(100));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

/// The percentile digest of a [`LatencyStats`] collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: usize,
    /// Median latency.
    pub p50: Cycle,
    /// 95th-percentile latency.
    pub p95: Cycle,
    /// 99th-percentile latency.
    pub p99: Cycle,
    /// Arithmetic mean latency.
    pub mean: f64,
    /// Largest recorded latency.
    pub max: Cycle,
}

impl LatencySummary {
    /// The all-zero summary of an empty collector.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            count: 0,
            p50: Cycle::ZERO,
            p95: Cycle::ZERO,
            p99: Cycle::ZERO,
            mean: 0.0,
            max: Cycle::ZERO,
        }
    }
}

/// `n=0 —` for an empty collector (zero percentiles of no samples would
/// read as a real, impossibly fast run); `n=N p50=… p95=… p99=… max=…
/// mean=…` cycles otherwise.
impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0 —");
        }
        write!(
            f,
            "n={} p50={} p95={} p99={} max={} mean={:.1}",
            self.count, self.p50.0, self.p95.0, self.p99.0, self.max.0, self.mean
        )
    }
}

impl LatencyStats {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycle) {
        self.samples.push(latency.0);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`); [`Cycle::ZERO`] when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not finite.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Cycle {
        if self.samples.is_empty() {
            assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
            return Cycle::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        nearest_rank(&sorted, p)
    }

    /// Mean latency; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Largest sample; [`Cycle::ZERO`] when empty.
    #[must_use]
    pub fn max(&self) -> Cycle {
        Cycle(self.samples.iter().copied().max().unwrap_or(0))
    }

    /// The p50/p95/p99/mean/max digest (the samples are sorted once and
    /// shared by all three ranks).
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::empty();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        LatencySummary {
            count: sorted.len(),
            p50: nearest_rank(&sorted, 50.0),
            p95: nearest_rank(&sorted, 95.0),
            p99: nearest_rank(&sorted, 99.0),
            mean: sorted.iter().map(|&s| s as f64).sum::<f64>() / sorted.len() as f64,
            max: Cycle(*sorted.last().expect("non-empty")),
        }
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Nearest-rank percentile over pre-sorted samples: the smallest value
/// with at least `p`% of the mass at or below it.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or `sorted` is empty.
fn nearest_rank(sorted: &[u64], p: f64) -> Cycle {
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Cycle(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Time-weighted gauge: a step function of simulation time (queue depth,
/// batch occupancy, active sessions) integrated exactly.
///
/// Values hold from the cycle they are set until the next `set`; the mean
/// is the integral divided by elapsed time.
///
/// # Example
///
/// ```
/// use pade_sim::{Cycle, TimeWeightedGauge};
///
/// let mut g = TimeWeightedGauge::new();
/// g.set(Cycle(0), 4.0);
/// g.set(Cycle(10), 0.0); // deep for 10 cycles...
/// // ...then empty for 990.
/// assert!((g.mean(Cycle(1000)) - 0.04).abs() < 1e-12);
/// assert_eq!(g.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeWeightedGauge {
    first_time: u64,
    last_time: u64,
    last_value: f64,
    integral: f64,
    max: f64,
    started: bool,
}

impl TimeWeightedGauge {
    /// A gauge with no observations yet.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `value` at time `now`. Times must be
    /// non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous observation.
    pub fn set(&mut self, now: Cycle, value: f64) {
        if self.started {
            assert!(now.0 >= self.last_time, "gauge time went backwards");
            self.integral += self.last_value * (now.0 - self.last_time) as f64;
        } else {
            self.first_time = now.0;
            self.started = true;
        }
        self.last_time = now.0;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// Time-weighted mean over `[first set, end]`; `0.0` before any
    /// observation or on an empty interval.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the last observation (same monotonicity
    /// contract as [`set`](Self::set) — an earlier `end` would divide the
    /// full integral by a shorter span and silently inflate the mean).
    #[must_use]
    pub fn mean(&self, end: Cycle) -> f64 {
        if !self.started {
            return 0.0;
        }
        assert!(end.0 >= self.last_time, "gauge time went backwards");
        if end.0 == self.first_time {
            return 0.0;
        }
        let tail = self.last_value * (end.0 - self.last_time) as f64;
        (self.integral + tail) / (end.0 - self.first_time) as f64
    }

    /// Largest value ever set; `0.0` before any observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut lat = LatencyStats::new();
        for c in 1..=100u64 {
            lat.record(Cycle(c));
        }
        assert_eq!(lat.percentile(50.0), Cycle(50));
        assert_eq!(lat.percentile(95.0), Cycle(95));
        assert_eq!(lat.percentile(99.0), Cycle(99));
        assert_eq!(lat.percentile(100.0), Cycle(100));
        assert_eq!(lat.percentile(0.0), Cycle(1));
    }

    #[test]
    fn empty_stats_are_zero() {
        let lat = LatencyStats::new();
        assert!(lat.is_empty());
        let s = lat.summary();
        assert_eq!(s, LatencySummary::empty());
    }

    #[test]
    fn summary_display_distinguishes_empty_from_fast() {
        assert_eq!(LatencySummary::empty().to_string(), "n=0 —");
        let mut lat = LatencyStats::new();
        lat.record(Cycle(40));
        lat.record(Cycle(60));
        let text = lat.summary().to_string();
        assert!(text.starts_with("n=2 "), "{text}");
        assert!(text.contains("p99=60"), "{text}");
        assert!(text.contains("mean=50.0"), "{text}");
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut lat = LatencyStats::new();
        lat.record(Cycle(42));
        let s = lat.summary();
        assert_eq!(s.p50, Cycle(42));
        assert_eq!(s.p99, Cycle(42));
        assert_eq!(s.max, Cycle(42));
        assert!((s.mean - 42.0).abs() < 1e-12);
    }

    #[test]
    fn merge_pools_samples() {
        let mut a = LatencyStats::new();
        a.record(Cycle(10));
        let mut b = LatencyStats::new();
        b.record(Cycle(30));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.max(), Cycle(30));
        assert!((a.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn gauge_integrates_step_function() {
        let mut g = TimeWeightedGauge::new();
        g.set(Cycle(0), 2.0);
        g.set(Cycle(10), 6.0);
        g.set(Cycle(20), 0.0);
        // 2·10 + 6·10 + 0·80 over 100 cycles = 0.8.
        assert!((g.mean(Cycle(100)) - 0.8).abs() < 1e-12);
        assert_eq!(g.max(), 6.0);
    }

    #[test]
    fn gauge_before_any_observation_is_zero() {
        let g = TimeWeightedGauge::new();
        assert_eq!(g.mean(Cycle(100)), 0.0);
        assert_eq!(g.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn gauge_rejects_time_travel() {
        let mut g = TimeWeightedGauge::new();
        g.set(Cycle(10), 1.0);
        g.set(Cycle(5), 2.0);
    }
}
