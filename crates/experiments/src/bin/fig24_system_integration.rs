//! Fig. 24 — PADE as a GPU co-processor: end-to-end LLM latency with
//! attention offloaded to PADE, interleaving two request streams, with and
//! without the bit-plane data-conversion step.

use pade_core::config::PadeConfig;
use pade_energy::gpu::GpuPhase;
use pade_experiments::report::{banner, times, Table};
use pade_experiments::runner::{
    gpu_outcome, h100, pade_end_to_end, GpuMode, Workload, DECODE_STEPS, GPU_BATCH,
};
use pade_workload::{model, task};

/// Non-attention transformer work (QKV projections + FFN) per request:
/// ~12·d_model² MACs per token per layer, executed on the GPU in both
/// systems.
fn other_phase(w: &Workload) -> GpuPhase {
    let d_model = (w.model.heads * w.model.head_dim) as f64;
    let tokens = w.task.seq_len as f64 + DECODE_STEPS as f64;
    let layers = w.model.layers as f64;
    let batch = GPU_BATCH as f64;
    GpuPhase {
        int8_ops: 2.0 * 12.0 * d_model * d_model * tokens * layers * batch,
        fp_ops: 2.0 * d_model * tokens * layers * batch,
        hbm_bytes: 12.0 * d_model * d_model * layers // weights stream once per step batch-shared
            * (1.0 + DECODE_STEPS as f64),
        kernels: layers * 4.0,
    }
}

fn main() {
    banner("Fig. 24(b)(c)", "GPU-only vs GPU+PADE end-to-end latency");
    let mut table = Table::new(vec![
        "task",
        "GPU-only",
        "GPU+PADE w/o DL conv",
        "GPU+PADE w DL conv",
        "speedup (w DL)",
    ]);
    for t in [task::dolly(), task::infinitebench(), task::niah()] {
        let w = Workload::new(model::llama2_7b(), t, 2800 + (t.seq_len % 8999) as u64);
        let gpu = h100();
        let other_s = gpu.latency_s(&other_phase(&w)) / GPU_BATCH as f64;
        let (attn_gpu_s, _) = gpu_outcome(&w, GpuMode::Flash);
        let gpu_only = other_s + attn_gpu_s;

        let (attn_pade_s, _, _) = pade_end_to_end(&w, &PadeConfig::standard());
        // Without the co-designed layout the accelerator runs slower
        // (linear bit-plane packing) — measured via the layout toggle.
        let (attn_pade_nodl_s, _, _) = pade_end_to_end(
            &w,
            &PadeConfig { layout: pade_mem::KeyLayout::BitPlaneLinear, ..PadeConfig::standard() },
        );
        // Data conversion: the GPU packs K into bit-plane layout during KV
        // generation — a byte-level pass over K, fused with the projection
        // (paper: <2% overhead).
        let conv_s = {
            let s = w.task.seq_len as f64;
            let bytes = s * (w.model.kv_heads * w.model.head_dim) as f64 * w.model.layers as f64;
            bytes / (gpu.config().hbm_tbps * 1e12 * 0.5)
        };
        // Two request streams interleave on GPU and PADE (Fig. 24(b)):
        // the slower side binds the pipeline.
        let pg_nodl = other_s.max(attn_pade_nodl_s);
        let pg_dl = other_s.max(attn_pade_s + conv_s) + conv_s;
        table.row(vec![
            format!("{} ({}k)", t.name, t.seq_len / 1024),
            format!("{gpu_only:.3}s"),
            format!("{pg_nodl:.3}s"),
            format!("{pg_dl:.3}s"),
            times(gpu_only / pg_dl),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: 2.1x end-to-end speedup at 214k; the data conversion adds");
    println!("<2% latency but enables a further 1.9x through row-buffer hits.");
}
