//! Serving metrics, recorded through the `pade-sim` counters.
//!
//! Everything is accumulated in simulated [`Cycle`]s: per-request latency
//! (completion − arrival) through [`LatencyStats`], queue depth and batch
//! occupancy as time-weighted step functions through
//! [`TimeWeightedGauge`], and the engine's arithmetic/traffic events
//! through [`OpCounts`]/[`TrafficCounts`] so the serving layer's numbers
//! stay composable with the rest of the workspace (e.g. `pade-energy`).

use pade_sim::{
    Cycle, Frequency, LatencyStats, LatencySummary, OpCounts, TimeWeightedGauge, TrafficCounts,
};

/// Running metric collectors of one serve run.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Per-request latency samples (completion − arrival).
    pub latency: LatencyStats,
    /// Requests in the system (admitted, unfinished) over time.
    pub queue_depth: TimeWeightedGauge,
    /// Fraction of engine slots carrying a block, over time.
    pub occupancy: TimeWeightedGauge,
    /// Query-row tokens in flight per iteration, over time.
    pub batch_tokens: TimeWeightedGauge,
    /// Engine arithmetic events over all dispatched blocks.
    pub ops: OpCounts,
    /// Engine memory traffic over all dispatched blocks.
    pub traffic: TrafficCounts,
    /// Scheduler iterations executed.
    pub iterations: u64,
    /// Query-row tokens completed.
    pub tokens: u64,
    /// Simulated engine cycles summed over all blocks (Σ block latency;
    /// ≥ the makespan whenever batching overlaps blocks).
    pub engine_cycles: u64,
}

/// The digest of a finished serve run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSummary {
    /// Latency percentiles over all completed requests.
    pub latency: LatencySummary,
    /// Time-weighted mean requests in system.
    pub queue_depth_mean: f64,
    /// Peak requests in system.
    pub queue_depth_max: f64,
    /// Time-weighted mean slot occupancy in `[0, 1]`.
    pub occupancy_mean: f64,
    /// Time-weighted mean query-row tokens in flight.
    pub batch_tokens_mean: f64,
    /// Scheduler iterations executed.
    pub iterations: u64,
    /// Query-row tokens completed.
    pub tokens: u64,
    /// Makespan of the run.
    pub makespan: Cycle,
    /// Tokens per simulated second at `clk`.
    pub tokens_per_s: f64,
}

impl ServeMetrics {
    /// Fresh collectors.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Closes the run at `end` and digests the collectors.
    #[must_use]
    pub fn summarize(&self, end: Cycle, clk: Frequency) -> MetricsSummary {
        let seconds = clk.seconds(end).max(f64::MIN_POSITIVE);
        MetricsSummary {
            latency: self.latency.summary(),
            queue_depth_mean: self.queue_depth.mean(end),
            queue_depth_max: self.queue_depth.max(),
            occupancy_mean: self.occupancy.mean(end),
            batch_tokens_mean: self.batch_tokens.mean(end),
            iterations: self.iterations,
            tokens: self.tokens,
            makespan: end,
            tokens_per_s: self.tokens as f64 / seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_converts_tokens_to_rate() {
        let mut m = ServeMetrics::new();
        m.tokens = 1600;
        m.latency.record(Cycle(100));
        m.queue_depth.set(Cycle(0), 2.0);
        let s = m.summarize(Cycle(800), Frequency::mhz(800.0));
        // 1600 tokens in 800 cycles at 800 MHz = 1 µs → 1.6 Gtok/s.
        assert!((s.tokens_per_s - 1.6e9).abs() / 1.6e9 < 1e-9);
        assert_eq!(s.latency.count, 1);
        assert!((s.queue_depth_mean - 2.0).abs() < 1e-12);
        assert_eq!(s.makespan, Cycle(800));
    }
}
