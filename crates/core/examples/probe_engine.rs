//! Developer probe: prints engine statistics at several scales.
use pade_core::accelerator::PadeAccelerator;
use pade_core::config::PadeConfig;
use pade_mem::KeyLayout;
use pade_workload::profile::ScoreProfile;
use pade_workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sizes: Vec<usize> = if args.len() > 1 {
        args[1..].iter().map(|a| a.parse().unwrap()).collect()
    } else {
        vec![256]
    };
    for s in sizes {
        let trace = AttentionTrace::generate(&TraceConfig {
            seq_len: s,
            head_dim: 64,
            n_queries: 8,
            profile: ScoreProfile::standard(),
            bits: 8,
            seed: 7,
        });
        for (name, cfg) in [
            ("std", PadeConfig::standard()),
            ("agg", PadeConfig::aggressive()),
            ("noGF", PadeConfig { enable_bui_gf: false, ..PadeConfig::standard() }),
            ("noOOE", PadeConfig { enable_ooe: false, ..PadeConfig::standard() }),
            ("noBS", PadeConfig { enable_bs: false, ..PadeConfig::standard() }),
            ("lin", PadeConfig { layout: KeyLayout::BitPlaneLinear, ..PadeConfig::standard() }),
            ("dense", PadeConfig::dense_baseline()),
        ] {
            let r = PadeAccelerator::new(cfg).run_trace(&trace);
            println!(
                "S={:5} {name:6} cyc={:8} qk={:8} vpu={:8} planes={:6}/{:6} keep={:.3} fid={:.4} dram={:8} hit={:.2} bw={:.2} bitacc={:9}",
                s, r.stats.cycles.0, r.qk_cycles.0, r.vpu_cycles.0,
                r.planes_fetched, r.planes_dense,
                r.stats.keep_ratio(), r.fidelity,
                r.stats.traffic.dram_total_bytes(), r.row_hit_rate, r.bandwidth_utilization,
                r.stats.ops.bit_serial_acc,
            );
        }
        println!();
    }
}
