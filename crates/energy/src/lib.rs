//! Energy, power and area models for the PADE reproduction.
//!
//! The paper evaluates PADE with Synopsys DC at TSMC 28 nm plus CACTI for
//! SRAM and a 4 pJ/bit HBM cost (§VI-A). This crate substitutes those tools
//! with an *event-energy* model: every accelerator run produces raw event
//! counts ([`pade_sim::RunStats`]), and [`EnergyLedger`] prices them with
//! 28 nm-class constants ([`Tech`]). Area and module-level power come from
//! [`area`], calibrated to the paper's Fig. 20 breakdown. [`gpu`] provides
//! the H100 roofline used by the GPU comparisons (Fig. 18, 19, 24).
//!
//! # Example
//!
//! ```
//! use pade_energy::{EnergyLedger, Tech};
//! use pade_sim::RunStats;
//!
//! let mut stats = RunStats::new("demo");
//! stats.ops.int8_mac = 1_000;
//! stats.traffic.dram_read_bytes = 64;
//! let ledger = EnergyLedger::from_stats(&stats, &Tech::cmos28());
//! assert!(ledger.total_pj() > 0.0);
//! assert!(ledger.executor.dram_pj > ledger.executor.compute_pj);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod gpu;
mod ledger;
mod tech;

pub use ledger::{gops_per_watt, ops_energy_pj, traffic_energy_pj, EnergyBreakdown, EnergyLedger};
pub use tech::Tech;
