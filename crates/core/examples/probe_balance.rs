//! Developer probe: balance efficiency at scale for Fig. 23(a) calibration.
use pade_core::accelerator::PadeAccelerator;
use pade_core::config::PadeConfig;
use pade_workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    for s in [256usize, 1024] {
        let trace = AttentionTrace::generate(&TraceConfig {
            seq_len: s,
            n_queries: 8,
            ..TraceConfig::small_demo()
        });
        let r = PadeAccelerator::new(PadeConfig::standard()).run_trace(&trace);
        let u = &r.stats.pe_util;
        println!(
            "S={s} balance={:.3} busy={} intra={} inter={} mem={}",
            u.balance_efficiency(),
            u.busy_cycles(),
            u.intra_stalls(),
            u.inter_stalls(),
            u.mem_stalls()
        );
    }
}
