//! Router invariants, property-tested:
//!
//! 1. **Determinism** — same seed ⇒ identical routing decision logs and
//!    byte-identical per-request outputs, run after run.
//! 2. **Placement-independence** — outputs are byte-identical across
//!    node counts {1, 2, 4} and across every policy, and equal to the
//!    single-node `serve` run and the solo seed-oracle
//!    (`run_qk_block_reference`) outputs.
//! 3. **Degraded fleets** — a zero-slot ("failed empty") node never
//!    deadlocks the router: everything still completes.
//! 4. **Shard merge** — the `pade-dist` `(m, l, O)` reduction of the
//!    fleet's per-node states is bitwise the single-node result.

use std::collections::HashMap;

use pade_router::{route, verify_partial_merge, RoutePolicy, RouterConfig};
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, ServeConfig};
use pade_serve::{output_bytes, reference_outputs};
use pade_workload::prompt::{
    generate_multi_tenant_arrivals, MultiTenantConfig, SharedPrefixConfig,
};
use proptest::prelude::*;

/// A small multi-tenant workload: every request carries a prompt, several
/// sessions return for a second turn.
fn workload(seed: u64) -> Vec<pade_workload::trace::RequestArrival> {
    generate_multi_tenant_arrivals(&MultiTenantConfig {
        tenants: 2,
        sessions_per_tenant: 3,
        per_tenant: SharedPrefixConfig {
            // One pool prefix per tenant: every session of a tenant
            // shares it, so tenant-blind scattering re-decomposes it on
            // every node it touches.
            pool_size: 1,
            turns_per_session: 2,
            shared_prefix_tokens: 48,
            unique_suffix_tokens: 12,
            turn_suffix_tokens: 12,
            decode_steps: 2,
            prefill_rows: 6,
            mean_interarrival_cycles: 2_000.0,
            turn_gap_cycles: 50_000,
            ..SharedPrefixConfig::small_demo()
        },
        seed,
    })
}

fn node_config() -> ServeConfig {
    ServeConfig { kv_chunk_tokens: 16, ..ServeConfig::standard() }
}

fn output_map(report: &pade_router::RouterReport) -> HashMap<usize, Vec<u8>> {
    report.completions_by_id().iter().map(|c| (c.id, c.output_bytes())).collect()
}

proptest! {
    /// Same seed ⇒ identical routing decisions and byte-identical
    /// outputs, for every policy.
    #[test]
    fn routing_is_deterministic_per_seed(seed in any::<u64>(), n_nodes in 1usize..5) {
        let arrivals = workload(seed);
        for policy in [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded] {
            let config = RouterConfig::homogeneous(node_config(), n_nodes, policy);
            let a = route(&config, &arrivals, ScheduleMode::Batched);
            let b = route(&config, &arrivals, ScheduleMode::Batched);
            prop_assert_eq!(&a.decisions, &b.decisions, "{} decisions diverged", policy.label());
            prop_assert_eq!(&a.summary, &b.summary);
            prop_assert_eq!(output_map(&a), output_map(&b));
        }
    }

    /// Outputs are byte-identical across node counts {1, 2, 4}, across
    /// policies, against the single-node serve run, and against the solo
    /// seed-oracle run of every request.
    #[test]
    fn outputs_are_placement_independent(seed in any::<u64>()) {
        let arrivals = workload(seed);
        let config = node_config();
        let single = serve(&config, &arrivals, ScheduleMode::Batched);
        let mut single_bytes: Vec<(usize, Vec<u8>)> =
            single.completions.iter().map(|c| (c.id, c.output_bytes())).collect();
        single_bytes.sort_by_key(|&(id, _)| id);
        let single_map: HashMap<usize, Vec<u8>> = single_bytes.into_iter().collect();

        for n_nodes in [1usize, 2, 4] {
            for policy in
                [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded]
            {
                let fleet = RouterConfig::homogeneous(config.clone(), n_nodes, policy);
                let report = route(&fleet, &arrivals, ScheduleMode::Batched);
                let fleet_map = output_map(&report);
                prop_assert_eq!(
                    &fleet_map,
                    &single_map,
                    "{} nodes under {} diverged from single-node serve",
                    n_nodes,
                    policy.label()
                );
            }
        }
        // The single-node map itself equals the seed-oracle outputs, so
        // transitively every fleet does too; check it directly once.
        for completion in &single.completions {
            let oracle = reference_outputs(&arrivals[completion.id], &config.engine);
            prop_assert_eq!(
                completion.output_bytes(),
                output_bytes(&oracle),
                "request {} diverged from its solo seed-oracle run",
                completion.id
            );
        }
    }

    /// A fleet containing a zero-slot node (the "failed empty" node —
    /// present, routable, no capacity beyond the scheduler's clamp to
    /// one) never deadlocks: every request completes under every policy.
    #[test]
    fn zero_slot_node_never_deadlocks(seed in any::<u64>()) {
        let arrivals = workload(seed);
        let healthy = node_config();
        let degraded = ServeConfig { engine_slots: 0, ..node_config() };
        for policy in [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded] {
            let fleet = RouterConfig {
                nodes: vec![healthy.clone(), degraded.clone(), healthy.clone()],
                policy,
                affinity_chunks: 1,
                tier: None,
                drain: None,
            };
            let report = route(&fleet, &arrivals, ScheduleMode::Batched);
            let ids: Vec<usize> = report.completions_by_id().iter().map(|c| c.id).collect();
            prop_assert_eq!(
                ids,
                (0..arrivals.len()).collect::<Vec<_>>(),
                "{} lost requests on a degraded fleet",
                policy.label()
            );
        }
    }
}

/// The dist-merge proof on a real routed run: per-node `(m, l, O)`
/// states reduce to the single-node result bitwise, in any order.
#[test]
fn sharded_states_merge_bitwise_to_single_node() {
    let arrivals = workload(2026);
    for n_nodes in [1usize, 2, 4] {
        let config = RouterConfig::homogeneous(node_config(), n_nodes, RoutePolicy::Affinity);
        let report = route(&config, &arrivals, ScheduleMode::Batched);
        let rows = verify_partial_merge(&report, 16);
        assert!(rows > 0, "{n_nodes} nodes: merge check must cover retained rows");
    }
}

/// Affinity keeps every session on one node and beats round-robin on
/// fleet cache hits for the multi-tenant workload at 2 and 4 nodes.
#[test]
fn affinity_beats_round_robin_on_hits() {
    let arrivals = workload(7);
    for n_nodes in [2usize, 4] {
        let aff = route(
            &RouterConfig::homogeneous(node_config(), n_nodes, RoutePolicy::Affinity),
            &arrivals,
            ScheduleMode::Batched,
        );
        let rr = route(
            &RouterConfig::homogeneous(node_config(), n_nodes, RoutePolicy::RoundRobin),
            &arrivals,
            ScheduleMode::Batched,
        );
        assert!(
            aff.summary.cache_hit_tokens > rr.summary.cache_hit_tokens,
            "{n_nodes} nodes: affinity {} vs round-robin {} hit tokens",
            aff.summary.cache_hit_tokens,
            rr.summary.cache_hit_tokens
        );
        assert!(aff.summary.cache_decomposed_tokens < rr.summary.cache_decomposed_tokens);
        // Sessions never migrate under affinity.
        let mut home: HashMap<u64, usize> = HashMap::new();
        for d in &aff.decisions {
            assert_eq!(*home.entry(d.session).or_insert(d.node), d.node);
        }
    }
}
