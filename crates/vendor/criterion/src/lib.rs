//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use (`Criterion`,
//! benchmark groups, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! with a simple wall-clock harness: each benchmark is warmed up once,
//! then timed over `sample_size` samples, and the mean/min are printed.
//! There is no statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, as rendered by upstream criterion.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { name: format!("{}/{}", name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, one call per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (also primes caches and lazy statics).
        black_box(f());
        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

fn report(group: &str, name: &str, results: &[Duration]) {
    if results.is_empty() {
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().copied().unwrap_or_default();
    let label = if group.is_empty() { name.to_string() } else { format!("{group}/{name}") };
    println!("{label:<56} mean {mean:>12.3?}   min {min:>12.3?}   ({} samples)", results.len());
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        report(&self.name, &id.name, &b.results);
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b, input);
        report(&self.name, &id.name, &b.results);
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 { 10 } else { self.sample_size };
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let samples = if self.sample_size == 0 { 10 } else { self.sample_size };
        let mut b = Bencher { samples, results: Vec::new() };
        f(&mut b);
        report("", &id.name, &b.results);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        benches();
    }
}
