//! Chrome-trace/Perfetto JSON export and a dependency-free validator.
//!
//! The exporter writes the [Trace Event Format] consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): spans as
//! `B`/`E` phase pairs, counters and gauges as `C` events, instants as
//! `i`, and request link chains as flow events (`s`/`t`/`f` phases keyed
//! by request id) so a request's journey across router/serve/engine/tier
//! tracks renders as connected arrows. Timestamps are the **logical**
//! cycle values (one trace-µs per cycle), so the rendered timeline is
//! deterministic; wall-clock span annotations ride in `args.wall_ns`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{track, TraceEvent, TraceSnapshot};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write};
use std::path::Path;

/// Escapes a string for embedding in a JSON literal.
#[must_use]
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes a snapshot as Chrome-trace JSON.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: Write>(snapshot: &TraceSnapshot, mut w: W) -> io::Result<()> {
    // Pre-pass: order every request's link hops by (clock, track,
    // emission index) and assign flow phases — first hop opens the flow
    // (`s`), middle hops step it (`t`), the last closes it (`f`).
    // Single-hop chains draw no arrow and render as plain instants.
    let mut chains: BTreeMap<u64, Vec<(u64, u64, usize)>> = BTreeMap::new();
    for t in &snapshot.tracks {
        for (i, e) in t.events.iter().enumerate() {
            if let TraceEvent::Link { clock, request, .. } = *e {
                chains.entry(request).or_default().push((clock.0, t.track, i));
            }
        }
    }
    let mut flow_phase: BTreeMap<(u64, usize), (char, u64)> = BTreeMap::new();
    for (request, mut chain) in chains {
        if chain.len() < 2 {
            continue;
        }
        chain.sort_unstable();
        let last = chain.len() - 1;
        for (k, (_, track, index)) in chain.into_iter().enumerate() {
            let phase = if k == 0 {
                's'
            } else if k == last {
                'f'
            } else {
                't'
            };
            flow_phase.insert((track, index), (phase, request));
        }
    }

    w.write_all(b"{\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |w: &mut W, line: &str| -> io::Result<()> {
        if first {
            first = false;
        } else {
            w.write_all(b",")?;
        }
        w.write_all(b"\n")?;
        w.write_all(line.as_bytes())
    };
    for t in &snapshot.tracks {
        let tid = t.track;
        emit(
            &mut w,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&track::label(tid))
            ),
        )?;
        // Running totals so delta counters render as levels, and the open
        // span stack so `E` events can repeat their span's name (some
        // viewers want it).
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut open: Vec<&'static str> = Vec::new();
        for (i, e) in t.events.iter().enumerate() {
            if let TraceEvent::Link { name, clock, request, info } = *e {
                emit(
                    &mut w,
                    &format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
                         \"s\":\"t\",\"args\":{{\"request\":{request},\"info\":{info}}}}}",
                        escape(name),
                        clock.0
                    ),
                )?;
                if let Some(&(phase, request)) = flow_phase.get(&(tid, i)) {
                    // `bp:e` binds the closing flow arrow to the
                    // enclosing slice, which Perfetto renders cleanly.
                    let bp = if phase == 'f' { ",\"bp\":\"e\"" } else { "" };
                    emit(
                        &mut w,
                        &format!(
                            "{{\"name\":\"req\",\"cat\":\"req\",\"ph\":\"{phase}\",\
                             \"id\":{request},\"ts\":{},\"pid\":1,\"tid\":{tid}{bp}}}",
                            clock.0
                        ),
                    )?;
                }
                continue;
            }
            let line = match *e {
                TraceEvent::Begin { name, clock } => {
                    open.push(name);
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{tid}}}",
                        escape(name),
                        clock.0
                    )
                }
                TraceEvent::End { clock, wall_nanos } => {
                    let name = open.pop().unwrap_or("");
                    let args = if wall_nanos > 0 {
                        format!(",\"args\":{{\"wall_ns\":{wall_nanos}}}")
                    } else {
                        String::new()
                    };
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{tid}{args}}}",
                        escape(name),
                        clock.0
                    )
                }
                TraceEvent::Instant { name, clock } => format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"s\":\"t\"}}",
                    escape(name),
                    clock.0
                ),
                TraceEvent::Count { name, clock, delta } => {
                    let total = totals.entry(name).or_insert(0);
                    *total += delta;
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
                         \"args\":{{\"value\":{}}}}}",
                        escape(name),
                        clock.0,
                        *total
                    )
                }
                TraceEvent::Gauge { name, clock, value } => format!(
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{tid},\
                     \"args\":{{\"value\":{value}}}}}",
                    escape(name),
                    clock.0
                ),
                TraceEvent::Link { .. } => unreachable!("links are emitted above"),
            };
            emit(&mut w, &line)?;
        }
    }
    w.write_all(b"\n],\"displayTimeUnit\":\"ns\"}\n")
}

/// Writes a snapshot as Chrome-trace JSON to `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_chrome_trace(snapshot: &TraceSnapshot, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut buf = io::BufWriter::new(file);
    write_chrome_trace(snapshot, &mut buf)?;
    buf.flush()
}

/// What [`validate_chrome_trace`] found in a well-formed trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Distinct span stage names.
    pub stage_names: BTreeSet<String>,
    /// `C` (counter/gauge) events.
    pub counter_events: usize,
    /// Flow events (`s`/`t`/`f` phases — request link arrows).
    pub flow_events: usize,
}

/// Validates Chrome-trace JSON text: it must parse as JSON, carry a
/// `traceEvents` array, and every `B` must close with an `E` on the same
/// `tid` (per-track balanced, stack-wise). This is the check the CI smoke
/// step runs over `pade-serve --trace-out` output.
///
/// # Errors
///
/// Describes the first syntax or balance violation.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let value = json::parse(text)?;
    let root = value.as_object().ok_or("root is not an object")?;
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .ok_or("missing traceEvents array")?;
    let mut summary = ChromeTraceSummary { events: events.len(), ..Default::default() };
    let mut open: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let obj = e.as_object().ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let ph = field("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i} has no ph"))?;
        let tid = field("tid").map(json::Value::render).unwrap_or_default();
        let name = field("name").and_then(json::Value::as_str).unwrap_or("");
        match ph {
            "B" => {
                summary.stage_names.insert(name.to_string());
                open.entry(tid).or_default().push(name.to_string());
            }
            "E" => {
                let stack = open.entry(tid.clone()).or_default();
                if stack.pop().is_none() {
                    return Err(format!("event {i}: E without open B on tid {tid}"));
                }
                summary.spans += 1;
            }
            "C" => summary.counter_events += 1,
            "s" | "t" | "f" => summary.flow_events += 1,
            _ => {}
        }
    }
    for (tid, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("tid {tid}: span '{name}' never closed"));
        }
    }
    Ok(summary)
}

/// A minimal recursive-descent JSON parser — the workspace vendors no
/// serde, and the validator must check real syntax, not grep for tokens.
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in source order.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        /// Canonical rendering used to key tids regardless of JSON type.
        pub fn render(&self) -> String {
            match self {
                Value::Null => "null".into(),
                Value::Bool(b) => b.to_string(),
                Value::Num(n) => n.to_string(),
                Value::Str(s) => s.clone(),
                Value::Arr(_) => "[..]".into(),
                Value::Obj(_) => "{..}".into(),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {pos}", c as char))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => Ok(Value::Str(string(b, pos)?)),
            Some(b't') => literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => literal(b, pos, "false", Value::Bool(false)),
            Some(b'n') => literal(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let ch_len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = b.get(*pos..*pos + ch_len).ok_or("truncated utf-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *pos += ch_len;
                }
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            fields.push((key, value(b, pos)?));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, TraceSink};
    use pade_sim::Cycle;

    fn sample_snapshot() -> TraceSnapshot {
        let rec = Recorder::new();
        rec.submit(
            track::id(track::ENGINE, 0, 0),
            &[
                TraceEvent::Begin { name: "engine.qk_block", clock: Cycle(0) },
                TraceEvent::Count { name: "engine.popcounts", clock: Cycle(3), delta: 2 },
                TraceEvent::Count { name: "engine.popcounts", clock: Cycle(5), delta: 1 },
                TraceEvent::End { clock: Cycle(9), wall_nanos: 321 },
            ],
        );
        rec.submit(
            track::id(track::SERVE, 0, 0),
            &[
                TraceEvent::Gauge { name: "serve.queue_depth", clock: Cycle(1), value: 2.0 },
                TraceEvent::Instant { name: "serve.retire", clock: Cycle(4) },
                TraceEvent::Begin { name: "serve.dispatch", clock: Cycle(4) },
                TraceEvent::End { clock: Cycle(8), wall_nanos: 0 },
            ],
        );
        rec.snapshot()
    }

    #[test]
    fn export_round_trips_through_validator() {
        let mut out = Vec::new();
        write_chrome_trace(&sample_snapshot(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.spans, 2);
        assert!(summary.stage_names.contains("engine.qk_block"));
        assert!(summary.stage_names.contains("serve.dispatch"));
        assert_eq!(summary.counter_events, 3);
        // Delta counters render as running totals.
        assert!(text.contains("\"value\":3"));
        // Wall annotation rides in args.
        assert!(text.contains("\"wall_ns\":321"));
    }

    #[test]
    fn validator_rejects_unbalanced_and_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        let unbalanced = r#"{"traceEvents":[
            {"name":"x","ph":"B","ts":0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(unbalanced).unwrap_err().contains("never closed"));
        let orphan = r#"{"traceEvents":[
            {"name":"x","ph":"E","ts":0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(orphan).unwrap_err().contains("without open B"));
    }

    #[test]
    fn link_chains_export_as_flow_events() {
        let rec = Recorder::new();
        rec.submit(
            track::id(track::SERVE, 0, 0),
            &[
                TraceEvent::Link { name: "req.admit", clock: Cycle(0), request: 5, info: 0 },
                TraceEvent::Link { name: "req.prefill", clock: Cycle(2), request: 5, info: 9 },
            ],
        );
        rec.submit(
            track::id(track::ENGINE, 0, 0),
            &[
                TraceEvent::Link { name: "req.retire", clock: Cycle(7), request: 5, info: 7 },
                TraceEvent::Link { name: "req.admit", clock: Cycle(8), request: 6, info: 0 },
            ],
        );
        let mut out = Vec::new();
        write_chrome_trace(&rec.snapshot(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let summary = validate_chrome_trace(&text).unwrap();
        // Request 5's three hops draw s → t → f; request 6's single hop
        // draws no arrow (instant only).
        assert_eq!(summary.flow_events, 3);
        assert!(text.contains("\"ph\":\"s\""));
        assert!(text.contains("\"ph\":\"t\""));
        assert!(text.contains("\"ph\":\"f\""));
        assert!(text.contains("\"bp\":\"e\""));
        assert!(text.contains("\"request\":5"));
    }

    #[test]
    fn empty_snapshot_exports_valid_json() {
        let mut out = Vec::new();
        write_chrome_trace(&TraceSnapshot::default(), &mut out).unwrap();
        let summary = validate_chrome_trace(&String::from_utf8(out).unwrap()).unwrap();
        assert_eq!(summary.events, 0);
    }
}
