//! LLM prefill scenario: Llama-2-7B-style attention at a 2k context,
//! comparing PADE against the stage-splitting SOTA accelerators under the
//! paper's normalization.
//!
//! ```text
//! cargo run --release --example llm_prefill
//! ```

use pade::baselines::{dota, sanger, sofa, Accelerator};
use pade::core::accelerator::PadeAccelerator;
use pade::core::config::PadeConfig;
use pade::energy::{EnergyLedger, Tech};
use pade::workload::profile::ScoreProfile;
use pade::workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    let trace = AttentionTrace::generate(&TraceConfig {
        seq_len: 2048,
        head_dim: 128, // Llama-2 head width
        n_queries: 8,
        profile: ScoreProfile::standard(),
        bits: 8,
        seed: 11,
    });
    let tech = Tech::cmos28();

    println!(
        "{:<10} {:>8} {:>9} {:>12} {:>12} {:>10}",
        "design", "keep", "fidelity", "energy(uJ)", "pred share", "cycles"
    );
    println!("{}", "-".repeat(66));

    let pade = PadeAccelerator::new(PadeConfig::standard()).run_trace(&trace);
    let e = EnergyLedger::from_stats(&pade.stats, &tech);
    println!(
        "{:<10} {:>7.1}% {:>9.4} {:>12.2} {:>11.1}% {:>10}",
        "PADE",
        pade.stats.keep_ratio() * 100.0,
        pade.fidelity,
        e.total_pj() * 1e-6,
        e.predictor_fraction() * 100.0,
        pade.stats.cycles.0,
    );

    for design in [sanger(), dota(), sofa()] {
        let r = design.run(&trace);
        let e = EnergyLedger::from_stats(&r.stats, &tech);
        println!(
            "{:<10} {:>7.1}% {:>9.4} {:>12.2} {:>11.1}% {:>10}",
            design.name(),
            r.stats.keep_ratio() * 100.0,
            r.fidelity,
            e.total_pj() * 1e-6,
            e.predictor_fraction() * 100.0,
            r.stats.cycles.0,
        );
    }
    println!();
    println!("PADE's predictor share is identically zero: prediction IS the");
    println!("first rounds of execution (bit-serial stage fusion).");
}
