//! PADE hardware and algorithm configuration (Table III of the paper).

use pade_mem::{HbmConfig, KeyLayout};
use pade_sim::Frequency;

/// Complete configuration of a PADE design point.
///
/// Defaults reproduce Table III: a QK-PU with 8 PE rows × 16 bit-wise
/// lanes of 64-wide grouped ANDer trees and 32-entry scoreboards, an 8×16
/// INT8 V-PU, 320 KB + 32 KB buffers and HBM2 at 256 GB/s, clocked at
/// 800 MHz. The feature toggles select the ablation points of Fig. 16(a)
/// and Fig. 19.
#[derive(Debug, Clone, PartialEq)]
pub struct PadeConfig {
    /// PE rows in the QK-PU (each processes one query).
    pub pe_rows: usize,
    /// Bit-wise PE lanes per row.
    pub lanes_per_row: usize,
    /// Dot-product width of one GSAT (dimensions absorbed per plane pass).
    pub gsat_width: usize,
    /// GSAT sub-group size (DSE optimum is 8, Fig. 17(a)).
    pub subgroup: usize,
    /// Scoreboard entries per PE lane (DSE saturation at 32, Fig. 17(b)).
    pub scoreboard_entries: usize,
    /// Guard-threshold control parameter α ∈ [0, 1] (Eq. 4).
    pub alpha: f32,
    /// Guard radius in logits (paper default 5).
    pub radius: f32,
    /// ISTA tile size Bc (retained keys per V-tile fetch).
    pub tile_bc: usize,
    /// V-PU systolic array rows.
    pub vpu_rows: usize,
    /// V-PU systolic array columns.
    pub vpu_cols: usize,
    /// Key/value SRAM capacity in KiB.
    pub kv_buffer_kb: usize,
    /// Query SRAM capacity in KiB.
    pub q_buffer_kb: usize,
    /// Operand bit width (8 in the main configuration, 4 for Fig. 26(a)).
    pub bits: u32,
    /// Core clock.
    pub clock: Frequency,
    /// Off-chip memory configuration.
    pub hbm: HbmConfig,
    /// DRAM layout of the key tensor.
    pub layout: KeyLayout,
    /// Enable BUI-GF early pruning (off = dense bit-serial execution).
    pub enable_bui_gf: bool,
    /// Enable bidirectional sparsity (off = bit-1-only sparsity).
    pub enable_bs: bool,
    /// Enable out-of-order bit-plane execution (off = in-order per lane).
    pub enable_ooe: bool,
    /// Enable ISTA tiling (off = untiled full-row execution).
    pub enable_ista: bool,
    /// Enable RARS V-fetch reordering (off = naive left-to-right).
    pub enable_rars: bool,
    /// Enable head–tail interleaved tile updating (off = left-to-right).
    pub enable_interleave: bool,
}

impl PadeConfig {
    /// The standard configuration: Table III hardware, α tuned for the
    /// paper's "0 % accuracy loss" operating point.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            pe_rows: 8,
            lanes_per_row: 16,
            gsat_width: 64,
            subgroup: 8,
            scoreboard_entries: 32,
            alpha: 1.0,
            radius: 5.0,
            tile_bc: 16,
            vpu_rows: 8,
            vpu_cols: 16,
            kv_buffer_kb: 320,
            q_buffer_kb: 32,
            bits: 8,
            clock: Frequency::default(),
            hbm: HbmConfig::default(),
            layout: KeyLayout::BitPlaneInterleaved,
            enable_bui_gf: true,
            enable_bs: true,
            enable_ooe: true,
            enable_ista: true,
            enable_rars: true,
            enable_interleave: true,
        }
    }

    /// The aggressive configuration: tighter guard (≤1 % accuracy loss,
    /// higher sparsity).
    #[must_use]
    pub fn aggressive() -> Self {
        Self { alpha: 0.75, ..Self::standard() }
    }

    /// The dense baseline of Fig. 16(a)/Fig. 19: the same datapath areas
    /// with every sparse-processing module disabled (value-level INT8
    /// execution, no pruning, no tiling tricks).
    #[must_use]
    pub fn dense_baseline() -> Self {
        Self {
            enable_bui_gf: false,
            enable_bs: false,
            enable_ooe: false,
            enable_ista: false,
            enable_rars: false,
            enable_interleave: false,
            layout: KeyLayout::ValueRowMajor,
            ..Self::standard()
        }
    }

    /// Total bit-wise PE lanes (128 in Table III).
    #[must_use]
    pub fn total_lanes(&self) -> usize {
        self.pe_rows * self.lanes_per_row
    }

    /// The guard threshold margin `α · radius` in logits: a pruned token is
    /// guaranteed to sit at least this far below the row maximum.
    #[must_use]
    pub fn guard_margin(&self) -> f32 {
        self.alpha * self.radius
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the GSAT width is not divisible by the sub-group size, if
    /// α is outside `[0, 1]`, or any structural parameter is zero.
    pub fn validate(&self) {
        assert!(self.pe_rows > 0 && self.lanes_per_row > 0, "PE array must be non-empty");
        assert!(self.gsat_width > 0 && self.subgroup > 0, "GSAT must be non-empty");
        assert_eq!(
            self.gsat_width % self.subgroup,
            0,
            "GSAT width {} must be divisible by sub-group size {}",
            self.gsat_width,
            self.subgroup
        );
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0, 1]");
        assert!(self.radius > 0.0, "radius must be positive");
        assert!(self.scoreboard_entries > 0, "scoreboard must have entries");
        assert!(self.tile_bc > 0, "tile size must be positive");
        assert!((2..=8).contains(&self.bits), "bit width must be in 2..=8");
    }
}

impl Default for PadeConfig {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_defaults() {
        let c = PadeConfig::standard();
        c.validate();
        assert_eq!(c.total_lanes(), 128);
        assert_eq!(c.scoreboard_entries, 32);
        assert_eq!(c.subgroup, 8);
        assert_eq!(c.kv_buffer_kb, 320);
        assert_eq!(c.q_buffer_kb, 32);
        assert_eq!(c.vpu_rows * c.vpu_cols, 128);
    }

    #[test]
    fn aggressive_prunes_harder_than_standard() {
        assert!(PadeConfig::aggressive().guard_margin() < PadeConfig::standard().guard_margin());
    }

    #[test]
    fn dense_baseline_disables_all_features() {
        let c = PadeConfig::dense_baseline();
        c.validate();
        assert!(!c.enable_bui_gf && !c.enable_bs && !c.enable_ooe);
        assert!(!c.enable_ista && !c.enable_rars && !c.enable_interleave);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn validate_rejects_ragged_subgroups() {
        let c = PadeConfig { subgroup: 7, ..PadeConfig::standard() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn validate_rejects_bad_alpha() {
        let c = PadeConfig { alpha: 1.5, ..PadeConfig::standard() };
        c.validate();
    }
}
