//! Extension (paper §VII, direction 2) — multi-bit stage fusion DSE.
//!
//! Sweeps the digit width `d` of the BSF loop from the paper's 1-bit
//! design to value-level execution (`d = 8`) and reports the trade-off the
//! paper conjectures: coarser digits make fewer pruning decisions (less
//! decision/scoreboard energy per key) but fetch more bits of keys that a
//! finer design would have terminated earlier, and — because bounds at a
//! shared boundary are nested — prune *at least as hard* (retained set is
//! a subset of the 1-bit set; property-tested in `pade-core`).

use pade_core::config::PadeConfig;
use pade_core::multibit::sweep_digit_widths;
use pade_energy::Tech;
use pade_experiments::report::{banner, pct, Table};
use pade_experiments::runner::Workload;
use pade_workload::{model, task};

fn main() {
    banner("Ext. 1", "Multi-bit (digit-serial) stage fusion — digit-width DSE");
    let config = PadeConfig::standard();
    let tech = Tech::cmos28();

    for (label, w) in [
        ("Llama2-7B / Wikitext-2 (S=2k)", Workload::new(model::llama2_7b(), task::wikitext2(), 42)),
        ("Llama2-7B / Dolly (S=15k, sim 4k)", Workload::new(model::llama2_7b(), task::dolly(), 43)),
    ] {
        println!("workload: {label}");
        let trace = &w.trace;
        let dims = trace.keys().cols();
        let n_keys = trace.keys().rows();
        let queries: Vec<&[i8]> =
            (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
        let sweep = sweep_digit_widths(
            &queries,
            trace.keys().as_slice(),
            dims,
            8,
            &[1, 2, 4, 8],
            config.guard_margin(),
            trace.logit_scale(),
        );

        let dense_bits = (queries.len() * n_keys * dims * 8) as u64;
        let mut table = Table::new(vec![
            "digit width",
            "rounds/key",
            "decisions",
            "bits fetched",
            "vs dense",
            "retained",
            "sparsity",
            "MAC adds-eq",
            "energy (µJ)",
        ]);
        for r in &sweep {
            let visits = r.total_keys;
            // Energy proxy: fetched bits at DRAM cost + MAC adds + one
            // decision (compare + LUT) per round.
            let energy_pj = r.bits_fetched as f64 / 8.0 * tech.dram_pj_per_byte
                + r.add_equivalents as f64 * tech.bit_serial_acc_pj
                + r.decisions as f64 * (tech.compare_pj + tech.lut_pj);
            table.row(vec![
                format!("{}-bit", r.digit_bits),
                format!("{:.2}", r.rounds_executed as f64 / visits as f64),
                r.decisions.to_string(),
                r.bits_fetched.to_string(),
                pct(r.bits_fetched as f64 / dense_bits as f64),
                r.retained_keys.to_string(),
                pct(r.sparsity()),
                r.add_equivalents.to_string(),
                format!("{:.1}", energy_pj / 1e6),
            ]);
        }
        println!("{}", table.render());
    }

    println!(
        "shape check: decisions fall and fetched bits rise monotonically with d;\n\
         retained(d) ⊆ retained(1) (coarser digits decide later but with tighter\n\
         bounds); d=8 is value-level execution — one decision per key, full fetch.\n\
         The energy optimum sits at d=1 for memory-bound long contexts (fetch\n\
         dominates) and moves toward d=2 when decision energy dominates."
    );
}
