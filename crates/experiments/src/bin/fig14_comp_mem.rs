//! Fig. 14 — normalized computation and memory access across the seven
//! benchmark models for all accelerators (0 % accuracy-loss settings).

use pade_baselines::{dota, energon, sanger, sofa, spatten, spatten_finetuned, Accelerator};
use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, Table};
use pade_experiments::runner::{run_baseline, run_pade, Workload};
use pade_linalg::metrics::geomean;
use pade_workload::{model, task};

fn main() {
    banner("Fig. 14", "Normalized computation / memory access across models");
    let pairs: Vec<(pade_workload::model::ModelConfig, pade_workload::task::TaskConfig)> = vec![
        (model::llama2_7b(), task::wikilingua()),
        (model::llama3_8b(), task::wikilingua()),
        (model::opt_1b3(), task::wikilingua()),
        (model::bloom_1b7(), task::wikilingua()),
        (model::qwen_7b(), task::wikilingua()),
        (model::vit_l16(), task::imagenet()),
        (model::pvt(), {
            let mut t = task::imagenet();
            t.seq_len = 3072;
            t
        }),
    ];
    let designs: Vec<Box<dyn Accelerator>> = vec![
        Box::new(spatten()),
        Box::new(sanger()),
        Box::new(dota()),
        Box::new(energon()),
        Box::new(spatten_finetuned()),
        Box::new(sofa()),
    ];

    let mut comp_table = Table::new(vec![
        "model", "SpAtten", "Sanger", "DOTA", "Energon", "SpAtten*", "SOFA", "PADE",
    ]);
    let mut mem_table = Table::new(vec![
        "model", "SpAtten", "Sanger", "DOTA", "Energon", "SpAtten*", "SOFA", "PADE",
    ]);
    let mut pade_comp = Vec::new();
    let mut pade_mem = Vec::new();
    for (m, t) in &pairs {
        let w = Workload::new(*m, *t, 400 + t.seq_len as u64);
        let (_, dense) = run_pade(&w, PadeConfig::dense_baseline());
        let dense_comp = dense.stats.total_ops().equivalent_adds() as f64;
        let dense_mem = dense.stats.total_traffic().dram_total_bytes() as f64;

        let mut comp_row = vec![m.name.to_string()];
        let mut mem_row = vec![m.name.to_string()];
        for d in &designs {
            let (_, o) = run_baseline(&w, d.as_ref());
            comp_row
                .push(format!("{:.2}", o.stats.total_ops().equivalent_adds() as f64 / dense_comp));
            mem_row.push(format!(
                "{:.2}",
                o.stats.total_traffic().dram_total_bytes() as f64 / dense_mem
            ));
        }
        let (_, p) = run_pade(&w, PadeConfig::standard());
        let pc = p.stats.total_ops().equivalent_adds() as f64 / dense_comp;
        let pm = p.stats.total_traffic().dram_total_bytes() as f64 / dense_mem;
        pade_comp.push(pc);
        pade_mem.push(pm);
        comp_row.push(format!("{pc:.2}"));
        mem_row.push(format!("{pm:.2}"));
        comp_table.row(comp_row);
        mem_table.row(mem_row);
    }
    println!("Normalized computation (dense = 1.0):\n{}", comp_table.render());
    println!("Normalized memory access (dense = 1.0):\n{}", mem_table.render());
    println!(
        "PADE geomean: computation {:.1}% reduction, memory {:.1}% reduction",
        (1.0 - geomean(&pade_comp)) * 100.0,
        (1.0 - geomean(&pade_mem)) * 100.0
    );
    println!("Paper: PADE reaches 71.6% computation and 75.8% memory reduction;");
    println!("ordering to check: PADE < SOFA < Energon/SpAtten* < Sanger/DOTA < SpAtten.");
}
