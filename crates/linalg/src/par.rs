//! Row-parallel kernel variants (the `parallel` feature).
//!
//! Every kernel here fans independent output rows out across worker
//! threads via `pade-par` and computes each row with exactly the same
//! scalar loop as its sequential counterpart, in the same order. Because
//! rows never interact, the results are **bit-identical** to the
//! sequential kernels regardless of thread count — the property tests in
//! `tests/properties.rs` pin this down.

use crate::{softmax_in_place, MatF32};

/// Row-parallel `A·Bᵀ`; bit-identical to [`MatF32::matmul_nt`].
///
/// # Panics
///
/// Panics if the inner dimensions differ.
#[must_use]
pub fn matmul_nt_par(a: &MatF32, b: &MatF32) -> MatF32 {
    assert_eq!(a.cols(), b.cols(), "inner dimensions must match for A·Bᵀ");
    let n = b.rows();
    let mut out = MatF32::zeros(a.rows(), n);
    pade_par::par_chunks_mut(out.as_mut_slice(), n.max(1), |i, out_row| {
        let a_row = a.row(i);
        for (o, j) in out_row.iter_mut().zip(0..n) {
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b.row(j)) {
                acc += x * y;
            }
            *o = acc;
        }
    });
    out
}

/// Row-parallel dense attention; bit-identical to
/// [`crate::attention::dense_attention`].
///
/// Each worker chunk carries one scratch score row reused across all of
/// its rows, so the fan-out allocates one buffer per worker rather than
/// per row (or an `S × S` score matrix).
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
#[must_use]
pub fn dense_attention_par(q: &MatF32, k: &MatF32, v: &MatF32, scale: f32) -> MatF32 {
    assert_eq!(q.cols(), k.cols(), "Q and K must share the hidden dimension");
    assert_eq!(k.rows(), v.rows(), "one V row per key");
    let h_out = v.cols();
    let mut out = MatF32::zeros(q.rows(), h_out);
    let rows_per_chunk = q.rows().div_ceil(pade_par::max_threads()).max(1);
    pade_par::par_chunks_mut(out.as_mut_slice(), (rows_per_chunk * h_out).max(1), |c, rows| {
        let mut scores = vec![0.0f32; k.rows()];
        for (r, out_row) in rows.chunks_mut(h_out.max(1)).enumerate() {
            let q_row = q.row(c * rows_per_chunk + r);
            for (s, j) in scores.iter_mut().zip(0..k.rows()) {
                let mut acc = 0.0f32;
                for (x, y) in q_row.iter().zip(k.row(j)) {
                    acc += x * y;
                }
                *s = acc * scale;
            }
            softmax_in_place(&mut scores);
            for (j, &w) in scores.iter().enumerate() {
                for (o, &x) in out_row.iter_mut().zip(v.row(j)) {
                    *o += w * x;
                }
            }
        }
    });
    out
}

/// Row-parallel in-place softmax over every row of `m`; bit-identical to
/// applying [`softmax_in_place`] row by row.
pub fn softmax_rows_par(m: &mut MatF32) {
    let cols = m.cols();
    pade_par::par_chunks_mut(m.as_mut_slice(), cols.max(1), |_i, row| {
        softmax_in_place(row);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::dense_attention;

    fn demo(rows: usize, keys: usize, dims: usize) -> (MatF32, MatF32, MatF32) {
        let q = MatF32::from_fn(rows, dims, |i, j| ((i * 7 + j * 3) % 5) as f32 * 0.2 - 0.4);
        let k = MatF32::from_fn(keys, dims, |i, j| ((i * 5 + j * 11) % 7) as f32 * 0.15 - 0.45);
        let v = MatF32::from_fn(keys, dims, |i, j| ((i * 13 + j) % 9) as f32 * 0.1);
        (q, k, v)
    }

    #[test]
    fn par_matmul_is_bit_identical() {
        let (q, k, _) = demo(17, 23, 8);
        assert_eq!(matmul_nt_par(&q, &k).as_slice(), q.matmul_nt(&k).as_slice());
    }

    #[test]
    fn par_attention_is_bit_identical() {
        let (q, k, v) = demo(9, 31, 6);
        assert_eq!(
            dense_attention_par(&q, &k, &v, 0.37).as_slice(),
            dense_attention(&q, &k, &v, 0.37).as_slice()
        );
    }

    #[test]
    fn par_softmax_rows_match_sequential() {
        let (m0, _, _) = demo(13, 1, 10);
        let mut a = m0.clone();
        let mut b = m0;
        softmax_rows_par(&mut a);
        for i in 0..b.rows() {
            softmax_in_place(b.row_mut(i));
        }
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
