//! Byte-accounted cache memory budgets.

/// A cap on the bytes of decomposed key planes the cache manager may keep
/// resident (shared prefix index plus stored session caches, deduplicated
/// by chunk identity).
///
/// The budget is enforced after every attach/detach by LRU-evicting
/// unreferenced sealed chunks (and, when those run out, idle stored
/// sessions). Chunks leased by a live session are never eviction
/// candidates, so a sufficiently small budget can be *exceeded* while the
/// leases are outstanding — a budget must never free memory a session is
/// still reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBudget {
    max_bytes: u64,
}

impl CacheBudget {
    /// A budget of `max_bytes` resident plane bytes.
    #[must_use]
    pub const fn bytes(max_bytes: u64) -> Self {
        Self { max_bytes }
    }

    /// No cap: nothing is ever evicted.
    #[must_use]
    pub const fn unlimited() -> Self {
        Self { max_bytes: u64::MAX }
    }

    /// The cap in bytes (`u64::MAX` when unlimited).
    #[must_use]
    pub const fn max_bytes(self) -> u64 {
        self.max_bytes
    }

    /// Whether this budget never evicts.
    #[must_use]
    pub const fn is_unlimited(self) -> bool {
        self.max_bytes == u64::MAX
    }
}

impl Default for CacheBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accessors_round_trip() {
        assert_eq!(CacheBudget::bytes(4096).max_bytes(), 4096);
        assert!(!CacheBudget::bytes(4096).is_unlimited());
        assert!(CacheBudget::unlimited().is_unlimited());
        assert_eq!(CacheBudget::default(), CacheBudget::unlimited());
    }
}
