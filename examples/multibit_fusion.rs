//! Multi-bit stage fusion (paper §VII, future-work direction 2): sweep the
//! digit width of the BSF loop and watch the fetch/decision trade-off.
//!
//! ```text
//! cargo run --release --example multibit_fusion
//! ```

use pade::core::config::PadeConfig;
use pade::core::multibit::sweep_digit_widths;
use pade::workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    let trace = AttentionTrace::generate(&TraceConfig {
        seq_len: 1024,
        head_dim: 64,
        n_queries: 8,
        ..TraceConfig::small_demo()
    });
    let config = PadeConfig::standard();
    let queries: Vec<&[i8]> = (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();

    println!("Multi-bit stage fusion on S = 1024 (8 query rows)");
    println!("d  rounds/key  decisions  kbits fetched  retained  sparsity");
    println!("-------------------------------------------------------------");
    let sweep = sweep_digit_widths(
        &queries,
        trace.keys().as_slice(),
        trace.keys().cols(),
        8,
        &[1, 2, 4, 8],
        config.guard_margin(),
        trace.logit_scale(),
    );
    for r in &sweep {
        println!(
            "{}  {:<10.2}  {:<9}  {:<13}  {:<8}  {:.1}%",
            r.digit_bits,
            r.rounds_executed as f64 / r.total_keys as f64,
            r.decisions,
            r.bits_fetched / 1000,
            r.retained_keys,
            r.sparsity() * 100.0
        );
    }
    println!(
        "\n1-bit digits terminate keys earliest (fewest fetched bits); coarser\n\
         digits spend fewer decisions and — with tighter bounds at each shared\n\
         boundary — retain a subset of the 1-bit keys. d = 8 is value-level\n\
         execution: one decision per key, no early termination inside a key."
    );
}
