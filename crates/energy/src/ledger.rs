use pade_sim::{OpCounts, RunStats, TrafficCounts};

use crate::Tech;

/// Energy of one pipeline stage, split by where it was spent.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Datapath (arithmetic) energy, pJ.
    pub compute_pj: f64,
    /// On-chip SRAM traffic energy, pJ.
    pub sram_pj: f64,
    /// Off-chip DRAM traffic + activation energy, pJ.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy of the stage.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.sram_pj + self.dram_pj
    }

    /// Elementwise sum.
    #[must_use]
    pub fn plus(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + other.compute_pj,
            sram_pj: self.sram_pj + other.sram_pj,
            dram_pj: self.dram_pj + other.dram_pj,
        }
    }
}

/// Prices the arithmetic events of an [`OpCounts`] record.
#[must_use]
pub fn ops_energy_pj(ops: &OpCounts, tech: &Tech) -> f64 {
    ops.int8_mac as f64 * tech.int8_mac_pj
        + ops.int4_mac as f64 * tech.int4_mac_pj
        + ops.bit_serial_acc as f64 * tech.bit_serial_acc_pj
        + ops.shift_add as f64 * tech.shift_add_pj
        + ops.fp_exp as f64 * tech.fp_exp_pj
        + ops.fp_mul as f64 * tech.fp_mul_pj
        + ops.fp_add as f64 * tech.fp_add_pj
        + ops.compare as f64 * tech.compare_pj
        + ops.lut_lookup as f64 * tech.lut_pj
}

/// Prices the memory traffic of a [`TrafficCounts`] record. `sram_kb` is
/// the capacity of the buffer the SRAM traffic flows through (CACTI-style
/// capacity scaling).
#[must_use]
pub fn traffic_energy_pj(traffic: &TrafficCounts, tech: &Tech, sram_kb: f64) -> (f64, f64) {
    let sram = traffic.sram_total_bytes() as f64 * tech.sram_pj_per_byte(sram_kb);
    let dram = traffic.dram_total_bytes() as f64 * tech.dram_pj_per_byte
        + traffic.dram_row_activations as f64 * tech.dram_activation_pj;
    (sram, dram)
}

/// The complete energy account of one accelerator run: predictor stage vs
/// executor stage, each split compute / SRAM / DRAM.
///
/// The predictor-vs-executor split is the paper's central measurement
/// (Fig. 2); PADE's ledger has an empty predictor by construction.
///
/// # Example
///
/// ```
/// use pade_energy::{EnergyLedger, Tech};
/// use pade_sim::RunStats;
///
/// let mut s = RunStats::new("sanger-like");
/// s.predictor_ops.int4_mac = 1_000_000;
/// s.ops.int8_mac = 200_000;
/// let l = EnergyLedger::from_stats(&s, &Tech::cmos28());
/// assert!(l.predictor_fraction() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyLedger {
    /// Energy of the separate sparsity-prediction stage.
    pub predictor: EnergyBreakdown,
    /// Energy of the execution stage.
    pub executor: EnergyBreakdown,
}

impl EnergyLedger {
    /// Default KV-buffer capacity assumed for SRAM pricing (Table III).
    pub const DEFAULT_SRAM_KB: f64 = 320.0;

    /// Prices a run's event counts with the given technology constants.
    #[must_use]
    pub fn from_stats(stats: &RunStats, tech: &Tech) -> Self {
        Self::from_stats_with_sram(stats, tech, Self::DEFAULT_SRAM_KB)
    }

    /// Variant with an explicit SRAM capacity (for buffer-sizing studies).
    #[must_use]
    pub fn from_stats_with_sram(stats: &RunStats, tech: &Tech, sram_kb: f64) -> Self {
        let (p_sram, p_dram) = traffic_energy_pj(&stats.predictor_traffic, tech, sram_kb);
        let (e_sram, e_dram) = traffic_energy_pj(&stats.traffic, tech, sram_kb);
        Self {
            predictor: EnergyBreakdown {
                compute_pj: ops_energy_pj(&stats.predictor_ops, tech),
                sram_pj: p_sram,
                dram_pj: p_dram,
            },
            executor: EnergyBreakdown {
                compute_pj: ops_energy_pj(&stats.ops, tech),
                sram_pj: e_sram,
                dram_pj: e_dram,
            },
        }
    }

    /// Total energy in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.predictor.total_pj() + self.executor.total_pj()
    }

    /// Total energy in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }

    /// Fraction of the total spent in the predictor stage (Fig. 2(a)).
    #[must_use]
    pub fn predictor_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.predictor.total_pj() / total
        }
    }

    /// Predictor-to-executor power ratio (Fig. 2(b)); `0.0` when the
    /// executor consumed nothing.
    #[must_use]
    pub fn predictor_ratio(&self) -> f64 {
        let e = self.executor.total_pj();
        if e == 0.0 {
            0.0
        } else {
            self.predictor.total_pj() / e
        }
    }

    /// Combined stage breakdown (predictor + executor).
    #[must_use]
    pub fn combined(&self) -> EnergyBreakdown {
        self.predictor.plus(&self.executor)
    }

    /// Elementwise sum of two ledgers.
    #[must_use]
    pub fn plus(&self, other: &EnergyLedger) -> EnergyLedger {
        EnergyLedger {
            predictor: self.predictor.plus(&other.predictor),
            executor: self.executor.plus(&other.executor),
        }
    }
}

/// Energy efficiency in GOPS/W given useful operations, runtime and energy.
///
/// "Useful operations" follow the paper's convention: the nominal dense
/// attention op count (2·S²·H MACs per head for QKᵀ plus S·V work), so a
/// sparser design with the same workload scores higher.
#[must_use]
pub fn gops_per_watt(useful_ops: f64, seconds: f64, energy_pj: f64) -> f64 {
    if energy_pj <= 0.0 || seconds <= 0.0 {
        return 0.0;
    }
    let watts = energy_pj * 1e-12 / seconds;
    let gops = useful_ops / seconds / 1e9;
    gops / watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_price_to_zero() {
        let l = EnergyLedger::from_stats(&RunStats::new("z"), &Tech::cmos28());
        assert_eq!(l.total_pj(), 0.0);
        assert_eq!(l.predictor_fraction(), 0.0);
        assert_eq!(l.predictor_ratio(), 0.0);
    }

    #[test]
    fn predictor_and_executor_are_separated() {
        let mut s = RunStats::new("x");
        s.predictor_ops.int4_mac = 100;
        s.ops.int8_mac = 100;
        let l = EnergyLedger::from_stats(&s, &Tech::cmos28());
        assert!(l.predictor.compute_pj > 0.0);
        assert!(l.executor.compute_pj > l.predictor.compute_pj); // int8 > int4
    }

    #[test]
    fn dram_dominates_equal_byte_sram() {
        let mut s = RunStats::new("x");
        s.traffic.dram_read_bytes = 1000;
        s.traffic.sram_read_bytes = 1000;
        let l = EnergyLedger::from_stats(&s, &Tech::cmos28());
        assert!(l.executor.dram_pj > 10.0 * l.executor.sram_pj);
    }

    #[test]
    fn activations_add_energy() {
        let mut a = RunStats::new("a");
        a.traffic.dram_read_bytes = 1000;
        let mut b = a.clone();
        b.traffic.dram_row_activations = 10;
        let t = Tech::cmos28();
        assert!(
            EnergyLedger::from_stats(&b, &t).total_pj()
                > EnergyLedger::from_stats(&a, &t).total_pj()
        );
    }

    #[test]
    fn ledger_plus_accumulates() {
        let mut s = RunStats::new("x");
        s.ops.int8_mac = 100;
        let t = Tech::cmos28();
        let l = EnergyLedger::from_stats(&s, &t);
        let double = l.plus(&l);
        assert!((double.total_pj() - 2.0 * l.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn gops_per_watt_sanity() {
        // 1e12 ops in 1 s at 1 J total → 1000 GOPS / 1 W = 1000.
        let g = gops_per_watt(1e12, 1.0, 1e12);
        assert!((g - 1000.0).abs() < 1e-6);
        assert_eq!(gops_per_watt(1.0, 0.0, 1.0), 0.0);
    }
}
