//! Fig. 15 — comparison with software-only sparse attention: accuracy vs
//! sparsity level on long-context tasks, and PADE's end-to-end gains.

use pade_baselines::software::{double_sparsity, minference, streaming_llm, SoftwareResult};
use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, times, Table};
use pade_experiments::runner::{gpu_outcome, pade_end_to_end, run_pade, GpuMode, Workload};
use pade_workload::quality::predict_metric;
use pade_workload::{model, task};

/// PADE's sparsity level: execution share of dense cost (bit-serial ops in
/// MAC equivalents) — it has no prediction term.
fn pade_sparsity_level(r: &pade_core::accelerator::PadeRunResult, w: &Workload) -> f64 {
    let dense =
        (2 * w.trace.queries().rows() * w.trace.keys().rows() * w.trace.keys().cols()) as f64 * 8.0;
    (r.stats.ops.equivalent_adds() as f64) / dense
}

fn row_for(
    name: &str,
    level: f64,
    fidelity: f64,
    t: &pade_workload::task::TaskConfig,
) -> Vec<String> {
    // ROUGE-1 baseline 40.0 (Dolly-class) for presentation.
    let score = predict_metric(t, 40.0, fidelity);
    vec![name.into(), format!("1/{:.0}", (1.0 / level.max(1e-3)).round()), format!("{score:.1}")]
}

fn main() {
    for (title, t) in [
        ("Fig. 15(a) Dolly (15k)", task::dolly()),
        ("Fig. 15(b) InfiniteBench (214k)", task::infinitebench()),
    ] {
        banner("Fig. 15", title);
        let w = Workload::new(model::llama2_7b(), t, 900 + t.seq_len as u64);
        let s = w.sim_seq;
        let mut table = Table::new(vec!["method", "sparsity level", "score (ROUGE-1 proxy)"]);
        for level in [0.5f32, 0.25, 0.125, 0.0625] {
            let budget = (s as f32 * level) as usize;
            let methods: Vec<SoftwareResult> = vec![
                streaming_llm(&w.trace, 4, budget.saturating_sub(4)),
                minference(&w.trace, level),
                double_sparsity(&w.trace, level, 24),
            ];
            for m in &methods {
                table.row(row_for(m.name, m.sparsity_level, m.fidelity, &t));
            }
            table.row(vec!["".into(), "".into(), "".into()]);
        }
        // PADE at its two operating points.
        for (label, cfg) in [
            ("PADE (standard)", PadeConfig::standard()),
            ("PADE (aggressive)", PadeConfig::aggressive()),
        ] {
            let (r, _) = run_pade(&w, cfg);
            let mut row = row_for(label, pade_sparsity_level(&r, &w), r.fidelity, &t);
            row.push(format!("keep={:.3}", r.stats.keep_ratio()));
            table.row(row);
        }
        println!("{}", table.render());
    }
    println!("Shape to check: StreamingLLM degrades fastest (static pattern),");
    println!("MInference recovers via pattern adaptivity, DoubleSparsity is");
    println!("close to PADE but pays un-reusable prediction; PADE holds the");
    println!("highest score at equal sparsity level.");

    banner("Fig. 15(c)", "End-to-end latency / energy-efficiency gain vs software methods on GPU");
    let mut table = Table::new(vec!["task", "latency gain", "energy-eff gain"]);
    for t in [task::dolly(), task::pg19(), task::infinitebench()] {
        let w = Workload::new(model::llama2_7b(), t, 1300 + t.seq_len as u64);
        // Software methods run on the GPU with detection + sparse execution.
        let (gpu_s, gpu_j) = gpu_outcome(&w, GpuMode::BuiGfFlash { keep: 0.15 });
        let (pade_s, pade_j, _) = pade_end_to_end(&w, &PadeConfig::aggressive());
        let area = 814.0 / 4.53; // iso-silicon normalization (see fig18)
        table.row(vec![
            format!("{} ({}k)", t.name, t.seq_len / 1024),
            times(gpu_s / pade_s * area),
            times(gpu_j / pade_j),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: 5.2x average speedup and 10.4x energy efficiency at equal");
    println!("1% accuracy loss, growing with sequence length.");
}
