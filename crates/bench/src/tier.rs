//! The `tier` scenario: drop-on-evict vs spill/fetch vs fleet
//! replication/migration under cache-thrashing and drain workloads.
//!
//! PR 9's `pade-tier` demotes budget-evicted sealed plane chunks into a
//! spill store instead of dropping them; a later prefix walk re-adopts
//! them by **parsing packed plane words** — no decomposition. This
//! scenario measures exactly that trade on the LRU-adversarial workload
//! ([`ThrashConfig`]: a prompt pool revisited round-robin, so the chunk
//! evicted longest ago is always the one the next visit needs):
//!
//! * **Part 1 — spill modes.** One manager-level attach/detach replay
//!   per mode under one tight plane budget: `drop` (no tier — evictions
//!   discard planes, revisits re-decompose), `spill-mem` (in-process
//!   [`TierConfig::Memory`]) and `spill-disk`
//!   ([`TierConfig::Disk`], one atomic file per chunk). Every attach is
//!   hard-checked **byte-identical** to a from-scratch
//!   `BitPlaneMatrix::from_rows` decomposition of the same key rows —
//!   the same oracle form the seed reference scores — and the two spill
//!   backends must agree on every deterministic counter.
//! * **Part 2 — fleet points.** A spread multi-turn shared-prefix
//!   workload through 2/4-node `pade-router` affinity fleets: plain
//!   affinity, affinity under a mid-trace [`DrainPlan`] (the drained
//!   node's shard records migrate to where its traffic re-homes — the
//!   affinity hit level must survive), and affinity with hot-shard
//!   replication ([`FleetTierConfig::replicate_hot_after`]). Every
//!   point's outputs are byte-checked against the single-node run and
//!   spot-checked against the solo seed oracle.
//!
//! [`write_tier_json`] serializes the sweep to the `BENCH_<n>.json`
//! trajectory schema (`BENCH_9.json` records the tiered-KV PR): spill
//! must beat drop-on-evict on decomposed tokens, and the drain point
//! must retain at least half the undrained hit level.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pade_cache::{CacheBudget, CacheConfig, CacheStats, KvCacheManager, TierConfig};
use pade_quant::BitPlaneMatrix;
use pade_router::{route, DrainPlan, FleetTierConfig, RoutePolicy, RouterConfig};
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, ServeConfig};
use pade_serve::{output_bytes, reference_outputs};
use pade_workload::prompt::{
    generate_shared_prefix_arrivals, generate_thrash_arrivals, SharedPrefixConfig, ThrashConfig,
};
use pade_workload::trace::RequestArrival;

use crate::prep::{prepare, PreparedRequest};

/// What happens to a budget-evicted sealed chunk in part 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillMode {
    /// No tier: evicted planes are dropped, revisits re-decompose.
    Drop,
    /// In-process spill tier ([`TierConfig::Memory`]).
    Memory,
    /// On-disk spill tier ([`TierConfig::Disk`]).
    Disk,
}

impl SpillMode {
    /// Stable label for logs and the JSON trajectory.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SpillMode::Drop => "drop",
            SpillMode::Memory => "spill-mem",
            SpillMode::Disk => "spill-disk",
        }
    }
}

/// Measured outcome of one spill-mode replay.
#[derive(Debug, Clone)]
pub struct TierModeResult {
    /// The spill mode.
    pub mode: SpillMode,
    /// Final manager counters (hits, decompositions, spills, fetches).
    pub stats: CacheStats,
    /// Wall-clock seconds of the attach/detach loop (oracle checks
    /// excluded).
    pub kv_prep_wall_s: f64,
    /// Whether every attach materialized byte-identical to the
    /// from-scratch decomposition (hard-checked; a mismatch panics
    /// before this is recorded false).
    pub bit_identical: bool,
}

/// Measured outcome of one fleet point in part 2.
#[derive(Debug, Clone)]
pub struct FleetPointResult {
    /// `"affinity"`, `"drain"` or `"replicate"`.
    pub label: &'static str,
    /// Nodes in the fleet.
    pub n_nodes: usize,
    /// Prompt tokens served from resident planes, fleet-wide.
    pub hit_tokens: u64,
    /// Prompt tokens re-adopted from spill tiers, fleet-wide.
    pub fetched_tokens: u64,
    /// Load-following migrations performed.
    pub migrations: u64,
    /// Hot-shard replications performed.
    pub replications: u64,
    /// Payload bytes moved between nodes.
    pub transfer_bytes: u64,
    /// Modeled interconnect cycles of those transfers.
    pub transfer_cycles: u64,
    /// Modeled interconnect energy of those transfers, in pJ.
    pub transfer_pj: f64,
    /// Whether every request's outputs matched the single-node run
    /// byte-for-byte (hard-checked).
    pub bit_identical: bool,
}

/// A finished tier sweep.
#[derive(Debug, Clone)]
pub struct TierSweep {
    /// The thrash workload part 1 replayed.
    pub workload: ThrashConfig,
    /// Tokens per sealed cache chunk.
    pub chunk_tokens: usize,
    /// The plane budget every part-1 mode ran under, in bytes.
    pub budget_bytes: u64,
    /// One entry per spill mode.
    pub modes: Vec<TierModeResult>,
    /// One entry per (fleet point, node count).
    pub fleet: Vec<FleetPointResult>,
}

/// The thrash workload and the tight budget behind part 1: the budget
/// holds ~1.5 of the pool's prompts, so round-robin revisiting always
/// needs a chunk the LRU already evicted.
#[must_use]
pub fn tier_workload(quick: bool) -> (ThrashConfig, usize, u64) {
    let (workload, chunk_tokens) = if quick {
        (
            ThrashConfig {
                pool_size: 3,
                prompt_tokens: 96,
                visits: 9,
                decode_steps: 2,
                seed: 2026,
                ..ThrashConfig::small_demo()
            },
            32,
        )
    } else {
        (
            ThrashConfig {
                pool_size: 6,
                prompt_tokens: 256,
                visits: 30,
                decode_steps: 4,
                seed: 2026,
                ..ThrashConfig::small_demo()
            },
            32,
        )
    };
    // Plane bytes of one full prompt (tokens × bits × ⌈dims/64⌉ words),
    // budget = 1.5 prompts.
    let words = workload.head_dim.div_ceil(64) as u64;
    let prompt_bytes = workload.prompt_tokens as u64 * u64::from(workload.bits) * words * 8;
    (workload, chunk_tokens, prompt_bytes * 3 / 2)
}

/// Replays the thrash trace through one manager, oracle-checking every
/// attach against a from-scratch decomposition of the same key rows.
fn replay_thrash(
    requests: &[PreparedRequest],
    cache_config: CacheConfig,
    tier: Option<&TierConfig>,
    dims: usize,
    bits: u32,
) -> (CacheStats, f64) {
    let mut manager = KvCacheManager::new(cache_config).expect("bench cache shape is valid");
    if let Some(tier) = tier {
        manager.set_tier(Some(tier.build().expect("bench tier store builds")));
    }
    let mut wall = 0.0f64;
    for req in requests {
        let start = Instant::now();
        let attached =
            manager.attach(req.session, &req.ids, &req.rows).expect("bench prompt rows decompose");
        wall += start.elapsed().as_secs_f64();
        // Byte-identity: resident hits, tier fetches and fresh
        // decomposition must all land on the from-scratch planes.
        let oracle = BitPlaneMatrix::from_rows(&req.rows, dims, bits).expect("oracle planes");
        assert!(
            attached.cache.snapshot().materialize() == oracle,
            "request {}: attached planes diverged from the from-scratch decomposition",
            req.id
        );
        let start = Instant::now();
        manager.detach(req.session, Arc::clone(&req.ids), attached.cache, attached.lease);
        wall += start.elapsed().as_secs_f64();
    }
    (*manager.stats(), wall)
}

/// The spread multi-turn shared-prefix workload behind part 2, with
/// inter-arrival gaps long enough that turns are served (and hit
/// counters accrue) between arrivals.
#[must_use]
pub fn fleet_workload(quick: bool) -> (SharedPrefixConfig, usize) {
    let base = SharedPrefixConfig {
        pool_size: 2,
        unique_suffix_tokens: 8,
        turn_suffix_tokens: 8,
        mean_interarrival_cycles: 50_000.0,
        turn_gap_cycles: 500_000,
        seed: 2026,
        ..SharedPrefixConfig::small_demo()
    };
    if quick {
        (
            SharedPrefixConfig {
                n_sessions: 6,
                turns_per_session: 3,
                shared_prefix_tokens: 64,
                decode_steps: 2,
                ..base
            },
            32,
        )
    } else {
        (
            SharedPrefixConfig {
                n_sessions: 10,
                turns_per_session: 3,
                shared_prefix_tokens: 128,
                decode_steps: 4,
                ..base
            },
            32,
        )
    }
}

/// Node counts part 2 sweeps. `quick` trims for CI smoke runs.
#[must_use]
pub fn fleet_node_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![2]
    } else {
        vec![2, 4]
    }
}

/// Runs one fleet configuration and byte-checks it against the
/// single-node bytes.
fn run_fleet_point(
    label: &'static str,
    config: &RouterConfig,
    arrivals: &[RequestArrival],
    single_bytes: &HashMap<usize, Vec<u8>>,
) -> FleetPointResult {
    let report = route(config, arrivals, ScheduleMode::Batched);
    let completions = report.completions_by_id();
    assert_eq!(completions.len(), arrivals.len(), "{label} lost requests");
    for completion in &completions {
        assert!(
            completion.output_bytes() == single_bytes[&completion.id],
            "{label} at {} nodes: request {} diverged from the single-node run",
            config.nodes.len(),
            completion.id
        );
    }
    let s = &report.summary;
    FleetPointResult {
        label,
        n_nodes: config.nodes.len(),
        hit_tokens: s.cache_hit_tokens,
        fetched_tokens: s.cache_fetched_tokens,
        migrations: s.migrations,
        replications: s.replications,
        transfer_bytes: s.transfer_bytes,
        transfer_cycles: s.transfer_cycles,
        transfer_pj: s.transfer_pj,
        bit_identical: true,
    }
}

/// Runs the full tier sweep: the three spill modes over the thrash
/// workload, then the fleet drain/replication points.
///
/// # Panics
///
/// Panics on any byte-identity violation, and — the headline claims —
/// if spill fails to beat drop-on-evict on decomposed tokens, the two
/// spill backends disagree, no drain migration fires, or the drain
/// point loses more than half the undrained hit level.
#[must_use]
pub fn run_tier_matrix(quick: bool) -> TierSweep {
    let (workload, chunk_tokens, budget_bytes) = tier_workload(quick);
    let arrivals = generate_thrash_arrivals(&workload);
    let requests = prepare(&arrivals, workload.head_dim, workload.bits);
    let cache_config = CacheConfig::new(workload.head_dim, workload.bits, chunk_tokens)
        .with_budget(CacheBudget::bytes(budget_bytes));

    let spill_dir = std::env::temp_dir().join(format!("pade_tier_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let mode_configs = [
        (SpillMode::Drop, None),
        (SpillMode::Memory, Some(TierConfig::Memory)),
        (SpillMode::Disk, Some(TierConfig::Disk(spill_dir.clone()))),
    ];
    let modes: Vec<TierModeResult> = mode_configs
        .iter()
        .map(|(mode, tier)| {
            let (stats, kv_prep_wall_s) = replay_thrash(
                &requests,
                cache_config,
                tier.as_ref(),
                workload.head_dim,
                workload.bits,
            );
            TierModeResult { mode: *mode, stats, kv_prep_wall_s, bit_identical: true }
        })
        .collect();
    let _ = std::fs::remove_dir_all(&spill_dir);

    let by_mode = |m: SpillMode| modes.iter().find(|r| r.mode == m).expect("every mode ran");
    let (drop, mem, disk) =
        (by_mode(SpillMode::Drop), by_mode(SpillMode::Memory), by_mode(SpillMode::Disk));
    // The headline claim, enforced not just recorded: under thrash the
    // spill tier re-adopts what drop-on-evict re-decomposes.
    assert!(mem.stats.spilled_chunks > 0, "the budget must force spills");
    assert!(mem.stats.fetched_tokens > 0, "revisits must fetch from the tier");
    assert!(
        mem.stats.decomposed_tokens < drop.stats.decomposed_tokens,
        "spill {} vs drop {} decomposed tokens",
        mem.stats.decomposed_tokens,
        drop.stats.decomposed_tokens
    );
    assert!(mem.stats.hit_tokens > drop.stats.hit_tokens);
    // The two backends are the same protocol over different media.
    assert_eq!(mem.stats, disk.stats, "memory and disk spill tiers must agree");

    // Part 2: fleet drain + replication points.
    let (fleet_cfg, fleet_chunk) = fleet_workload(quick);
    let fleet_arrivals = generate_shared_prefix_arrivals(&fleet_cfg);
    let node = ServeConfig { kv_chunk_tokens: fleet_chunk, ..ServeConfig::standard() };
    let single = serve(&node, &fleet_arrivals, ScheduleMode::Batched);
    let single_bytes: HashMap<usize, Vec<u8>> =
        single.completions.iter().map(|c| (c.id, c.output_bytes())).collect();
    // The single-node baseline itself is pinned to the seed oracle.
    let oracle_every = (fleet_arrivals.len() / 3).max(1);
    for spec in fleet_arrivals.iter().step_by(oracle_every) {
        let oracle = reference_outputs(spec, &node.engine);
        assert!(
            single_bytes[&spec.id] == output_bytes(&oracle),
            "single-node request {} diverged from the seed oracle",
            spec.id
        );
    }

    let mut fleet = Vec::new();
    for n_nodes in fleet_node_counts(quick) {
        let base = RouterConfig::homogeneous(node.clone(), n_nodes, RoutePolicy::Affinity);
        let plain = run_fleet_point("affinity", &base, &fleet_arrivals, &single_bytes);

        // Drain the node the trace warmed first, mid-trace.
        let hot = route(&base, &fleet_arrivals, ScheduleMode::Batched).decisions[0].node;
        let drain_cfg = RouterConfig {
            tier: Some(FleetTierConfig::default()),
            drain: Some(DrainPlan { node: hot, after_arrivals: fleet_arrivals.len() / 2 }),
            ..base.clone()
        };
        let drain = run_fleet_point("drain", &drain_cfg, &fleet_arrivals, &single_bytes);
        assert!(drain.migrations >= 1, "{n_nodes} nodes: the drain must migrate the hot shard");
        assert!(
            2 * drain.hit_tokens >= plain.hit_tokens,
            "{n_nodes} nodes: hits collapsed under drain ({} vs {} undrained)",
            drain.hit_tokens,
            plain.hit_tokens
        );

        let replicate_cfg = RouterConfig {
            tier: Some(FleetTierConfig { replicate_hot_after: 2, ..FleetTierConfig::default() }),
            ..base
        };
        let replicate =
            run_fleet_point("replicate", &replicate_cfg, &fleet_arrivals, &single_bytes);
        assert!(
            replicate.replications >= 1,
            "{n_nodes} nodes: the shared prefix pool must run hot enough to replicate"
        );
        fleet.extend([plain, drain, replicate]);
    }

    TierSweep { workload, chunk_tokens, budget_bytes, modes, fleet }
}

/// Serializes a tier sweep to the `BENCH_<n>.json` trajectory schema.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_tier_json(
    path: &std::path::Path,
    sweep: &TierSweep,
    mode: &str,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench_id\": {},", crate::bench_id_from_path(path))?;
    writeln!(f, "  \"tool\": \"pade-bench\",")?;
    writeln!(f, "  \"scenario\": \"tier\",")?;
    writeln!(f, "  \"mode\": \"{mode}\",")?;
    writeln!(
        f,
        "  \"paths\": {{\"drop\": \"budget eviction discards sealed planes\", \"spill\": \
         \"pade-tier demotes evicted chunks; prefix walks re-adopt by parsing plane words\", \
         \"fleet\": \"pade-router drain migration and hot-shard replication over chunk \
         records\"}},"
    )?;
    writeln!(
        f,
        "  \"workload\": {{\"pool_size\": {}, \"prompt_tokens\": {}, \"visits\": {}, \
         \"chunk_tokens\": {}, \"budget_bytes\": {}, \"seed\": {}}},",
        sweep.workload.pool_size,
        sweep.workload.prompt_tokens,
        sweep.workload.visits,
        sweep.chunk_tokens,
        sweep.budget_bytes,
        sweep.workload.seed
    )?;
    writeln!(f, "  \"modes\": [")?;
    for (i, m) in sweep.modes.iter().enumerate() {
        let comma = if i + 1 == sweep.modes.len() { "" } else { "," };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"mode\": \"{}\",", m.mode.label())?;
        writeln!(f, "      \"hit_tokens\": {},", m.stats.hit_tokens)?;
        writeln!(f, "      \"decomposed_tokens\": {},", m.stats.decomposed_tokens)?;
        writeln!(f, "      \"evicted_chunks\": {},", m.stats.evicted_chunks)?;
        writeln!(f, "      \"spilled_chunks\": {},", m.stats.spilled_chunks)?;
        writeln!(f, "      \"spilled_bytes\": {},", m.stats.spilled_bytes)?;
        writeln!(f, "      \"fetched_chunks\": {},", m.stats.fetched_chunks)?;
        writeln!(f, "      \"fetched_tokens\": {},", m.stats.fetched_tokens)?;
        writeln!(f, "      \"kv_prep_wall_s\": {:.6},", m.kv_prep_wall_s)?;
        writeln!(f, "      \"bit_identical\": {}", m.bit_identical)?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"fleet\": [")?;
    for (i, p) in sweep.fleet.iter().enumerate() {
        let comma = if i + 1 == sweep.fleet.len() { "" } else { "," };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"label\": \"{}\",", p.label)?;
        writeln!(f, "      \"n_nodes\": {},", p.n_nodes)?;
        writeln!(f, "      \"hit_tokens\": {},", p.hit_tokens)?;
        writeln!(f, "      \"fetched_tokens\": {},", p.fetched_tokens)?;
        writeln!(f, "      \"migrations\": {},", p.migrations)?;
        writeln!(f, "      \"replications\": {},", p.replications)?;
        writeln!(f, "      \"transfer_bytes\": {},", p.transfer_bytes)?;
        writeln!(f, "      \"transfer_cycles\": {},", p.transfer_cycles)?;
        writeln!(f, "      \"transfer_pj\": {:.1},", p.transfer_pj)?;
        writeln!(f, "      \"bit_identical\": {}", p.bit_identical)?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ],")?;
    let by_mode = |m: SpillMode| sweep.modes.iter().find(|r| r.mode == m).expect("mode ran");
    let (drop, mem) = (by_mode(SpillMode::Drop), by_mode(SpillMode::Memory));
    let saved =
        1.0 - mem.stats.decomposed_tokens as f64 / (drop.stats.decomposed_tokens as f64).max(1.0);
    let max_nodes = sweep.fleet.iter().map(|p| p.n_nodes).max().unwrap_or(0);
    let at = |label: &str| sweep.fleet.iter().find(|p| p.n_nodes == max_nodes && p.label == label);
    let retention = match (at("drain"), at("affinity")) {
        (Some(d), Some(a)) if a.hit_tokens > 0 => d.hit_tokens as f64 / a.hit_tokens as f64,
        _ => 0.0,
    };
    writeln!(
        f,
        "  \"headline\": {{\"drop_decomposed_tokens\": {}, \"spill_decomposed_tokens\": {}, \
         \"decomposition_saved_frac\": {:.3}, \"spill_fetched_tokens\": {}, \
         \"drain_hit_retention\": {:.3}, \"bit_identical\": true}}",
        drop.stats.decomposed_tokens,
        mem.stats.decomposed_tokens,
        saved,
        mem.stats.fetched_tokens,
        retention
    )?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_checks_identity_and_spill_dominance() {
        let sweep = run_tier_matrix(true);
        assert_eq!(sweep.modes.len(), 3);
        assert_eq!(sweep.fleet.len(), fleet_node_counts(true).len() * 3);
        for m in &sweep.modes {
            assert!(m.bit_identical);
            assert!(m.kv_prep_wall_s > 0.0);
            assert!(m.stats.evicted_chunks > 0, "{}: the budget must bite", m.mode.label());
        }
        let by = |mode: SpillMode| sweep.modes.iter().find(|r| r.mode == mode).unwrap();
        // Drop never spills or fetches; the tiers never drop silently.
        assert_eq!(by(SpillMode::Drop).stats.spilled_chunks, 0);
        assert_eq!(by(SpillMode::Drop).stats.fetched_tokens, 0);
        assert!(by(SpillMode::Memory).stats.fetched_tokens > 0);
        assert_eq!(by(SpillMode::Memory).stats, by(SpillMode::Disk).stats);
        // Fleet points: the drain retained hits and moved bytes.
        let drain = sweep.fleet.iter().find(|p| p.label == "drain").unwrap();
        assert!(drain.migrations >= 1 && drain.transfer_bytes > 0);
        assert!(drain.transfer_cycles > 0 && drain.transfer_pj > 0.0);
        let replicate = sweep.fleet.iter().find(|p| p.label == "replicate").unwrap();
        assert!(replicate.replications >= 1);
    }

    #[test]
    fn tier_json_is_well_formed_enough() {
        let sweep = run_tier_matrix(true);
        let path = std::env::temp_dir().join("pade_tier_bench_test.json");
        write_tier_json(&path, &sweep, "quick").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"scenario\": \"tier\""));
        assert_eq!(text.matches("\"mode\": \"spill-").count(), 2);
        assert!(text.contains("\"drain_hit_retention\""));
        assert!(text.contains("\"decomposition_saved_frac\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn full_workload_thrashes_harder_than_quick() {
        let (quick, _, quick_budget) = tier_workload(true);
        let (full, _, full_budget) = tier_workload(false);
        assert!(full.pool_size > quick.pool_size);
        assert!(full.visits > quick.visits);
        // Both budgets hold strictly less than the pool footprint.
        let words = full.head_dim.div_ceil(64) as u64;
        let full_pool =
            full.pool_size as u64 * full.prompt_tokens as u64 * u64::from(full.bits) * words * 8;
        assert!(full_budget < full_pool);
        assert!(quick_budget < full_pool);
        assert_eq!(fleet_node_counts(false), vec![2, 4]);
    }
}
