//! Multi-chip sequence-parallel execution.
//!
//! [`DistributedPade`] shards the key/value stream contiguously across
//! `chips` cycle-level PADE instances. Every chip sees all query rows but
//! only its key shard, runs the full BUI-GF / BS-OOE QK pipeline locally,
//! and emits one [`PartialAttention`] state per query row. States are
//! merged over the configured fabric.
//!
//! Shard-local guard thresholds are weaker than the global one (each chip
//! only observes its own shard's maximum), which inflates retention.
//! `sync_guard` models the paper's one-scalar fix: chips exchange the
//! per-row maximum retained score (one scalar per row per reduction
//! step), then discard retained keys that the globally-thresholded filter
//! would have pruned. This is exactly the post-hoc application of the
//! guard inequality, so the synced retained set is never larger than the
//! single-chip set.

use pade_core::config::PadeConfig;
use pade_core::engine::run_qk_block;
use pade_linalg::metrics::cosine_similarity;
use pade_quant::BitPlaneMatrix;
use pade_sim::Cycle;
use pade_workload::trace::AttentionTrace;

use crate::partial::{reduce_states, PartialAttention};
use crate::InterconnectConfig;

/// Configuration of one wafer-scale deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferConfig {
    /// Number of PADE chips sharing the sequence.
    pub chips: usize,
    /// Fabric carrying the partial-state reduction.
    pub interconnect: InterconnectConfig,
    /// Synchronize one scalar (per-row max retained score) across chips
    /// and re-filter retention against the global threshold.
    pub sync_guard: bool,
    /// Per-chip accelerator configuration.
    pub pade: PadeConfig,
}

impl WaferConfig {
    /// `chips` standard PADE chips on a ring, local guards.
    ///
    /// # Panics
    ///
    /// Panics if `chips == 0`.
    #[must_use]
    pub fn standard(chips: usize) -> Self {
        assert!(chips > 0, "at least one chip required");
        Self {
            chips,
            interconnect: InterconnectConfig::wafer_ring(),
            sync_guard: false,
            pade: PadeConfig::standard(),
        }
    }
}

/// Result of one distributed run.
#[derive(Debug, Clone)]
pub struct DistributedRunResult {
    /// Chips used.
    pub chips: usize,
    /// Slowest chip's QK compute latency (chips run concurrently).
    pub compute_cycles: Cycle,
    /// Fabric cycles spent reducing partial states.
    pub comm_cycles: Cycle,
    /// Fabric cycles spent on the guard-scalar exchange.
    pub sync_cycles: Cycle,
    /// End-to-end latency: compute, then sync, then reduction.
    pub total_cycles: Cycle,
    /// Keys retained across all query rows (after sync filtering, when
    /// enabled).
    pub retained_keys: u64,
    /// Per query row: merged attention output.
    pub outputs: Vec<Vec<f32>>,
    /// Mean cosine similarity of the merged outputs against the exact
    /// dense reference.
    pub fidelity: f64,
    /// Fabric energy of the reduction payload, in pJ.
    pub comm_energy_pj: f64,
}

impl DistributedRunResult {
    /// Fraction of end-to-end cycles spent on the fabric.
    #[must_use]
    pub fn comm_share(&self) -> f64 {
        if self.total_cycles.0 == 0 {
            0.0
        } else {
            (self.comm_cycles.0 + self.sync_cycles.0) as f64 / self.total_cycles.0 as f64
        }
    }
}

/// The distributed accelerator.
#[derive(Debug, Clone)]
pub struct DistributedPade {
    config: WaferConfig,
}

impl DistributedPade {
    /// Builds a deployment, validating the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `chips == 0` or the per-chip configuration is invalid.
    #[must_use]
    pub fn new(config: WaferConfig) -> Self {
        assert!(config.chips > 0, "at least one chip required");
        config.pade.validate();
        Self { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &WaferConfig {
        &self.config
    }

    /// Runs one attention block across the wafer.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer keys than chips.
    #[must_use]
    pub fn run_trace(&self, trace: &AttentionTrace) -> DistributedRunResult {
        let cfg = &self.config;
        let s = trace.keys().rows();
        let dims = trace.keys().cols();
        let n_q = trace.queries().rows();
        assert!(s >= cfg.chips, "cannot shard {s} keys across {} chips", cfg.chips);

        let queries: Vec<&[i8]> = (0..n_q).map(|i| trace.queries().row(i)).collect();
        let margin_int = (cfg.pade.guard_margin() / trace.logit_scale()).ceil() as i64;

        // Per chip: run every query block over the chip's contiguous key
        // shard; collect globally-indexed retained sets.
        let mut compute_cycles = Cycle::ZERO;
        let mut per_chip_retained: Vec<Vec<Vec<(usize, i64)>>> = Vec::with_capacity(cfg.chips);
        for chip in 0..cfg.chips {
            let lo = chip * s / cfg.chips;
            let hi = (chip + 1) * s / cfg.chips;
            let shard = &trace.keys().as_slice()[lo * dims..hi * dims];
            let keys =
                BitPlaneMatrix::from_rows(shard, dims, cfg.pade.bits).expect("shard bit planes");
            let mut chip_cycles = Cycle::ZERO;
            let mut chip_retained: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n_q];
            for (block_idx, block) in queries.chunks(cfg.pade.pe_rows).enumerate() {
                let r = run_qk_block(&cfg.pade, block, &keys, trace.logit_scale());
                chip_cycles += r.cycles;
                for (row_in_block, retained) in r.retained.into_iter().enumerate() {
                    let row = block_idx * cfg.pade.pe_rows + row_in_block;
                    chip_retained[row]
                        .extend(retained.into_iter().map(|(t, score)| (t + lo, score)));
                }
            }
            compute_cycles = compute_cycles.max(chip_cycles);
            per_chip_retained.push(chip_retained);
        }

        // Optional guard sync: one scalar per row crosses the fabric, then
        // every chip re-filters against the global threshold.
        let mut sync_cycles = Cycle::ZERO;
        if cfg.sync_guard && cfg.chips > 1 {
            for row in 0..n_q {
                let global_max = per_chip_retained
                    .iter()
                    .flat_map(|chip| chip[row].iter().map(|&(_, score)| score))
                    .max();
                if let Some(global_max) = global_max {
                    let threshold = global_max.saturating_sub(margin_int);
                    for chip in &mut per_chip_retained {
                        chip[row].retain(|&(_, score)| score >= threshold);
                    }
                }
            }
            let steps = cfg.interconnect.reduce_steps(cfg.chips);
            // 8-byte scalar per row per step; latency-dominated.
            let payload = 8 * n_q as u64;
            let per_step = cfg.interconnect.hop_latency_cycles
                + payload.div_ceil(cfg.interconnect.link_bytes_per_cycle);
            sync_cycles = Cycle(steps * per_step);
        }

        // Merge per-chip (m, l, O) states per row in chip order.
        let v = trace.values_f32();
        let mut outputs = Vec::with_capacity(n_q);
        let mut retained_keys = 0u64;
        let mut fidelity_sum = 0.0f64;
        for row in 0..n_q {
            let states: Vec<PartialAttention> = per_chip_retained
                .iter()
                .map(|chip| {
                    let scores: Vec<f32> = chip[row]
                        .iter()
                        .map(|&(_, score)| score as f32 * trace.logit_scale())
                        .collect();
                    let rows: Vec<&[f32]> =
                        chip[row].iter().map(|&(token, _)| v.row(token)).collect();
                    retained_keys += scores.len() as u64;
                    PartialAttention::from_scores(dims, &scores, &rows)
                })
                .collect();
            let out = reduce_states(dims, &states).finalize();
            fidelity_sum += f64::from(cosine_similarity(&out, &trace.reference_output(row)));
            outputs.push(out);
        }

        // Reduction traffic: each step forwards every row's (m, l, O).
        let steps = cfg.interconnect.reduce_steps(cfg.chips);
        let state_bytes = 4 * (dims as u64 + 2);
        let payload = state_bytes * n_q as u64;
        let per_step = cfg.interconnect.hop_latency_cycles
            + payload.div_ceil(cfg.interconnect.link_bytes_per_cycle);
        let comm_cycles = Cycle(steps * per_step);
        let comm_energy_pj = (steps * payload) as f64 * cfg.interconnect.pj_per_byte;

        let total_cycles = compute_cycles + sync_cycles + comm_cycles;
        DistributedRunResult {
            chips: cfg.chips,
            compute_cycles,
            comm_cycles,
            sync_cycles,
            total_cycles,
            retained_keys,
            fidelity: fidelity_sum / n_q.max(1) as f64,
            outputs,
            comm_energy_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::trace::TraceConfig;

    fn trace(seq_len: usize, seed: u64) -> AttentionTrace {
        AttentionTrace::generate(&TraceConfig { seq_len, seed, ..TraceConfig::small_demo() })
    }

    #[test]
    fn single_chip_has_no_fabric_cost() {
        let t = trace(256, 3);
        let r = DistributedPade::new(WaferConfig::standard(1)).run_trace(&t);
        assert_eq!(r.comm_cycles, Cycle::ZERO);
        assert_eq!(r.sync_cycles, Cycle::ZERO);
        assert!(r.fidelity > 0.99, "fidelity {}", r.fidelity);
    }

    #[test]
    fn local_guards_retain_at_least_the_synced_set() {
        let t = trace(512, 5);
        let local = DistributedPade::new(WaferConfig::standard(4)).run_trace(&t);
        let synced =
            DistributedPade::new(WaferConfig { sync_guard: true, ..WaferConfig::standard(4) })
                .run_trace(&t);
        assert!(synced.retained_keys <= local.retained_keys);
        assert!(synced.fidelity > 0.99);
    }

    #[test]
    fn compute_scales_down_with_chips() {
        let t = trace(1024, 7);
        let one = DistributedPade::new(WaferConfig::standard(1)).run_trace(&t);
        let eight = DistributedPade::new(WaferConfig::standard(8)).run_trace(&t);
        assert!(eight.compute_cycles < one.compute_cycles);
    }
}
