//! Two's-complement bit-plane decomposition.
//!
//! A `p`-bit two's-complement integer satisfies
//! `x = -b_{p-1}·2^{p-1} + Σ_{i=0}^{p-2} b_i·2^i` (Eq. 2 of the paper).
//! PADE streams key vectors one *bit plane* at a time, MSB first: round
//! `r = 0` delivers the sign plane, round `r = p-1` the LSB plane. Because
//! every plane except the sign plane contributes non-negatively, once the
//! first `r+1` planes are known the still-missing contribution of each
//! element lies in `[0, U_r]` with `U_r = 2^{p-1-r} - 1` — the foundation of
//! the Bit-wise Uncertainty Interval.

use crate::QuantError;

/// Signed weight of bit-plane `r` (MSB-first) for a `bits`-wide integer.
///
/// Round 0 is the sign plane with weight `-2^(bits-1)`; round `r ≥ 1` has
/// weight `2^(bits-1-r)`.
///
/// # Panics
///
/// Panics if `r >= bits`.
///
/// # Example
///
/// ```
/// assert_eq!(pade_quant::plane_weight(0, 8), -128);
/// assert_eq!(pade_quant::plane_weight(7, 8), 1);
/// ```
#[must_use]
pub fn plane_weight(r: u32, bits: u32) -> i32 {
    assert!(r < bits, "plane {r} out of range for {bits}-bit values");
    if r == 0 {
        -(1i32 << (bits - 1))
    } else {
        1i32 << (bits - 1 - r)
    }
}

/// Maximum total contribution of the planes still unknown after round `r`
/// (planes `r+1 .. bits`), i.e. `U_r = 2^(bits-1-r) - 1`.
///
/// All unknown planes carry non-negative weight, so each element's missing
/// contribution lies in `[0, uncertainty_span(r, bits)]`.
///
/// # Panics
///
/// Panics if `r >= bits`.
///
/// # Example
///
/// ```
/// // After only the sign plane of an 8-bit value, 127 is still in play.
/// assert_eq!(pade_quant::uncertainty_span(0, 8), 127);
/// // After the LSB nothing is unknown.
/// assert_eq!(pade_quant::uncertainty_span(7, 8), 0);
/// ```
#[must_use]
pub fn uncertainty_span(r: u32, bits: u32) -> i32 {
    assert!(r < bits, "plane {r} out of range for {bits}-bit values");
    (1i32 << (bits - 1 - r)) - 1
}

/// One bit plane of one token vector: a packed bitvector over the hidden
/// dimension.
///
/// Bit `i` is set when dimension `i` of the token has a `1` in this plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaneRow {
    words: Vec<u64>,
    len: usize,
    /// Population count of `words`, cached at construction so mode choices
    /// (ones vs. zeros streaming) and popcount kernels never re-scan the
    /// packed words. Derived from `words`, so the derived `PartialEq` stays
    /// consistent.
    ones: u32,
}

impl PlaneRow {
    /// Builds a plane row from a boolean-per-dimension iterator.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        let mut current = 0u64;
        let mut ones = 0u32;
        for (i, b) in bits.into_iter().enumerate() {
            let slot = i % 64;
            if slot == 0 && i != 0 {
                words.push(current);
                ones += current.count_ones();
                current = 0;
            }
            if b {
                current |= 1 << slot;
            }
            len = i + 1;
        }
        if len > 0 {
            words.push(current);
            ones += current.count_ones();
        }
        let row = Self { words, len, ones };
        row.debug_assert_tail_clear();
        row
    }

    /// Builds a plane row directly from packed 64-bit words — the inverse
    /// of [`PlaneRow::words`], used by the spill tier to re-adopt a
    /// serialized plane without re-decomposing any values. The cached
    /// `ones` count is recomputed from the words, so a round trip through
    /// `words()` → `from_words` is `==`-identical to the original row.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::DimensionMismatch`] when the word count is
    /// not exactly `⌈len / 64⌉` or a padding bit past `len` is set (tail
    /// garbage would corrupt word-level popcount kernels).
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self, QuantError> {
        if words.len() != len.div_ceil(64) {
            return Err(QuantError::DimensionMismatch {
                expected: len.div_ceil(64),
                actual: words.len(),
            });
        }
        let ones = words.iter().map(|w| w.count_ones()).sum();
        let row = Self { words, len, ones };
        if !row.tail_is_clear() {
            return Err(QuantError::DimensionMismatch { expected: len, actual: len + 1 });
        }
        Ok(row)
    }

    /// Asserts (debug builds only) that every padding bit past `len` in the
    /// last packed word is zero. `popcount(q & k)` kernels rely on this:
    /// tail garbage would silently corrupt word-level AND+popcount results
    /// even though per-bit accessors mask it out.
    #[inline]
    fn debug_assert_tail_clear(&self) {
        debug_assert!(
            self.tail_is_clear(),
            "PlaneRow tail word has garbage bits past len={}",
            self.len
        );
    }

    /// `true` when all padding bits beyond [`PlaneRow::len`] are zero — the
    /// invariant word-level popcount kernels depend on. Always `true` for
    /// rows built via [`PlaneRow::from_bits`]; exposed so tests can pin it.
    #[must_use]
    pub fn tail_is_clear(&self) -> bool {
        let tail = self.len % 64;
        if tail == 0 || self.words.is_empty() {
            return true;
        }
        let last = self.words[self.words.len() - 1];
        last & !((1u64 << tail) - 1) == 0
    }

    /// Number of dimensions covered by this plane.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the plane covers zero dimensions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds ({} dims)", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits (`1`s) in the plane. Cached at construction —
    /// `O(1)`, never re-scans the packed words.
    #[must_use]
    pub fn count_ones(&self) -> u32 {
        self.ones
    }

    /// Number of clear bits (`0`s) in the plane.
    #[must_use]
    pub fn count_zeros(&self) -> u32 {
        self.len as u32 - self.count_ones()
    }

    /// Iterates over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.bit(i))
    }

    /// Dot product of this plane against a query row: `Σ_{bit_i=1} q_i`
    /// (unweighted; the caller applies [`plane_weight`]).
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != self.len()`.
    #[must_use]
    pub fn masked_sum(&self, q: &[i8]) -> i32 {
        assert_eq!(q.len(), self.len, "query length must match plane length");
        let mut acc = 0i32;
        for (w, chunk) in self.words.iter().zip(q.chunks(64)) {
            let mut bits = *w;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                acc += i32::from(chunk[i]);
                bits &= bits - 1;
            }
        }
        acc
    }

    /// Payload size of the plane in bits (one bit per dimension).
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        self.len
    }

    /// The packed 64-bit words backing the plane (bit `i` of the plane is
    /// bit `i % 64` of word `i / 64`; bits past [`PlaneRow::len`] are
    /// zero). Exposed so hot kernels can use word-level popcounts and
    /// table lookups instead of per-bit [`PlaneRow::bit`] calls.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes held by the packed words backing this plane.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Number of set bits within positions `[start, end)` (clipped to the
    /// plane length) — the word-level form of counting [`PlaneRow::bit`]
    /// hits over a range.
    #[must_use]
    pub fn count_ones_in_range(&self, start: usize, end: usize) -> u32 {
        let end = end.min(self.len);
        if start >= end {
            return 0;
        }
        let mut count = 0u32;
        let mut pos = start;
        while pos < end {
            let word = self.words[pos / 64];
            let offset = pos % 64;
            let take = (64 - offset).min(end - pos);
            let mask = if take == 64 { !0u64 } else { ((1u64 << take) - 1) << offset };
            count += (word & mask).count_ones();
            pos += take;
        }
        count
    }

    /// Number of positions set in both `self` and `other`:
    /// `popcount(self & other)`, computed word-by-word. This is the inner
    /// loop of the popcount QK kernel — with both rows tail-clear (an
    /// invariant of [`PlaneRow::from_bits`]) the result is exactly the
    /// number of shared set bits within `len`.
    ///
    /// # Panics
    ///
    /// Panics if the two rows cover different numbers of dimensions.
    #[must_use]
    pub fn and_popcount(&self, other: &PlaneRow) -> u32 {
        assert_eq!(self.len, other.len, "plane lengths must match");
        self.debug_assert_tail_clear();
        other.debug_assert_tail_clear();
        and_popcount_words(&self.words, &other.words)
    }
}

/// `Σ popcount(a[i] & b[i])` over two equal-length word slices.
///
/// The default build keeps the obvious scalar loop; the `simd` feature
/// switches to an unrolled form with independent accumulators so the
/// optimizer can keep multiple popcounts in flight (and auto-vectorize
/// where the target supports it). Both forms are exact and bit-identical.
#[cfg(not(feature = "simd"))]
#[must_use]
pub fn and_popcount_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

/// `Σ popcount(a[i] & b[i])` over two equal-length word slices (unrolled
/// `simd`-feature build; see the non-`simd` doc for the contract).
#[cfg(feature = "simd")]
#[must_use]
pub fn and_popcount_words(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0u32; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        acc[0] += (ca[0] & cb[0]).count_ones();
        acc[1] += (ca[1] & cb[1]).count_ones();
        acc[2] += (ca[2] & cb[2]).count_ones();
        acc[3] += (ca[3] & cb[3]).count_ones();
    }
    let tail: u32 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| (x & y).count_ones())
        .sum();
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// All bit planes of one token vector, MSB first.
///
/// # Example
///
/// ```
/// use pade_quant::TokenPlanes;
///
/// let planes = TokenPlanes::from_values(&[5, -5], 8);
/// assert_eq!(planes.reconstruct(), vec![5, -5]);
/// // Sign plane of -5 is set, of +5 is clear.
/// assert!(!planes.plane(0).bit(0));
/// assert!(planes.plane(0).bit(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenPlanes {
    planes: Vec<PlaneRow>,
    bits: u32,
    dims: usize,
}

impl TokenPlanes {
    /// Decomposes a token vector into `bits` MSB-first planes.
    ///
    /// Values are interpreted in `bits`-wide two's complement; they must fit
    /// (this holds by construction for codes produced by
    /// [`QuantParams`](crate::QuantParams) of the same width).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=8` or a value does not fit in `bits`
    /// two's-complement bits.
    #[must_use]
    pub fn from_values(values: &[i8], bits: u32) -> Self {
        Self::try_from_values(values, bits).expect("values must fit the requested width")
    }

    /// Fallible variant of [`TokenPlanes::from_values`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedWidth`] for a width outside `2..=8`
    /// (values outside the width's range still panic, as that is a caller
    /// contract violation rather than a data-dependent condition).
    pub fn try_from_values(values: &[i8], bits: u32) -> Result<Self, QuantError> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::UnsupportedWidth { bits });
        }
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        for &v in values {
            assert!(
                (lo..=hi).contains(&i32::from(v)),
                "value {v} does not fit in {bits}-bit two's complement"
            );
        }
        // Since each value fits in `bits` bits, the low `bits` bits of its i8
        // representation are exactly its two's-complement pattern.
        let mask = (1u32 << bits) - 1;
        let planes = (0..bits)
            .map(|r| {
                PlaneRow::from_bits(values.iter().map(|&v| {
                    let pattern = u32::from(v as u8) & mask;
                    (pattern >> (bits - 1 - r)) & 1 == 1
                }))
            })
            .collect();
        Ok(Self { planes, bits, dims: values.len() })
    }

    /// Reassembles a token from its already-built plane rows, MSB first —
    /// the inverse of reading [`TokenPlanes::plane`] for each round, used
    /// by the spill tier to re-adopt serialized planes without
    /// re-decomposing values. Width is `planes.len()`; dims come from the
    /// first plane.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedWidth`] when the plane count is
    /// outside `2..=8` and [`QuantError::DimensionMismatch`] when the
    /// planes cover differing numbers of dimensions.
    pub fn from_planes(planes: Vec<PlaneRow>) -> Result<Self, QuantError> {
        let bits = planes.len() as u32;
        if !(2..=8).contains(&bits) {
            return Err(QuantError::UnsupportedWidth { bits });
        }
        let dims = planes[0].len();
        for p in &planes {
            if p.len() != dims {
                return Err(QuantError::DimensionMismatch { expected: dims, actual: p.len() });
            }
        }
        Ok(Self { planes, bits, dims })
    }

    /// Bit width of the decomposed values.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of hidden dimensions.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Borrow plane `r` (0 = sign plane).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.bits()`.
    #[must_use]
    pub fn plane(&self, r: u32) -> &PlaneRow {
        &self.planes[r as usize]
    }

    /// Heap bytes held by this token's packed plane words — the unit the
    /// serving-side cache budget bills per token.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.planes.iter().map(PlaneRow::resident_bytes).sum()
    }

    /// Reassembles the original integers from the planes — the identity of
    /// Eq. 2, used as the crate's primary self-check.
    #[must_use]
    pub fn reconstruct(&self) -> Vec<i32> {
        let mut out = vec![0i32; self.dims];
        for r in 0..self.bits {
            let w = plane_weight(r, self.bits);
            let plane = &self.planes[r as usize];
            for i in plane.iter_ones() {
                out[i] += w;
            }
        }
        out
    }
}

/// Bit planes for a whole key matrix (`tokens × dims`), MSB first.
///
/// This is the DRAM-resident form of the key tensor in PADE: plane `r` of
/// token `j` is an independently addressable memory object (the paper's
/// bit-plane-interleaved layout, Fig. 22).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlaneMatrix {
    tokens: Vec<TokenPlanes>,
    bits: u32,
    dims: usize,
}

impl BitPlaneMatrix {
    /// Decomposes every row of a row-major integer matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::DimensionMismatch`] when `data.len()` is not a
    /// multiple of `dims`, or [`QuantError::UnsupportedWidth`] for a bad width.
    pub fn from_rows(data: &[i8], dims: usize, bits: u32) -> Result<Self, QuantError> {
        if dims == 0 || !data.len().is_multiple_of(dims) {
            return Err(QuantError::DimensionMismatch {
                expected: dims.max(1),
                actual: data.len(),
            });
        }
        let tokens = data
            .chunks(dims)
            .map(|row| TokenPlanes::try_from_values(row, bits))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { tokens, bits, dims })
    }

    /// Builds a matrix from already-decomposed token planes — the sealing
    /// step of a [`GrowableKeyCache`](crate::GrowableKeyCache) chunk, and
    /// the cheap path for callers that already hold [`TokenPlanes`].
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedWidth`] for a width outside `2..=8`
    /// and [`QuantError::DimensionMismatch`] when any token's shape differs
    /// from `dims`/`bits`.
    pub fn from_tokens(
        tokens: Vec<TokenPlanes>,
        dims: usize,
        bits: u32,
    ) -> Result<Self, QuantError> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::UnsupportedWidth { bits });
        }
        if dims == 0 {
            return Err(QuantError::DimensionMismatch { expected: 1, actual: 0 });
        }
        for t in &tokens {
            if t.dims() != dims || t.bits() != bits {
                return Err(QuantError::DimensionMismatch { expected: dims, actual: t.dims() });
            }
        }
        Ok(Self { tokens, bits, dims })
    }

    /// Decomposes and appends more token rows in place. Existing tokens are
    /// untouched — indices of already-stored tokens never change.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::DimensionMismatch`] when `data.len()` is not a
    /// multiple of this matrix's `dims` (no rows are appended in that case).
    pub fn append_rows(&mut self, data: &[i8]) -> Result<(), QuantError> {
        if !data.len().is_multiple_of(self.dims) {
            return Err(QuantError::DimensionMismatch { expected: self.dims, actual: data.len() });
        }
        self.tokens.reserve(data.len() / self.dims);
        for row in data.chunks(self.dims) {
            self.tokens.push(TokenPlanes::try_from_values(row, self.bits)?);
        }
        Ok(())
    }

    /// Appends one already-decomposed token.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::DimensionMismatch`] when the token's shape
    /// differs from this matrix's `dims`/`bits`.
    pub fn push_token(&mut self, token: TokenPlanes) -> Result<(), QuantError> {
        if token.dims() != self.dims || token.bits() != self.bits {
            return Err(QuantError::DimensionMismatch {
                expected: self.dims,
                actual: token.dims(),
            });
        }
        self.tokens.push(token);
        Ok(())
    }

    /// Number of tokens (rows).
    #[must_use]
    pub fn tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Number of hidden dimensions per token.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bit width of the decomposition.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// All planes of token `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.tokens()`.
    #[must_use]
    pub fn token(&self, j: usize) -> &TokenPlanes {
        &self.tokens[j]
    }

    /// Bytes occupied by a single bit plane of a single token, rounded up to
    /// whole bytes (what one OOE bit-plane fetch transfers).
    #[must_use]
    pub fn plane_bytes(&self) -> usize {
        self.dims.div_ceil(8)
    }

    /// Heap bytes held by all packed plane words of this matrix — what a
    /// cache manager bills for keeping the decomposed tensor resident.
    /// Every token stores `bits` planes of `⌈dims/64⌉` words, so this is
    /// pure arithmetic (a budget check must stay off the hot path's
    /// critical cost).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.tokens.len() * self.bits as usize * self.dims.div_ceil(64) * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plane_weights_sum_to_minus_one() {
        // All-ones pattern is -1 in two's complement.
        let total: i32 = (0..8).map(|r| plane_weight(r, 8)).sum();
        assert_eq!(total, -1);
        let total4: i32 = (0..4).map(|r| plane_weight(r, 4)).sum();
        assert_eq!(total4, -1);
    }

    #[test]
    fn uncertainty_span_matches_remaining_weights() {
        for bits in 2..=8u32 {
            for r in 0..bits {
                let remaining: i32 = (r + 1..bits).map(|i| plane_weight(i, bits)).sum();
                assert_eq!(uncertainty_span(r, bits), remaining);
            }
        }
    }

    #[test]
    fn paper_fig5a_example_msb_speculation() {
        // Fig. 5(a): 4-bit MSB-only speculation of (+5)*(+5) + (+5)*(-5).
        // MSB plane of 0101 (+5) is 0 -> conservative value 0; MSB plane of
        // 1011 (-5) is 1 -> conservative value -8. Estimated: 5*0 + 5*(-8) = -40.
        let k = TokenPlanes::from_values(&[5, -5], 4);
        let msb = k.plane(0);
        let est = plane_weight(0, 4) * msb.masked_sum(&[5, 5]);
        assert_eq!(est, -40);
        // True result is 0; with all planes the reconstruction is exact.
        let q = [5i32, 5];
        let truth: i32 = k.reconstruct().iter().zip(q.iter()).map(|(a, b)| a * b).sum();
        assert_eq!(truth, 0);
    }

    #[test]
    fn masked_sum_counts_selected_queries() {
        let plane = PlaneRow::from_bits([true, false, true, true]);
        assert_eq!(plane.masked_sum(&[1, 2, 3, 4]), 8);
        assert_eq!(plane.count_ones(), 3);
        assert_eq!(plane.count_zeros(), 1);
    }

    #[test]
    fn plane_row_across_word_boundary() {
        let bits: Vec<bool> = (0..130).map(|i| i % 3 == 0).collect();
        let plane = PlaneRow::from_bits(bits.iter().copied());
        assert_eq!(plane.len(), 130);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(plane.bit(i), b, "bit {i}");
        }
        let q: Vec<i8> = (0..130).map(|i| (i % 7) as i8 - 3).collect();
        let expect: i32 =
            bits.iter().zip(&q).filter(|(b, _)| **b).map(|(_, &v)| i32::from(v)).sum();
        assert_eq!(plane.masked_sum(&q), expect);
    }

    #[test]
    fn matrix_round_trip() {
        let data: Vec<i8> = vec![6, -5, 9, -4, 127, -128, 0, 1];
        let m = BitPlaneMatrix::from_rows(&data, 4, 8).unwrap();
        assert_eq!(m.tokens(), 2);
        assert_eq!(m.plane_bytes(), 1);
        let rec: Vec<i32> = (0..2).flat_map(|j| m.token(j).reconstruct()).collect();
        assert_eq!(rec, data.iter().map(|&v| i32::from(v)).collect::<Vec<_>>());
    }

    #[test]
    fn matrix_rejects_ragged_data() {
        assert!(BitPlaneMatrix::from_rows(&[1, 2, 3], 2, 8).is_err());
        assert!(BitPlaneMatrix::from_rows(&[1, 2], 0, 8).is_err());
    }

    #[test]
    fn from_words_rejects_bad_shapes() {
        // Wrong word count for the claimed length.
        assert!(PlaneRow::from_words(vec![0u64; 2], 64).is_err());
        assert!(PlaneRow::from_words(vec![], 1).is_err());
        // Tail garbage past len.
        assert!(PlaneRow::from_words(vec![0b100], 2).is_err());
        // Exact fit round-trips.
        let row = PlaneRow::from_words(vec![0b011], 2).unwrap();
        assert_eq!(row.count_ones(), 2);
    }

    #[test]
    fn from_planes_rejects_bad_shapes() {
        let p4 = PlaneRow::from_bits([true, false, true, true]);
        let p3 = PlaneRow::from_bits([true, false, true]);
        assert!(TokenPlanes::from_planes(vec![p4.clone()]).is_err(), "1 plane < 2 bits");
        assert!(TokenPlanes::from_planes(vec![p4.clone(); 9]).is_err(), "9 planes > 8 bits");
        assert!(TokenPlanes::from_planes(vec![p4.clone(), p3]).is_err(), "ragged dims");
        let t = TokenPlanes::from_planes(vec![p4.clone(), p4.clone()]).unwrap();
        assert_eq!((t.bits(), t.dims()), (2, 4));
    }

    proptest! {
        #[test]
        fn prop_words_round_trip_is_identical(
            values in proptest::collection::vec(any::<i8>(), 1..200),
            bits in 2u32..=8,
        ) {
            // Fold the full i8 range into the width (arithmetic shift keeps
            // two's-complement semantics), decompose, then rebuild every
            // plane and token from serialized words alone.
            let narrowed: Vec<i8> = values.iter().map(|&v| v >> (8 - bits)).collect();
            let token = TokenPlanes::from_values(&narrowed, bits);
            let rebuilt = TokenPlanes::from_planes(
                (0..bits)
                    .map(|r| {
                        let p = token.plane(r);
                        PlaneRow::from_words(p.words().to_vec(), p.len()).unwrap()
                    })
                    .collect(),
            )
            .unwrap();
            prop_assert_eq!(&rebuilt, &token);
            prop_assert_eq!(rebuilt.reconstruct(), token.reconstruct());
        }

        #[test]
        fn prop_reconstruction_is_exact_int8(values in proptest::collection::vec(any::<i8>(), 1..200)) {
            let planes = TokenPlanes::from_values(&values, 8);
            let rec = planes.reconstruct();
            prop_assert_eq!(rec, values.iter().map(|&v| i32::from(v)).collect::<Vec<_>>());
        }

        #[test]
        fn prop_reconstruction_is_exact_int4(values in proptest::collection::vec(-8i8..=7, 1..100)) {
            let planes = TokenPlanes::from_values(&values, 4);
            let rec = planes.reconstruct();
            prop_assert_eq!(rec, values.iter().map(|&v| i32::from(v)).collect::<Vec<_>>());
        }

        #[test]
        fn prop_partial_scores_converge_msb_first(
            q in proptest::collection::vec(any::<i8>(), 1..64),
            seed in any::<u64>(),
        ) {
            // Partial score after all planes equals the exact dot product.
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| ((seed.wrapping_mul(i as u64 + 1).wrapping_add(i as u64 * 7919)) % 256) as u8 as i8)
                .collect();
            let planes = TokenPlanes::from_values(&k, 8);
            let exact: i32 = q.iter().zip(&k).map(|(&a, &b)| i32::from(a) * i32::from(b)).sum();
            let mut partial = 0i32;
            for r in 0..8u32 {
                partial += plane_weight(r, 8) * planes.plane(r).masked_sum(&q);
            }
            prop_assert_eq!(partial, exact);
        }

        #[test]
        fn prop_tail_bits_past_len_are_always_zero(
            seed in any::<u64>(),
            base in 0usize..4,
            tail_idx in 0usize..3,
        ) {
            // Shapes with len % 64 ∈ {0, 1, 63} exercise empty, minimal and
            // nearly-full tail words.
            let len = base * 64 + [0usize, 1, 63][tail_idx];
            let bits: Vec<bool> =
                (0..len).map(|i| seed.wrapping_mul(i as u64 + 1).wrapping_add(i as u64).is_multiple_of(3)).collect();
            let plane = PlaneRow::from_bits(bits.iter().copied());
            prop_assert!(plane.tail_is_clear());
            let expected_ones = bits.iter().filter(|&&b| b).count() as u32;
            prop_assert_eq!(plane.count_ones(), expected_ones);
            if len > 0 {
                prop_assert_eq!(plane.count_zeros(), len as u32 - expected_ones);
            }
        }

        #[test]
        fn prop_and_popcount_matches_bitwise_intersection(
            seed_a in any::<u64>(),
            seed_b in any::<u64>(),
            base in 0usize..3,
            tail_idx in 0usize..3,
        ) {
            let len = base * 64 + [0usize, 1, 63][tail_idx];
            let a_bits: Vec<bool> = (0..len).map(|i| seed_a.wrapping_mul(i as u64 + 3).is_multiple_of(2)).collect();
            let b_bits: Vec<bool> = (0..len).map(|i| seed_b.wrapping_mul(i as u64 + 5).is_multiple_of(2)).collect();
            let a = PlaneRow::from_bits(a_bits.iter().copied());
            let b = PlaneRow::from_bits(b_bits.iter().copied());
            let expect = a_bits.iter().zip(&b_bits).filter(|(x, y)| **x && **y).count() as u32;
            prop_assert_eq!(a.and_popcount(&b), expect);
            prop_assert_eq!(b.and_popcount(&a), expect);
        }

        #[test]
        fn prop_unknown_bits_bounded_by_span(v in any::<i8>(), r in 0u32..8) {
            // The value formed by zeroing unknown planes differs from the true
            // value by at most U_r, and never exceeds it.
            let planes = TokenPlanes::from_values(&[v], 8);
            let mut known = 0i32;
            for p in 0..=r {
                if planes.plane(p).bit(0) {
                    known += plane_weight(p, 8);
                }
            }
            let diff = i32::from(v) - known;
            prop_assert!(diff >= 0);
            prop_assert!(diff <= uncertainty_span(r, 8));
        }
    }
}
