//! Baseline accelerators and software sparse-attention methods for the
//! PADE evaluation (§VI-A).
//!
//! Every prior dynamic-sparsity accelerator follows the *stage-splitting*
//! paradigm (Fig. 4(a)): a low-precision **predictor** scans the full key
//! tensor to choose important QK pairs, then a full-precision **executor**
//! re-fetches and computes the survivors. The models here reproduce each
//! design's predictor mechanism, selection rule and cost structure under
//! the paper's normalization (same PE area, 800 MHz, 352 KB SRAM,
//! 256 GB/s HBM):
//!
//! | Design | Predictor | Selection | Extra traits |
//! |---|---|---|---|
//! | Sanger  | 4-bit MSB QK | threshold | — |
//! | SpAtten | previous-layer scores | cascade top-k | no predictor pass, needs finetune |
//! | DOTA    | low-rank projection | threshold | — |
//! | Energon | progressive 2-bit → 4-bit | threshold | mix-precision filter |
//! | SOFA    | log-domain shift | top-k | cross-stage tiling (fused predictor I/O) |
//! | BitWave | — (dense bit-serial) | — | bit-column zero skipping |
//!
//! [`software`] holds the software-only methods of Fig. 15 (StreamingLLM,
//! MInference, DoubleSparsity), which select keys but execute on
//! conventional hardware.
//!
//! # Example
//!
//! ```
//! use pade_baselines::{sanger, Accelerator};
//! use pade_workload::trace::{AttentionTrace, TraceConfig};
//!
//! let trace = AttentionTrace::generate(&TraceConfig::small_demo());
//! let result = sanger().run(&trace);
//! // A stage-splitting design pays a separate predictor...
//! assert!(result.stats.predictor_ops.int4_mac > 0);
//! // ...and still reproduces attention faithfully.
//! assert!(result.fidelity > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitwave;
mod common;
mod predictors;
pub mod software;
mod stage_split;
pub mod tableone;

pub use bitwave::BitWave;
pub use common::{Accelerator, BaselineResult};
pub use predictors::{LogDomainPredictor, LowRankPredictor, MsbPredictor, PrevLayerPredictor};
pub use stage_split::{
    dota, energon, sanger, sofa, spatten, spatten_finetuned, Selection, StageSplitAccelerator,
};
