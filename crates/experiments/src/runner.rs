//! Workload construction and accelerator execution for the experiments.

use pade_baselines::{Accelerator, BaselineResult};
use pade_core::accelerator::{scale_to_model, PadeAccelerator, PadeRunResult};
use pade_core::config::PadeConfig;
use pade_energy::gpu::{GpuPhase, H100Config, H100Model};
use pade_energy::{EnergyLedger, Tech};
use pade_sim::RunStats;
use pade_workload::model::ModelConfig;
use pade_workload::profile::ScoreProfile;
use pade_workload::task::TaskConfig;
use pade_workload::trace::{AttentionTrace, TraceConfig};

/// Longest context simulated directly; longer tasks are simulated at this
/// length and extrapolated linearly per key (documented in EXPERIMENTS.md).
pub const SIM_SEQ_CAP: usize = 4096;

/// Decode length assumed for end-to-end latency (prefill + generation).
pub const DECODE_STEPS: usize = 256;

/// GPU batch size used in comparisons (the paper selects from [8, 128]).
pub const GPU_BATCH: usize = 8;

/// A fully specified experiment workload: one (model, task) pair with its
/// synthetic attention trace.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Model architecture.
    pub model: ModelConfig,
    /// Benchmark task.
    pub task: TaskConfig,
    /// Prefill trace (8 query rows).
    pub trace: AttentionTrace,
    /// Context length actually simulated (`min(task.seq_len, SIM_SEQ_CAP)`).
    pub sim_seq: usize,
}

impl Workload {
    /// Builds the workload for a (model, task) pair.
    #[must_use]
    pub fn new(model: ModelConfig, task: TaskConfig, seed: u64) -> Self {
        let sim_seq = task.seq_len.min(SIM_SEQ_CAP);
        let trace = AttentionTrace::generate(&TraceConfig {
            seq_len: sim_seq,
            head_dim: model.head_dim,
            n_queries: 8,
            profile: ScoreProfile::for_task(&task),
            bits: 8,
            seed,
        });
        Self { model, task, trace, sim_seq }
    }

    /// Linear extrapolation factor from the simulated context to the
    /// task's true context length.
    #[must_use]
    pub fn seq_scale(&self) -> f64 {
        self.task.seq_len as f64 / self.sim_seq as f64
    }

    /// Scales block-level stats to the full model × task (all layers,
    /// heads, query blocks, plus the context extrapolation).
    #[must_use]
    pub fn scale(&self, block: &RunStats) -> RunStats {
        let mut scaled = scale_to_model(
            block,
            &self.model,
            self.task.seq_len,
            self.trace.queries().rows(),
            None,
        );
        let extra = self.seq_scale();
        if extra > 1.0 {
            scale_stats_f(&mut scaled, extra);
        }
        scaled
    }

    /// Nominal dense attention operations of the full workload (MAC = 2
    /// ops), the normalizer for GOPS/W.
    #[must_use]
    pub fn dense_ops(&self) -> f64 {
        let s = self.task.seq_len as f64;
        2.0 * 2.0
            * s
            * s
            * self.model.head_dim as f64
            * self.model.heads as f64
            * self.model.layers as f64
    }
}

/// Multiplies every count in `stats` by `f` (context extrapolation).
fn scale_stats_f(stats: &mut RunStats, f: f64) {
    let m = |v: &mut u64| *v = (*v as f64 * f).round() as u64;
    m(&mut stats.cycles.0);
    for ops in [&mut stats.ops, &mut stats.predictor_ops] {
        m(&mut ops.int8_mac);
        m(&mut ops.int4_mac);
        m(&mut ops.bit_serial_acc);
        m(&mut ops.shift_add);
        m(&mut ops.fp_exp);
        m(&mut ops.fp_mul);
        m(&mut ops.fp_add);
        m(&mut ops.compare);
        m(&mut ops.lut_lookup);
    }
    for t in [&mut stats.traffic, &mut stats.predictor_traffic] {
        m(&mut t.dram_read_bytes);
        m(&mut t.dram_write_bytes);
        m(&mut t.dram_row_activations);
        m(&mut t.dram_bursts);
        m(&mut t.sram_read_bytes);
        m(&mut t.sram_write_bytes);
    }
    m(&mut stats.retained_keys);
    m(&mut stats.total_keys);
}

/// One accelerator's scaled outcome on a workload.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Design label.
    pub label: String,
    /// Full-model statistics.
    pub stats: RunStats,
    /// Energy priced from the scaled statistics.
    pub energy: EnergyLedger,
    /// Latency in seconds at the 800 MHz core clock.
    pub seconds: f64,
    /// Output fidelity (cosine) of the block run.
    pub fidelity: f64,
    /// Retained softmax mass of the block run.
    pub retained_mass: f64,
}

impl Outcome {
    fn from_stats(label: &str, stats: RunStats, fidelity: f64, mass: f64) -> Self {
        let tech = Tech::cmos28();
        let energy = EnergyLedger::from_stats(&stats, &tech);
        let seconds = pade_sim::Frequency::default().seconds(stats.cycles);
        Self { label: label.to_string(), stats, energy, seconds, fidelity, retained_mass: mass }
    }

    /// Energy efficiency in GOPS/W against the workload's dense op count.
    #[must_use]
    pub fn gops_per_watt(&self, w: &Workload) -> f64 {
        pade_energy::gops_per_watt(w.dense_ops(), self.seconds, self.energy.total_pj())
    }
}

/// Runs PADE with `config` on a workload, returning the block result and
/// the scaled outcome.
#[must_use]
pub fn run_pade(w: &Workload, config: PadeConfig) -> (PadeRunResult, Outcome) {
    let r = PadeAccelerator::new(config).run_trace(&w.trace);
    let scaled = w.scale(&r.stats);
    let o = Outcome::from_stats(&r.stats.label.clone(), scaled, r.fidelity, r.retained_mass);
    (r, o)
}

/// Runs a baseline accelerator on a workload.
#[must_use]
pub fn run_baseline(w: &Workload, accel: &dyn Accelerator) -> (BaselineResult, Outcome) {
    let r = accel.run(&w.trace);
    let scaled = w.scale(&r.stats);
    let o = Outcome::from_stats(accel.name(), scaled, r.fidelity, r.retained_mass);
    (r, o)
}

/// GPU comparison mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GpuMode {
    /// Dense attention, unfused kernels.
    Dense,
    /// Dense attention with FlashAttention-3-style fused tiling.
    Flash,
    /// BUI-GF-style sparsity detection on the GPU (limited gains: the
    /// tensor-core datapath cannot exploit bit-level early termination;
    /// retained fraction only reduces the PV stage and KV traffic, at an
    /// irregularity penalty).
    BuiGf {
        /// Fraction of keys retained.
        keep: f64,
    },
    /// BUI-GF detection plus FlashAttention-3 tiling.
    BuiGfFlash {
        /// Fraction of keys retained.
        keep: f64,
    },
}

/// The paper's H100 operating point for attention workloads: small-batch
/// inference leaves attention kernels far from peak (the measured regime
/// behind Fig. 18/19).
#[must_use]
pub fn h100() -> H100Model {
    H100Model::new(H100Config {
        attention_mfu: 0.05,
        bandwidth_eff: 0.45,
        kernel_overhead_us: 6.0,
        ..H100Config::default()
    })
}

/// Builds the GPU phase for a full (model, task) attention workload:
/// prefill over the task context plus [`DECODE_STEPS`] decode steps at
/// batch [`GPU_BATCH`] (decode attention is KV-cache-bandwidth bound).
#[must_use]
pub fn gpu_phase(w: &Workload, mode: GpuMode) -> GpuPhase {
    let s = w.task.seq_len as f64;
    let h = w.model.head_dim as f64;
    let heads = w.model.heads as f64;
    let kv_heads = w.model.kv_heads as f64;
    let layers = w.model.layers as f64;
    let batch = GPU_BATCH as f64;

    let (keep, flash) = match mode {
        GpuMode::Dense => (1.0, false),
        GpuMode::Flash => (1.0, true),
        GpuMode::BuiGf { keep } => (keep, false),
        GpuMode::BuiGfFlash { keep } => (keep, true),
    };
    // Sparse execution on a GPU is irregular: effective compute savings are
    // a fraction of the nominal keep ratio (gather/scatter overhead).
    let irregularity = 0.5;
    let exec_scale = if keep < 1.0 { keep + (1.0 - keep) * irregularity } else { 1.0 };
    // Detection itself costs a pass over K (the predictor it cannot fuse).
    let detect_ops = if keep < 1.0 { s * s * h * 2.0 * 0.25 } else { 0.0 };

    // Prefill: S² compute per head per sequence in the batch; decode:
    // DECODE_STEPS sweeps of the KV cache (bandwidth bound) at the batch
    // size. Everything is per-batch here; the caller amortizes.
    let prefill_ops =
        (2.0 * 2.0 * s * s * h * heads * exec_scale + detect_ops * heads) * layers * batch;
    let decode_ops = 2.0 * 2.0 * s * h * heads * DECODE_STEPS as f64 * batch * exec_scale * layers;
    let prefill_bytes = (3.0 * s * h * (heads + kv_heads) / 2.0
        + if flash { 0.0 } else { 2.0 * 2.0 * s * s * heads })
        * layers
        * batch;
    let kv_bytes_per_step =
        2.0 * s * h * kv_heads * batch * if keep < 1.0 { keep + 0.25 } else { 1.0 };
    let decode_bytes = kv_bytes_per_step * DECODE_STEPS as f64 * layers;
    let kernels = layers * (if flash { 1.0 } else { 3.0 }) * (1.0 + DECODE_STEPS as f64 / 8.0);

    GpuPhase {
        int8_ops: prefill_ops + decode_ops,
        fp_ops: (s * s * heads * 5.0 * batch + s * heads * 5.0 * DECODE_STEPS as f64 * batch)
            * layers,
        hbm_bytes: prefill_bytes + decode_bytes,
        kernels,
    }
}

/// GPU outcome on a workload: latency (s), energy (J) amortized per batch
/// element (the accelerators process one sequence at a time).
#[must_use]
pub fn gpu_outcome(w: &Workload, mode: GpuMode) -> (f64, f64) {
    let model = h100();
    let phase = gpu_phase(w, mode);
    let batch = GPU_BATCH as f64;
    (model.latency_s(&phase) / batch, model.energy_j(&phase) / batch)
}

/// PADE end-to-end seconds/energy for prefill + decode on a workload.
#[must_use]
pub fn pade_end_to_end(w: &Workload, config: &PadeConfig) -> (f64, f64, PadeRunResult) {
    let (block, prefill) = run_pade(w, config.clone());
    // Decode: one query per step over the same context.
    let decode_trace = AttentionTrace::generate(&TraceConfig {
        seq_len: w.sim_seq,
        head_dim: w.model.head_dim,
        n_queries: 1,
        profile: ScoreProfile::for_task(&w.task),
        bits: 8,
        seed: 17,
    });
    let decode_block = PadeAccelerator::new(config.clone()).run_trace(&decode_trace);
    let mut decode_scaled =
        scale_to_model(&decode_block.stats, &w.model, w.task.seq_len, 1, Some(DECODE_STEPS));
    let extra = w.seq_scale();
    if extra > 1.0 {
        scale_stats_f(&mut decode_scaled, extra);
    }
    let mut total = prefill.stats.clone();
    total.merge(&decode_scaled);
    let tech = Tech::cmos28();
    let energy = EnergyLedger::from_stats(&total, &tech).total_pj() * 1e-12;
    let seconds = pade_sim::Frequency::default().seconds(total.cycles);
    (seconds, energy, block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_baselines::sanger;
    use pade_workload::{model, task};

    fn small_workload() -> Workload {
        let mut t = task::mmlu();
        t.seq_len = 512; // keep tests quick
        Workload::new(model::opt_1b3(), t, 3)
    }

    #[test]
    fn workload_scaling_multiplies_to_model_size() {
        let w = small_workload();
        let (_, o) = run_pade(&w, PadeConfig::standard());
        // Full model stats must dwarf one block's.
        assert!(o.stats.ops.bit_serial_acc > 1_000_000);
        assert!(o.seconds > 0.0);
        assert!(o.energy.total_pj() > 0.0);
    }

    #[test]
    fn pade_beats_sanger_on_energy_for_equal_fidelity_band() {
        let w = small_workload();
        let (_, pade) = run_pade(&w, PadeConfig::standard());
        let (_, sang) = run_baseline(&w, &sanger());
        assert!(pade.fidelity > 0.97 && sang.fidelity > 0.97);
        assert!(
            pade.energy.total_pj() < sang.energy.total_pj(),
            "PADE {} vs Sanger {}",
            pade.energy.total_pj(),
            sang.energy.total_pj()
        );
    }

    #[test]
    fn gpu_dense_is_slower_than_flash() {
        let w = small_workload();
        let (dense_s, dense_j) = gpu_outcome(&w, GpuMode::Dense);
        let (flash_s, flash_j) = gpu_outcome(&w, GpuMode::Flash);
        assert!(flash_s <= dense_s);
        assert!(flash_j <= dense_j);
    }

    #[test]
    fn gpu_buigf_gains_are_limited() {
        // The paper: BUI-GF on GPU yields only ~8% latency reduction.
        let w = small_workload();
        let (flash_s, _) = gpu_outcome(&w, GpuMode::Flash);
        let (sparse_s, _) = gpu_outcome(&w, GpuMode::BuiGfFlash { keep: 0.2 });
        let gain = flash_s / sparse_s;
        assert!(gain > 1.0 && gain < 2.5, "GPU sparsity gain should be modest: {gain}");
    }

    #[test]
    fn pade_end_to_end_includes_decode() {
        let w = small_workload();
        let (s_total, j_total, _) = pade_end_to_end(&w, &PadeConfig::standard());
        let (_, prefill_only) = run_pade(&w, PadeConfig::standard());
        assert!(s_total > prefill_only.seconds);
        assert!(j_total > 0.0);
    }

    #[test]
    fn seq_extrapolation_kicks_in_beyond_cap() {
        let w = Workload::new(model::llama2_7b(), task::dolly(), 5);
        assert_eq!(w.sim_seq, SIM_SEQ_CAP);
        assert!(w.seq_scale() > 3.0);
    }
}
