//! Fig. 5(f) — why tiling is mandatory: normalized memory access versus
//! query parallelism P when the row-dependent pruning criterion forbids
//! tiling, for 240 KB and 320 KB on-chip SRAM (Llama2-7B, S = 2048).
//!
//! Without tiling, P parallel queries materialize a P×S score block plus
//! their output state on chip; once that spills, every softmax/PV pass
//! re-streams the overflow from DRAM, and the re-streaming multiplies with
//! the number of passes.

use pade_experiments::report::{banner, Table};

/// Untiled memory traffic model for one P-query block over S keys of H
/// dims with `sram` bytes of buffering.
///
/// Row-wise pruning needs every query's full fp32 score row live until the
/// row maximum is final. The K stream is consumed in PE-array-width chunks
/// (64 dims), and every chunk updates all P partial rows — so any part of
/// the score state that spilled to DRAM makes a round trip *per chunk*.
fn untiled_bytes(p: usize, s: usize, h: usize, sram_bytes: u64) -> f64 {
    let kv_stream = (2 * s * h) as f64; // K and V once per block
    let stream_buffer = 64.0 * 1024.0; // double-buffered K/V staging
    let state = (p * s) as f64 * 4.0 + (p * h) as f64 * 4.0; // fp32 scores + output
    let avail = (sram_bytes as f64 - stream_buffer).max(1.0);
    let spill = (state - avail).max(0.0);
    let chunks = (s as f64 / 64.0).max(1.0);
    kv_stream + 2.0 * spill * chunks
}

fn main() {
    banner("Fig. 5(f)", "Untiled memory access vs query parallelism (Llama2-7B, S=2k)");
    let s = 2048usize;
    let h = 128usize;
    let base = untiled_bytes(8, s, h, 240 * 1024);
    let mut table = Table::new(vec!["P", "240 KB SRAM", "320 KB SRAM", "ideal (tiled)"]);
    for p in [8usize, 16, 24, 32, 40] {
        let a = untiled_bytes(p, s, h, 240 * 1024) / base;
        let b = untiled_bytes(p, s, h, 320 * 1024) / base;
        // Tiling keeps the state windowed: traffic stays the KV stream.
        let ideal = (2 * s * h) as f64 / base;
        table.row(vec![p.to_string(), format!("{a:.2}"), format!("{b:.2}"), format!("{ideal:.2}")]);
    }
    println!("{}", table.render());
    let blow_up = untiled_bytes(32, s, h, 240 * 1024) / untiled_bytes(8, s, h, 240 * 1024);
    println!("P=8 → P=32 blow-up at 240 KB: {blow_up:.1}x (paper: >12x).");
    println!("Larger SRAM only delays the cliff — the paper's 5 MB alternative");
    println!("would cost 5.47 mm² (7.4x SpAtten's total area). ISTA removes the");
    println!("row dependency instead (see fig10_interleave_updates).");
}
