//! Property tests for the `.padetrace` stream format:
//!
//! 1. **Round-trip fidelity** — any event sequence written through a
//!    [`StreamSink`] reads back to a snapshot whose fingerprint equals
//!    what an in-memory [`Recorder`] captured from the same submissions,
//!    at any frame size, with resident memory bounded by the frame.
//! 2. **Torn tails degrade cleanly** — truncating the file at any byte
//!    offset leaves the lossy reader able to salvage every intact prior
//!    frame (never a panic, never a spurious event), while the strict
//!    reader rejects exactly the truncations that tore a frame.

use pade_sim::Cycle;
use pade_trace::{read_stream, read_stream_lossy, Recorder, StreamSink, TraceEvent, TraceSink};
use proptest::prelude::*;

const NAMES: [&str; 4] = ["stage.alpha", "stage.beta", "stage.gamma", "stage.delta"];

/// One generated submission: `(track, kind, clock delta, name pick,
/// payload)` folded into a concrete event with per-track cumulative
/// clocks (monotone per track, like real emitters).
fn materialize(ops: &[(u8, u8, u16, u8, u64)]) -> Vec<(u64, TraceEvent)> {
    let mut clocks = [0u64; 4];
    ops.iter()
        .map(|&(tr, kind, delta, ni, payload)| {
            let t = (tr % 4) as usize;
            clocks[t] += u64::from(delta);
            let name = NAMES[(ni % 4) as usize];
            let clock = Cycle(clocks[t]);
            let event = match kind % 6 {
                0 => TraceEvent::Begin { name, clock },
                1 => TraceEvent::End { clock, wall_nanos: payload },
                2 => TraceEvent::Instant { name, clock },
                3 => TraceEvent::Count { name, clock, delta: payload },
                4 => TraceEvent::Gauge { name, clock, value: f64::from_bits(payload) },
                _ => TraceEvent::Link { name, clock, request: payload % 17, info: payload },
            };
            (t as u64 + 1, event)
        })
        .collect()
}

/// Writes `events` through a sink with `frame`-byte frames and returns
/// the file path (unique per call within this process).
fn write_stream(
    events: &[(u64, TraceEvent)],
    frame: usize,
    tag: &str,
    case: usize,
) -> std::path::PathBuf {
    let path = std::env::temp_dir()
        .join(format!("pade-stream-prop-{tag}-{}-{case}.padetrace", std::process::id()));
    let sink = StreamSink::with_frame_size(&path, frame).expect("create stream");
    for (track, event) in events {
        sink.submit(*track, std::slice::from_ref(event));
    }
    sink.finish().expect("finish stream");
    assert!(
        sink.peak_buffered_bytes() <= frame,
        "buffered {} bytes over the {frame}-byte frame",
        sink.peak_buffered_bytes()
    );
    path
}

proptest! {
    /// StreamSink → StreamReader round-trips to the Recorder's exact
    /// fingerprint for arbitrary event sequences and frame sizes.
    #[test]
    fn roundtrip_fingerprint_matches_recorder(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u16>(), any::<u8>(), any::<u64>()),
            0..200,
        ),
        frame in pade_trace::stream::MIN_FRAME_SIZE..2048usize,
    ) {
        let events = materialize(&ops);
        let recorder = Recorder::new();
        for (track, event) in &events {
            recorder.submit(*track, std::slice::from_ref(event));
        }
        let path = write_stream(&events, frame, "rt", 0);
        let streamed = read_stream(&path);
        std::fs::remove_file(&path).ok();
        let streamed = streamed.expect("strict read of an intact stream");
        prop_assert_eq!(streamed.fingerprint(), recorder.snapshot().fingerprint());
        prop_assert_eq!(streamed.event_count(), events.len());
    }

    /// Any truncation of the file salvages cleanly: the lossy reader
    /// returns only intact frames, the torn flag agrees with the strict
    /// reader, and an untorn prefix is itself a valid stream.
    #[test]
    fn torn_tails_salvage_prior_frames(
        ops in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u16>(), any::<u8>(), any::<u64>()),
            50..150,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let events = materialize(&ops);
        let path = write_stream(&events, pade_trace::stream::MIN_FRAME_SIZE, "torn", 0);
        let full_bytes = std::fs::read(&path).expect("read back");
        let full = read_stream(&path).expect("intact stream reads strictly");
        let full_frames = read_stream_lossy(&path).expect("intact stream reads lossily").frames;

        // Cut somewhere past the file header (shorter prefixes are not
        // stream files at all and are rejected up front either way).
        let header = 12;
        let cut = header + ((full_bytes.len() - header) as f64 * cut_frac) as usize;
        std::fs::write(&path, &full_bytes[..cut]).expect("truncate");

        let lossy = read_stream_lossy(&path).expect("lossy read never fails on a torn tail");
        prop_assert!(lossy.frames <= full_frames);
        prop_assert!(lossy.snapshot.event_count() <= full.event_count());
        let strict = read_stream(&path);
        std::fs::remove_file(&path).ok();
        if lossy.torn {
            prop_assert!(strict.is_err(), "strict read accepted a torn tail");
        } else {
            // The cut landed on a frame boundary: the prefix is a valid
            // (shorter) stream and both readers agree on it.
            let strict = strict.expect("strict read of a frame-aligned prefix");
            prop_assert_eq!(strict.fingerprint(), lossy.snapshot.fingerprint());
        }
        if cut == full_bytes.len() {
            prop_assert!(!lossy.torn);
            prop_assert_eq!(lossy.snapshot.fingerprint(), full.fingerprint());
        }
    }
}
