//! Observability invariants at fleet scale:
//!
//! 1. **Telemetry is a pure side channel** — `route_traced` with a
//!    recorder attached produces byte-identical per-request outputs and
//!    an identical fleet summary to the untraced `route` run, for every
//!    placement policy.
//! 2. **Span streams are well-formed and deterministic** — the merged
//!    router/serve/cache/engine stream has strictly nested begin/end
//!    pairs and monotone per-track clocks, and its fingerprint is
//!    identical at any `PADE_THREADS` (tracks are keyed by node id and
//!    logical dispatch index, never worker identity).

use std::collections::HashMap;
use std::sync::Arc;

use pade_router::{route, route_traced, RoutePolicy, RouterConfig};
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::ServeConfig;
use pade_trace::{Recorder, TraceSink, Tracer};
use pade_workload::prompt::{
    generate_multi_tenant_arrivals, MultiTenantConfig, SharedPrefixConfig,
};
use proptest::prelude::*;

/// A small multi-tenant workload: every request carries a prompt,
/// several sessions return for a second turn.
fn workload(seed: u64) -> Vec<pade_workload::trace::RequestArrival> {
    generate_multi_tenant_arrivals(&MultiTenantConfig {
        tenants: 2,
        sessions_per_tenant: 3,
        per_tenant: SharedPrefixConfig {
            pool_size: 1,
            turns_per_session: 2,
            shared_prefix_tokens: 48,
            unique_suffix_tokens: 12,
            turn_suffix_tokens: 12,
            decode_steps: 2,
            prefill_rows: 6,
            mean_interarrival_cycles: 2_000.0,
            turn_gap_cycles: 50_000,
            ..SharedPrefixConfig::small_demo()
        },
        seed,
    })
}

fn node_config() -> ServeConfig {
    ServeConfig { kv_chunk_tokens: 16, ..ServeConfig::standard() }
}

fn output_map(report: &pade_router::RouterReport) -> HashMap<usize, Vec<u8>> {
    report.completions_by_id().iter().map(|c| (c.id, c.output_bytes())).collect()
}

fn recording_tracer() -> (Arc<Recorder>, Tracer) {
    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn TraceSink>);
    (recorder, tracer)
}

/// Sweeps explicit worker counts via `PADE_THREADS`. All env twiddling
/// in this binary lives in this one test; the proptest below is
/// thread-count-agnostic, so concurrent execution never observes a
/// half-set variable.
#[test]
fn traced_route_is_identical_and_fingerprint_stable_across_worker_counts() {
    let arrivals = workload(2026);
    let fleet = RouterConfig::homogeneous(node_config(), 2, RoutePolicy::Affinity);
    let baseline = route(&fleet, &arrivals, ScheduleMode::Batched);
    let baseline_bytes = output_map(&baseline);

    let mut fingerprints = Vec::new();
    for workers in ["1", "2", "4"] {
        std::env::set_var("PADE_THREADS", workers);
        let (recorder, tracer) = recording_tracer();
        let report = route_traced(&fleet, &arrivals, ScheduleMode::Batched, &tracer);
        assert_eq!(report.summary, baseline.summary, "workers={workers}");
        for completion in &report.completions_by_id() {
            assert!(
                completion.output_bytes() == baseline_bytes[&completion.id],
                "workers={workers}: tracing changed request {} output bytes",
                completion.id
            );
        }
        let snap = recorder.snapshot();
        snap.check_well_formed().unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        fingerprints.push(snap.fingerprint());
        if cfg!(feature = "trace") {
            let stages = snap.stage_names();
            assert!(stages.len() >= 6, "workers={workers}: stages {stages:?}");
            for expect in ["router.route", "serve.prefill", "cache.attach", "engine.qk_block"] {
                assert!(stages.contains(expect), "workers={workers}: missing {expect}");
            }
        } else {
            assert_eq!(snap.event_count(), 0);
        }
    }
    std::env::remove_var("PADE_THREADS");
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "snapshot fingerprints varied with worker count: {fingerprints:?}"
    );
}

proptest! {
    /// Telemetry never changes a byte at fleet scale, for any seed,
    /// policy and node count.
    #[test]
    fn tracing_never_changes_fleet_outputs(
        seed in any::<u64>(),
        n_nodes in 1usize..4,
        policy in prop_oneof![
            Just(RoutePolicy::Affinity),
            Just(RoutePolicy::RoundRobin),
            Just(RoutePolicy::LeastLoaded),
        ],
    ) {
        let arrivals = workload(seed);
        let fleet = RouterConfig::homogeneous(node_config(), n_nodes, policy);
        let untraced = route(&fleet, &arrivals, ScheduleMode::Batched);
        let (recorder, tracer) = recording_tracer();
        let traced = route_traced(&fleet, &arrivals, ScheduleMode::Batched, &tracer);
        prop_assert_eq!(untraced.summary, traced.summary);
        let untraced_bytes = output_map(&untraced);
        for completion in &traced.completions_by_id() {
            prop_assert_eq!(&completion.output_bytes(), &untraced_bytes[&completion.id]);
        }
        prop_assert!(recorder.snapshot().check_well_formed().is_ok());
    }
}
