//! Fleet-level metrics: per-node [`MetricsSummary`] digests merged into
//! one [`RouterSummary`].
//!
//! Latency percentiles cannot be merged from per-node percentiles, so
//! the merge pools the raw per-node [`LatencyStats`] samples (the
//! collectors ride along in every [`ServeReport`]) and re-digests —
//! exact aggregate percentiles, not an approximation. Cache counters
//! sum; the makespan is the slowest node's clock (nodes run
//! concurrently); load imbalance is the max/mean ratio of per-node
//! served tokens, the standard fleet-balance figure (1.0 = perfectly
//! even, `N` = one node took everything).

use pade_serve::metrics::{slo_attainment, FlightTotals, TenantSloSummary};
use pade_serve::server::ServeReport;
use pade_sim::{Cycle, Frequency, LatencyStats, LatencySummary, OpCounts, TrafficCounts};
use pade_trace::MetricsRegistry;

use crate::policy::{RouteDecision, RouteReason};

/// The digest of a finished multi-node route run.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterSummary {
    /// Nodes in the fleet.
    pub n_nodes: usize,
    /// Latency percentiles over **all** completed requests, pooled from
    /// the per-node samples (exact, not a percentile-of-percentiles).
    pub latency: LatencySummary,
    /// Query-row tokens completed fleet-wide.
    pub tokens: u64,
    /// The slowest node's makespan — the fleet's end-to-end time, since
    /// nodes step concurrently.
    pub makespan: Cycle,
    /// Fleet tokens per simulated second at the core clock.
    pub tokens_per_s: f64,
    /// Prompt tokens served from resident cache planes, summed over
    /// nodes.
    pub cache_hit_tokens: u64,
    /// Prompt tokens decomposed at admission, summed over nodes.
    pub cache_decomposed_tokens: u64,
    /// Fleet-wide fraction of attached prompt tokens served without
    /// decomposition.
    pub cache_hit_rate: f64,
    /// Cache evictions (chunks + stored sessions), summed over nodes.
    pub cache_evictions: u64,
    /// Evicted chunks demoted to spill tiers instead of dropped, summed
    /// over nodes.
    pub cache_spilled_chunks: u64,
    /// Prompt tokens re-adopted from spill tiers (no decomposition),
    /// summed over nodes — a subset of
    /// [`cache_hit_tokens`](Self::cache_hit_tokens).
    pub cache_fetched_tokens: u64,
    /// Chunk-record transfers between nodes (hot-shard replications plus
    /// load-following migrations). Zero unless the router ran with a
    /// fleet tier/drain configuration.
    pub peer_fetches: u64,
    /// Hot-shard replications performed (a shard's records copied to a
    /// second node once its route count crossed the threshold).
    pub replications: u64,
    /// Load-following migrations (a drained node's shard records moved
    /// to the node its traffic re-homed to).
    pub migrations: u64,
    /// Payload bytes moved between nodes by peer fetches.
    pub transfer_bytes: u64,
    /// Modeled interconnect cycles of those transfers (per-hop latency
    /// plus link serialization), summed. Accounting only — node clocks
    /// never include it, so outputs stay byte-identical.
    pub transfer_cycles: u64,
    /// Modeled interconnect energy of those transfers, in pJ.
    pub transfer_pj: f64,
    /// Tokens served per node, in node order — the imbalance input.
    pub node_tokens: Vec<u64>,
    /// `max(node_tokens) / mean(node_tokens)`: 1.0 is perfectly even,
    /// `n_nodes` is total skew. 0.0 for an empty run.
    pub load_imbalance: f64,
    /// Decisions placed by session affinity (returning sessions).
    pub session_affinity_routes: u64,
    /// Decisions placed by prefix-shard affinity (new sessions joining a
    /// warm node).
    pub prefix_affinity_routes: u64,
    /// Sessions descheduled at a chunk/step boundary after having run,
    /// summed over nodes.
    pub preemptions: u64,
    /// Previously-preempted sessions scheduled again, summed over nodes.
    pub resumes: u64,
    /// Per-tenant SLO attainment pooled over **all** nodes' raw
    /// registries (exact fleet percentiles, not an average of per-node
    /// lines), in tenant order; empty when no request carried an SLO.
    pub slo: Vec<TenantSloSummary>,
    /// Flight-recorder totals (queue / prefill / decode / preempted /
    /// stalled cycles over every retired request), summed over nodes.
    pub flight: FlightTotals,
    /// Engine arithmetic events summed over every node's dispatched
    /// blocks.
    pub ops: OpCounts,
    /// Engine memory traffic summed over every node's dispatched blocks.
    pub traffic: TrafficCounts,
}

/// Pools per-node reports and the decision log into a [`RouterSummary`].
///
/// # Panics
///
/// Panics if `node_reports` is empty.
#[must_use]
pub fn merge_node_reports(
    node_reports: &[ServeReport],
    decisions: &[RouteDecision],
) -> RouterSummary {
    assert!(!node_reports.is_empty(), "a fleet has at least one node");
    let mut latency = LatencyStats::new();
    let mut tokens = 0u64;
    let mut makespan = Cycle::ZERO;
    let mut hit = 0u64;
    let mut decomposed = 0u64;
    let mut evictions = 0u64;
    let mut spilled = 0u64;
    let mut fetched = 0u64;
    let mut node_tokens = Vec::with_capacity(node_reports.len());
    let mut ops = OpCounts::default();
    let mut traffic = TrafficCounts::default();
    let mut preemptions = 0u64;
    let mut resumes = 0u64;
    let mut slo_pool = MetricsRegistry::new();
    let mut flight = FlightTotals::default();
    for report in node_reports {
        latency.merge(&report.metrics.latency);
        preemptions += report.metrics.preemptions;
        resumes += report.metrics.resumes;
        slo_pool.merge(&report.metrics.slo);
        flight.merge(&report.summary.flight);
        tokens += report.summary.tokens;
        makespan = makespan.max(report.summary.makespan);
        hit += report.summary.cache_hit_tokens;
        decomposed += report.summary.cache_decomposed_tokens;
        evictions += report.summary.cache_evictions;
        spilled += report.summary.cache_spilled_chunks;
        fetched += report.summary.cache_fetched_tokens;
        node_tokens.push(report.summary.tokens);
        ops.merge(&report.summary.ops);
        traffic.merge(&report.summary.traffic);
    }
    let attached = hit + decomposed;
    let max = node_tokens.iter().copied().max().unwrap_or(0);
    let mean = tokens as f64 / node_tokens.len() as f64;
    let seconds = Frequency::default().seconds(makespan).max(f64::MIN_POSITIVE);
    RouterSummary {
        n_nodes: node_reports.len(),
        latency: latency.summary(),
        tokens,
        makespan,
        tokens_per_s: tokens as f64 / seconds,
        cache_hit_tokens: hit,
        cache_decomposed_tokens: decomposed,
        cache_hit_rate: if attached == 0 { 0.0 } else { hit as f64 / attached as f64 },
        cache_evictions: evictions,
        cache_spilled_chunks: spilled,
        cache_fetched_tokens: fetched,
        // Peer-transfer accounting lives in the router loop, not the node
        // reports; `route_traced` fills these in after the merge.
        peer_fetches: 0,
        replications: 0,
        migrations: 0,
        transfer_bytes: 0,
        transfer_cycles: 0,
        transfer_pj: 0.0,
        load_imbalance: if tokens == 0 { 0.0 } else { max as f64 / mean },
        node_tokens,
        session_affinity_routes: decisions
            .iter()
            .filter(|d| d.reason == RouteReason::SessionAffinity)
            .count() as u64,
        prefix_affinity_routes: decisions
            .iter()
            .filter(|d| d.reason == RouteReason::PrefixAffinity)
            .count() as u64,
        preemptions,
        resumes,
        slo: slo_attainment(&slo_pool),
        flight,
        ops,
        traffic,
    }
}
