//! Fig. 20 — area and power breakdown of the PADE accelerator at
//! TSMC 28 nm, 800 MHz.

use pade_energy::area::{PadeAreaModel, MODULES};
use pade_experiments::report::{banner, pct, Table};

fn main() {
    let m = PadeAreaModel::paper();
    banner(
        "Fig. 20",
        &format!(
            "PADE area ({:.2} mm²) and power ({:.0} mW) breakdown",
            m.total_area_mm2(),
            m.total_power_mw()
        ),
    );
    let mut table = Table::new(vec!["module", "area mm²", "area %", "power mW", "power %"]);
    for module in MODULES {
        table.row(vec![
            module.name().into(),
            format!("{:.3}", m.area_mm2(module)),
            pct(m.area_fraction(module)),
            format!("{:.1}", m.power_mw(module)),
            pct(m.power_fraction(module)),
        ]);
    }
    println!("{}", table.render());
    let (fusion_area, fusion_power) = m.fusion_overhead();
    println!("Stage-fusion overhead: scoreboard + decision unit = {} area;", pct(fusion_area));
    println!("BUI generator + BUI-GF modules = {} power (paper: 5.8% / 12.1%).", pct(fusion_power));
    println!("Peak energy efficiency: {:.2} TOPS/W (paper: 11.36 TOPS/W).", m.peak_tops_per_watt());
}
