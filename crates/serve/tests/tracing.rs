//! Observability invariants of the serving loop:
//!
//! 1. **Telemetry is a pure side channel** — `serve_traced` with a
//!    recorder attached, with a disabled tracer, or compiled without the
//!    `trace` feature produces byte-identical completions and an
//!    identical metrics summary; spot-checked against the solo seed
//!    oracle (`run_qk_block_reference`).
//! 2. **Span streams are well-formed and deterministic** — strictly
//!    nested begin/end pairs with monotone per-track clocks, and the
//!    snapshot fingerprint is identical at any `PADE_THREADS` (tracks
//!    are keyed by logical dispatch index, never worker identity).
//! 3. **The on-disk stream is lossless** — teeing the same run into a
//!    bounded-memory `StreamSink` and reading the file back reconstructs
//!    a snapshot whose fingerprint equals the in-memory recorder's, and
//!    the flight timelines assembled from its link events match the
//!    node's native cycle accounting request for request.

use std::sync::Arc;

use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, serve_traced, Completion, ServeConfig, ServeReport};
use pade_serve::{output_bytes, reference_outputs};
use pade_trace::flight::{assemble_timelines, check_linked};
use pade_trace::{read_stream, Recorder, StreamSink, TraceSink, Tracer};
use pade_workload::prompt::{generate_shared_prefix_arrivals, SharedPrefixConfig};
use proptest::prelude::*;

/// Fans one event stream into both the in-memory recorder and the
/// on-disk stream sink, so one run feeds both parity sides.
struct Tee(Arc<Recorder>, Arc<StreamSink>);

impl TraceSink for Tee {
    fn submit(&self, track: u64, events: &[pade_trace::TraceEvent]) {
        self.0.submit(track, events);
        self.1.submit(track, events);
    }
}

/// A small shared-prefix / multi-turn workload whose requests carry
/// prompt token-id sequences, so the cache and quant layers emit too.
fn prompt_workload(seed: u64) -> SharedPrefixConfig {
    SharedPrefixConfig {
        n_sessions: 3,
        turns_per_session: 2,
        shared_prefix_tokens: 40,
        unique_suffix_tokens: 12,
        turn_suffix_tokens: 12,
        decode_steps: 2,
        prefill_rows: 6,
        mean_interarrival_cycles: 2_000.0,
        turn_gap_cycles: 50_000,
        head_dim: 64,
        seed,
        ..SharedPrefixConfig::small_demo()
    }
}

fn by_id(report: &ServeReport) -> Vec<&Completion> {
    let mut v: Vec<&Completion> = report.completions.iter().collect();
    v.sort_by_key(|c| c.id);
    v
}

fn recording_tracer() -> (Arc<Recorder>, Tracer) {
    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn TraceSink>);
    (recorder, tracer)
}

/// Sweeps explicit worker counts via `PADE_THREADS`. All env twiddling
/// in this binary lives in this one test; the proptest below is
/// thread-count-agnostic (that is the very property this file proves),
/// so concurrent execution never observes a half-set variable.
#[test]
fn traced_serve_is_identical_and_fingerprint_stable_across_worker_counts() {
    let arrivals = generate_shared_prefix_arrivals(&prompt_workload(2026));
    let config = ServeConfig::standard();
    let baseline = serve(&config, &arrivals, ScheduleMode::Batched);
    let baseline_by_id = by_id(&baseline);

    // Tiny frames force many flushes, so the bounded-memory assertion
    // below actually exercises the frame boundary path.
    const FRAME: usize = 1024;
    let mut fingerprints = Vec::new();
    for workers in ["1", "2", "4"] {
        std::env::set_var("PADE_THREADS", workers);
        let stream_path = std::env::temp_dir()
            .join(format!("pade-serve-tracing-{}-{workers}.padetrace", std::process::id()));
        let recorder = Arc::new(Recorder::new());
        let stream = Arc::new(StreamSink::with_frame_size(&stream_path, FRAME).unwrap());
        let tracer = Tracer::new(
            Arc::new(Tee(Arc::clone(&recorder), Arc::clone(&stream))) as Arc<dyn TraceSink>
        );
        let report = serve_traced(&config, &arrivals, ScheduleMode::Batched, &tracer, 0);
        assert_eq!(report.summary, baseline.summary, "workers={workers}");
        for (traced, untraced) in by_id(&report).iter().zip(&baseline_by_id) {
            assert_eq!(traced.id, untraced.id);
            assert!(
                traced.output_bytes() == untraced.output_bytes(),
                "workers={workers}: tracing changed request {} output bytes",
                traced.id
            );
        }
        let snap = recorder.snapshot();
        snap.check_well_formed().unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        fingerprints.push(snap.fingerprint());

        // Stream parity: the file round-trips to the recorder's exact
        // fingerprint, with resident memory bounded by the frame size.
        stream.finish().unwrap_or_else(|e| panic!("workers={workers}: stream write: {e}"));
        assert!(
            stream.peak_buffered_bytes() <= FRAME,
            "workers={workers}: stream buffered {} bytes over the {FRAME}-byte frame",
            stream.peak_buffered_bytes()
        );
        let streamed = read_stream(&stream_path)
            .unwrap_or_else(|e| panic!("workers={workers}: stream read: {e}"));
        std::fs::remove_file(&stream_path).ok();
        streamed.check_well_formed().unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        assert_eq!(
            streamed.fingerprint(),
            snap.fingerprint(),
            "workers={workers}: streamed snapshot diverged from the recorder"
        );

        if cfg!(feature = "trace") {
            let stages = snap.stage_names();
            assert!(stages.len() >= 6, "workers={workers}: stages {stages:?}");
            for expect in ["serve.prefill", "serve.decode", "cache.attach", "engine.qk_block"] {
                assert!(stages.contains(expect), "workers={workers}: missing {expect}");
            }
            // Flight parity: timelines assembled from the *streamed* link
            // events must reproduce the node's native cycle accounting.
            let timelines = assemble_timelines(&streamed);
            check_linked(&timelines).unwrap_or_else(|e| panic!("workers={workers}: {e}"));
            let flight = report.summary.flight;
            assert_eq!(timelines.len() as u64, flight.requests, "workers={workers}");
            let sums = timelines.iter().fold([0u64; 5], |mut acc, t| {
                acc[0] += t.queue_cycles;
                acc[1] += t.prefill_cycles;
                acc[2] += t.decode_cycles;
                acc[3] += t.preempted_cycles;
                acc[4] += t.stalled_cycles;
                acc
            });
            assert_eq!(
                sums,
                [
                    flight.queue_cycles,
                    flight.prefill_cycles,
                    flight.decode_cycles,
                    flight.preempted_cycles,
                    flight.stalled_cycles
                ],
                "workers={workers}: assembled flight sums diverged from native accounting"
            );
        } else {
            assert_eq!(snap.event_count(), 0);
        }
    }
    std::env::remove_var("PADE_THREADS");
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "snapshot fingerprints varied with worker count: {fingerprints:?}"
    );
}

proptest! {
    /// Telemetry on, off, or compiled out never changes a byte: the
    /// traced run equals the untraced run request for request (and the
    /// first request equals the solo seed oracle).
    #[test]
    fn tracing_never_changes_serve_outputs(seed in any::<u64>()) {
        let arrivals = generate_shared_prefix_arrivals(&prompt_workload(seed));
        let config = ServeConfig::standard();
        let untraced = serve(&config, &arrivals, ScheduleMode::Batched);
        let (recorder, tracer) = recording_tracer();
        let traced = serve_traced(&config, &arrivals, ScheduleMode::Batched, &tracer, 0);
        prop_assert_eq!(untraced.completion_order(), traced.completion_order());
        prop_assert_eq!(untraced.summary, traced.summary);
        for (a, b) in by_id(&untraced).iter().zip(by_id(&traced)) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.output_bytes(), b.output_bytes());
        }
        let first = by_id(&traced)[0];
        let oracle = reference_outputs(&arrivals[first.id], &config.engine);
        prop_assert_eq!(first.output_bytes(), output_bytes(&oracle));
        prop_assert!(recorder.snapshot().check_well_formed().is_ok());
    }
}
