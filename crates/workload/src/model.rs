//! Model zoo: architectural parameters of the paper's seven benchmark
//! models (§VI-A).

/// Attention flavor of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttentionKind {
    /// Multi-head attention: one KV head per query head.
    Mha,
    /// Grouped-query attention: several query heads share a KV head.
    Gqa,
}

/// Application domain of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Autoregressive language model.
    Language,
    /// Vision transformer.
    Vision,
}

/// Architectural parameters of one benchmark model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Model name as reported in the paper's tables.
    pub name: &'static str,
    /// Number of transformer layers.
    pub layers: usize,
    /// Number of query heads.
    pub heads: usize,
    /// Number of key/value heads (`== heads` for MHA).
    pub kv_heads: usize,
    /// Per-head hidden dimension.
    pub head_dim: usize,
    /// Attention flavor.
    pub attention: AttentionKind,
    /// Application domain.
    pub domain: Domain,
}

impl ModelConfig {
    /// Query heads per KV head (1 for MHA, >1 for GQA).
    #[must_use]
    pub fn group_size(&self) -> usize {
        self.heads / self.kv_heads.max(1)
    }

    /// Nominal dense attention MACs for one layer at sequence length `s`
    /// (QKᵀ plus PV): `2 · heads · s² · head_dim`.
    #[must_use]
    pub fn dense_macs_per_layer(&self, s: usize) -> u64 {
        2 * self.heads as u64 * (s as u64) * (s as u64) * self.head_dim as u64
    }
}

/// Llama-2-7B: 32 layers × 32 MHA heads × 128 dims.
#[must_use]
pub fn llama2_7b() -> ModelConfig {
    ModelConfig {
        name: "Llama2-7B",
        layers: 32,
        heads: 32,
        kv_heads: 32,
        head_dim: 128,
        attention: AttentionKind::Mha,
        domain: Domain::Language,
    }
}

/// Llama-3-8B: 32 layers × 32 query heads sharing 8 KV heads (GQA) × 128.
#[must_use]
pub fn llama3_8b() -> ModelConfig {
    ModelConfig {
        name: "Llama3-8B",
        layers: 32,
        heads: 32,
        kv_heads: 8,
        head_dim: 128,
        attention: AttentionKind::Gqa,
        domain: Domain::Language,
    }
}

/// OPT-1.3B: 24 layers × 32 MHA heads × 64 dims.
#[must_use]
pub fn opt_1b3() -> ModelConfig {
    ModelConfig {
        name: "OPT1B3",
        layers: 24,
        heads: 32,
        kv_heads: 32,
        head_dim: 64,
        attention: AttentionKind::Mha,
        domain: Domain::Language,
    }
}

/// Bloom-1B7: 24 layers × 16 MHA heads × 128 dims.
#[must_use]
pub fn bloom_1b7() -> ModelConfig {
    ModelConfig {
        name: "Bloom1B7",
        layers: 24,
        heads: 16,
        kv_heads: 16,
        head_dim: 128,
        attention: AttentionKind::Mha,
        domain: Domain::Language,
    }
}

/// Qwen-7B: 32 layers × 32 MHA heads × 128 dims.
#[must_use]
pub fn qwen_7b() -> ModelConfig {
    ModelConfig {
        name: "Qwen7B",
        layers: 32,
        heads: 32,
        kv_heads: 32,
        head_dim: 128,
        attention: AttentionKind::Mha,
        domain: Domain::Language,
    }
}

/// ViT-L/16: 24 layers × 16 MHA heads × 64 dims, S = 576 patches.
#[must_use]
pub fn vit_l16() -> ModelConfig {
    ModelConfig {
        name: "ViT-L/16",
        layers: 24,
        heads: 16,
        kv_heads: 16,
        head_dim: 64,
        attention: AttentionKind::Mha,
        domain: Domain::Vision,
    }
}

/// PVT (pyramid vision transformer): long early-stage sequences (~3k).
#[must_use]
pub fn pvt() -> ModelConfig {
    ModelConfig {
        name: "PVT",
        layers: 16,
        heads: 8,
        kv_heads: 8,
        head_dim: 64,
        attention: AttentionKind::Mha,
        domain: Domain::Vision,
    }
}

/// All seven benchmark models in the paper's reporting order.
#[must_use]
pub fn zoo() -> Vec<ModelConfig> {
    vec![llama2_7b(), llama3_8b(), opt_1b3(), bloom_1b7(), qwen_7b(), vit_l16(), pvt()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_seven_models_with_unique_names() {
        let z = zoo();
        assert_eq!(z.len(), 7);
        let mut names: Vec<_> = z.iter().map(|m| m.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn llama3_is_the_only_gqa_model() {
        for m in zoo() {
            if m.name == "Llama3-8B" {
                assert_eq!(m.attention, AttentionKind::Gqa);
                assert_eq!(m.group_size(), 4);
            } else {
                assert_eq!(m.attention, AttentionKind::Mha);
                assert_eq!(m.group_size(), 1);
            }
        }
    }

    #[test]
    fn dense_macs_scale_quadratically_in_seq() {
        let m = llama2_7b();
        let a = m.dense_macs_per_layer(1024);
        let b = m.dense_macs_per_layer(2048);
        assert_eq!(b, a * 4);
    }

    #[test]
    fn vision_models_are_marked() {
        assert_eq!(vit_l16().domain, Domain::Vision);
        assert_eq!(pvt().domain, Domain::Vision);
        assert_eq!(llama2_7b().domain, Domain::Language);
    }
}
