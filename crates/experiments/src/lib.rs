//! Experiment harness regenerating every table and figure of the PADE
//! evaluation (§VI).
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §4 for
//! the full index); this library holds the shared machinery:
//!
//! * [`runner`] — builds (model, task) workloads, runs PADE / baselines /
//!   the GPU roofline on them, and extrapolates block-level simulation to
//!   full-model statistics,
//! * [`report`] — aligned text tables and normalization helpers matching
//!   the paper's presentation.
//!
//! Absolute numbers come from this repository's simulators and substitutes
//! (see DESIGN.md §1); EXPERIMENTS.md records paper-vs-measured values and
//! which shapes are preserved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runner;
