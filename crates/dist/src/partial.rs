//! Mergeable partial attention states.
//!
//! One chip's shard produces `(m, l, O)` — the running maximum, softmax
//! denominator and unnormalized output of the online-softmax recurrence
//! (the same state ISTA streams tile by tile). Two states over disjoint
//! key sets merge exactly:
//!
//! ```text
//! m  = max(m₁, m₂)
//! l  = e^{m₁−m}·l₁ + e^{m₂−m}·l₂
//! O  = e^{m₁−m}·O₁ + e^{m₂−m}·O₂
//! ```
//!
//! The operation is associative and commutative (up to fp rounding), so
//! any reduction tree over the fabric computes the same attention output
//! a single chip would.

/// One shard's `(m, l, O)` state for a single query row.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialAttention {
    m: f32,
    l: f32,
    acc: Vec<f32>,
}

impl PartialAttention {
    /// The neutral state (no keys absorbed) producing a `dims`-wide output.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        Self { m: f32::NEG_INFINITY, l: 0.0, acc: vec![0.0; dims] }
    }

    /// Builds a state from raw logits and their value rows.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != values.len()` or any value row's length
    /// differs from `dims`.
    #[must_use]
    pub fn from_scores(dims: usize, scores: &[f32], values: &[&[f32]]) -> Self {
        assert_eq!(scores.len(), values.len(), "one value row per score");
        let mut state = Self::new(dims);
        if scores.is_empty() {
            return state;
        }
        state.m = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        for (&s, v) in scores.iter().zip(values) {
            assert_eq!(v.len(), dims, "value row dimensionality mismatch");
            let p = (s - state.m).exp();
            state.l += p;
            for (a, &x) in state.acc.iter_mut().zip(*v) {
                *a += p * x;
            }
        }
        state
    }

    /// Output dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.acc.len()
    }

    /// The running maximum `m` (−∞ when empty).
    #[must_use]
    pub fn running_max(&self) -> f32 {
        self.m
    }

    /// The softmax denominator `l`.
    #[must_use]
    pub fn denom(&self) -> f32 {
        self.l
    }

    /// Absorbs `other` (a state over a disjoint key set).
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.dims(), other.dims(), "cannot merge states of different width");
        if other.l == 0.0 {
            return;
        }
        if self.l == 0.0 {
            self.m = other.m;
            self.l = other.l;
            self.acc.copy_from_slice(&other.acc);
            return;
        }
        let m = self.m.max(other.m);
        let c_self = (self.m - m).exp();
        let c_other = (other.m - m).exp();
        self.l = c_self * self.l + c_other * other.l;
        for (a, &b) in self.acc.iter_mut().zip(&other.acc) {
            *a = c_self * *a + c_other * b;
        }
        self.m = m;
    }

    /// The normalized attention output `O / l` (zeros when empty).
    #[must_use]
    pub fn finalize(&self) -> Vec<f32> {
        if self.l == 0.0 {
            return self.acc.clone();
        }
        self.acc.iter().map(|&a| a / self.l).collect()
    }
}

/// Left-to-right reduction of shard states — the per-row payload of one
/// fabric reduction pass.
///
/// # Panics
///
/// Panics if any state's width differs from `dims`.
#[must_use]
pub fn reduce_states(dims: usize, states: &[PartialAttention]) -> PartialAttention {
    let mut acc = PartialAttention::new(dims);
    for s in states {
        acc.merge(s);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn softmax_reference(scores: &[f32], values: &[Vec<f32>], dims: usize) -> Vec<f32> {
        let m = scores.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let w: Vec<f32> = scores.iter().map(|&s| (s - m).exp()).collect();
        let z: f32 = w.iter().sum();
        let mut out = vec![0.0f32; dims];
        for (wi, v) in w.iter().zip(values) {
            for (o, &x) in out.iter_mut().zip(v) {
                *o += wi / z * x;
            }
        }
        out
    }

    #[test]
    fn empty_state_finalizes_to_zeros() {
        assert_eq!(PartialAttention::new(3).finalize(), vec![0.0; 3]);
    }

    #[test]
    fn merging_with_empty_is_identity() {
        let s = PartialAttention::from_scores(2, &[0.5, -1.0], &[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut merged = s.clone();
        merged.merge(&PartialAttention::new(2));
        assert_eq!(merged, s);
        let mut from_empty = PartialAttention::new(2);
        from_empty.merge(&s);
        assert_eq!(from_empty.finalize(), s.finalize());
    }

    proptest! {
        #[test]
        fn prop_sharded_merge_matches_batch_softmax(
            scores in proptest::collection::vec(-8.0f32..8.0, 1..40),
            dims in 1usize..6,
            cut in 0usize..40,
            seed in any::<u64>(),
        ) {
            let cut = cut.min(scores.len());
            let values: Vec<Vec<f32>> = (0..scores.len())
                .map(|i| (0..dims)
                    .map(|j| {
                        let h = seed.wrapping_mul(6364136223846793005)
                            .wrapping_add(((i * dims + j) as u64).wrapping_mul(1442695040888963407));
                        ((h >> 33) as f32 / (1u64 << 31) as f32) - 1.0
                    })
                    .collect())
                .collect();
            let refs: Vec<&[f32]> = values.iter().map(Vec::as_slice).collect();
            let left = PartialAttention::from_scores(dims, &scores[..cut], &refs[..cut]);
            let right = PartialAttention::from_scores(dims, &scores[cut..], &refs[cut..]);
            let merged = reduce_states(dims, &[left, right]).finalize();
            let expect = softmax_reference(&scores, &values, dims);
            for (a, b) in merged.iter().zip(&expect) {
                prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
            }
        }

        #[test]
        fn prop_reduction_order_is_immaterial(
            scores in proptest::collection::vec(-6.0f32..6.0, 3..30),
            parts in 2usize..5,
        ) {
            let dims = 4usize;
            let values: Vec<Vec<f32>> = (0..scores.len())
                .map(|i| (0..dims).map(|j| ((i * 7 + j * 3) % 11) as f32 * 0.2 - 1.0).collect())
                .collect();
            let refs: Vec<&[f32]> = values.iter().map(Vec::as_slice).collect();
            let chunk = scores.len().div_ceil(parts);
            let states: Vec<PartialAttention> = scores
                .chunks(chunk)
                .zip(refs.chunks(chunk))
                .map(|(s, v)| PartialAttention::from_scores(dims, s, v))
                .collect();
            let forward = reduce_states(dims, &states).finalize();
            let mut reversed: Vec<PartialAttention> = states.clone();
            reversed.reverse();
            let backward = reduce_states(dims, &reversed).finalize();
            for (a, b) in forward.iter().zip(&backward) {
                prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
            }
        }
    }
}
