//! Criterion benchmarks over the simulator's own kernels: bit-plane
//! decomposition, bidirectional-sparsity dot products, guard filtering,
//! ISTA softmax, RARS scheduling and the HBM model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pade_core::bitserial::{plane_contribution, q_sum};
use pade_core::bui::Bui;
use pade_core::filter::{Decision, GuardFilter};
use pade_core::ista::{run_ista, TileOrder};
use pade_core::rars::{naive_schedule, rars_schedule};
use pade_core::vpu::Vpu;
use pade_linalg::MatF32;
use pade_mem::{HbmConfig, HbmModel, KeyLayout};
use pade_quant::{BitPlaneMatrix, TokenPlanes};
use pade_sim::Cycle;

fn keys(n: usize, h: usize) -> Vec<i8> {
    (0..n * h).map(|i| ((i.wrapping_mul(2654435761)) >> 13) as u8 as i8).collect()
}

fn bench_bitplane(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitplane");
    g.sample_size(20);
    for h in [64usize, 128] {
        let data = keys(256, h);
        g.bench_with_input(BenchmarkId::new("decompose_256_tokens", h), &h, |b, &h| {
            b.iter(|| BitPlaneMatrix::from_rows(&data, h, 8).unwrap())
        });
    }
    let row = keys(1, 64);
    g.bench_function("token_roundtrip_64", |b| {
        b.iter(|| TokenPlanes::from_values(&row, 8).reconstruct())
    });
    g.finish();
}

fn bench_bitserial(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitserial_dot");
    g.sample_size(30);
    let q: Vec<i8> = keys(1, 64);
    let k = TokenPlanes::from_values(&keys(1, 64), 8);
    let qs = q_sum(&q);
    g.bench_function("plane_contribution_bs", |b| {
        b.iter(|| {
            (0..8u32).map(|r| plane_contribution(&q, k.plane(r), r, 8, qs, true).value).sum::<i64>()
        })
    });
    g.bench_function("bui_filter_round", |b| {
        let bui = Bui::new(&q, 8);
        b.iter(|| {
            let mut f = GuardFilter::new(5.0, 0.001, 8);
            let mut pruned = 0u32;
            for j in 0..64i64 {
                f.observe_lower_bound(bui.lower_bound(j * 100, 2));
                if f.decide(bui.upper_bound(j * 100, 2), 2) == Decision::Prune {
                    pruned += 1;
                }
            }
            pruned
        })
    });
    g.finish();
}

fn bench_ista(c: &mut Criterion) {
    let mut g = c.benchmark_group("ista_softmax");
    g.sample_size(20);
    let v = MatF32::from_fn(512, 64, |i, j| ((i * 7 + j) % 13) as f32 * 0.1);
    let retained: Vec<(usize, f32)> = (0..512).map(|j| (j, (j % 29) as f32 * 0.3)).collect();
    for order in [TileOrder::LeftToRight, TileOrder::HeadTail] {
        g.bench_with_input(
            BenchmarkId::new("tiled_512_keys", format!("{order:?}")),
            &order,
            |b, &order| b.iter(|| run_ista(&retained, &v, 16, order, &Vpu::default())),
        );
    }
    g.finish();
}

fn bench_rars(c: &mut Criterion) {
    let mut g = c.benchmark_group("rars_schedule");
    g.sample_size(20);
    let rows: Vec<Vec<usize>> =
        (0..8).map(|r| (0..48).map(|i| (i * 3 + r * 5) % 96).collect()).collect();
    g.bench_function("naive_8x48", |b| b.iter(|| naive_schedule(&rows, 2)));
    g.bench_function("greedy_8x48", |b| b.iter(|| rars_schedule(&rows, 2, 16)));
    g.finish();
}

fn bench_hbm(c: &mut Criterion) {
    let mut g = c.benchmark_group("hbm_model");
    g.sample_size(20);
    for layout in [KeyLayout::BitPlaneInterleaved, KeyLayout::BitPlaneLinear] {
        g.bench_with_input(
            BenchmarkId::new("plane_stream_4k", layout.name()),
            &layout,
            |b, &layout| {
                b.iter(|| {
                    let cfg = HbmConfig::default();
                    let mut hbm = HbmModel::new(cfg);
                    let mut t = Cycle::ZERO;
                    for token in 0..512 {
                        for plane in 0..8 {
                            let f = layout.plane_fetch(token, plane, 64, 8, &cfg);
                            t = hbm.access(f.loc, f.bytes, t).complete;
                        }
                    }
                    t
                })
            },
        );
    }
    g.finish();
}

/// The optimized engine vs the seed reference on one block — the
/// micro-scale view of what `pade-bench` measures end to end.
fn bench_engine_paths(c: &mut Criterion) {
    use pade_core::config::PadeConfig;
    use pade_core::engine::{run_qk_block, run_qk_block_reference};
    use pade_workload::trace::{AttentionTrace, TraceConfig};

    let mut g = c.benchmark_group("engine_paths");
    g.sample_size(10);
    let t = AttentionTrace::generate(&TraceConfig { seq_len: 512, ..TraceConfig::small_demo() });
    let config = PadeConfig::standard();
    let keys =
        BitPlaneMatrix::from_rows(t.keys().as_slice(), t.keys().cols(), config.bits).unwrap();
    let queries: Vec<&[i8]> = (0..t.queries().rows()).map(|i| t.queries().row(i)).collect();
    g.bench_function("reference_s512", |b| {
        b.iter(|| run_qk_block_reference(&config, &queries, &keys, t.logit_scale()))
    });
    g.bench_function("optimized_s512", |b| {
        b.iter(|| run_qk_block(&config, &queries, &keys, t.logit_scale()))
    });
    g.finish();
}

/// LUT-based plane dot products vs the per-bit oracle.
fn bench_qrow_lut(c: &mut Criterion) {
    use pade_core::bitserial::{plane_contribution_lut, QRowLut};

    let mut g = c.benchmark_group("qrow_lut");
    g.sample_size(30);
    let q: Vec<i8> = keys(1, 128);
    let k = TokenPlanes::from_values(&keys(1, 128), 8);
    let qs = q_sum(&q);
    g.bench_function("oracle_plane_sum_128", |b| {
        b.iter(|| {
            (0..8u32).map(|r| plane_contribution(&q, k.plane(r), r, 8, qs, true).value).sum::<i64>()
        })
    });
    g.bench_function("lut_build_128", |b| b.iter(|| QRowLut::new(&q)));
    let lut = QRowLut::new(&q);
    g.bench_function("lut_plane_sum_128", |b| {
        b.iter(|| {
            (0..8u32)
                .map(|r| plane_contribution_lut(&lut, k.plane(r), r, 8, true).value)
                .sum::<i64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bitplane,
    bench_bitserial,
    bench_ista,
    bench_rars,
    bench_hbm,
    bench_engine_paths,
    bench_qrow_lut
);
criterion_main!(benches);
