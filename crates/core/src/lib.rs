//! PADE: a predictor-free sparse attention accelerator via unified
//! execution and stage fusion (HPCA 2026) — core algorithms and
//! cycle-level model.
//!
//! Dynamic-sparsity attention accelerators traditionally run a separate
//! low-precision *predictor* over the full key tensor to decide which
//! query–key pairs the executor should compute. PADE deletes that stage:
//! keys are streamed **one bit plane at a time** (MSB first), and after
//! every plane a provably safe interval test decides whether the key can
//! still matter. The modules here implement each mechanism of the paper:
//!
//! | Paper §  | Mechanism | Module |
//! |----------|-----------|--------|
//! | §IV-A | Bit-wise uncertainty interval (BUI) | [`bui`] |
//! | §IV-A | BUI-enabled guarded filtering (BUI-GF) | [`filter`] |
//! | §IV-B | Bidirectional sparsity (BS) | [`bitserial`] |
//! | §V-D  | Grouped sparsity ANDer tree (GSAT) | [`gsat`] |
//! | §V-C  | Scoreboard-based result-reusable PE lane | [`scoreboard`] |
//! | §IV-B/§V | Bit-wise out-of-order execution (OOE) | [`engine`] |
//! | §IV-C | Interleaved sparsity-tiled attention (ISTA) | [`ista`] |
//! | §V-E  | Reuse-aware reorder scheduling (RARS) | [`rars`] |
//! | §V-A  | V-PU (systolic + APM) | [`vpu`] |
//! | Table III | Full accelerator assembly | [`accelerator`] |
//! | §VII (future work) | Multi-bit (digit-serial) stage fusion | [`multibit`] |
//! | §V-B / Fig. 26(b) | Autoregressive decode sessions | [`decode`] |
//!
//! # Quickstart
//!
//! ```
//! use pade_core::accelerator::PadeAccelerator;
//! use pade_core::config::PadeConfig;
//! use pade_workload::trace::{AttentionTrace, TraceConfig};
//!
//! let trace = AttentionTrace::generate(&TraceConfig::small_demo());
//! let pade = PadeAccelerator::new(PadeConfig::standard());
//! let result = pade.run_trace(&trace);
//! // PADE prunes most keys yet keeps essentially all the softmax mass.
//! assert!(result.stats.sparsity() > 0.3);
//! assert!(result.fidelity > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod bitserial;
pub mod bui;
pub mod config;
pub mod decode;
pub mod engine;
pub mod filter;
pub mod gsat;
pub mod ista;
pub mod multibit;
pub mod rars;
pub mod scoreboard;
pub mod vpu;
