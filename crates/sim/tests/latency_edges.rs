//! Edge-case pins for the serving-side statistics: nearest-rank
//! percentiles at n=0/n=1/n=2 and exact ranks at n=100, and the
//! time-weighted gauge over zero-duration windows. These are the numbers
//! SLO tables are written against, so each is pinned exactly rather than
//! approximately.

use pade_sim::{Cycle, LatencyStats, LatencySummary, TimeWeightedGauge};

#[test]
fn empty_collector_is_all_zero() {
    let lat = LatencyStats::new();
    assert!(lat.is_empty());
    assert_eq!(lat.len(), 0);
    for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
        assert_eq!(lat.percentile(p), Cycle::ZERO, "p{p}");
    }
    assert_eq!(lat.mean(), 0.0);
    assert_eq!(lat.max(), Cycle::ZERO);
    assert_eq!(lat.summary(), LatencySummary::empty());
    assert_eq!(lat.summary().count, 0);
}

#[test]
fn single_sample_is_every_percentile() {
    let mut lat = LatencyStats::new();
    lat.record(Cycle(7));
    for p in [0.0, 1.0, 50.0, 95.0, 99.0, 100.0] {
        assert_eq!(lat.percentile(p), Cycle(7), "p{p}");
    }
    let s = lat.summary();
    assert_eq!((s.count, s.p50, s.p95, s.p99, s.max), (1, Cycle(7), Cycle(7), Cycle(7), Cycle(7)));
    assert!((s.mean - 7.0).abs() < 1e-12);
}

#[test]
fn two_samples_split_at_the_median_rank() {
    let mut lat = LatencyStats::new();
    lat.record(Cycle(30));
    lat.record(Cycle(10));
    // Nearest rank: ⌈p/100 · 2⌉ → p50 hits the first sorted sample, p51+
    // the second; p0 clamps to rank 1.
    assert_eq!(lat.percentile(0.0), Cycle(10));
    assert_eq!(lat.percentile(50.0), Cycle(10));
    assert_eq!(lat.percentile(51.0), Cycle(30));
    assert_eq!(lat.percentile(95.0), Cycle(30));
    assert_eq!(lat.percentile(99.0), Cycle(30));
    assert_eq!(lat.percentile(100.0), Cycle(30));
    let s = lat.summary();
    assert_eq!((s.p50, s.p95, s.p99), (Cycle(10), Cycle(30), Cycle(30)));
    assert!((s.mean - 20.0).abs() < 1e-12);
}

#[test]
fn hundred_samples_pin_exact_ranks() {
    let mut lat = LatencyStats::new();
    // Insert in reverse so percentile sorting is actually exercised.
    for c in (1..=100u64).rev() {
        lat.record(Cycle(c));
    }
    assert_eq!(lat.percentile(1.0), Cycle(1));
    assert_eq!(lat.percentile(50.0), Cycle(50));
    assert_eq!(lat.percentile(95.0), Cycle(95));
    assert_eq!(lat.percentile(99.0), Cycle(99));
    assert_eq!(lat.percentile(99.1), Cycle(100));
    assert_eq!(lat.percentile(100.0), Cycle(100));
    // Fractional ranks round *up* (smallest value covering p% of mass).
    assert_eq!(lat.percentile(0.5), Cycle(1));
    assert_eq!(lat.percentile(50.5), Cycle(51));
}

#[test]
fn summary_and_percentile_agree_after_merge() {
    let mut a = LatencyStats::new();
    let mut b = LatencyStats::new();
    for c in 1..=50u64 {
        a.record(Cycle(c));
    }
    for c in 51..=100u64 {
        b.record(Cycle(c));
    }
    a.merge(&b);
    let s = a.summary();
    assert_eq!(s.count, 100);
    assert_eq!(s.p50, a.percentile(50.0));
    assert_eq!(s.p95, a.percentile(95.0));
    assert_eq!(s.p99, a.percentile(99.0));
    assert_eq!(s.max, Cycle(100));
}

#[test]
fn gauge_zero_duration_window_is_zero_mean() {
    // A gauge set and read at the same instant spans no time: the mean is
    // defined as 0, not NaN or the last value.
    let mut g = TimeWeightedGauge::new();
    g.set(Cycle(5), 3.0);
    assert_eq!(g.mean(Cycle(5)), 0.0);
    assert_eq!(g.max(), 3.0);
}

#[test]
fn gauge_same_cycle_reset_contributes_nothing() {
    // Two sets at the same cycle: the first value holds for zero cycles,
    // so only the second shapes the integral; max still sees both.
    let mut g = TimeWeightedGauge::new();
    g.set(Cycle(0), 100.0);
    g.set(Cycle(0), 2.0);
    assert!((g.mean(Cycle(10)) - 2.0).abs() < 1e-12);
    assert_eq!(g.max(), 100.0);
}

#[test]
fn gauge_trailing_zero_width_tail_is_free() {
    let mut g = TimeWeightedGauge::new();
    g.set(Cycle(0), 4.0);
    g.set(Cycle(10), 0.0);
    // Reading exactly at the last observation adds a zero-width tail.
    assert!((g.mean(Cycle(10)) - 4.0).abs() < 1e-12);
    // And a later read integrates the (zero) tail value over the gap.
    assert!((g.mean(Cycle(40)) - 1.0).abs() < 1e-12);
}

#[test]
fn gauge_never_observed_reads_zero_everywhere() {
    let g = TimeWeightedGauge::new();
    assert_eq!(g.mean(Cycle(0)), 0.0);
    assert_eq!(g.mean(Cycle(1_000_000)), 0.0);
    assert_eq!(g.max(), 0.0);
}
