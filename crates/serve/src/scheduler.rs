//! Iteration-level batch forming: FCFS with an engine-slot and
//! max-batch-tokens cap.
//!
//! The scheduler is deliberately minimal and deterministic. Active
//! sessions are kept in admission (FCFS) order; each iteration every
//! session may contribute at most **one** block — the iteration-level
//! scheduling of continuous-batching servers, which is what lets a short
//! decode request make progress between the chunks of a long prefill
//! instead of queueing behind all of it. Selection walks the FCFS order
//! and stops at the first session that would exceed either cap, so there
//! is no head-of-line bypass and the formed batch is a pure function of
//! the queue state.

use crate::session::Session;

/// How the server schedules work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Continuous batching: up to `engine_slots` blocks from distinct
    /// sessions per iteration, FCFS, capped by `max_batch_tokens`.
    Batched,
    /// One-request-at-a-time baseline: the head-of-queue session runs a
    /// single block per iteration; later requests wait for it to finish.
    Solo,
}

impl ScheduleMode {
    /// Stable label for reports and JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ScheduleMode::Batched => "batched",
            ScheduleMode::Solo => "solo",
        }
    }
}

/// Scheduling limits of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerLimits {
    /// Engine instances stepping in lockstep — the per-iteration block cap.
    pub engine_slots: usize,
    /// Cap on summed query-row tokens per iteration. The head block is
    /// always admitted even if it alone exceeds the cap (a server must
    /// never deadlock on an oversized request).
    pub max_batch_tokens: usize,
}

/// Picks the sessions (by index into `active`, which must be FCFS-ordered
/// and contain no finished sessions) whose next blocks form this
/// iteration's batch.
///
/// Returns an empty vector only when `active` is empty.
#[must_use]
pub fn form_batch(active: &[Session], mode: ScheduleMode, limits: &SchedulerLimits) -> Vec<usize> {
    debug_assert!(active.iter().all(|s| !s.is_finished()));
    match mode {
        ScheduleMode::Solo => {
            if active.is_empty() {
                Vec::new()
            } else {
                vec![0]
            }
        }
        ScheduleMode::Batched => {
            let slots = limits.engine_slots.max(1);
            let mut chosen = Vec::new();
            let mut tokens = 0usize;
            for (i, session) in active.iter().enumerate() {
                if chosen.len() >= slots {
                    break;
                }
                let cost = session.next_block_tokens();
                if !chosen.is_empty() && tokens + cost > limits.max_batch_tokens {
                    break; // strict FCFS: no bypass past a blocked head
                }
                chosen.push(i);
                tokens += cost;
            }
            chosen
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_core::config::PadeConfig;
    use pade_sim::Cycle;
    use pade_workload::trace::{generate_arrivals, ArrivalConfig};

    fn sessions(n: usize) -> Vec<Session> {
        let config = PadeConfig::standard();
        generate_arrivals(&ArrivalConfig { n_requests: n, ..ArrivalConfig::small_demo() })
            .iter()
            .map(|spec| Session::admit(spec, &config, 64, Cycle::ZERO, None))
            .collect()
    }

    #[test]
    fn solo_picks_only_the_head() {
        let active = sessions(4);
        let limits = SchedulerLimits { engine_slots: 8, max_batch_tokens: 1024 };
        assert_eq!(form_batch(&active, ScheduleMode::Solo, &limits), vec![0]);
    }

    #[test]
    fn batched_fills_slots_in_fcfs_order() {
        let active = sessions(5);
        let limits = SchedulerLimits { engine_slots: 3, max_batch_tokens: 1024 };
        assert_eq!(form_batch(&active, ScheduleMode::Batched, &limits), vec![0, 1, 2]);
    }

    #[test]
    fn token_cap_truncates_without_bypass() {
        let active = sessions(5);
        let head_cost = active[0].next_block_tokens();
        // A cap equal to the head's cost admits exactly the head, even if a
        // later (cheaper) block would still fit under the cap.
        let limits = SchedulerLimits { engine_slots: 8, max_batch_tokens: head_cost };
        assert_eq!(form_batch(&active, ScheduleMode::Batched, &limits), vec![0]);
    }

    #[test]
    fn oversized_head_is_still_admitted() {
        let active = sessions(3);
        let limits = SchedulerLimits { engine_slots: 8, max_batch_tokens: 0 };
        assert_eq!(form_batch(&active, ScheduleMode::Batched, &limits), vec![0]);
    }

    #[test]
    fn empty_queue_forms_no_batch() {
        let limits = SchedulerLimits { engine_slots: 4, max_batch_tokens: 64 };
        assert!(form_batch(&[], ScheduleMode::Batched, &limits).is_empty());
        assert!(form_batch(&[], ScheduleMode::Solo, &limits).is_empty());
    }
}
