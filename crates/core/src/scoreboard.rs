//! Scoreboard-based result-reusable PE lane storage — §V-C, Fig. 11(b).
//!
//! Bit-serial speculation would be ruinous if every round re-fetched and
//! re-computed all previously seen planes. Each PE lane therefore carries a
//! small scoreboard (32 entries × 45 bits in Table III) caching the partial
//! score of every in-flight key; when the next plane arrives from DRAM the
//! entry is looked up by token index (the `Hit` path of Fig. 11(b)),
//! updated, and re-evaluated. A full scoreboard limits how many key fetches
//! may be outstanding — the utilization lever studied in Fig. 17(b).

use std::error::Error;
use std::fmt;

/// One in-flight key's cached state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Token (key) index.
    pub token: usize,
    /// Next bit plane to process (planes `0..next_plane` are folded into
    /// `partial`).
    pub next_plane: u32,
    /// Conservative partial score (unknown bits as zero).
    pub partial: i64,
}

/// Error returned when inserting into a full scoreboard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreboardFullError;

impl fmt::Display for ScoreboardFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scoreboard is full")
    }
}

impl Error for ScoreboardFullError {}

/// A PE lane's scoreboard.
///
/// # Example
///
/// ```
/// use pade_core::scoreboard::Scoreboard;
///
/// let mut sb = Scoreboard::new(2);
/// sb.insert(7, 1, -640)?;
/// assert_eq!(sb.lookup(7).unwrap().partial, -640);
/// sb.update(7, 2, -600);
/// assert_eq!(sb.evict(7).unwrap().next_plane, 2);
/// # Ok::<(), pade_core::scoreboard::ScoreboardFullError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scoreboard {
    entries: Vec<Entry>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    high_water: usize,
}

impl Scoreboard {
    /// Width in bits of one hardware entry (Table III: 45 bits — token
    /// index, bit index, partial score).
    pub const ENTRY_BITS: u32 = 45;

    /// Creates a scoreboard with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "scoreboard capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            high_water: 0,
        }
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of in-flight keys.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no more keys can be tracked.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Looks up a token's cached state, counting the hit/miss (the `Hit`
    /// signal of Fig. 11(b)).
    pub fn lookup(&mut self, token: usize) -> Option<Entry> {
        match self.entries.iter().find(|e| e.token == token) {
            Some(e) => {
                self.hits += 1;
                Some(*e)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a fresh entry (first plane of a key just computed).
    ///
    /// # Errors
    ///
    /// Returns [`ScoreboardFullError`] when at capacity.
    ///
    /// # Panics
    ///
    /// Panics if the token is already tracked (hardware never double-
    /// allocates an in-flight key).
    pub fn insert(
        &mut self,
        token: usize,
        next_plane: u32,
        partial: i64,
    ) -> Result<(), ScoreboardFullError> {
        if self.is_full() {
            return Err(ScoreboardFullError);
        }
        assert!(!self.entries.iter().any(|e| e.token == token), "token {token} already in flight");
        self.entries.push(Entry { token, next_plane, partial });
        self.high_water = self.high_water.max(self.entries.len());
        Ok(())
    }

    /// Updates an in-flight key after absorbing another plane.
    ///
    /// # Panics
    ///
    /// Panics if the token is not tracked.
    pub fn update(&mut self, token: usize, next_plane: u32, partial: i64) {
        let e = self
            .entries
            .iter_mut()
            .find(|e| e.token == token)
            .unwrap_or_else(|| panic!("token {token} not in scoreboard"));
        e.next_plane = next_plane;
        e.partial = partial;
    }

    /// Removes a key (pruned or fully resolved), returning its last state.
    pub fn evict(&mut self, token: usize) -> Option<Entry> {
        let idx = self.entries.iter().position(|e| e.token == token)?;
        self.evictions += 1;
        Some(self.entries.swap_remove(idx))
    }

    /// Lifetime lookup hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime evictions.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Peak occupancy observed.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_lookup_update_evict_round_trip() {
        let mut sb = Scoreboard::new(4);
        sb.insert(10, 1, 100).unwrap();
        sb.insert(20, 1, -50).unwrap();
        assert_eq!(sb.occupancy(), 2);
        assert_eq!(sb.lookup(10).unwrap().partial, 100);
        sb.update(10, 2, 164);
        assert_eq!(sb.lookup(10).unwrap().next_plane, 2);
        let e = sb.evict(10).unwrap();
        assert_eq!(e.partial, 164);
        assert_eq!(sb.occupancy(), 1);
        assert!(sb.evict(10).is_none());
    }

    #[test]
    fn full_scoreboard_rejects_inserts() {
        let mut sb = Scoreboard::new(2);
        sb.insert(1, 1, 0).unwrap();
        sb.insert(2, 1, 0).unwrap();
        assert!(sb.insert(3, 1, 0).is_err());
        sb.evict(1);
        assert!(sb.insert(3, 1, 0).is_ok());
    }

    #[test]
    fn hit_miss_accounting() {
        let mut sb = Scoreboard::new(2);
        sb.insert(1, 1, 0).unwrap();
        sb.lookup(1);
        sb.lookup(9);
        assert_eq!(sb.hits(), 1);
        assert_eq!(sb.misses(), 1);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_insert_panics() {
        let mut sb = Scoreboard::new(4);
        sb.insert(1, 1, 0).unwrap();
        let _ = sb.insert(1, 2, 5);
    }

    proptest! {
        #[test]
        fn prop_partial_accumulation_is_exact(
            tokens in proptest::collection::vec(0usize..1000, 1..30),
        ) {
            // Accumulating per-plane deltas through the scoreboard yields
            // the same total as summing them directly.
            let mut unique = tokens.clone();
            unique.sort_unstable();
            unique.dedup();
            let mut sb = Scoreboard::new(unique.len());
            for (i, &t) in unique.iter().enumerate() {
                sb.insert(t, 1, i as i64).unwrap();
            }
            for round in 2..=4u32 {
                for &t in &unique {
                    let e = sb.lookup(t).unwrap();
                    sb.update(t, round, e.partial + 10);
                }
            }
            for (i, &t) in unique.iter().enumerate() {
                let e = sb.evict(t).unwrap();
                prop_assert_eq!(e.partial, i as i64 + 30);
                prop_assert_eq!(e.next_plane, 4);
            }
            prop_assert_eq!(sb.occupancy(), 0);
        }
    }
}
