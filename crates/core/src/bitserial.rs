//! Bidirectional sparsity (BS) — §IV-B, Eqs. 5–6.
//!
//! A bit plane's contribution to the dot product is `w_r · Σ_{k_j^r=1} q_j`.
//! Because each bit is 0 or 1, that sum can equally be computed as
//! `Σ_all q_j − Σ_{k_j^r=0} q_j` — so the hardware always accumulates over
//! whichever bit value is *rarer*, bounding the number of selected lanes by
//! 50 % of the vector width and with it the PE load imbalance.

use pade_quant::{plane_weight, PlaneRow, TokenPlanes};

/// Which bit value was treated as "sparse" (selected for accumulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BsMode {
    /// Accumulate queries where the key bit is 1 (direct form, Eq. 5).
    Ones,
    /// Accumulate queries where the key bit is 0 and subtract from the
    /// query total (flipped form, Eq. 6).
    Zeros,
}

/// Result of absorbing one bit plane into a partial score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaneContribution {
    /// Weighted contribution `w_r · Σ_{bit=1} q_j` (numerically identical
    /// in both modes).
    pub value: i64,
    /// Number of query elements actually accumulated.
    pub selected: u32,
    /// The accumulation mode chosen.
    pub mode: BsMode,
}

/// Absorbs plane `r` of a key into the running score for query row `q`.
///
/// With `bidirectional` set, the rarer bit value is selected (the BS
/// scheduler of Fig. 12); otherwise the direct bit-1 form is always used —
/// the naive scheme whose imbalance Fig. 5(c) illustrates. `q_sum` must be
/// `Σ q_j` over the same row (produced once by the Q-sum generator).
///
/// # Panics
///
/// Panics if `q.len() != plane.len()`.
///
/// # Example
///
/// ```
/// use pade_core::bitserial::{plane_contribution, BsMode};
/// use pade_quant::PlaneRow;
///
/// let q: [i8; 4] = [1, 2, 3, 4];
/// // A dense plane (three 1s): BS flips to accumulate the single 0.
/// let plane = PlaneRow::from_bits([true, true, false, true].into_iter());
/// let c = plane_contribution(&q, &plane, 7, 8, 10, true);
/// assert_eq!(c.mode, BsMode::Zeros);
/// assert_eq!(c.selected, 1);
/// assert_eq!(c.value, (1 + 2 + 4) as i64); // w_7 = 1
/// ```
#[must_use]
pub fn plane_contribution(
    q: &[i8],
    plane: &PlaneRow,
    r: u32,
    bits: u32,
    q_sum: i64,
    bidirectional: bool,
) -> PlaneContribution {
    assert_eq!(q.len(), plane.len(), "query row and plane must have equal width");
    let w = i64::from(plane_weight(r, bits));
    let ones = plane.count_ones();
    let zeros = plane.count_zeros();
    if bidirectional && zeros < ones {
        // Flipped form: Σ_{bit=1} q = q_sum − Σ_{bit=0} q.
        let mut zero_sum = 0i64;
        for (i, &qv) in q.iter().enumerate() {
            if !plane.bit(i) {
                zero_sum += i64::from(qv);
            }
        }
        PlaneContribution { value: w * (q_sum - zero_sum), selected: zeros, mode: BsMode::Zeros }
    } else {
        PlaneContribution {
            value: w * i64::from(plane.masked_sum(q)),
            selected: ones,
            mode: BsMode::Ones,
        }
    }
}

/// Σ of a query row — the Q-sum generator output shared by all lanes in a
/// PE row (Fig. 11(a)).
#[must_use]
pub fn q_sum(q: &[i8]) -> i64 {
    q.iter().map(|&x| i64::from(x)).sum()
}

/// Per-query-row lookup tables turning a bit-plane dot product into
/// `⌈H/8⌉` table reads.
///
/// For every 8-dimension chunk of the query row the table stores, for all
/// 256 possible key-bit bytes, the partial sum `Σ_{bit set} q_j`. A
/// plane's masked sum is then the sum of one lookup per byte of the
/// packed plane — ~8× fewer adds than walking set bits, and free of
/// data-dependent branches. Built once per query row (cost `⌈H/8⌉ × 256`
/// adds) and shared read-only by every lane of that row, this is the
/// plane-cache the parallel engine borrows per row worker.
///
/// Integer addition is associative, so the lookup-based sum is *equal*
/// (not just close) to [`PlaneRow::masked_sum`]; the property tests below
/// pin this down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QRowLut {
    /// `chunks × 256` partial sums, chunk-major.
    sums: Vec<i32>,
    len: usize,
}

impl QRowLut {
    /// Builds the tables for one query row.
    #[must_use]
    pub fn new(q: &[i8]) -> Self {
        let chunks = q.len().div_ceil(8);
        let mut sums = vec![0i32; chunks * 256];
        for (c, chunk) in q.chunks(8).enumerate() {
            let table = &mut sums[c * 256..(c + 1) * 256];
            for mask in 1usize..256 {
                let low_bit = mask.trailing_zeros() as usize;
                let rest = mask & (mask - 1);
                let q_val = if low_bit < chunk.len() { i32::from(chunk[low_bit]) } else { 0 };
                table[mask] = table[rest] + q_val;
            }
        }
        Self { sums, len: q.len() }
    }

    /// Query width the tables were built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-width query row.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `Σ_{bit_i=1} q_i` over a packed plane, via table lookups.
    ///
    /// # Panics
    ///
    /// Panics if the plane's width differs from the query row's.
    #[must_use]
    pub fn masked_sum(&self, plane: &PlaneRow) -> i32 {
        assert_eq!(plane.len(), self.len, "query length must match plane length");
        let mut acc = 0i32;
        for (w, tables) in plane.words().iter().zip(self.sums.chunks(8 * 256)) {
            let mut word = *w;
            for table in tables.chunks_exact(256) {
                acc += table[(word & 0xFF) as usize];
                word >>= 8;
            }
        }
        acc
    }
}

/// The query row itself decomposed into signed bit planes packed as `u64`
/// words, so a bit-plane dot product collapses to weighted
/// `popcount(q_plane & k_plane)` per plane.
///
/// Writing the query in `w`-bit two's complement,
/// `q_i = Σ_r plane_weight(r, w) · q_i^r`, and substituting into the masked
/// sum gives
/// `Σ_{k_j=1} q_j = Σ_r plane_weight(r, w) · |{j : q_j^r = 1 ∧ k_j = 1}|`
/// — each inner term one AND+`count_ones` sweep over the packed words.
/// Integer addition is associative, so this equals [`PlaneRow::masked_sum`]
/// and [`QRowLut::masked_sum`] *exactly*, not approximately.
///
/// The decomposition width is trimmed to the smallest `w ∈ 2..=8` that
/// holds every query value, so a small-magnitude row costs proportionally
/// fewer AND+popcount sweeps. Built once per query row and shared
/// read-only by every lane (and, in the fused dispatch, every head) that
/// scores with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QRowPlanes {
    planes: Vec<PlaneRow>,
    weights: Vec<i64>,
    len: usize,
}

impl QRowPlanes {
    /// Decomposes one query row at the minimal width holding all values.
    #[must_use]
    pub fn new(q: &[i8]) -> Self {
        let mut width = 2u32;
        for &v in q {
            let mut w = 2u32;
            while i32::from(v) < -(1i32 << (w - 1)) || i32::from(v) > (1i32 << (w - 1)) - 1 {
                w += 1;
            }
            width = width.max(w);
        }
        let token = TokenPlanes::from_values(q, width);
        let planes: Vec<PlaneRow> = (0..width).map(|r| token.plane(r).clone()).collect();
        let weights = (0..width).map(|r| i64::from(plane_weight(r, width))).collect();
        Self { planes, weights, len: q.len() }
    }

    /// Query width the planes were built for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a zero-width query row.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of query bit planes (the trimmed decomposition width).
    #[must_use]
    pub fn planes(&self) -> usize {
        self.planes.len()
    }

    /// `Σ_{bit_i=1} q_i` over a packed key plane, as weighted AND+popcounts.
    ///
    /// # Panics
    ///
    /// Panics if the plane's width differs from the query row's.
    #[must_use]
    pub fn masked_sum(&self, plane: &PlaneRow) -> i64 {
        assert_eq!(plane.len(), self.len, "query length must match plane length");
        self.weights
            .iter()
            .zip(&self.planes)
            .map(|(&w, qp)| w * i64::from(qp.and_popcount(plane)))
            .sum()
    }
}

/// Popcount variant of [`plane_contribution`]: same integer sums, same mode
/// selection, but the accumulation is weighted `popcount(q_plane & k_plane)`
/// via [`QRowPlanes::masked_sum`]. This is the engine's hot loop;
/// [`plane_contribution`] stays as the oracle and [`plane_contribution_lut`]
/// as the PR-1 byte-LUT path both are differential-tested against.
#[must_use]
pub fn plane_contribution_planes(
    qp: &QRowPlanes,
    plane: &PlaneRow,
    r: u32,
    bits: u32,
    bidirectional: bool,
) -> PlaneContribution {
    let w = i64::from(plane_weight(r, bits));
    let ones = plane.count_ones();
    let zeros = plane.count_zeros();
    let value = w * qp.masked_sum(plane);
    if bidirectional && zeros < ones {
        PlaneContribution { value, selected: zeros, mode: BsMode::Zeros }
    } else {
        PlaneContribution { value, selected: ones, mode: BsMode::Ones }
    }
}

/// Table-driven variant of [`plane_contribution`]: numerically identical
/// (same integer sums, same mode selection), but the accumulation runs
/// through [`QRowLut::masked_sum`] instead of a per-bit scan. The engine's
/// hot loop uses this; [`plane_contribution`] stays as the oracle.
///
/// # Panics
///
/// Panics if the plane's width differs from the LUT's query width.
#[must_use]
pub fn plane_contribution_lut(
    lut: &QRowLut,
    plane: &PlaneRow,
    r: u32,
    bits: u32,
    bidirectional: bool,
) -> PlaneContribution {
    let w = i64::from(plane_weight(r, bits));
    let ones = plane.count_ones();
    let zeros = plane.count_zeros();
    let value = w * i64::from(lut.masked_sum(plane));
    if bidirectional && zeros < ones {
        PlaneContribution { value, selected: zeros, mode: BsMode::Zeros }
    } else {
        PlaneContribution { value, selected: ones, mode: BsMode::Ones }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bs_bounds_selection_at_half() {
        let q: Vec<i8> = (0..64).map(|i| (i % 11) as i8 - 5).collect();
        let qs = q_sum(&q);
        for fill in 0..=64usize {
            let plane = PlaneRow::from_bits((0..64).map(|i| i < fill));
            let c = plane_contribution(&q, &plane, 3, 8, qs, true);
            assert!(c.selected <= 32, "fill {fill}: selected {}", c.selected);
        }
    }

    #[test]
    fn naive_mode_selects_all_ones() {
        let q: Vec<i8> = vec![1; 8];
        let plane = PlaneRow::from_bits([true; 8]);
        let c = plane_contribution(&q, &plane, 1, 8, 8, false);
        assert_eq!(c.selected, 8);
        assert_eq!(c.mode, BsMode::Ones);
        let c_bs = plane_contribution(&q, &plane, 1, 8, 8, true);
        assert_eq!(c_bs.selected, 0);
        assert_eq!(c_bs.value, c.value);
    }

    #[test]
    fn sign_plane_weight_is_negative() {
        let q: [i8; 2] = [3, 3];
        let plane = PlaneRow::from_bits([true, false]);
        let c = plane_contribution(&q, &plane, 0, 8, 6, true);
        assert_eq!(c.value, -128 * 3);
    }

    #[test]
    fn lut_masked_sum_handles_ragged_widths() {
        for len in [1usize, 7, 8, 9, 63, 64, 65, 130] {
            let q: Vec<i8> = (0..len).map(|i| (i as i8).wrapping_mul(37)).collect();
            let lut = QRowLut::new(&q);
            let plane = PlaneRow::from_bits((0..len).map(|i| i % 3 != 1));
            assert_eq!(lut.masked_sum(&plane), plane.masked_sum(&q), "len {len}");
        }
    }

    proptest! {
        #[test]
        fn prop_lut_contribution_matches_oracle(
            q in proptest::collection::vec(any::<i8>(), 1..150),
            seed in any::<u64>(),
            r in 0u32..8,
            bidirectional in any::<bool>(),
        ) {
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    let h = seed.wrapping_add((i as u64).wrapping_mul(0xD6E8FEB86659FD93));
                    (h >> 17) as u8 as i8
                })
                .collect();
            let planes = TokenPlanes::from_values(&k, 8);
            let lut = QRowLut::new(&q);
            let qs = q_sum(&q);
            let oracle = plane_contribution(&q, planes.plane(r), r, 8, qs, bidirectional);
            let fast = plane_contribution_lut(&lut, planes.plane(r), r, 8, bidirectional);
            prop_assert_eq!(oracle, fast);
        }

        #[test]
        fn prop_popcount_contribution_matches_oracle_and_lut(
            q in proptest::collection::vec(any::<i8>(), 1..150),
            seed in any::<u64>(),
            r_seed in any::<u64>(),
            kbits_idx in 0usize..4,
            bidirectional in any::<bool>(),
        ) {
            // Key widths sweep 2..=8; the plane index is reduced mod width.
            let kbits = [2u32, 4, 7, 8][kbits_idx];
            let r = (r_seed % u64::from(kbits)) as u32;
            let lo = -(1i32 << (kbits - 1));
            let hi = (1i32 << (kbits - 1)) - 1;
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    let h = seed.wrapping_add((i as u64).wrapping_mul(0xD6E8FEB86659FD93));
                    (lo + ((h >> 17) as i32).rem_euclid(hi - lo + 1)) as i8
                })
                .collect();
            let planes = TokenPlanes::from_values(&k, kbits);
            let lut = QRowLut::new(&q);
            let qp = QRowPlanes::new(&q);
            let qs = q_sum(&q);
            let oracle = plane_contribution(&q, planes.plane(r), r, kbits, qs, bidirectional);
            let via_lut = plane_contribution_lut(&lut, planes.plane(r), r, kbits, bidirectional);
            let via_pop = plane_contribution_planes(&qp, planes.plane(r), r, kbits, bidirectional);
            prop_assert_eq!(oracle, via_pop);
            prop_assert_eq!(via_lut, via_pop);
            prop_assert_eq!(
                qp.masked_sum(planes.plane(r)),
                i64::from(planes.plane(r).masked_sum(&q))
            );
        }

        #[test]
        fn prop_popcount_masked_sum_at_word_boundaries(
            base in 0usize..3,
            tail_idx in 0usize..3,
            seed in any::<u64>(),
        ) {
            // len % 64 ∈ {0, 1, 63}: empty, minimal and nearly-full tail words.
            let len = (base * 64 + [0usize, 1, 63][tail_idx]).max(1);
            let q: Vec<i8> = (0..len)
                .map(|i| (seed.wrapping_mul(i as u64 + 11) >> 23) as u8 as i8)
                .collect();
            let k: Vec<i8> = (0..len)
                .map(|i| (seed.wrapping_mul(i as u64 + 29) >> 31) as u8 as i8)
                .collect();
            let planes = TokenPlanes::from_values(&k, 8);
            let qp = QRowPlanes::new(&q);
            let lut = QRowLut::new(&q);
            for r in 0..8u32 {
                let plane = planes.plane(r);
                prop_assert_eq!(qp.masked_sum(plane), i64::from(plane.masked_sum(&q)));
                prop_assert_eq!(qp.masked_sum(plane), i64::from(lut.masked_sum(plane)));
            }
        }

        #[test]
        fn prop_qrow_planes_width_is_trimmed(
            q in proptest::collection::vec(-8i8..=7, 1..80),
        ) {
            // Values fitting 4-bit two's complement must never cost more
            // than 4 planes.
            let qp = QRowPlanes::new(&q);
            prop_assert!(qp.planes() <= 4, "trimmed width {} for 4-bit data", qp.planes());
            let planes = TokenPlanes::from_values(&vec![1i8; q.len()], 2);
            prop_assert_eq!(qp.masked_sum(planes.plane(1)), q_sum(&q));
        }

        #[test]
        fn prop_bs_equals_direct_form(
            q in proptest::collection::vec(any::<i8>(), 1..128),
            seed in any::<u64>(),
            r in 0u32..8,
        ) {
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    let h = seed.wrapping_add((i as u64).wrapping_mul(0xD6E8FEB86659FD93));
                    (h >> 17) as u8 as i8
                })
                .collect();
            let planes = TokenPlanes::from_values(&k, 8);
            let qs = q_sum(&q);
            let direct = plane_contribution(&q, planes.plane(r), r, 8, qs, false);
            let bs = plane_contribution(&q, planes.plane(r), r, 8, qs, true);
            prop_assert_eq!(direct.value, bs.value, "Eq. 6 must be value-preserving");
            prop_assert!(bs.selected <= (q.len() as u32).div_ceil(2),
                "BS must bound selection at 50%: {} of {}", bs.selected, q.len());
            prop_assert!(bs.selected <= direct.selected.max(q.len() as u32 - direct.selected));
        }

        #[test]
        fn prop_accumulating_all_planes_is_exact(
            q in proptest::collection::vec(any::<i8>(), 1..64),
            seed in any::<u64>(),
        ) {
            let k: Vec<i8> = q.iter().enumerate()
                .map(|(i, _)| {
                    let h = seed.wrapping_mul(0xA24BAED4963EE407)
                        .wrapping_add((i as u64).wrapping_mul(0x9FB21C651E98DF25));
                    (h >> 40) as u8 as i8
                })
                .collect();
            let planes = TokenPlanes::from_values(&k, 8);
            let qs = q_sum(&q);
            let total: i64 = (0..8u32)
                .map(|r| plane_contribution(&q, planes.plane(r), r, 8, qs, true).value)
                .sum();
            let exact: i64 = q.iter().zip(&k).map(|(&a, &b)| i64::from(a) * i64::from(b)).sum();
            prop_assert_eq!(total, exact);
        }
    }
}
