//! Fig. 18 — (a) PADE latency breakdown including the bit-shift overhead;
//! (b) latency and energy efficiency of GPU variants and PADE, normalized
//! to the H100 running dense FlashAttention-3.

use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, pct, times, Table};
use pade_experiments::runner::{gpu_outcome, pade_end_to_end, run_pade, GpuMode, Workload};
use pade_linalg::metrics::geomean;
use pade_workload::{model, task};

fn main() {
    banner("Fig. 18(a)", "PADE latency breakdown (computation / memory / bit shift)");
    let mut table =
        Table::new(vec!["task", "compute", "mem stalls", "imbalance", "bit-shift ops share"]);
    for t in [task::dolly(), task::wikilingua()] {
        let w = Workload::new(model::llama2_7b(), t, 2000 + t.seq_len as u64);
        let (r, _) = run_pade(&w, PadeConfig::standard());
        let u = &r.stats.pe_util;
        let total = u.total().max(1) as f64;
        let shift_share = r.stats.ops.shift_add as f64
            / (r.stats.ops.bit_serial_acc + r.stats.ops.shift_add).max(1) as f64;
        table.row(vec![
            t.name.into(),
            pct(u.busy_cycles() as f64 / total),
            pct(u.mem_stalls() as f64 / total),
            pct((u.intra_stalls() + u.inter_stalls()) as f64 / total),
            pct(shift_share),
        ]);
    }
    println!("{}", table.render());
    println!("Paper: ~17% bit-shifting overhead, outweighed by a 5x latency");
    println!("reduction from bit-level early termination.");

    banner("Fig. 18(b)", "Latency and energy efficiency vs H100 (baseline: dense FA3)");
    let mut table = Table::new(vec!["model", "variant", "norm latency", "efficiency gain"]);
    let pairs = vec![
        (model::llama2_7b(), task::wikilingua()),
        (model::llama3_8b(), task::wikilingua()),
        (model::opt_1b3(), task::wikilingua()),
        (model::pvt(), {
            let mut t = task::imagenet();
            t.seq_len = 3072;
            t
        }),
    ];
    let mut lat_std = Vec::new();
    let mut eff_std = Vec::new();
    let mut lat_agg = Vec::new();
    let mut eff_agg = Vec::new();
    for (m, t) in pairs {
        let w = Workload::new(m, t, 2100 + t.seq_len as u64);
        let (base_s, base_j) = gpu_outcome(&w, GpuMode::Flash);
        let keep = {
            let (r, _) = run_pade(&w, PadeConfig::standard());
            r.stats.keep_ratio()
        };
        let (g1_s, g1_j) = gpu_outcome(&w, GpuMode::BuiGf { keep });
        let (g2_s, g2_j) = gpu_outcome(&w, GpuMode::BuiGfFlash { keep });
        let (p1_s, p1_j, _) = pade_end_to_end(&w, &PadeConfig::standard());
        let (p2_s, p2_j, _) = pade_end_to_end(&w, &PadeConfig::aggressive());
        for (variant, s, j) in [
            ("GPU(BUI-GF)", g1_s, g1_j),
            ("GPU(BUI-GF+FA3)", g2_s, g2_j),
            ("PADE standard", p1_s, p1_j),
            ("PADE aggressive", p2_s, p2_j),
        ] {
            table.row(vec![
                m.name.into(),
                variant.into(),
                format!("{:.3}", s / base_s),
                times(base_j / j),
            ]);
        }
        lat_std.push(base_s / p1_s);
        eff_std.push(base_j / p1_j);
        lat_agg.push(base_s / p2_s);
        eff_agg.push(base_j / p2_j);
    }
    println!("{}", table.render());
    // Iso-silicon normalization: PADE is a 4.53 mm² die against the H100's
    // ~814 mm²; per-area throughput is the comparison a deployment actually
    // faces (tile PADE instances into the same silicon budget).
    const H100_MM2: f64 = 814.0;
    const PADE_MM2: f64 = 4.53;
    let area = H100_MM2 / PADE_MM2;
    println!(
        "PADE standard/aggressive raw latency ratio: {:.3} / {:.3} of GPU",
        1.0 / geomean(&lat_std),
        1.0 / geomean(&lat_agg),
    );
    println!(
        "Area-normalized (iso-silicon, x{:.0}) speedup: {} / {}",
        area,
        times(geomean(&lat_std) * area),
        times(geomean(&lat_agg) * area),
    );
    println!("Energy efficiency gain: {} / {}", times(geomean(&eff_std)), times(geomean(&eff_agg)),);
    println!("Paper: 5.8x/7.4x latency and 28.2x/31.1x efficiency; GPU-side");
    println!("BUI-GF alone gains only ~1.3x (8% latency) — the datapath cannot");
    println!("exploit bit-level early termination.");
}
