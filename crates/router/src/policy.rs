//! Routing policies and the decision record.
//!
//! The router chooses a node for every arrival at its arrival instant,
//! from deterministic inputs only: the policy, the arrival's session and
//! prompt, the per-node in-system load at that instant and the routing
//! history. [`RoutePolicy::Affinity`] is the cache-aware policy this
//! crate exists for; [`RoutePolicy::RoundRobin`] and
//! [`RoutePolicy::LeastLoaded`] are the cache-blind baselines the bench
//! scenario reads it against.

/// How arrivals are placed onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Cache-aware placement: a session returns to the node that served
    /// it before (its stored cache lives there); a new session whose
    /// prompt's leading chunks hash to a shard key some node has already
    /// ingested goes to that node (the decomposed chunks live there);
    /// everything else falls back to deterministic least-loaded
    /// placement.
    Affinity,
    /// Tenant- and cache-blind: arrival `i` goes to node `i mod N`.
    RoundRobin,
    /// Cache-blind load balancing: the node with the fewest requests in
    /// system at the arrival instant (ties break on the lowest node id).
    LeastLoaded,
}

impl RoutePolicy {
    /// Stable label for reports and JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RoutePolicy::Affinity => "affinity",
            RoutePolicy::RoundRobin => "round-robin",
            RoutePolicy::LeastLoaded => "least-loaded",
        }
    }
}

/// Why one arrival landed on its node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteReason {
    /// The session was routed here before; its stored cache is resident.
    SessionAffinity,
    /// The prompt's leading-chunk shard key was first ingested here.
    PrefixAffinity,
    /// Fewest requests in system at the arrival instant.
    LeastLoaded,
    /// Fixed `id mod N` rotation.
    RoundRobin,
}

impl RouteReason {
    /// Stable label for reports and JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RouteReason::SessionAffinity => "session-affinity",
            RouteReason::PrefixAffinity => "prefix-affinity",
            RouteReason::LeastLoaded => "least-loaded",
            RouteReason::RoundRobin => "round-robin",
        }
    }
}

/// One routing decision, recorded in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The routed request's id.
    pub id: usize,
    /// The routed request's session.
    pub session: u64,
    /// Node the request was placed on.
    pub node: usize,
    /// Why.
    pub reason: RouteReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(RoutePolicy::Affinity.label(), "affinity");
        assert_eq!(RoutePolicy::RoundRobin.label(), "round-robin");
        assert_eq!(RoutePolicy::LeastLoaded.label(), "least-loaded");
        assert_eq!(RouteReason::SessionAffinity.label(), "session-affinity");
        assert_eq!(RouteReason::PrefixAffinity.label(), "prefix-affinity");
    }
}
