//! The `soak` scenario: streamed tracing vs in-memory recording on the
//! route trace profile.
//!
//! PR 10's claim is that the bounded-memory on-disk [`StreamSink`] is a
//! drop-in replacement for the in-memory [`Recorder`]: same events, same
//! fingerprint, same zero effect on outputs, at O(frame) resident cost
//! instead of O(events). [`run_soak`] replays the seeded multi-tenant
//! route workload (2-node affinity fleet, the `route` scenario's trace
//! profile) three ways:
//!
//! * **untraced** — plain `route`, the wall-clock floor,
//! * **recorder** — `route_traced` into a fresh in-memory `Recorder`,
//! * **stream** — `route_traced` into a fresh `StreamSink` with small
//!   (4 KiB) frames, so even the quick workload crosses many frame
//!   boundaries; sink creation and `finish()` are inside the timed
//!   region, so the stream pays its real end-to-end cost.
//!
//! It hard-checks that the traced runs' outputs are byte-identical to
//! the untraced run, that the `.padetrace` file reads back to the
//! recorder's **exact fingerprint** (the two sinks saw the same
//! deterministic submission sequence), that resident buffering never
//! exceeded one frame, and that the flight timelines assembled from the
//! streamed link events are causally complete and match the fleet's
//! native cycle accounting.
//!
//! The headline overhead is measured by replaying the recorded event
//! stream into fresh sinks one event per submit (fleet-run wall jitter
//! is larger than the sink cost itself, so end-to-end walls are
//! recorded for context but not used as the figure): the
//! recorder-vs-stream submission delta as a fraction of the untraced
//! profile wall. [`write_soak_json`] records the sweep as
//! `BENCH_10.json` (target: streaming ≤ 2% over the recorder on the
//! full profile).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use pade_router::{route, route_traced, RoutePolicy, RouterConfig, RouterReport};
use pade_serve::metrics::FlightTotals;
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::ServeConfig;
use pade_trace::flight::{assemble_timelines, check_linked};
use pade_trace::{read_stream, Recorder, StreamSink, TraceSink, Tracer};
use pade_workload::prompt::{generate_multi_tenant_arrivals, MultiTenantConfig};

use crate::route::route_workload;
use crate::time_best_of;

/// Frame size of the soak stream. Small enough that even the quick
/// workload spans several frames (so the bounded-memory claim is
/// exercised, not vacuous), large enough to hold any single event batch.
pub const SOAK_FRAME_SIZE: usize = 4096;

/// Measured outcome of the soak run.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// The workload all three runs replayed.
    pub workload: MultiTenantConfig,
    /// Whether the tracer was compiled in (`trace` feature).
    pub feature_enabled: bool,
    /// Requests in the workload.
    pub requests: usize,
    /// Best-of wall seconds of the untraced fleet run.
    pub untraced_wall_s: f64,
    /// Best-of wall seconds with an in-memory recorder attached.
    pub recorder_wall_s: f64,
    /// Best-of wall seconds with the on-disk stream sink attached
    /// (including sink creation and final flush).
    pub stream_wall_s: f64,
    /// Best-of wall seconds of replaying the recorded event stream into
    /// a fresh in-memory `Recorder`, one event per submit (the sink's
    /// isolated cost, free of fleet-run jitter).
    pub recorder_submit_s: f64,
    /// Best-of wall seconds of the same replay into a fresh
    /// `StreamSink` (creation + final flush included).
    pub stream_submit_s: f64,
    /// `max(0, stream_submit_s − recorder_submit_s) / untraced_wall_s`
    /// — the headline figure: what streaming costs *over* in-memory
    /// recording, as a fraction of the profile's untraced wall.
    pub stream_overhead_frac: f64,
    /// `recorder_submit_s / untraced_wall_s` — what in-memory recording
    /// itself costs, on the same scale.
    pub recorder_overhead_frac: f64,
    /// Events in the recorded snapshot.
    pub events: usize,
    /// Spans in the recorded snapshot.
    pub spans: usize,
    /// Causal link events in the recorded snapshot.
    pub links: usize,
    /// Frames the stream sink wrote.
    pub frames: u64,
    /// Frame size the sink ran with ([`SOAK_FRAME_SIZE`]).
    pub frame_size: usize,
    /// Peak bytes the sink ever held in memory (≤ `frame_size`,
    /// hard-checked).
    pub peak_buffered_bytes: usize,
    /// Final `.padetrace` file size in bytes.
    pub file_bytes: u64,
    /// Snapshot fingerprint (identical for recorder and stream,
    /// hard-checked).
    pub fingerprint: u64,
    /// Whether the streamed snapshot's fingerprint equalled the
    /// recorder's (hard-checked; a mismatch panics before this is ever
    /// recorded false).
    pub fingerprint_parity: bool,
    /// Flight timelines assembled from the streamed link events.
    pub timelines: usize,
    /// The fleet's native per-request cycle accounting.
    pub flight: FlightTotals,
    /// Whether both traced runs were byte-identical to the untraced run
    /// (hard-checked).
    pub bit_identical: bool,
}

fn output_map(report: &RouterReport) -> HashMap<usize, Vec<u8>> {
    report.completions_by_id().iter().map(|c| (c.id, c.output_bytes())).collect()
}

fn assert_identical(report: &RouterReport, baseline: &HashMap<usize, Vec<u8>>, label: &str) {
    let completions = report.completions_by_id();
    assert_eq!(completions.len(), baseline.len(), "{label} run lost requests");
    for completion in &completions {
        assert!(
            completion.output_bytes() == baseline[&completion.id],
            "{label} run changed request {} output bytes",
            completion.id
        );
    }
}

/// Runs the soak: untraced / recorder / stream, with parity and
/// bounded-memory checks.
///
/// # Panics
///
/// Panics if a traced run changes an output byte, the stream file fails
/// to read back, the streamed fingerprint diverges from the recorder's,
/// resident buffering exceeds one frame, or (with the `trace` feature)
/// any request's causality chain is incomplete.
#[must_use]
pub fn run_soak(quick: bool) -> SoakResult {
    let (workload, chunk_tokens) = route_workload(quick);
    let arrivals = generate_multi_tenant_arrivals(&workload);
    let node = ServeConfig { kv_chunk_tokens: chunk_tokens, ..ServeConfig::standard() };
    let fleet = RouterConfig::homogeneous(node, 2, RoutePolicy::Affinity);
    let iters = if quick { 2 } else { 7 };

    // The three variants are timed *interleaved* (one of each per
    // iteration, best-of over iterations) rather than back-to-back
    // blocks: each fleet run lasts long enough that ambient machine
    // drift between blocks would otherwise dwarf the sink cost being
    // measured. Interleaving exposes every variant to the same drift,
    // and min-of-N keeps the cleanest sample of each.
    let recorder = Arc::new(Recorder::new());
    let recorder_tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn TraceSink>);
    let stream_path = soak_stream_path();
    let mut untraced_wall_s = f64::INFINITY;
    let mut recorder_wall_s = f64::INFINITY;
    let mut stream_wall_s = f64::INFINITY;
    let mut untraced = None;
    let mut recorded = None;
    let mut stream_run = None;
    for _ in 0..iters {
        let start = std::time::Instant::now();
        let report = route(&fleet, &arrivals, ScheduleMode::Batched);
        untraced_wall_s = untraced_wall_s.min(start.elapsed().as_secs_f64());
        untraced = Some(report);

        // In-memory recorder: cleared per iteration so every measurement
        // pays the same submission cost into an empty sink.
        recorder.clear();
        let start = std::time::Instant::now();
        let report = route_traced(&fleet, &arrivals, ScheduleMode::Batched, &recorder_tracer);
        recorder_wall_s = recorder_wall_s.min(start.elapsed().as_secs_f64());
        recorded = Some(report);

        // On-disk stream: a fresh sink (and file) per iteration, with
        // creation and the final flush inside the timed region.
        let start = std::time::Instant::now();
        let sink = Arc::new(
            StreamSink::with_frame_size(&stream_path, SOAK_FRAME_SIZE).expect("create soak stream"),
        );
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let report = route_traced(&fleet, &arrivals, ScheduleMode::Batched, &tracer);
        sink.finish().expect("flush soak stream");
        stream_wall_s = stream_wall_s.min(start.elapsed().as_secs_f64());
        stream_run = Some((report, sink));
    }
    let untraced = untraced.expect("at least one iteration");
    let untraced_bytes = output_map(&untraced);
    let recorded = recorded.expect("at least one iteration");
    assert_identical(&recorded, &untraced_bytes, "recorder-traced");
    let snapshot = recorder.snapshot();
    snapshot.check_well_formed().unwrap_or_else(|e| panic!("malformed recorder trace: {e}"));
    let (streamed_report, sink) = stream_run.expect("at least one iteration");
    assert_identical(&streamed_report, &untraced_bytes, "stream-traced");
    assert!(
        sink.peak_buffered_bytes() <= SOAK_FRAME_SIZE,
        "stream buffered {} bytes over the {SOAK_FRAME_SIZE}-byte frame",
        sink.peak_buffered_bytes()
    );
    let file_bytes = std::fs::metadata(&stream_path).map(|m| m.len()).unwrap_or(0);
    let streamed = read_stream(&stream_path).unwrap_or_else(|e| panic!("soak stream read: {e}"));
    std::fs::remove_file(&stream_path).ok();
    streamed.check_well_formed().unwrap_or_else(|e| panic!("malformed streamed trace: {e}"));
    assert_eq!(
        streamed.fingerprint(),
        snapshot.fingerprint(),
        "streamed snapshot diverged from the in-memory recorder"
    );

    let timelines = assemble_timelines(&streamed);
    let tracer_active = recorder_tracer.is_active();
    if tracer_active {
        check_linked(&timelines).unwrap_or_else(|e| panic!("incomplete causality chain: {e}"));
        assert_eq!(timelines.len(), arrivals.len(), "flight recorder missed requests");
    }

    // The headline overhead comes from replaying the recorded event
    // stream into fresh sinks, one event per submit (the emission
    // granularity real tracers use): the fleet run's own wall-clock
    // jitter is larger than the sink cost it would be measuring, while
    // this isolates exactly the recorder-vs-stream delta. The delta is
    // charged against the untraced profile wall — "what does streaming
    // this run's telemetry cost, relative to the run".
    let submit_iters = if quick { 8 } else { 32 };
    let (_, recorder_submit_s) = time_best_of(submit_iters, || {
        let sink = Recorder::new();
        for track in &snapshot.tracks {
            for event in &track.events {
                sink.submit(track.track, std::slice::from_ref(event));
            }
        }
        sink
    });
    let submit_path = soak_stream_path_tagged("submit");
    let (_, stream_submit_s) = time_best_of(submit_iters, || {
        let sink = StreamSink::with_frame_size(&submit_path, SOAK_FRAME_SIZE)
            .expect("create submit-replay stream");
        for track in &snapshot.tracks {
            for event in &track.events {
                sink.submit(track.track, std::slice::from_ref(event));
            }
        }
        sink.finish().expect("flush submit-replay stream");
        sink
    });
    std::fs::remove_file(&submit_path).ok();

    let scale = untraced_wall_s.max(f64::MIN_POSITIVE);
    SoakResult {
        workload,
        feature_enabled: tracer_active,
        requests: arrivals.len(),
        untraced_wall_s,
        recorder_wall_s,
        stream_wall_s,
        recorder_submit_s,
        stream_submit_s,
        stream_overhead_frac: (stream_submit_s - recorder_submit_s).max(0.0) / scale,
        recorder_overhead_frac: recorder_submit_s / scale,
        events: snapshot.event_count(),
        spans: snapshot.span_count(),
        links: snapshot.link_count(),
        frames: sink.frames_written(),
        frame_size: sink.frame_size(),
        peak_buffered_bytes: sink.peak_buffered_bytes(),
        file_bytes,
        fingerprint: streamed.fingerprint(),
        fingerprint_parity: true,
        timelines: timelines.len(),
        flight: recorded.summary.flight,
        bit_identical: true,
    }
}

/// A per-process temp path, so parallel test binaries never collide.
fn soak_stream_path() -> PathBuf {
    soak_stream_path_tagged("run")
}

fn soak_stream_path_tagged(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pade-bench-soak-{tag}-{}.padetrace", std::process::id()))
}

/// Serializes a soak run to the `BENCH_<n>.json` trajectory schema.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_soak_json(
    path: &std::path::Path,
    result: &SoakResult,
    mode: &str,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench_id\": {},", crate::bench_id_from_path(path))?;
    writeln!(f, "  \"tool\": \"pade-bench\",")?;
    writeln!(f, "  \"scenario\": \"soak\",")?;
    writeln!(f, "  \"mode\": \"{}\",", crate::json_escape(mode))?;
    writeln!(
        f,
        "  \"paths\": {{\"recorder\": \"route_traced into the in-memory Recorder\", \
         \"stream\": \"route_traced into the bounded-memory on-disk StreamSink \
         (.padetrace, creation + finish timed)\", \"baseline\": \"untraced route\"}},"
    )?;
    writeln!(
        f,
        "  \"workload\": {{\"tenants\": {}, \"sessions_per_tenant\": {}, \
         \"turns_per_session\": {}, \"shared_prefix_tokens\": {}, \"requests\": {}, \
         \"seed\": {}}},",
        result.workload.tenants,
        result.workload.sessions_per_tenant,
        result.workload.per_tenant.turns_per_session,
        result.workload.per_tenant.shared_prefix_tokens,
        result.requests,
        result.workload.seed
    )?;
    writeln!(f, "  \"feature_enabled\": {},", result.feature_enabled)?;
    writeln!(f, "  \"untraced_wall_s\": {:.6},", result.untraced_wall_s)?;
    writeln!(f, "  \"recorder_wall_s\": {:.6},", result.recorder_wall_s)?;
    writeln!(f, "  \"stream_wall_s\": {:.6},", result.stream_wall_s)?;
    writeln!(f, "  \"recorder_submit_s\": {:.6},", result.recorder_submit_s)?;
    writeln!(f, "  \"stream_submit_s\": {:.6},", result.stream_submit_s)?;
    writeln!(f, "  \"recorder_overhead_pct\": {:.3},", result.recorder_overhead_frac * 100.0)?;
    writeln!(f, "  \"stream_overhead_pct\": {:.3},", result.stream_overhead_frac * 100.0)?;
    writeln!(f, "  \"events\": {},", result.events)?;
    writeln!(f, "  \"spans\": {},", result.spans)?;
    writeln!(f, "  \"links\": {},", result.links)?;
    writeln!(
        f,
        "  \"stream\": {{\"frames\": {}, \"frame_size\": {}, \"peak_buffered_bytes\": {}, \
         \"file_bytes\": {}, \"fingerprint\": \"{:016x}\", \"fingerprint_parity\": {}}},",
        result.frames,
        result.frame_size,
        result.peak_buffered_bytes,
        result.file_bytes,
        result.fingerprint,
        result.fingerprint_parity
    )?;
    let fl = &result.flight;
    writeln!(
        f,
        "  \"flight\": {{\"timelines\": {}, \"requests\": {}, \"queue_cycles\": {}, \
         \"prefill_cycles\": {}, \"decode_cycles\": {}, \"preempted_cycles\": {}, \
         \"stalled_cycles\": {}}},",
        result.timelines,
        fl.requests,
        fl.queue_cycles,
        fl.prefill_cycles,
        fl.decode_cycles,
        fl.preempted_cycles,
        fl.stalled_cycles
    )?;
    writeln!(
        f,
        "  \"headline\": {{\"stream_overhead_pct\": {:.3}, \"peak_buffered_bytes\": {}, \
         \"fingerprint_parity\": {}, \"bit_identical\": {}}}",
        result.stream_overhead_frac * 100.0,
        result.peak_buffered_bytes,
        result.fingerprint_parity,
        result.bit_identical
    )?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_checks_parity_and_bounded_memory() {
        let r = run_soak(true);
        assert!(r.bit_identical && r.fingerprint_parity);
        assert!(r.untraced_wall_s > 0.0 && r.recorder_wall_s > 0.0 && r.stream_wall_s > 0.0);
        assert!(r.recorder_submit_s >= 0.0 && r.stream_submit_s >= 0.0);
        assert!(r.peak_buffered_bytes <= SOAK_FRAME_SIZE);
        if cfg!(feature = "trace") {
            assert!(r.feature_enabled);
            assert!(r.events > 0 && r.spans > 0 && r.links > 0);
            assert!(r.frames >= 2, "soak stream spanned only {} frame(s)", r.frames);
            assert_eq!(r.timelines, r.requests);
            assert_eq!(r.flight.requests, r.requests as u64);
        } else {
            assert!(!r.feature_enabled);
            assert_eq!(r.events, 0);
            assert_eq!(r.frames, 0);
        }
    }

    #[test]
    fn soak_json_is_well_formed_enough() {
        let r = run_soak(true);
        let path = std::env::temp_dir().join("pade_soak_bench_test.json");
        write_soak_json(&path, &r, "quick").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"scenario\": \"soak\""));
        assert!(text.contains("\"stream_overhead_pct\""));
        assert!(text.contains("\"fingerprint_parity\": true"));
        assert!(text.contains("\"flight\""));
        let _ = std::fs::remove_file(&path);
    }
}
