//! `pade-serve` — run the continuous-batching server on a seeded arrival
//! trace and report latency percentiles and throughput.
//!
//! ```text
//! cargo run --release -p pade-serve --bin pade-serve               # standard workload
//! cargo run --release -p pade-serve --bin pade-serve -- --quick    # CI smoke (tiny trace)
//! cargo run --release -p pade-serve --bin pade-serve -- \
//!     --requests 32 --mean-gap 30000 --seq-len 1024 --slots 8
//! ```
//!
//! Every run serves the same arrival trace twice — continuous batching
//! and the one-request-at-a-time baseline — checks that the two produce
//! byte-identical per-request outputs, and prints both so the batching
//! gain is always read against its baseline. Latencies are simulated
//! cycles at the 800 MHz core clock.

use std::process::exit;

use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, ServeConfig, ServeReport};
use pade_workload::trace::{generate_arrivals, ArrivalConfig};

struct Args {
    quick: bool,
    requests: Option<usize>,
    mean_gap: Option<f64>,
    seq_len: Option<usize>,
    slots: Option<usize>,
    max_batch_tokens: Option<usize>,
    decode_fraction: Option<f64>,
    seed: Option<u64>,
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a valid value");
        exit(2);
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        requests: None,
        mean_gap: None,
        seq_len: None,
        slots: None,
        max_batch_tokens: None,
        decode_fraction: None,
        seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--requests" => args.requests = Some(parse("--requests", it.next())),
            "--mean-gap" => args.mean_gap = Some(parse("--mean-gap", it.next())),
            "--seq-len" => args.seq_len = Some(parse("--seq-len", it.next())),
            "--slots" => args.slots = Some(parse("--slots", it.next())),
            "--max-batch-tokens" => {
                args.max_batch_tokens = Some(parse("--max-batch-tokens", it.next()));
            }
            "--decode-fraction" => {
                args.decode_fraction = Some(parse("--decode-fraction", it.next()));
            }
            "--seed" => args.seed = Some(parse("--seed", it.next())),
            "--help" | "-h" => {
                println!(
                    "usage: pade-serve [--quick] [--requests N] [--mean-gap CYCLES] \
                     [--seq-len S] [--slots K] [--max-batch-tokens T] \
                     [--decode-fraction F] [--seed X]"
                );
                exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                exit(2);
            }
        }
    }
    args
}

fn print_report(report: &ServeReport, wall_s: f64) {
    let s = &report.summary;
    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>12} {:>13.1} {:>10.2} {:>10.2} {:>9.3}s",
        report.mode.label(),
        s.tokens,
        s.latency.p50.0,
        s.latency.p95.0,
        s.latency.p99.0,
        s.tokens_per_s / 1e6,
        s.queue_depth_mean,
        s.occupancy_mean,
        wall_s
    );
}

fn main() {
    let args = parse_args();
    let workload = if args.quick {
        ArrivalConfig {
            n_requests: 6,
            mean_interarrival_cycles: 1_000.0,
            decode_steps: 2,
            prefill_rows: 8,
            seq_len: 256,
            ..ArrivalConfig::small_demo()
        }
    } else {
        ArrivalConfig {
            n_requests: 24,
            mean_interarrival_cycles: 4_000.0,
            decode_steps: 8,
            prefill_rows: 16,
            seq_len: 1024,
            ..ArrivalConfig::small_demo()
        }
    };
    let workload = ArrivalConfig {
        n_requests: args.requests.unwrap_or(workload.n_requests),
        mean_interarrival_cycles: args.mean_gap.unwrap_or(workload.mean_interarrival_cycles),
        seq_len: args.seq_len.unwrap_or(workload.seq_len),
        decode_fraction: args.decode_fraction.unwrap_or(workload.decode_fraction),
        seed: args.seed.unwrap_or(workload.seed),
        ..workload
    };
    // Out-of-range values get the same exit-code-2 usage error as unknown
    // flags, not an assert backtrace from deeper in the stack.
    let usage_error = |msg: &str| -> ! {
        eprintln!("{msg}");
        exit(2);
    };
    if workload.n_requests == 0 {
        usage_error("--requests must be at least 1");
    }
    if !(workload.mean_interarrival_cycles > 0.0 && workload.mean_interarrival_cycles.is_finite()) {
        usage_error("--mean-gap must be a positive, finite cycle count");
    }
    if workload.seq_len == 0 {
        usage_error("--seq-len must be at least 1");
    }
    if !(0.0..=1.0).contains(&workload.decode_fraction) {
        usage_error("--decode-fraction must lie in [0, 1]");
    }
    let config = ServeConfig {
        engine_slots: args.slots.unwrap_or(4).max(1),
        max_batch_tokens: args.max_batch_tokens.unwrap_or(64),
        ..ServeConfig::standard()
    };

    println!(
        "pade-serve: {} requests, mean gap {:.0} cyc, S={}, {} slots, {} max batch tokens\n",
        workload.n_requests,
        workload.mean_interarrival_cycles,
        workload.seq_len,
        config.engine_slots,
        config.max_batch_tokens
    );
    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>12} {:>13} {:>10} {:>10} {:>10}",
        "mode", "tokens", "p50 cyc", "p95 cyc", "p99 cyc", "Mtok/s sim", "queue", "occup", "wall"
    );

    let arrivals = generate_arrivals(&workload);

    let start = std::time::Instant::now();
    let batched = serve(&config, &arrivals, ScheduleMode::Batched);
    let batched_wall = start.elapsed().as_secs_f64();
    print_report(&batched, batched_wall);

    let start = std::time::Instant::now();
    let solo = serve(&config, &arrivals, ScheduleMode::Solo);
    let solo_wall = start.elapsed().as_secs_f64();
    print_report(&solo, solo_wall);

    // Bit-identity across schedules: batching must never change outputs.
    pade_serve::assert_outputs_identical(&batched, &solo);

    let gain = batched.summary.tokens_per_s / solo.summary.tokens_per_s.max(f64::MIN_POSITIVE);
    println!(
        "\nbatched/solo throughput: {gain:.2}x  (makespan {} vs {})",
        batched.summary.makespan, solo.summary.makespan
    );
    println!("all {} requests byte-identical across batched and solo schedules", arrivals.len());
}
