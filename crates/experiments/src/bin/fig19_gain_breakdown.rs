//! Fig. 19 — energy-efficiency and throughput gain waterfall:
//! GPU → baseline ASIC → +BUI-GF → +BS-OOE → +ISTA, separating the
//! algorithm's contribution from the dedicated hardware that makes it pay
//! (scoreboard result reuse, grouped ANDer tree, RARS/tiling engines).

use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, times, Table};
use pade_experiments::runner::{gpu_outcome, run_pade, GpuMode, Workload};
use pade_linalg::metrics::geomean;
use pade_workload::{model, task};

fn main() {
    banner("Fig. 19", "Efficiency and throughput gain breakdown (geomean of 4 workloads)");
    let pairs = vec![
        (model::llama2_7b(), task::wikilingua()),
        (model::llama3_8b(), task::wikilingua()),
        (model::opt_1b3(), task::wikilingua()),
        (model::pvt(), {
            let mut t = task::imagenet();
            t.seq_len = 3072;
            t
        }),
    ];
    let stages: Vec<(&str, PadeConfig)> = vec![
        ("Baseline ASIC", PadeConfig::dense_baseline()),
        (
            "+BUI-GF",
            PadeConfig {
                enable_bui_gf: true,
                enable_bs: false,
                enable_ooe: false,
                enable_ista: false,
                enable_rars: false,
                enable_interleave: false,
                ..PadeConfig::standard()
            },
        ),
        (
            "+BS-OOE",
            PadeConfig {
                enable_ista: false,
                enable_rars: false,
                enable_interleave: false,
                ..PadeConfig::standard()
            },
        ),
        ("+ISTA", PadeConfig::standard()),
    ];

    let mut eff_gains: Vec<Vec<f64>> = vec![Vec::new(); stages.len() + 1];
    let mut thr_gains: Vec<Vec<f64>> = vec![Vec::new(); stages.len() + 1];
    for (m, t) in &pairs {
        let w = Workload::new(*m, *t, 1900 + t.seq_len as u64);
        let (gpu_s, gpu_j) = gpu_outcome(&w, GpuMode::Flash);
        eff_gains[0].push(1.0);
        thr_gains[0].push(1.0);
        for (i, (_, cfg)) in stages.iter().enumerate() {
            let (_, o) = run_pade(&w, cfg.clone());
            let energy_j = o.energy.total_pj() * 1e-12;
            eff_gains[i + 1].push(gpu_j / energy_j);
            thr_gains[i + 1].push(gpu_s / o.seconds);
        }
    }

    let mut table = Table::new(vec!["stage", "efficiency gain vs GPU", "throughput gain vs GPU"]);
    table.row(vec!["GPU (FA3)".into(), times(1.0), times(1.0)]);
    for (i, (name, _)) in stages.iter().enumerate() {
        table.row(vec![
            (*name).into(),
            times(geomean(&eff_gains[i + 1])),
            times(geomean(&thr_gains[i + 1])),
        ]);
    }
    println!("{}", table.render());

    // The naive-vs-dedicated split: what each mechanism would deliver
    // WITHOUT its supporting hardware, derived from measured statistics.
    banner("Fig. 19 (cont.)", "Software gain vs dedicated-hardware gain per mechanism");
    let w = Workload::new(model::llama2_7b(), task::wikilingua(), 1950);
    let (full, o_full) = run_pade(&w, PadeConfig::standard());
    // Without the scoreboard, round r recomputes planes 0..r: the average
    // recompute factor is (p̄+1)/2 for p̄ planes per key, and every round
    // refetches its planes.
    let planes_avg = 8.0 * full.planes_fetched as f64 / full.planes_dense as f64;
    let naive_gf_penalty = (planes_avg + 1.0) / 2.0;
    let (_, o_gf) = run_pade(
        &w,
        PadeConfig {
            enable_bui_gf: true,
            enable_bs: false,
            enable_ooe: false,
            enable_ista: false,
            enable_rars: false,
            enable_interleave: false,
            ..PadeConfig::standard()
        },
    );
    let (_, o_dense) = run_pade(&w, PadeConfig::dense_baseline());
    let gf_total = o_dense.energy.total_pj() / o_gf.energy.total_pj();
    let mut table = Table::new(vec!["mechanism", "naive (software only)", "with dedicated hw"]);
    table.row(vec![
        "BUI-GF (scoreboard PE)".into(),
        times(gf_total / naive_gf_penalty),
        times(gf_total),
    ]);
    let (_, o_bs) = run_pade(
        &w,
        PadeConfig {
            enable_ista: false,
            enable_rars: false,
            enable_interleave: false,
            ..PadeConfig::standard()
        },
    );
    // Without the grouped ANDer tree, BS would pay 64:1 multiplexing — we
    // charge the mux-energy ratio from the DSE model.
    let (naive_mux, _) = pade_energy::area::gsat_cost(64);
    let (gsat_mux, _) = pade_energy::area::gsat_cost(8);
    let bs_gain = o_gf.energy.total_pj() / o_bs.energy.total_pj();
    table.row(vec![
        "BS-OOE (grouped ANDer tree)".into(),
        times(bs_gain / (naive_mux / gsat_mux).clamp(1.0, 2.0)),
        times(bs_gain),
    ]);
    let ista_gain = o_bs.energy.total_pj() / o_full.energy.total_pj();
    // Without RARS, the V stream reloads shared vectors (measured by the
    // scheduler itself).
    let (no_rars, _) = run_pade(&w, PadeConfig { enable_rars: false, ..PadeConfig::standard() });
    let rars_factor = (no_rars.v_loads as f64 / full.v_loads.max(1) as f64).max(1.0);
    table.row(vec![
        "ISTA (RARS + reorder engine)".into(),
        times(ista_gain / rars_factor),
        times(ista_gain),
    ]);
    println!("{}", table.render());
    println!("Paper: efficiency chain 4.0x → (+BUI-GF 1.4x naive / 2.2x with");
    println!("scoreboard) → (+BS-OOE 1.58x/2.07x) → (+ISTA 1.43x/1.69x) = 31.1x;");
    println!("throughput chain reaches 7.43x.");
}
