//! `pade-router` — sharded multi-node serving with prefix-affinity
//! routing over distributed KV plane caches.
//!
//! PR 4's `pade-cache` made decomposed bit-plane KV state shareable
//! across requests — but only inside one node. At fleet scale the planes
//! are *placed*: a request served by a node that already holds its
//! prompt's decomposed chunks skips KV prep entirely, while the same
//! request scattered to a cold node decomposes everything again. This
//! crate attacks exactly that placement problem:
//!
//! * [`Node`](pade_serve::node::Node) (extracted from `pade-serve`'s
//!   loop) — each worker owns its own scheduler, engine slots and
//!   [`KvCacheManager`](pade_cache::KvCacheManager), stepped in
//!   simulated lockstep cycles,
//! * [`route`](router::route) — one global clock: every arrival advances
//!   the fleet to its cycle, then lands on a node chosen by
//!   [`RoutePolicy`](policy::RoutePolicy) — **affinity** (returning
//!   sessions go home; new sessions follow their prompt's
//!   [`prefix_shard_key`](pade_cache::prefix_shard_key) to the node that
//!   first ingested that shard; cold requests take deterministic
//!   least-loaded placement) against the **round-robin** and
//!   **least-loaded** cache-blind baselines,
//! * [`FleetTierConfig`](router::FleetTierConfig) /
//!   [`DrainPlan`](router::DrainPlan) — the warm state itself moves:
//!   hot shards replicate their content-addressed chunk records to a
//!   second node (placement then balances across residents), and a
//!   drained node's shards migrate to wherever its traffic re-homes,
//!   with every transfer costed against the `pade-dist` interconnect
//!   model (accounting only — outputs stay byte-identical),
//! * [`RouterSummary`](metrics::RouterSummary) — per-node
//!   [`MetricsSummary`](pade_serve::metrics::MetricsSummary) digests
//!   merged exactly: pooled latency percentiles, fleet cache hit rates,
//!   per-node load imbalance,
//! * [`verify_partial_merge`](merge::verify_partial_merge) — reuses
//!   `pade-dist`'s mergeable `(m, l, O)` online-softmax states to prove
//!   the fleet's reduction step is bitwise-lossless: per query row, the
//!   owning node's state merged against every other node's neutral
//!   state reproduces the single-node result **byte for byte**, in any
//!   reduction order (placement and output correctness are pinned
//!   separately by byte-comparison against the single-node run).
//!
//! Placement is a scheduling decision, never a numerical one: per-request
//! outputs are byte-identical across every policy and node count, and
//! identical to the single-node seed-oracle run (property-tested in
//! `tests/`). What placement *does* change is who pays KV prep — the
//! `pade-bench --scenario route` sweep records affinity beating the
//! cache-blind baselines on exactly that.
//!
//! # Example
//!
//! ```
//! use pade_router::{route, RouterConfig, RoutePolicy};
//! use pade_serve::scheduler::ScheduleMode;
//! use pade_serve::server::ServeConfig;
//! use pade_workload::prompt::{generate_multi_tenant_arrivals, MultiTenantConfig};
//!
//! let arrivals = generate_multi_tenant_arrivals(&MultiTenantConfig::small_demo());
//! let node = ServeConfig { kv_chunk_tokens: 32, ..ServeConfig::standard() };
//! let fleet = RouterConfig::homogeneous(node, 2, RoutePolicy::Affinity);
//! let report = route(&fleet, &arrivals, ScheduleMode::Batched);
//! assert_eq!(report.completions_by_id().len(), arrivals.len());
//! // Multi-turn sessions returned to their home node and hit its cache.
//! assert!(report.summary.session_affinity_routes > 0);
//! assert!(report.summary.cache_hit_tokens > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merge;
pub mod metrics;
pub mod policy;
pub mod router;

pub use merge::verify_partial_merge;
pub use metrics::{merge_node_reports, RouterSummary};
pub use policy::{RouteDecision, RoutePolicy, RouteReason};
pub use router::{route, route_traced, DrainPlan, FleetTierConfig, RouterConfig, RouterReport};
