//! Observability invariants at fleet scale:
//!
//! 1. **Telemetry is a pure side channel** — `route_traced` with a
//!    recorder attached produces byte-identical per-request outputs and
//!    an identical fleet summary to the untraced `route` run, for every
//!    placement policy.
//! 2. **Span streams are well-formed and deterministic** — the merged
//!    router/serve/cache/engine stream has strictly nested begin/end
//!    pairs and monotone per-track clocks, and its fingerprint is
//!    identical at any `PADE_THREADS` (tracks are keyed by node id and
//!    logical dispatch index, never worker identity).
//! 3. **The on-disk stream is lossless at fleet scale** — the same run
//!    teed into a bounded-memory `StreamSink` reads back to the
//!    recorder's exact fingerprint, every request's causality chain is
//!    complete (place → admit → retire), and the assembled flight
//!    timelines match the fleet's native cycle accounting.

use std::collections::HashMap;
use std::sync::Arc;

use pade_router::{route, route_traced, RoutePolicy, RouterConfig};
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::ServeConfig;
use pade_trace::flight::{assemble_timelines, check_linked};
use pade_trace::{read_stream, Recorder, StreamSink, TraceSink, Tracer};
use pade_workload::prompt::{
    generate_multi_tenant_arrivals, MultiTenantConfig, SharedPrefixConfig,
};
use proptest::prelude::*;

/// Fans one event stream into both the in-memory recorder and the
/// on-disk stream sink, so one run feeds both parity sides.
struct Tee(Arc<Recorder>, Arc<StreamSink>);

impl TraceSink for Tee {
    fn submit(&self, track: u64, events: &[pade_trace::TraceEvent]) {
        self.0.submit(track, events);
        self.1.submit(track, events);
    }
}

/// A small multi-tenant workload: every request carries a prompt,
/// several sessions return for a second turn.
fn workload(seed: u64) -> Vec<pade_workload::trace::RequestArrival> {
    generate_multi_tenant_arrivals(&MultiTenantConfig {
        tenants: 2,
        sessions_per_tenant: 3,
        per_tenant: SharedPrefixConfig {
            pool_size: 1,
            turns_per_session: 2,
            shared_prefix_tokens: 48,
            unique_suffix_tokens: 12,
            turn_suffix_tokens: 12,
            decode_steps: 2,
            prefill_rows: 6,
            mean_interarrival_cycles: 2_000.0,
            turn_gap_cycles: 50_000,
            ..SharedPrefixConfig::small_demo()
        },
        seed,
    })
}

fn node_config() -> ServeConfig {
    ServeConfig { kv_chunk_tokens: 16, ..ServeConfig::standard() }
}

fn output_map(report: &pade_router::RouterReport) -> HashMap<usize, Vec<u8>> {
    report.completions_by_id().iter().map(|c| (c.id, c.output_bytes())).collect()
}

fn recording_tracer() -> (Arc<Recorder>, Tracer) {
    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn TraceSink>);
    (recorder, tracer)
}

/// Sweeps explicit worker counts via `PADE_THREADS`. All env twiddling
/// in this binary lives in this one test; the proptest below is
/// thread-count-agnostic, so concurrent execution never observes a
/// half-set variable.
#[test]
fn traced_route_is_identical_and_fingerprint_stable_across_worker_counts() {
    let arrivals = workload(2026);
    let fleet = RouterConfig::homogeneous(node_config(), 2, RoutePolicy::Affinity);
    let baseline = route(&fleet, &arrivals, ScheduleMode::Batched);
    let baseline_bytes = output_map(&baseline);

    // Tiny frames force many flushes, so the bounded-memory assertion
    // below actually exercises the frame boundary path.
    const FRAME: usize = 1024;
    let mut fingerprints = Vec::new();
    for workers in ["1", "2", "4"] {
        std::env::set_var("PADE_THREADS", workers);
        let stream_path = std::env::temp_dir()
            .join(format!("pade-router-tracing-{}-{workers}.padetrace", std::process::id()));
        let recorder = Arc::new(Recorder::new());
        let stream = Arc::new(StreamSink::with_frame_size(&stream_path, FRAME).unwrap());
        let tracer = Tracer::new(
            Arc::new(Tee(Arc::clone(&recorder), Arc::clone(&stream))) as Arc<dyn TraceSink>
        );
        let report = route_traced(&fleet, &arrivals, ScheduleMode::Batched, &tracer);
        assert_eq!(report.summary, baseline.summary, "workers={workers}");
        for completion in &report.completions_by_id() {
            assert!(
                completion.output_bytes() == baseline_bytes[&completion.id],
                "workers={workers}: tracing changed request {} output bytes",
                completion.id
            );
        }
        let snap = recorder.snapshot();
        snap.check_well_formed().unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        fingerprints.push(snap.fingerprint());

        // Stream parity: the file round-trips to the recorder's exact
        // fingerprint, with resident memory bounded by the frame size.
        stream.finish().unwrap_or_else(|e| panic!("workers={workers}: stream write: {e}"));
        assert!(
            stream.peak_buffered_bytes() <= FRAME,
            "workers={workers}: stream buffered {} bytes over the {FRAME}-byte frame",
            stream.peak_buffered_bytes()
        );
        let streamed = read_stream(&stream_path)
            .unwrap_or_else(|e| panic!("workers={workers}: stream read: {e}"));
        std::fs::remove_file(&stream_path).ok();
        streamed.check_well_formed().unwrap_or_else(|e| panic!("workers={workers}: {e}"));
        assert_eq!(
            streamed.fingerprint(),
            snap.fingerprint(),
            "workers={workers}: streamed snapshot diverged from the recorder"
        );

        if cfg!(feature = "trace") {
            let stages = snap.stage_names();
            assert!(stages.len() >= 6, "workers={workers}: stages {stages:?}");
            for expect in ["router.route", "serve.prefill", "cache.attach", "engine.qk_block"] {
                assert!(stages.contains(expect), "workers={workers}: missing {expect}");
            }
            // Causality + flight parity from the *streamed* snapshot: a
            // router trace must place every request, chain admit → retire,
            // and reproduce the fleet's native flight totals.
            let timelines = assemble_timelines(&streamed);
            check_linked(&timelines).unwrap_or_else(|e| panic!("workers={workers}: {e}"));
            assert!(
                timelines.iter().all(|t| t.placed),
                "workers={workers}: a request is missing its router placement hop"
            );
            let flight = report.summary.flight;
            assert_eq!(timelines.len() as u64, flight.requests, "workers={workers}");
            let sums = timelines.iter().fold([0u64; 5], |mut acc, t| {
                acc[0] += t.queue_cycles;
                acc[1] += t.prefill_cycles;
                acc[2] += t.decode_cycles;
                acc[3] += t.preempted_cycles;
                acc[4] += t.stalled_cycles;
                acc
            });
            assert_eq!(
                sums,
                [
                    flight.queue_cycles,
                    flight.prefill_cycles,
                    flight.decode_cycles,
                    flight.preempted_cycles,
                    flight.stalled_cycles
                ],
                "workers={workers}: assembled flight sums diverged from native accounting"
            );
        } else {
            assert_eq!(snap.event_count(), 0);
        }
    }
    std::env::remove_var("PADE_THREADS");
    assert!(
        fingerprints.windows(2).all(|w| w[0] == w[1]),
        "snapshot fingerprints varied with worker count: {fingerprints:?}"
    );
}

proptest! {
    /// Telemetry never changes a byte at fleet scale, for any seed,
    /// policy and node count.
    #[test]
    fn tracing_never_changes_fleet_outputs(
        seed in any::<u64>(),
        n_nodes in 1usize..4,
        policy in prop_oneof![
            Just(RoutePolicy::Affinity),
            Just(RoutePolicy::RoundRobin),
            Just(RoutePolicy::LeastLoaded),
        ],
    ) {
        let arrivals = workload(seed);
        let fleet = RouterConfig::homogeneous(node_config(), n_nodes, policy);
        let untraced = route(&fleet, &arrivals, ScheduleMode::Batched);
        let (recorder, tracer) = recording_tracer();
        let traced = route_traced(&fleet, &arrivals, ScheduleMode::Batched, &tracer);
        prop_assert_eq!(untraced.summary, traced.summary);
        let untraced_bytes = output_map(&untraced);
        for completion in &traced.completions_by_id() {
            prop_assert_eq!(&completion.output_bytes(), &untraced_bytes[&completion.id]);
        }
        prop_assert!(recorder.snapshot().check_well_formed().is_ok());
    }
}
