//! Serving-layer guarantees, property-tested:
//!
//! 1. **Scheduler determinism** — the serve loop is a pure function of
//!    (seed, configuration): same seed + same arrival trace ⇒ identical
//!    completion order and identical per-request output bytes, run after
//!    run.
//! 2. **Batched-vs-solo bit-identity** — batching is a scheduling
//!    decision, never a numerical one: every request served in a busy
//!    continuous batch produces byte-identical retained outputs to the
//!    same request run alone through the seed oracle
//!    `run_qk_block_reference`.

use pade_cache::CacheBudget;
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, Completion, ServeConfig, ServeReport};
use pade_serve::{output_bytes, reference_outputs};
use pade_workload::prompt::SharedPrefixConfig;
use pade_workload::trace::{generate_arrivals, ArrivalConfig};
use proptest::prelude::*;

/// A small, fast workload: tiny contexts, a handful of requests.
fn workload(seed: u64, n_requests: usize, mean_gap: f64) -> ArrivalConfig {
    ArrivalConfig {
        n_requests,
        mean_interarrival_cycles: mean_gap,
        decode_steps: 2,
        prefill_rows: 10, // not a pe_rows multiple: exercises ragged blocks
        seq_len: 128,
        seed,
        ..ArrivalConfig::small_demo()
    }
}

fn by_id(report: &ServeReport) -> Vec<&Completion> {
    let mut v: Vec<&Completion> = report.completions.iter().collect();
    v.sort_by_key(|c| c.id);
    v
}

/// A small shared-prefix / multi-turn workload whose requests carry
/// prompt token-id sequences (the prefix-cache serving regime).
fn prompt_workload(seed: u64) -> SharedPrefixConfig {
    SharedPrefixConfig {
        n_sessions: 3,
        turns_per_session: 2,
        shared_prefix_tokens: 40,
        unique_suffix_tokens: 12,
        turn_suffix_tokens: 12,
        decode_steps: 2,
        prefill_rows: 6,
        mean_interarrival_cycles: 2_000.0,
        turn_gap_cycles: 50_000,
        head_dim: 64,
        seed,
        ..SharedPrefixConfig::small_demo()
    }
}

proptest! {
    /// Same seed + same arrival trace ⇒ identical completion order and
    /// identical per-request output bytes, across repeated runs and
    /// across sequential vs threaded dispatch.
    #[test]
    fn serve_is_deterministic_per_seed(
        seed in any::<u64>(),
        n in 2usize..5,
        saturated in any::<bool>(),
        slots in 1usize..5,
    ) {
        let gap = if saturated { 400.0 } else { 4_000.0 };
        let arrivals = generate_arrivals(&workload(seed, n, gap));
        let config = ServeConfig {
            engine_slots: slots,
            ..ServeConfig::standard()
        };
        let a = serve(&config, &arrivals, ScheduleMode::Batched);
        let b = serve(&config, &arrivals, ScheduleMode::Batched);
        let c = serve(
            &ServeConfig { parallel_dispatch: false, ..config },
            &arrivals,
            ScheduleMode::Batched,
        );
        prop_assert_eq!(a.completion_order(), b.completion_order());
        prop_assert_eq!(a.completion_order(), c.completion_order());
        prop_assert_eq!(a.summary, b.summary);
        for ((x, y), z) in a.completions.iter().zip(&b.completions).zip(&c.completions) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.finished, y.finished);
            prop_assert_eq!(x.output_bytes(), y.output_bytes());
            prop_assert_eq!(x.output_bytes(), z.output_bytes());
        }
    }

    /// The fused multi-head dispatch is a scheduling change only: fused
    /// on/off × sequential/threaded dispatch all produce byte-identical
    /// completions in the same order.
    #[test]
    fn fused_dispatch_outputs_match_per_block_dispatch(
        seed in any::<u64>(),
        n in 2usize..5,
        saturated in any::<bool>(),
    ) {
        let gap = if saturated { 400.0 } else { 4_000.0 };
        let arrivals = generate_arrivals(&workload(seed, n, gap));
        let base = ServeConfig::standard();
        let combos = [
            ServeConfig { fused_dispatch: true, parallel_dispatch: true, ..base.clone() },
            ServeConfig { fused_dispatch: true, parallel_dispatch: false, ..base.clone() },
            ServeConfig { fused_dispatch: false, parallel_dispatch: true, ..base.clone() },
            ServeConfig { fused_dispatch: false, parallel_dispatch: false, ..base },
        ];
        let reports: Vec<_> = combos
            .iter()
            .map(|c| serve(c, &arrivals, ScheduleMode::Batched))
            .collect();
        for other in &reports[1..] {
            prop_assert_eq!(reports[0].completion_order(), other.completion_order());
            prop_assert_eq!(&reports[0].summary, &other.summary);
            for (a, b) in reports[0].completions.iter().zip(&other.completions) {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(a.finished, b.finished);
                prop_assert_eq!(a.output_bytes(), b.output_bytes());
            }
        }
    }

    /// Batched serving, solo serving and the solo seed oracle all produce
    /// byte-identical per-request outputs — under load (deep queues, full
    /// batches) as well as at low rates.
    #[test]
    fn batched_outputs_match_solo_oracle_bytes(
        seed in any::<u64>(),
        n in 2usize..4,
        saturated in any::<bool>(),
    ) {
        let gap = if saturated { 300.0 } else { 3_000.0 };
        let arrivals = generate_arrivals(&workload(seed, n, gap));
        let config = ServeConfig::standard();
        let batched = serve(&config, &arrivals, ScheduleMode::Batched);
        let solo = serve(&config, &arrivals, ScheduleMode::Solo);
        prop_assert_eq!(batched.completions.len(), arrivals.len());
        for (b, s) in by_id(&batched).iter().zip(by_id(&solo)) {
            prop_assert_eq!(b.id, s.id);
            prop_assert_eq!(b.output_bytes(), s.output_bytes());
        }
        for completion in by_id(&batched) {
            let spec = &arrivals[completion.id];
            prop_assert_eq!(spec.id, completion.id);
            let oracle = reference_outputs(spec, &config.engine);
            prop_assert_eq!(
                completion.output_bytes(),
                output_bytes(&oracle),
                "request {} diverged from its solo run_qk_block_reference run",
                completion.id
            );
        }
    }

    /// The growable KV cache's chunk size is a storage knob, never a
    /// numerical one: any positive `kv_chunk_tokens` yields byte-identical
    /// per-request outputs (chunk boundaries land differently, token
    /// planes do not change).
    #[test]
    fn kv_chunk_size_never_changes_outputs(
        seed in any::<u64>(),
        n in 2usize..4,
        chunk in 1usize..9,
    ) {
        let arrivals = generate_arrivals(&ArrivalConfig {
            decode_fraction: 1.0, // all decode: every session grows its cache
            ..workload(seed, n, 600.0)
        });
        let base = serve(&ServeConfig::standard(), &arrivals, ScheduleMode::Batched);
        let odd = serve(
            &ServeConfig { kv_chunk_tokens: chunk, ..ServeConfig::standard() },
            &arrivals,
            ScheduleMode::Batched,
        );
        prop_assert_eq!(base.completion_order(), odd.completion_order());
        for (a, b) in by_id(&base).iter().zip(by_id(&odd)) {
            prop_assert_eq!(a.output_bytes(), b.output_bytes());
        }
    }

    /// The prefix cache is a storage decision, never a numerical one:
    /// serving a shared-prefix / multi-turn workload with the cache on
    /// (unlimited or tightly budgeted) or off yields identical completion
    /// orders and byte-identical per-request outputs — and every request
    /// matches its solo `run_qk_block_reference` oracle run, which
    /// re-derives the prompt key rows from scratch and never touches a
    /// cache.
    #[test]
    fn prefix_cache_on_or_off_never_changes_outputs(
        seed in any::<u64>(),
        chunk in 1usize..9,
        tight in any::<bool>(),
    ) {
        let arrivals =
            pade_workload::prompt::generate_shared_prefix_arrivals(&prompt_workload(seed));
        let budget = if tight { CacheBudget::bytes(16 * 1024) } else { CacheBudget::unlimited() };
        let base = ServeConfig { kv_chunk_tokens: chunk, ..ServeConfig::standard() };
        let cached = serve(
            &ServeConfig { prefix_cache: Some(budget), ..base.clone() },
            &arrivals,
            ScheduleMode::Batched,
        );
        let uncached = serve(
            &ServeConfig { prefix_cache: None, ..base },
            &arrivals,
            ScheduleMode::Batched,
        );
        prop_assert_eq!(cached.completion_order(), uncached.completion_order());
        for (a, b) in by_id(&cached).iter().zip(by_id(&uncached)) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.output_bytes(), b.output_bytes());
        }
        // The cache actually engaged: multi-turn shared prefixes must hit.
        prop_assert!(cached.summary.cache_hit_tokens > 0);
        prop_assert_eq!(uncached.summary.cache_hit_tokens, 0);
        for completion in by_id(&cached) {
            let oracle = reference_outputs(&arrivals[completion.id], &ServeConfig::standard().engine);
            prop_assert_eq!(
                completion.output_bytes(),
                output_bytes(&oracle),
                "request {} diverged from its solo seed-oracle run",
                completion.id
            );
        }
    }

    /// Hit-aware admission is a scheduling knob, never a numerical one:
    /// reordering simultaneously-ready requests by predicted prefix hits
    /// changes (at most) completion order — every request's output bytes
    /// are identical with the flag on or off, and the flag never loses
    /// or duplicates a request.
    #[test]
    fn hit_aware_admission_never_changes_outputs(
        seed in any::<u64>(),
        slots in 1usize..4,
        saturated in any::<bool>(),
    ) {
        let mut workload = prompt_workload(seed);
        if saturated {
            // A burst: many requests ready at one admission instant, so
            // the hit-aware tie-break actually reorders.
            workload.mean_interarrival_cycles = 200.0;
            workload.turn_gap_cycles = 2_000;
        }
        let arrivals = pade_workload::prompt::generate_shared_prefix_arrivals(&workload);
        let base = ServeConfig { engine_slots: slots, ..ServeConfig::standard() };
        let fcfs = serve(&base, &arrivals, ScheduleMode::Batched);
        let aware = serve(
            &ServeConfig { hit_aware: true, ..base.clone() },
            &arrivals,
            ScheduleMode::Batched,
        );
        // Same request set, byte-identical outputs per request.
        pade_serve::assert_outputs_identical(&fcfs, &aware);
        prop_assert_eq!(fcfs.completions.len(), arrivals.len());
        prop_assert_eq!(aware.summary.tokens, fcfs.summary.tokens);
        // And deterministic: the aware schedule reproduces itself.
        let again = serve(
            &ServeConfig { hit_aware: true, ..base },
            &arrivals,
            ScheduleMode::Batched,
        );
        prop_assert_eq!(aware.completion_order(), again.completion_order());
        prop_assert_eq!(aware.summary, again.summary);
    }

    /// Throughput dominance: continuous batching never completes the same
    /// trace later than one-request-at-a-time.
    #[test]
    fn batched_never_slower_than_solo(seed in any::<u64>(), n in 2usize..5) {
        let arrivals = generate_arrivals(&workload(seed, n, 500.0));
        let config = ServeConfig::standard();
        let batched = serve(&config, &arrivals, ScheduleMode::Batched);
        let solo = serve(&config, &arrivals, ScheduleMode::Solo);
        prop_assert!(batched.summary.makespan <= solo.summary.makespan);
        prop_assert!(batched.summary.tokens_per_s >= solo.summary.tokens_per_s);
    }
}

/// A warm cache file changes KV-prep work, never outputs: a run that
/// loads the index a previous run saved produces byte-identical
/// per-request outputs while hitting on the very first request.
#[test]
fn cache_file_round_trip_preserves_outputs_and_warms_the_index() {
    let arrivals = pade_workload::prompt::generate_shared_prefix_arrivals(&prompt_workload(2026));
    let path = std::env::temp_dir().join("pade_serve_cache_file_test.bin");
    let _ = std::fs::remove_file(&path);
    // Chunk small enough that the 40-token pool prefixes actually seal
    // indexable chunks (the standard 64-token chunk would leave this tiny
    // workload's whole prompt in the private tail).
    let warm_config = ServeConfig {
        cache_file: Some(path.clone()),
        kv_chunk_tokens: 16,
        ..ServeConfig::standard()
    };

    // Cold run: builds and saves the index.
    let cold = serve(&warm_config, &arrivals, ScheduleMode::Batched);
    assert!(path.exists(), "the run must save its cache image");
    assert!(cold.summary.cache_decomposed_tokens > 0);

    // Warm run over the same trace: every pool prefix is already
    // resident, so strictly more tokens hit — and outputs are identical.
    let warm = serve(&warm_config, &arrivals, ScheduleMode::Batched);
    pade_serve::assert_outputs_identical(&cold, &warm);
    assert!(
        warm.summary.cache_hit_tokens > cold.summary.cache_hit_tokens,
        "warm {} vs cold {} hit tokens",
        warm.summary.cache_hit_tokens,
        cold.summary.cache_hit_tokens
    );
    assert_eq!(warm.completion_order(), cold.completion_order());

    // And against a no-file baseline, byte-identical too.
    let baseline = serve(
        &ServeConfig { kv_chunk_tokens: 16, ..ServeConfig::standard() },
        &arrivals,
        ScheduleMode::Batched,
    );
    pade_serve::assert_outputs_identical(&warm, &baseline);
    let _ = std::fs::remove_file(&path);
}

/// A saturated many-request run exercises deep queues, the token cap and
/// multi-iteration sessions at once; the completion order must still be a
/// permutation of the ids and FCFS-compatible per arrival time.
#[test]
fn saturated_run_completes_everything_deterministically() {
    let arrivals = generate_arrivals(&workload(2026, 12, 300.0));
    let config = ServeConfig { engine_slots: 3, max_batch_tokens: 12, ..ServeConfig::standard() };
    let a = serve(&config, &arrivals, ScheduleMode::Batched);
    let b = serve(&config, &arrivals, ScheduleMode::Batched);
    assert_eq!(a.completion_order(), b.completion_order());
    let mut ids = a.completion_order();
    ids.sort_unstable();
    assert_eq!(ids, (0..arrivals.len()).collect::<Vec<_>>());
    assert_eq!(a.summary.latency.count, arrivals.len());
    assert!(a.summary.queue_depth_max >= 2.0, "saturation must build a queue");
}
