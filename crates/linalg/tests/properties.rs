//! Crate-level property tests for the numeric substrate: softmax
//! identities, online-vs-batch agreement, subset-attention semantics and
//! metric sanity. Every fidelity claim in the evaluation rests on these.

use pade_linalg::attention::{attention_scores, dense_attention, subset_attention};
use pade_linalg::metrics::{
    cosine_similarity, geomean, relative_l2_error, retained_mass, topk_recall,
};
use pade_linalg::{softmax, MatF32, OnlineSoftmax};
use pade_testutil::vec_f32;
use proptest::prelude::*;

fn mat(rows: usize, cols: usize, seed: u64, span: f32) -> MatF32 {
    pade_testutil::mat_f32(rows, cols, seed, span)
}

proptest! {
    /// Softmax outputs are a probability distribution and invariant under
    /// a constant shift of the inputs.
    #[test]
    fn softmax_is_a_shift_invariant_distribution(
        n in 1usize..64,
        seed in any::<u64>(),
        shift in -50.0f32..50.0,
    ) {
        let x = vec_f32(n, seed, 10.0);
        let w = softmax(&x);
        let total: f32 = w.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4, "sum {total}");
        prop_assert!(w.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        let shifted: Vec<f32> = x.iter().map(|&v| v + shift).collect();
        for (a, b) in softmax(&shifted).iter().zip(&w) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// Softmax is monotone: a larger logit never gets a smaller weight.
    #[test]
    fn softmax_preserves_order(n in 2usize..40, seed in any::<u64>()) {
        let x = vec_f32(n, seed, 8.0);
        let w = softmax(&x);
        for i in 0..n {
            for j in 0..n {
                if x[i] > x[j] {
                    prop_assert!(w[i] >= w[j] - 1e-6);
                }
            }
        }
    }

    /// Online softmax over arbitrary tilings equals batch softmax
    /// attention, regardless of tile boundaries.
    #[test]
    fn online_softmax_matches_batch_for_any_tiling(
        n in 1usize..48,
        bc in 1usize..12,
        seed in any::<u64>(),
    ) {
        let h = 6usize;
        let scores = vec_f32(n, seed, 6.0);
        let values = mat(n, h, seed ^ 0xABCD, 1.0);
        let mut online = OnlineSoftmax::new(h);
        for (chunk_s, chunk_rows) in scores.chunks(bc).zip(
            (0..n).collect::<Vec<_>>().chunks(bc),
        ) {
            let rows: Vec<&[f32]> = chunk_rows.iter().map(|&j| values.row(j)).collect();
            online.update(chunk_s, &rows);
        }
        let got = online.finalize();
        let w = softmax(&scores);
        let mut expect = vec![0.0f32; h];
        for (j, &wi) in w.iter().enumerate() {
            for (o, &x) in expect.iter_mut().zip(values.row(j)) {
                *o += wi * x;
            }
        }
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// Retaining every key makes subset attention equal dense attention.
    #[test]
    fn subset_attention_with_all_keys_is_dense(
        s in 1usize..24,
        seed in any::<u64>(),
    ) {
        let h = 8usize;
        let q = mat(2, h, seed, 1.0);
        let k = mat(s, h, seed ^ 1, 1.0);
        let v = mat(s, h, seed ^ 2, 1.0);
        let scale = 1.0 / (h as f32).sqrt();
        let dense = dense_attention(&q, &k, &v, scale);
        let all: Vec<usize> = (0..s).collect();
        for row in 0..2 {
            let sub = subset_attention(q.row(row), &k, &v, scale, &all);
            for (a, b) in sub.iter().zip(dense.row(row)) {
                prop_assert!((a - b).abs() < 1e-4, "row {row}: {a} vs {b}");
            }
        }
    }

    /// Dropping only far-below-max keys moves the output very little: the
    /// quantitative form of Eq. 1 that the guard margin relies on.
    #[test]
    fn dropping_margin_keys_is_harmless(s in 4usize..32, seed in any::<u64>()) {
        let h = 8usize;
        let q = mat(1, h, seed, 1.0);
        let k = mat(s, h, seed ^ 3, 1.0);
        let v = mat(s, h, seed ^ 4, 1.0);
        let scale = 1.0 / (h as f32).sqrt();
        let scores = attention_scores(&q, &k, scale);
        let row = scores.row(0);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let margin = 5.0f32;
        let kept: Vec<usize> =
            (0..s).filter(|&j| row[j] > max - margin).collect();
        prop_assume!(!kept.is_empty());
        let pruned = subset_attention(q.row(0), &k, &v, scale, &kept);
        let all: Vec<usize> = (0..s).collect();
        let dense = subset_attention(q.row(0), &k, &v, scale, &all);
        // Total pruned mass is below s·e^{-margin}; the output error is of
        // the same order (values are O(1)).
        let bound = 2.0 * s as f32 * (-margin).exp();
        for (a, b) in pruned.iter().zip(&dense) {
            prop_assert!((a - b).abs() <= bound + 1e-5, "{a} vs {b} (bound {bound})");
        }
        prop_assert!(retained_mass(row, &kept) >= 1.0 - s as f32 * (-margin).exp() - 1e-4);
    }

    /// Metric sanity: cosine of a vector with itself is 1, with its
    /// negation −1; relative L2 of identical vectors is 0; geomean of a
    /// constant list is the constant.
    #[test]
    fn metric_identities(n in 1usize..32, seed in any::<u64>(), c in 0.1f64..10.0) {
        let x = vec_f32(n, seed, 5.0);
        prop_assume!(x.iter().any(|&v| v != 0.0));
        let neg: Vec<f32> = x.iter().map(|&v| -v).collect();
        prop_assert!((cosine_similarity(&x, &x) - 1.0).abs() < 1e-5);
        prop_assert!((cosine_similarity(&x, &neg) + 1.0).abs() < 1e-5);
        prop_assert_eq!(relative_l2_error(&x, &x), 0.0);
        let g = geomean(&vec![c; n]);
        prop_assert!((g - c).abs() < 1e-9 * c.max(1.0));
    }

    /// Retained mass and top-k recall are fractions, monotone in the
    /// retained set.
    #[test]
    fn mass_and_recall_are_monotone_fractions(
        s in 2usize..32,
        seed in any::<u64>(),
        k in 1usize..8,
    ) {
        let scores = vec_f32(s, seed, 4.0);
        let half: Vec<usize> = (0..s / 2).collect();
        let all: Vec<usize> = (0..s).collect();
        let m_half = retained_mass(&scores, &half);
        let m_all = retained_mass(&scores, &all);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&m_half));
        prop_assert!((m_all - 1.0).abs() < 1e-5);
        prop_assert!(m_all >= m_half - 1e-6);
        let k = k.min(s);
        let r_half = topk_recall(&scores, &half, k);
        let r_all = topk_recall(&scores, &all, k);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&r_half));
        prop_assert!((r_all - 1.0).abs() < 1e-6);
    }
}
