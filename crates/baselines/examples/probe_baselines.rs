//! Developer probe: baseline design behaviour on a mid-size trace.
use pade_baselines::{dota, energon, sanger, sofa, spatten, spatten_finetuned, Accelerator};
use pade_workload::trace::{AttentionTrace, TraceConfig};

fn main() {
    let t = AttentionTrace::generate(&TraceConfig { seq_len: 512, ..TraceConfig::small_demo() });
    for d in [sanger(), dota(), sofa(), energon(), spatten(), spatten_finetuned()] {
        let r = d.run(&t);
        println!(
            "{:10} keep={:.3} fid={:.4} mass={:.3} pred_adds={:9} exec_adds={:9} cyc={}",
            d.name(),
            r.stats.keep_ratio(),
            r.fidelity,
            r.retained_mass,
            r.stats.predictor_ops.equivalent_adds(),
            r.stats.ops.equivalent_adds(),
            r.stats.cycles.0
        );
    }
}
