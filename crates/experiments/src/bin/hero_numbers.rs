//! The headline numbers (§I / §VIII): PADE versus the H100 GPU and versus
//! the SOTA accelerators, geomeaned across the benchmark zoo.

use pade_baselines::{dota, sanger, sofa, Accelerator};
use pade_core::config::PadeConfig;
use pade_experiments::report::{banner, times, Table};
use pade_experiments::runner::{
    gpu_outcome, pade_end_to_end, run_baseline, run_pade, GpuMode, Workload,
};
use pade_linalg::metrics::geomean;
use pade_workload::{model, task};

fn main() {
    banner("Hero numbers", "PADE vs H100 and vs SOTA accelerators (geomean over zoo)");
    let pairs = vec![
        (model::llama2_7b(), task::wikilingua()),
        (model::llama2_7b(), task::dolly()),
        (model::llama3_8b(), task::wikilingua()),
        (model::opt_1b3(), task::wikilingua()),
        (model::bloom_1b7(), task::wikilingua()),
        (model::qwen_7b(), task::mbpp()),
        (model::vit_l16(), task::imagenet()),
        (model::pvt(), {
            let mut t = task::imagenet();
            t.seq_len = 3072;
            t
        }),
    ];
    let mut speedup_gpu = Vec::new();
    let mut eff_gpu = Vec::new();
    let mut energy_vs: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut gops_w = Vec::new();
    for (m, t) in &pairs {
        let w = Workload::new(*m, *t, 5000 + t.seq_len as u64);
        let (gpu_s, gpu_j) = gpu_outcome(&w, GpuMode::Flash);
        let (pade_s, pade_j, _) = pade_end_to_end(&w, &PadeConfig::aggressive());
        speedup_gpu.push(gpu_s / pade_s);
        eff_gpu.push(gpu_j / pade_j);
        let (_, pade_o) = run_pade(&w, PadeConfig::standard());
        gops_w.push(pade_o.gops_per_watt(&w));
        for d in [&sanger() as &dyn Accelerator, &dota(), &sofa()] {
            let (_, o) = run_baseline(&w, d);
            energy_vs
                .entry(match d.name() {
                    "Sanger" => "Sanger",
                    "DOTA" => "DOTA",
                    _ => "SOFA",
                })
                .or_default()
                .push(o.energy.total_pj() / pade_o.energy.total_pj());
        }
    }
    // Iso-silicon normalization (H100 ~814 mm² vs PADE 4.53 mm²): the
    // per-area basis under which a 0.6 W accelerator can meaningfully be
    // compared against a 700 W GPU.
    let area = 814.0 / 4.53;
    let mut table = Table::new(vec!["metric", "measured", "paper"]);
    table.row(vec![
        "raw latency ratio vs H100 (single die)".into(),
        times(geomean(&speedup_gpu)),
        "-".into(),
    ]);
    table.row(vec![
        "area-normalized speedup vs H100".into(),
        times(geomean(&speedup_gpu) * area),
        "7.43x".into(),
    ]);
    table.row(vec!["energy efficiency vs H100".into(), times(geomean(&eff_gpu)), "31.1x".into()]);
    table.row(vec![
        "energy saving vs Sanger".into(),
        times(geomean(&energy_vs["Sanger"])),
        "5.1x".into(),
    ]);
    table.row(vec![
        "energy saving vs DOTA".into(),
        times(geomean(&energy_vs["DOTA"])),
        "4.3x".into(),
    ]);
    table.row(vec![
        "energy saving vs SOFA".into(),
        times(geomean(&energy_vs["SOFA"])),
        "3.4x".into(),
    ]);
    table.row(vec![
        "avg energy efficiency".into(),
        format!("{:.0} GOPS/W", geomean(&gops_w)),
        "11740 GOPS/W".into(),
    ]);
    println!("{}", table.render());
    println!("The ordering (PADE > SOFA > DOTA ≈ Sanger on energy; PADE ahead of");
    println!("the GPU on both axes) is the reproduced shape; absolute factors");
    println!("depend on the substituted substrates (see EXPERIMENTS.md).");
}
