//! DRAM data layouts for the key tensor (Fig. 22).
//!
//! PADE's fetch granularity is *(token, bit-plane)*. How those objects map
//! onto channels/banks/rows decides both the useful fraction of every burst
//! and the row-buffer hit rate:
//!
//! * [`KeyLayout::ValueRowMajor`] — the conventional layout (all 8 bits of a
//!   key element contiguous). Reading one bit plane of a token drags the
//!   token's entire value row across the bus; only `1/bits` of the data is
//!   useful. This is the "PADE w/o DL" configuration of Fig. 23(b).
//! * [`KeyLayout::BitPlaneInterleaved`] — the paper's co-designed layout:
//!   each bank stores one bit plane, consecutive tokens' planes are packed
//!   into the same row. Plane fetches are compact and streaming fetches hit
//!   the open row.

use crate::{HbmConfig, PhysLoc};

/// Where a (token, plane) fetch lands and how many bytes it must move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaneFetch {
    /// Physical DRAM location of the fetch.
    pub loc: PhysLoc,
    /// Bytes that must cross the bus to obtain the plane.
    pub bytes: u64,
    /// Bytes of that transfer actually consumed by the compute pipeline.
    pub useful_bytes: u64,
}

/// DRAM layout of the key tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KeyLayout {
    /// Conventional value-major layout: one token's 8-bit elements are
    /// contiguous; bit planes are not separable on the bus.
    ValueRowMajor,
    /// Bit planes stored as separate objects but packed linearly with no
    /// bank awareness: every plane of a channel's tokens shares one bank,
    /// so out-of-order plane fetches thrash the row buffer. This is the
    /// "PADE w/o DL" configuration of Fig. 23(b).
    BitPlaneLinear,
    /// PADE's bit-plane-interleaved layout (Fig. 22): bank ← plane index,
    /// row ← packed stream of consecutive tokens' plane slices.
    #[default]
    BitPlaneInterleaved,
}

impl KeyLayout {
    /// Maps a fetch of plane `plane` of token `token` (vectors of `dims`
    /// elements at `bits` precision) onto the DRAM geometry in `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `plane >= bits` or `dims == 0`.
    #[must_use]
    pub fn plane_fetch(
        &self,
        token: usize,
        plane: u32,
        dims: usize,
        bits: u32,
        cfg: &HbmConfig,
    ) -> PlaneFetch {
        assert!(plane < bits, "plane {plane} out of range for {bits}-bit keys");
        assert!(dims > 0, "dims must be positive");
        let plane_bytes = (dims as u64).div_ceil(8);
        match self {
            KeyLayout::ValueRowMajor => {
                // The token's full value row must be transferred to extract
                // any single plane.
                let value_bytes = (dims as u64) * u64::from(bits) / 8;
                let channel = token % cfg.channels;
                let per_channel_idx = (token / cfg.channels) as u64;
                let bank = (per_channel_idx % cfg.banks_per_channel as u64) as usize;
                let row_capacity_tokens = (cfg.row_bytes / value_bytes.max(1)).max(1);
                let row = per_channel_idx / cfg.banks_per_channel as u64 / row_capacity_tokens;
                PlaneFetch {
                    loc: PhysLoc { channel, bank, row },
                    bytes: value_bytes,
                    useful_bytes: plane_bytes,
                }
            }
            KeyLayout::BitPlaneLinear => {
                // Planes are compact but all land in bank 0 of the token's
                // channel, with (token, plane) pairs packed lexicographically
                // into rows — interleaved plane fetches evict each other.
                let channel = token % cfg.channels;
                let per_channel_idx = (token / cfg.channels) as u64;
                let slices_per_row = (cfg.row_bytes / plane_bytes.max(1)).max(1);
                let row = (per_channel_idx * u64::from(bits) + u64::from(plane)) / slices_per_row;
                PlaneFetch {
                    loc: PhysLoc { channel, bank: 0, row },
                    bytes: plane_bytes,
                    useful_bytes: plane_bytes,
                }
            }
            KeyLayout::BitPlaneInterleaved => {
                // Bank ← plane, channel ← token stripe, row ← packed tokens.
                let channel = token % cfg.channels;
                let bank = (plane as usize) % cfg.banks_per_channel;
                let per_channel_idx = (token / cfg.channels) as u64;
                let tokens_per_row = (cfg.row_bytes / plane_bytes.max(1)).max(1);
                let row = per_channel_idx / tokens_per_row;
                PlaneFetch {
                    loc: PhysLoc { channel, bank, row },
                    bytes: plane_bytes,
                    useful_bytes: plane_bytes,
                }
            }
        }
    }

    /// Human-readable name used in experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            KeyLayout::ValueRowMajor => "value-row-major",
            KeyLayout::BitPlaneLinear => "bit-plane-linear (w/o DL)",
            KeyLayout::BitPlaneInterleaved => "bit-plane-interleaved",
        }
    }
}

/// Layout of the Q and V tensors: bank-interleaved along the hidden
/// dimension so 8-bit data streams contiguously (Fig. 22, "QV region").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct QvLayout;

impl QvLayout {
    /// Maps a full-row fetch of token `token` (`dims` elements × `bits`).
    #[must_use]
    pub fn row_fetch(&self, token: usize, dims: usize, bits: u32, cfg: &HbmConfig) -> PlaneFetch {
        let bytes = (dims as u64) * u64::from(bits) / 8;
        let channel = token % cfg.channels;
        let per_channel_idx = (token / cfg.channels) as u64;
        let bank = (per_channel_idx % cfg.banks_per_channel as u64) as usize;
        let rows_capacity = (cfg.row_bytes / bytes.max(1)).max(1);
        let row = per_channel_idx / cfg.banks_per_channel as u64 / rows_capacity;
        PlaneFetch { loc: PhysLoc { channel, bank, row }, bytes, useful_bytes: bytes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HbmModel;
    use pade_sim::Cycle;

    const DIMS: usize = 64;

    #[test]
    fn interleaved_plane_fetch_is_compact() {
        let cfg = HbmConfig::default();
        let f = KeyLayout::BitPlaneInterleaved.plane_fetch(0, 0, DIMS, 8, &cfg);
        assert_eq!(f.bytes, 8); // 64 dims / 8 = 8 bytes
        assert_eq!(f.useful_bytes, 8);
    }

    #[test]
    fn value_major_plane_fetch_drags_whole_row() {
        let cfg = HbmConfig::default();
        let f = KeyLayout::ValueRowMajor.plane_fetch(0, 0, DIMS, 8, &cfg);
        assert_eq!(f.bytes, 64); // full 8-bit value row
        assert_eq!(f.useful_bytes, 8); // only one plane useful
    }

    #[test]
    fn interleaved_assigns_planes_to_distinct_banks() {
        let cfg = HbmConfig::default();
        let banks: Vec<usize> = (0..8)
            .map(|r| KeyLayout::BitPlaneInterleaved.plane_fetch(0, r, DIMS, 8, &cfg).loc.bank)
            .collect();
        let mut unique = banks.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 8, "each plane should land in its own bank: {banks:?}");
    }

    #[test]
    fn interleaved_streaming_same_plane_hits_rows() {
        // Streaming the MSB plane over many tokens should be row-hit heavy
        // under the co-designed layout and activation-heavy without it.
        let cfg = HbmConfig::default();
        let mut with_dl = HbmModel::new(cfg);
        let mut without_dl = HbmModel::new(cfg);
        let mut t = Cycle::ZERO;
        for token in 0..512 {
            let f = KeyLayout::BitPlaneInterleaved.plane_fetch(token, 0, DIMS, 8, &cfg);
            t = with_dl.access(f.loc, f.bytes, t).complete;
        }
        let mut t2 = Cycle::ZERO;
        for token in 0..512 {
            let f = KeyLayout::ValueRowMajor.plane_fetch(token, 0, DIMS, 8, &cfg);
            t2 = without_dl.access(f.loc, f.bytes, t2).complete;
        }
        assert!(
            with_dl.row_hit_rate() > without_dl.row_hit_rate(),
            "DL hit rate {} should exceed no-DL {}",
            with_dl.row_hit_rate(),
            without_dl.row_hit_rate()
        );
        assert!(with_dl.traffic().dram_read_bytes < without_dl.traffic().dram_read_bytes);
    }

    #[test]
    fn value_major_refetching_same_token_hits_row() {
        let cfg = HbmConfig::default();
        let layout = KeyLayout::ValueRowMajor;
        let a = layout.plane_fetch(5, 0, DIMS, 8, &cfg);
        let b = layout.plane_fetch(5, 3, DIMS, 8, &cfg);
        assert_eq!(a.loc, b.loc, "all planes of one token share a location");
    }

    #[test]
    fn qv_rows_are_contiguous_and_full_width() {
        let cfg = HbmConfig::default();
        let f = QvLayout.row_fetch(3, DIMS, 8, &cfg);
        assert_eq!(f.bytes, 64);
        assert_eq!(f.useful_bytes, 64);
        let g = QvLayout.row_fetch(3 + cfg.channels, DIMS, 8, &cfg);
        assert_eq!(f.loc.channel, g.loc.channel);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn plane_index_validated() {
        let cfg = HbmConfig::default();
        let _ = KeyLayout::BitPlaneInterleaved.plane_fetch(0, 8, DIMS, 8, &cfg);
    }
}

#[cfg(test)]
mod linear_layout_tests {
    use super::*;
    use crate::HbmModel;
    use pade_sim::Cycle;

    #[test]
    fn linear_layout_mixes_planes_into_one_bank() {
        let cfg = HbmConfig::default();
        let a = KeyLayout::BitPlaneLinear.plane_fetch(0, 0, 64, 8, &cfg);
        let b = KeyLayout::BitPlaneLinear.plane_fetch(16, 3, 64, 8, &cfg);
        assert_eq!(a.loc.bank, b.loc.bank, "all planes share a bank without DL");
        assert_eq!(a.bytes, 8, "plane fetches stay compact");
    }

    #[test]
    fn interleaved_layout_beats_linear_on_mixed_plane_streams() {
        // An OOE-like access pattern: 128 lanes keep ~hundreds of tokens in
        // flight across all 8 planes, so requests arrive scattered in both
        // token and plane. With bank-aware interleaving each plane owns a
        // bank and its row stays open; packed-linear planes share a bank
        // and evict each other's rows.
        let cfg = HbmConfig::default();
        let mut linear = HbmModel::new(cfg);
        let mut interleaved = HbmModel::new(cfg);
        let (mut ta, mut tb) = (Cycle::ZERO, Cycle::ZERO);
        let mut state = 0x12345678u64;
        for _ in 0..2048 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let token = ((state >> 33) % 2048) as usize;
            let plane = ((state >> 21) % 8) as u32;
            let f = KeyLayout::BitPlaneLinear.plane_fetch(token, plane, 64, 8, &cfg);
            ta = linear.access(f.loc, f.bytes, ta).complete;
            let g = KeyLayout::BitPlaneInterleaved.plane_fetch(token, plane, 64, 8, &cfg);
            tb = interleaved.access(g.loc, g.bytes, tb).complete;
        }
        assert!(
            interleaved.row_hit_rate() > linear.row_hit_rate() + 0.2,
            "DL hit rate {} should beat linear {}",
            interleaved.row_hit_rate(),
            linear.row_hit_rate()
        );
    }
}
