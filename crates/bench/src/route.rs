//! The `route` scenario: prefix-affinity routing vs cache-blind
//! placement across 1/2/4/8 serving nodes.
//!
//! At fleet scale the decomposed KV planes are *placed*: a request
//! landing on a node that already ingested its prompt's leading chunks
//! skips KV prep, while the same request scattered to a cold node
//! decomposes everything again — once **per node** the shard touches.
//! [`run_route_matrix`] replays one seeded multi-tenant shared-prefix
//! workload through `pade-router` under the three policies
//! ([`RoutePolicy::Affinity`], [`RoutePolicy::RoundRobin`],
//! [`RoutePolicy::LeastLoaded`]) at each node count, and per point:
//!
//! * hard-checks every request's outputs are **byte-identical** to the
//!   single-node `serve` run (placement never changes outputs) and
//!   spot-checks requests against the solo seed oracle
//!   `run_qk_block_reference`,
//! * runs the `pade-dist` `(m, l, O)` merge proof over the fleet's
//!   states ([`verify_partial_merge`]),
//! * replays each node's admission sequence through a fresh
//!   `KvCacheManager`, timing attach/detach — the fleet's real KV-prep
//!   wall clock under that placement,
//! * records fleet hit/decomposed tokens, pooled latency percentiles
//!   and load imbalance.
//!
//! [`write_route_json`] serializes the sweep to the `BENCH_<n>.json`
//! trajectory schema (`BENCH_5.json` records the routing PR): affinity
//! must beat round-robin on aggregate prefix-hit chunks and KV-prep
//! time at every node count ≥ 2.
//!
//! [`run_route_trace_profile`] additionally replays the workload with a
//! `pade-trace` recorder attached (byte-checking that telemetry changes
//! nothing), folds the recorded stream into a per-stage
//! [`StageBreakdown`], and times the tracing overhead on the headline
//! `prefill_s1024_h128` engine shape — the `"trace"` section of the
//! trajectory file (`BENCH_7.json` records the observability PR).

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pade_cache::CacheConfig;
use pade_core::config::PadeConfig;
use pade_core::engine::{run_qk_blocks_par, run_qk_blocks_par_traced};
use pade_quant::BitPlaneMatrix;
use pade_router::{
    route, route_traced, verify_partial_merge, RoutePolicy, RouterConfig, RouterReport,
};
use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, ServeConfig};
use pade_serve::{output_bytes, reference_outputs};
use pade_trace::{track as trace_track, Recorder, StageBreakdown, TraceSnapshot, Tracer};
use pade_workload::prompt::{
    generate_multi_tenant_arrivals, MultiTenantConfig, SharedPrefixConfig,
};
use pade_workload::trace::RequestArrival;

use crate::prep::{prepare, PreparedRequest};
use crate::{time_best_of, trace_for, ShapeSpec};

/// The three policies every node count is swept over.
const POLICIES: [RoutePolicy; 3] =
    [RoutePolicy::Affinity, RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded];

/// Measured outcome of one (node count, policy) point.
#[derive(Debug, Clone)]
pub struct RoutePointResult {
    /// Nodes in the fleet.
    pub n_nodes: usize,
    /// The placement policy.
    pub policy: RoutePolicy,
    /// Prompt tokens served from resident planes, fleet-wide — index
    /// chunk adoptions *and* session-resume coverage alike.
    pub hit_tokens: u64,
    /// The same hits normalized to chunk units (`hit_tokens` ÷
    /// `chunk_tokens`) — a chunk-equivalent count for cross-node-count
    /// comparison, not a literal tally of index-chunk adoptions (resume
    /// coverage is not chunk-aligned).
    pub hit_chunks: u64,
    /// Prompt tokens decomposed at admission, fleet-wide.
    pub decomposed_tokens: u64,
    /// Wall-clock seconds of the per-node KV-prep replay (attach +
    /// detach of every routed request, summed over nodes).
    pub kv_prep_wall_s: f64,
    /// Wall-clock seconds of the routed serve run itself.
    pub route_wall_s: f64,
    /// Median request latency in cycles, pooled across nodes.
    pub p50_cycles: u64,
    /// 99th-percentile request latency in cycles, pooled across nodes.
    pub p99_cycles: u64,
    /// Fleet tokens per simulated second.
    pub tokens_per_s: f64,
    /// `max/mean` of per-node served tokens (1.0 = perfectly even).
    pub load_imbalance: f64,
    /// Routing decisions placed by session affinity.
    pub session_affinity_routes: u64,
    /// Routing decisions placed by prefix-shard affinity.
    pub prefix_affinity_routes: u64,
    /// Query rows covered by the `(m, l, O)` shard-merge proof.
    pub merge_rows_checked: usize,
    /// Whether fleet outputs matched the single-node run and the sampled
    /// seed-oracle runs byte-for-byte (hard-checked; a mismatch panics
    /// before this is recorded false).
    pub bit_identical: bool,
}

/// A finished route sweep.
#[derive(Debug, Clone)]
pub struct RouteSweep {
    /// The workload every point replayed.
    pub workload: MultiTenantConfig,
    /// Tokens per sealed cache chunk (the shard-key granularity).
    pub chunk_tokens: usize,
    /// One entry per (node count, policy), node counts ascending.
    pub points: Vec<RoutePointResult>,
    /// Stage attribution + tracing-overhead check of the traced replay.
    pub trace: RouteTraceProfile,
}

/// Stage attribution and overhead check of the traced route replay —
/// the `"trace"` section of the route `BENCH_<n>.json` trajectory.
///
/// Without the `trace` feature the recorder is compiled out:
/// `feature_enabled` is false, the breakdown is empty, and the overhead
/// is 0% by construction (the guarded telemetry folds away).
#[derive(Debug, Clone)]
pub struct RouteTraceProfile {
    /// Whether the recorder was compiled in (`trace` feature).
    pub feature_enabled: bool,
    /// Events recorded by the traced affinity replay.
    pub events: usize,
    /// Spans recorded by the traced affinity replay.
    pub spans: usize,
    /// Distinct stage names observed across the replay, sorted.
    pub stage_names: Vec<String>,
    /// Per-stage cycle/wall attribution of the replay.
    pub breakdown: StageBreakdown,
    /// The raw recorded stream (for `--trace-out` Chrome export).
    pub snapshot: TraceSnapshot,
    /// The engine shape the overhead was measured on.
    pub overhead_shape: String,
    /// Best-of wall seconds of the untraced engine run on that shape.
    pub untraced_wall_s: f64,
    /// Best-of wall seconds of the same run with a recorder attached.
    pub recorder_wall_s: f64,
    /// `recorder_wall_s / untraced_wall_s − 1`, clamped at zero.
    pub overhead_frac: f64,
}

/// Times the parallel engine on one shape untraced vs with a recorder
/// sink attached; returns `(shape_id, untraced_wall_s, recorder_wall_s)`.
///
/// The full sweep measures the headline `prefill_s1024_h128` shape;
/// `quick` drops to `prefill_s256_h64` for CI smoke runs.
fn measure_engine_overhead(quick: bool) -> (String, f64, f64) {
    let spec = if quick {
        ShapeSpec { phase: "prefill", seq_len: 256, head_dim: 64, query_rows: 16 }
    } else {
        ShapeSpec { phase: "prefill", seq_len: 1024, head_dim: 128, query_rows: 64 }
    };
    let config = PadeConfig::standard();
    let trace = trace_for(&spec);
    let keys = BitPlaneMatrix::from_rows(trace.keys().as_slice(), trace.keys().cols(), config.bits)
        .expect("key bit planes");
    let queries: Vec<&[i8]> = (0..trace.queries().rows()).map(|i| trace.queries().row(i)).collect();
    let scale = trace.logit_scale();
    let iters = if quick { 3 } else { 5 };

    let (base, untraced_wall_s) =
        time_best_of(iters, || run_qk_blocks_par(&config, &queries, &keys, scale));
    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn pade_trace::TraceSink>);
    let base_track = trace_track::id(trace_track::ENGINE, 0, 0);
    let (traced, recorder_wall_s) = time_best_of(iters, || {
        // Each iteration records into an empty sink, so every run pays
        // the same submission cost.
        recorder.clear();
        run_qk_blocks_par_traced(&config, &queries, &keys, scale, &tracer, base_track)
    });
    assert_eq!(base, traced, "tracing changed engine results on {}", spec.id());
    (spec.id(), untraced_wall_s, recorder_wall_s)
}

/// Replays the route workload once more with a recorder attached (2-node
/// affinity fleet), byte-checks the traced run against the untraced one,
/// and times the tracing overhead on the headline engine shape.
///
/// # Panics
///
/// Panics if the traced replay's outputs diverge from the untraced run
/// (telemetry must never change a byte) or the recorded stream is
/// malformed.
#[must_use]
pub fn run_route_trace_profile(quick: bool) -> RouteTraceProfile {
    let (workload, chunk_tokens) = route_workload(quick);
    let arrivals = generate_multi_tenant_arrivals(&workload);
    let node = ServeConfig { kv_chunk_tokens: chunk_tokens, ..ServeConfig::standard() };
    let fleet = RouterConfig::homogeneous(node, 2, RoutePolicy::Affinity);

    let untraced = route(&fleet, &arrivals, ScheduleMode::Batched);
    let recorder = Arc::new(Recorder::new());
    let tracer = Tracer::new(Arc::clone(&recorder) as Arc<dyn pade_trace::TraceSink>);
    let traced = route_traced(&fleet, &arrivals, ScheduleMode::Batched, &tracer);

    let untraced_bytes: HashMap<usize, Vec<u8>> =
        untraced.completions_by_id().iter().map(|c| (c.id, c.output_bytes())).collect();
    let traced_completions = traced.completions_by_id();
    assert_eq!(traced_completions.len(), arrivals.len(), "traced replay lost requests");
    for completion in &traced_completions {
        assert!(
            completion.output_bytes() == untraced_bytes[&completion.id],
            "request {}: tracing changed an output byte",
            completion.id
        );
    }
    let snapshot = recorder.snapshot();
    snapshot.check_well_formed().unwrap_or_else(|e| panic!("malformed trace: {e}"));

    let (overhead_shape, untraced_wall_s, recorder_wall_s) = measure_engine_overhead(quick);
    let overhead_frac = if untraced_wall_s > 0.0 {
        (recorder_wall_s / untraced_wall_s - 1.0).max(0.0)
    } else {
        0.0
    };
    RouteTraceProfile {
        feature_enabled: tracer.is_active(),
        events: snapshot.event_count(),
        spans: snapshot.span_count(),
        stage_names: snapshot.stage_names().into_iter().map(str::to_string).collect(),
        breakdown: snapshot.breakdown(),
        snapshot,
        overhead_shape,
        untraced_wall_s,
        recorder_wall_s,
        overhead_frac,
    }
}

/// Node counts of the sweep. `quick` trims for CI smoke runs.
#[must_use]
pub fn node_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

/// The multi-tenant workload behind the sweep: one long shared prefix
/// per tenant (the decomposition-heavy asset affinity keeps resident),
/// several sessions per tenant, each returning for a second turn.
#[must_use]
pub fn route_workload(quick: bool) -> (MultiTenantConfig, usize) {
    if quick {
        let workload = MultiTenantConfig {
            tenants: 2,
            sessions_per_tenant: 3,
            per_tenant: SharedPrefixConfig {
                turns_per_session: 2,
                pool_size: 1,
                shared_prefix_tokens: 96,
                unique_suffix_tokens: 16,
                turn_suffix_tokens: 16,
                decode_steps: 2,
                prefill_fraction: 0.25,
                prefill_rows: 8,
                mean_interarrival_cycles: 2_000.0,
                turn_gap_cycles: 100_000,
                ..SharedPrefixConfig::small_demo()
            },
            seed: 2026,
        };
        return (workload, 32);
    }
    let workload = MultiTenantConfig {
        tenants: 4,
        sessions_per_tenant: 6,
        per_tenant: SharedPrefixConfig {
            turns_per_session: 2,
            pool_size: 1,
            shared_prefix_tokens: 1024,
            unique_suffix_tokens: 64,
            turn_suffix_tokens: 64,
            decode_steps: 8,
            prefill_fraction: 0.25,
            prefill_rows: 8,
            mean_interarrival_cycles: 4_000.0,
            turn_gap_cycles: 400_000,
            ..SharedPrefixConfig::small_demo()
        },
        seed: 2026,
    };
    (workload, 64)
}

/// Replays each node's routed admission sequence through a fresh cache
/// manager (the shared [`crate::prep::replay_manager`] loop), attach +
/// detach per request in arrival order — the fleet's KV-prep wall clock
/// under this placement.
fn kv_prep_replay(
    report: &RouterReport,
    requests: &[PreparedRequest],
    cache_config: CacheConfig,
    n_nodes: usize,
) -> f64 {
    let placement = report.placement();
    let mut per_node: Vec<Vec<&PreparedRequest>> = vec![Vec::new(); n_nodes];
    for req in requests {
        per_node[placement[&req.id]].push(req);
    }
    let start = Instant::now();
    for node_requests in &per_node {
        crate::prep::replay_manager(node_requests.iter().copied(), cache_config);
    }
    start.elapsed().as_secs_f64()
}

/// Runs one (node count, policy) point: routed serve, identity checks,
/// merge proof, KV-prep replay.
///
/// # Panics
///
/// Panics if any request's fleet output diverges from `single_bytes`
/// (the single-node run) or a sampled request diverges from the seed
/// oracle.
fn run_route_point(
    arrivals: &[RequestArrival],
    requests: &[PreparedRequest],
    node: &ServeConfig,
    n_nodes: usize,
    policy: RoutePolicy,
    single_bytes: &HashMap<usize, Vec<u8>>,
) -> RoutePointResult {
    let fleet = RouterConfig::homogeneous(node.clone(), n_nodes, policy);
    let start = Instant::now();
    let report = route(&fleet, arrivals, ScheduleMode::Batched);
    let route_wall_s = start.elapsed().as_secs_f64();

    // Byte-identity against the single-node run, for every request.
    let completions = report.completions_by_id();
    assert_eq!(completions.len(), arrivals.len(), "{} lost requests", policy.label());
    for completion in &completions {
        assert!(
            completion.output_bytes() == single_bytes[&completion.id],
            "{} nodes under {}: request {} diverged from the single-node run",
            n_nodes,
            policy.label(),
            completion.id
        );
    }
    // Spot-check against the solo seed oracle (the single-node map is
    // itself oracle-checked once by the caller; this pins the fleet path
    // directly too).
    let check_every = (arrivals.len() / 2).max(1);
    for completion in completions.iter().step_by(check_every) {
        let oracle = reference_outputs(&arrivals[completion.id], &node.engine);
        assert!(
            completion.output_bytes() == output_bytes(&oracle),
            "{} nodes under {}: request {} diverged from the seed oracle",
            n_nodes,
            policy.label(),
            completion.id
        );
    }
    let merge_rows_checked = verify_partial_merge(&report, 8);

    let cache_config =
        CacheConfig::new(arrivals[0].trace.head_dim, node.engine.bits, node.kv_chunk_tokens.max(1));
    let kv_prep_wall_s = kv_prep_replay(&report, requests, cache_config, n_nodes);

    let s = &report.summary;
    RoutePointResult {
        n_nodes,
        policy,
        hit_tokens: s.cache_hit_tokens,
        hit_chunks: s.cache_hit_tokens / node.kv_chunk_tokens.max(1) as u64,
        decomposed_tokens: s.cache_decomposed_tokens,
        kv_prep_wall_s,
        route_wall_s,
        p50_cycles: s.latency.p50.0,
        p99_cycles: s.latency.p99.0,
        tokens_per_s: s.tokens_per_s,
        load_imbalance: s.load_imbalance,
        session_affinity_routes: s.session_affinity_routes,
        prefix_affinity_routes: s.prefix_affinity_routes,
        merge_rows_checked,
        bit_identical: true,
    }
}

/// Runs the full sweep: every policy at every node count, all against
/// one oracle-checked single-node baseline.
///
/// # Panics
///
/// Panics on any byte-identity violation, and — the headline claim — if
/// affinity fails to beat round-robin on hit chunks at any node count
/// ≥ 2.
#[must_use]
pub fn run_route_matrix(quick: bool) -> RouteSweep {
    let (workload, chunk_tokens) = route_workload(quick);
    let arrivals = generate_multi_tenant_arrivals(&workload);
    let node = ServeConfig { kv_chunk_tokens: chunk_tokens, ..ServeConfig::standard() };
    let requests = prepare(&arrivals, workload.per_tenant.head_dim, node.engine.bits);

    // The single-node baseline, checked against the seed oracle once.
    let single = serve(&node, &arrivals, ScheduleMode::Batched);
    let single_bytes: HashMap<usize, Vec<u8>> =
        single.completions.iter().map(|c| (c.id, c.output_bytes())).collect();
    let oracle_every = (arrivals.len() / 3).max(1);
    for spec in arrivals.iter().step_by(oracle_every) {
        let oracle = reference_outputs(spec, &node.engine);
        assert!(
            single_bytes[&spec.id] == output_bytes(&oracle),
            "single-node request {} diverged from the seed oracle",
            spec.id
        );
    }

    let mut points = Vec::new();
    for n_nodes in node_counts(quick) {
        for policy in POLICIES {
            points.push(run_route_point(
                &arrivals,
                &requests,
                &node,
                n_nodes,
                policy,
                &single_bytes,
            ));
        }
    }

    // The headline claim, enforced not just recorded: at every multi-node
    // count, affinity serves strictly more chunks from resident planes
    // than tenant-blind rotation.
    for n_nodes in node_counts(quick) {
        if n_nodes < 2 {
            continue;
        }
        let by = |p: RoutePolicy| {
            points
                .iter()
                .find(|r| r.n_nodes == n_nodes && r.policy == p)
                .expect("every point was run")
        };
        let (aff, rr) = (by(RoutePolicy::Affinity), by(RoutePolicy::RoundRobin));
        assert!(
            aff.hit_chunks > rr.hit_chunks,
            "{n_nodes} nodes: affinity {} vs round-robin {} hit chunks",
            aff.hit_chunks,
            rr.hit_chunks
        );
        assert!(aff.decomposed_tokens < rr.decomposed_tokens);
    }
    let trace = run_route_trace_profile(quick);
    RouteSweep { workload, chunk_tokens, points, trace }
}

/// Serializes a route sweep to the `BENCH_<n>.json` trajectory schema.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_route_json(
    path: &std::path::Path,
    sweep: &RouteSweep,
    mode: &str,
) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench_id\": {},", crate::bench_id_from_path(path))?;
    writeln!(f, "  \"tool\": \"pade-bench\",")?;
    writeln!(f, "  \"scenario\": \"route\",")?;
    writeln!(f, "  \"mode\": \"{mode}\",")?;
    writeln!(
        f,
        "  \"paths\": {{\"affinity\": \"pade-router session/prefix-shard affinity over \
         per-node KvCacheManagers\", \"baselines\": \"round-robin and least-loaded \
         (cache-blind)\"}},"
    )?;
    writeln!(
        f,
        "  \"workload\": {{\"tenants\": {}, \"sessions_per_tenant\": {}, \
         \"turns_per_session\": {}, \"shared_prefix_tokens\": {}, \"chunk_tokens\": {}, \
         \"seed\": {}}},",
        sweep.workload.tenants,
        sweep.workload.sessions_per_tenant,
        sweep.workload.per_tenant.turns_per_session,
        sweep.workload.per_tenant.shared_prefix_tokens,
        sweep.chunk_tokens,
        sweep.workload.seed
    )?;
    writeln!(f, "  \"points\": [")?;
    for (i, p) in sweep.points.iter().enumerate() {
        let comma = if i + 1 == sweep.points.len() { "" } else { "," };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"n_nodes\": {},", p.n_nodes)?;
        writeln!(f, "      \"policy\": \"{}\",", p.policy.label())?;
        writeln!(f, "      \"hit_tokens\": {},", p.hit_tokens)?;
        writeln!(f, "      \"hit_chunks\": {},", p.hit_chunks)?;
        writeln!(f, "      \"decomposed_tokens\": {},", p.decomposed_tokens)?;
        writeln!(f, "      \"kv_prep_wall_s\": {:.6},", p.kv_prep_wall_s)?;
        writeln!(f, "      \"route_wall_s\": {:.6},", p.route_wall_s)?;
        writeln!(f, "      \"p50_cycles\": {},", p.p50_cycles)?;
        writeln!(f, "      \"p99_cycles\": {},", p.p99_cycles)?;
        writeln!(f, "      \"tokens_per_s_sim\": {:.1},", p.tokens_per_s)?;
        writeln!(f, "      \"load_imbalance\": {:.3},", p.load_imbalance)?;
        writeln!(f, "      \"session_affinity_routes\": {},", p.session_affinity_routes)?;
        writeln!(f, "      \"prefix_affinity_routes\": {},", p.prefix_affinity_routes)?;
        writeln!(f, "      \"merge_rows_checked\": {},", p.merge_rows_checked)?;
        writeln!(f, "      \"bit_identical\": {}", p.bit_identical)?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ],")?;
    let t = &sweep.trace;
    writeln!(f, "  \"trace\": {{")?;
    writeln!(f, "    \"feature_enabled\": {},", t.feature_enabled)?;
    writeln!(f, "    \"events\": {},", t.events)?;
    writeln!(f, "    \"spans\": {},", t.spans)?;
    writeln!(
        f,
        "    \"stage_names\": [{}],",
        t.stage_names
            .iter()
            .map(|s| format!("\"{}\"", crate::json_escape(s)))
            .collect::<Vec<_>>()
            .join(", ")
    )?;
    writeln!(f, "    \"overhead_shape\": \"{}\",", crate::json_escape(&t.overhead_shape))?;
    writeln!(f, "    \"untraced_wall_s\": {:.6},", t.untraced_wall_s)?;
    writeln!(f, "    \"recorder_wall_s\": {:.6},", t.recorder_wall_s)?;
    writeln!(f, "    \"overhead_pct\": {:.2},", t.overhead_frac * 100.0)?;
    writeln!(f, "    \"breakdown\": {}", t.breakdown.to_json())?;
    writeln!(f, "  }},")?;
    let max_nodes = sweep.points.iter().map(|p| p.n_nodes).max().expect("non-empty sweep");
    let at = |policy: RoutePolicy| {
        sweep
            .points
            .iter()
            .find(|p| p.n_nodes == max_nodes && p.policy == policy)
            .expect("every point was run")
    };
    let (aff, rr) = (at(RoutePolicy::Affinity), at(RoutePolicy::RoundRobin));
    writeln!(
        f,
        "  \"headline\": {{\"n_nodes\": {}, \"affinity_hit_chunks\": {}, \
         \"round_robin_hit_chunks\": {}, \"kv_prep_speedup_vs_round_robin\": {:.3}, \
         \"bit_identical\": {}}}",
        max_nodes,
        aff.hit_chunks,
        rr.hit_chunks,
        rr.kv_prep_wall_s / aff.kv_prep_wall_s.max(f64::MIN_POSITIVE),
        aff.bit_identical && rr.bit_identical
    )?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_checks_identity_and_affinity_dominance() {
        let sweep = run_route_matrix(true);
        assert_eq!(sweep.points.len(), node_counts(true).len() * POLICIES.len());
        for p in &sweep.points {
            assert!(p.bit_identical);
            assert!(p.merge_rows_checked > 0);
            assert!(p.kv_prep_wall_s > 0.0 && p.route_wall_s > 0.0);
        }
        // At one node every policy sees identical cache behavior — the
        // fleet degenerates to one shared manager.
        let one_node: Vec<&RoutePointResult> =
            sweep.points.iter().filter(|p| p.n_nodes == 1).collect();
        for p in &one_node[1..] {
            assert_eq!(p.hit_tokens, one_node[0].hit_tokens);
        }
        // The multi-node dominance assertions already ran inside
        // run_route_matrix; double-check the recorded numbers agree.
        let at = |n: usize, policy: RoutePolicy| {
            sweep.points.iter().find(|p| p.n_nodes == n && p.policy == policy).unwrap()
        };
        assert!(
            at(2, RoutePolicy::Affinity).hit_chunks > at(2, RoutePolicy::RoundRobin).hit_chunks
        );
    }

    #[test]
    fn route_json_is_well_formed_enough() {
        let sweep = run_route_matrix(true);
        let path = std::env::temp_dir().join("pade_route_bench_test.json");
        write_route_json(&path, &sweep, "quick").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"scenario\": \"route\""));
        assert_eq!(text.matches("\"policy\"").count(), 6); // 2 node counts x 3 policies
        assert!(text.contains("\"kv_prep_speedup_vs_round_robin\""));
        assert!(text.contains("\"overhead_pct\""));
        assert!(text.contains("\"breakdown\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_profile_preserves_outputs_and_attributes_stages() {
        let p = run_route_trace_profile(true);
        assert!(p.untraced_wall_s > 0.0 && p.recorder_wall_s > 0.0);
        if cfg!(feature = "trace") {
            assert!(p.feature_enabled);
            assert!(p.events > 0 && p.spans > 0);
            assert!(p.stage_names.len() >= 6, "stages: {:?}", p.stage_names);
            assert!(p.breakdown.get("serve.prefill").is_some());
            assert!(p.breakdown.get("cache.attach").is_some());
        } else {
            assert!(!p.feature_enabled);
            assert_eq!(p.events, 0);
            assert!(p.stage_names.is_empty());
        }
    }

    #[test]
    fn full_matrix_scales_to_eight_nodes() {
        assert_eq!(node_counts(false), vec![1, 2, 4, 8]);
        let (workload, chunk) = route_workload(false);
        assert!(workload.per_tenant.shared_prefix_tokens >= 1024);
        assert!(workload.tenants >= 4);
        assert_eq!(chunk, 64);
    }
}
