//! Text-table rendering for experiment outputs.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// let mut t = pade_experiments::report::Table::new(vec!["design", "speedup"]);
/// t.row(vec!["PADE".into(), format!("{:.2}", 3.0)]);
/// let s = t.render();
/// assert!(s.contains("PADE"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        Self { headers: headers.into_iter().map(String::from).collect(), rows: Vec::new() }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{:<width$}", cell, width = w + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Prints a section banner matching the experiment binaries' output style.
pub fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// Formats a ratio as `N.NNx`.
#[must_use]
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Normalizes a series so its first element is 1.0.
#[must_use]
pub fn normalize_to_first(values: &[f64]) -> Vec<f64> {
    let base = values.first().copied().unwrap_or(1.0);
    if base == 0.0 {
        return values.to_vec();
    }
    values.iter().map(|v| v / base).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a", "longheader"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("longheader"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn normalize_handles_edge_cases() {
        assert_eq!(normalize_to_first(&[2.0, 4.0]), vec![1.0, 2.0]);
        assert!(normalize_to_first(&[]).is_empty());
        assert_eq!(normalize_to_first(&[0.0, 1.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(times(2.0), "2.00x");
        assert_eq!(pct(0.5), "50.0%");
    }
}
