//! Fig. 25 — extending BUI-GF to the MXINT micro-scaling format: per-group
//! integer BUIs are scaled by their calibration factors and summed, giving
//! sound real-valued bounds for dot products of arbitrary length.

use pade_core::bui::MxBui;
use pade_experiments::report::{banner, Table};
use pade_quant::mxint::{mx_dot, MxVector};
use pade_quant::{plane_weight, TokenPlanes};

fn main() {
    banner("Fig. 25", "BUI-GF compatibility with the MX format (group-wise scaling)");
    // A 64-element dot product in two 32-element MX groups with distinct
    // calibration scales (group 2 carries 8x larger magnitudes).
    let q_real: Vec<f32> = (0..64)
        .map(|i| {
            let base = ((i * 13) % 17) as f32 - 8.0;
            if i < 32 {
                base * 0.1
            } else {
                base * 0.8
            }
        })
        .collect();
    let k_real: Vec<f32> = (0..64)
        .map(|i| {
            let base = ((i * 7) % 19) as f32 - 9.0;
            if i < 32 {
                base * 0.05
            } else {
                base * 0.4
            }
        })
        .collect();
    let q = MxVector::quantize(&q_real, 32, 8).expect("Q quantizes");
    let k = MxVector::quantize(&k_real, 32, 8).expect("K quantizes");
    let k_scales: Vec<f32> = (0..k.groups()).map(|g| k.group_scale(g)).collect();
    let bui = MxBui::new(&q, &k_scales);
    let exact = f64::from(mx_dot(&q, &k).expect("same structure"));

    println!(
        "group scales: ΔQ = {:?}",
        (0..q.groups()).map(|g| q.group_scale(g)).collect::<Vec<_>>()
    );
    println!("              ΔK = {k_scales:?}");
    println!("exact real dot product: {exact:.3}\n");

    let mut table =
        Table::new(vec!["planes known", "lower bound", "upper bound", "width", "contains exact"]);
    for r in 0..8u32 {
        let partials: Vec<i64> = (0..q.groups())
            .map(|g| {
                let planes = TokenPlanes::from_values(k.group_codes(g), 8);
                (0..=r)
                    .map(|p| {
                        i64::from(plane_weight(p, 8))
                            * i64::from(planes.plane(p).masked_sum(q.group_codes(g)))
                    })
                    .sum()
            })
            .collect();
        let (lo, hi) = bui.bounds(&partials, r);
        table.row(vec![
            format!("{} (MSB..)", r + 1),
            format!("{lo:.3}"),
            format!("{hi:.3}"),
            format!("{:.3}", hi - lo),
            (lo <= exact && exact <= hi).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Shape to check: bounds always contain the exact value, the width");
    println!("halves per plane, and it collapses to zero at the LSB — the");
    println!("group-wise scaling of Fig. 25(b) preserves BUI soundness, so the");
    println!("guard-filter logic runs unchanged on MX operands.");
}
