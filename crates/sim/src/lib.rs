//! Cycle-level simulation kernel for the PADE workspace.
//!
//! All accelerator models (PADE itself in `pade-core` and the baselines in
//! `pade-baselines`) are built on the same small set of primitives:
//!
//! * [`Cycle`] — the simulation time base (one tick of the 800 MHz core
//!   clock from Table III),
//! * [`BoundedFifo`] — backpressure-capable queues between pipeline stages,
//! * [`EventQueue`] — completion scheduling (DRAM responses, systolic array
//!   drains),
//! * [`UtilizationCounter`] — per-unit busy/stall accounting used by the
//!   workload-balance studies (Fig. 23(a)),
//! * [`RunStats`] / [`OpCounts`] / [`TrafficCounts`] — the common result
//!   record every accelerator run produces; `pade-energy` turns these event
//!   counts into energy,
//! * [`LatencyStats`] / [`TimeWeightedGauge`] — serving-side distribution
//!   collectors (per-request latency percentiles, time-weighted queue
//!   depth and batch occupancy) used by `pade-serve`.
//!
//! # Example
//!
//! ```
//! use pade_sim::{BoundedFifo, Cycle};
//!
//! let mut fifo = BoundedFifo::new(2);
//! assert!(fifo.push(1).is_ok());
//! assert!(fifo.push(2).is_ok());
//! assert!(fifo.push(3).is_err()); // backpressure
//! assert_eq!(fifo.pop(), Some(1));
//! let t = Cycle(40) + Cycle(2);
//! assert_eq!(t.0, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod cycle;
mod event;
mod fifo;
mod latency;
mod stats;

pub use counters::UtilizationCounter;
pub use cycle::{Cycle, Frequency};
pub use event::EventQueue;
pub use fifo::{BoundedFifo, FifoFullError};
pub use latency::{LatencyStats, LatencySummary, TimeWeightedGauge};
pub use stats::{OpCounts, RunStats, TrafficCounts};
