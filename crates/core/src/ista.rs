//! Interleaving-based Sparsity-Tiled Attention (ISTA) — §IV-C, Fig. 10.
//!
//! FlashAttention-style tiling conflicts with row-wise pruning because the
//! threshold needs the row maximum. ISTA resolves the conflict with the
//! softmax monotonicity argument of Eq. 7 — a token below the threshold
//! *within a tile subset* is below it globally — so BUI-GF runs inside an
//! observation window and every key that reaches the LSB unpruned enters
//! the Retained-Key Board. Each `Bc` retained keys form a tile: the
//! matching V rows are fetched on demand and folded into the online-softmax
//! state `(m, l, O)`.
//!
//! Left-to-right tile order updates the running maximum whenever a later
//! tile holds a larger score; every update rescales the accumulator
//! (lines 11–12 of Fig. 10(c)). The **head–tail interleaved** order
//! processes the initial region, then the recent region, then returns
//! toward the middle — placing both likely-maximum regions (attention
//! sinks and recency, §IV-C) first, so the maximum settles early. Without
//! locality the orders tie; interleaving is never worse than parity in
//! expectation (asserted by test).

use pade_linalg::{MatF32, OnlineSoftmax};
use pade_sim::OpCounts;

use crate::vpu::Vpu;

/// Result of running ISTA for one query row.
#[derive(Debug, Clone)]
pub struct IstaResult {
    /// Final attention output (`1 × H`).
    pub output: Vec<f32>,
    /// Number of tiles processed.
    pub tiles: usize,
    /// Running-max updates that forced an accumulator rescale.
    pub max_updates: usize,
    /// Equivalent scalar ops spent on those rescales.
    pub rescale_ops: u64,
    /// V rows fetched from DRAM (no cross-row reuse at this layer; RARS
    /// handles sharing across query rows).
    pub v_rows_fetched: u64,
    /// V-PU arithmetic events.
    pub ops: OpCounts,
    /// V-PU cycles.
    pub vpu_cycles: u64,
}

/// Tile processing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileOrder {
    /// Naive left-to-right (ascending token ranges).
    LeftToRight,
    /// Head–tail interleaving (Fig. 10(a)): initial region, recent region,
    /// post-initial, pre-recent, …
    HeadTail,
}

/// Produces the visit order of `n` tiles.
#[must_use]
pub fn tile_visit_order(n: usize, order: TileOrder) -> Vec<usize> {
    match order {
        TileOrder::LeftToRight => (0..n).collect(),
        TileOrder::HeadTail => {
            let mut out = Vec::with_capacity(n);
            let (mut lo, mut hi) = (0usize, n);
            while lo < hi {
                out.push(lo);
                lo += 1;
                if lo < hi {
                    hi -= 1;
                    out.push(hi);
                }
            }
            out
        }
    }
}

/// Runs ISTA for one query row over its retained keys.
///
/// `retained` holds `(token, logit)` pairs in token order (the discovery
/// order of the observation window); `values` is the full V matrix and
/// `bc` the tile size. The output equals exact softmax attention over the
/// retained subset (property-tested).
///
/// # Panics
///
/// Panics if `bc == 0` or a retained token is out of range.
#[must_use]
pub fn run_ista(
    retained: &[(usize, f32)],
    values: &MatF32,
    bc: usize,
    order: TileOrder,
    vpu: &Vpu,
) -> IstaResult {
    assert!(bc > 0, "tile size must be positive");
    let h = values.cols();
    let tiles: Vec<&[(usize, f32)]> = retained.chunks(bc).collect();
    let visit = tile_visit_order(tiles.len(), order);

    let mut acc = OnlineSoftmax::new(h);
    let mut ops = OpCounts::default();
    let mut vpu_cycles = 0u64;
    let mut v_rows = 0u64;
    let mut prev_rescale = 0u64;
    for &t in &visit {
        let tile = tiles[t];
        let scores: Vec<f32> = tile.iter().map(|&(_, s)| s).collect();
        let rows: Vec<&[f32]> = tile
            .iter()
            .map(|&(j, _)| {
                assert!(j < values.rows(), "retained token {j} out of range");
                values.row(j)
            })
            .collect();
        acc.update(&scores, &rows);
        v_rows += tile.len() as u64;
        let rescale_delta = acc.rescale_ops() - prev_rescale;
        prev_rescale = acc.rescale_ops();
        let cost = vpu.tile_cost(tile.len(), h, rescale_delta);
        ops.merge(&cost.ops);
        vpu_cycles += cost.cycles.0;
    }
    let norm = vpu.normalize_cost(h);
    ops.merge(&norm.ops);
    vpu_cycles += norm.cycles.0;

    IstaResult {
        output: acc.clone().finalize(),
        tiles: tiles.len(),
        max_updates: acc.max_updates(),
        rescale_ops: acc.rescale_ops(),
        v_rows_fetched: v_rows,
        ops,
        vpu_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn values(n: usize, h: usize) -> MatF32 {
        MatF32::from_fn(n, h, |i, j| ((i * 31 + j * 7) % 17) as f32 * 0.1 - 0.8)
    }

    fn keys_identity(n: usize, h: usize) -> MatF32 {
        // Orthogonal-ish keys so subset_attention can be driven by logits
        // directly: we bypass K by supplying logits to both sides.
        MatF32::zeros(n, h)
    }

    fn reference(retained: &[(usize, f32)], v: &MatF32) -> Vec<f32> {
        // subset_attention with explicit logits: emulate by softmax over
        // retained logits.
        let _ = keys_identity(1, 1);
        let logits: Vec<f32> = retained.iter().map(|&(_, s)| s).collect();
        let w = pade_linalg::softmax(&logits);
        let mut out = vec![0.0f32; v.cols()];
        for (&(j, _), &wi) in retained.iter().zip(&w) {
            for (o, &x) in out.iter_mut().zip(v.row(j)) {
                *o += wi * x;
            }
        }
        out
    }

    #[test]
    fn visit_orders() {
        assert_eq!(tile_visit_order(5, TileOrder::LeftToRight), vec![0, 1, 2, 3, 4]);
        assert_eq!(tile_visit_order(5, TileOrder::HeadTail), vec![0, 4, 1, 3, 2]);
        assert_eq!(tile_visit_order(4, TileOrder::HeadTail), vec![0, 3, 1, 2]);
        assert_eq!(tile_visit_order(1, TileOrder::HeadTail), vec![0]);
        assert!(tile_visit_order(0, TileOrder::HeadTail).is_empty());
    }

    #[test]
    fn ista_matches_subset_attention() {
        let v = values(64, 8);
        let retained: Vec<(usize, f32)> =
            (0..64).step_by(3).map(|j| (j, (j % 13) as f32 * 0.5 - 2.0)).collect();
        for order in [TileOrder::LeftToRight, TileOrder::HeadTail] {
            let r = run_ista(&retained, &v, 4, order, &Vpu::default());
            let expect = reference(&retained, &v);
            for (a, b) in r.output.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-4, "{order:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn interleaving_beats_ltr_when_max_is_recent() {
        // Scores rise toward the sequence end (recency locality): LTR
        // updates the max on nearly every tile; head-tail sees the tail
        // tile second and locks the max immediately.
        let v = values(80, 4);
        let retained: Vec<(usize, f32)> = (0..80).map(|j| (j, j as f32 * 0.1)).collect();
        let ltr = run_ista(&retained, &v, 8, TileOrder::LeftToRight, &Vpu::default());
        let ht = run_ista(&retained, &v, 8, TileOrder::HeadTail, &Vpu::default());
        assert!(
            ht.max_updates < ltr.max_updates,
            "head-tail {} vs LTR {}",
            ht.max_updates,
            ltr.max_updates
        );
        assert!(ht.rescale_ops < ltr.rescale_ops);
    }

    #[test]
    fn interleaving_matches_ltr_when_max_is_initial() {
        // Attention-sink-dominated rows: both orders see the max in tile 0.
        let v = values(40, 4);
        let mut retained: Vec<(usize, f32)> = (0..40).map(|j| (j, -(j as f32) * 0.05)).collect();
        retained[0].1 = 10.0;
        let ltr = run_ista(&retained, &v, 8, TileOrder::LeftToRight, &Vpu::default());
        let ht = run_ista(&retained, &v, 8, TileOrder::HeadTail, &Vpu::default());
        assert_eq!(ltr.max_updates, 0);
        assert_eq!(ht.max_updates, 0);
    }

    #[test]
    fn empty_retained_set_yields_zero_output() {
        let v = values(8, 4);
        let r = run_ista(&[], &v, 4, TileOrder::HeadTail, &Vpu::default());
        assert_eq!(r.output, vec![0.0; 4]);
        assert_eq!(r.tiles, 0);
        assert_eq!(r.v_rows_fetched, 0);
    }

    #[test]
    fn v_fetches_equal_retained_count() {
        let v = values(32, 4);
        let retained: Vec<(usize, f32)> = (0..20).map(|j| (j, 0.1 * j as f32)).collect();
        let r = run_ista(&retained, &v, 6, TileOrder::LeftToRight, &Vpu::default());
        assert_eq!(r.v_rows_fetched, 20);
        assert_eq!(r.tiles, 4); // ceil(20/6)
        assert_eq!(r.ops.fp_exp, 20);
    }

    proptest! {
        #[test]
        fn prop_ista_equals_reference_for_any_order(
            n in 1usize..60,
            bc in 1usize..10,
            seed in any::<u64>(),
        ) {
            let v = values(n, 6);
            let retained: Vec<(usize, f32)> = (0..n)
                .map(|j| {
                    let h = seed.wrapping_add((j as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    (j, ((h >> 40) as f32 / (1u64 << 22) as f32) - 1.0)
                })
                .collect();
            let expect = reference(&retained, &v);
            for order in [TileOrder::LeftToRight, TileOrder::HeadTail] {
                let r = run_ista(&retained, &v, bc, order, &Vpu::default());
                for (a, b) in r.output.iter().zip(&expect) {
                    prop_assert!((a - b).abs() < 1e-3, "{:?}: {} vs {}", order, a, b);
                }
            }
        }

        #[test]
        fn prop_headtail_visits_each_tile_once(n in 0usize..50) {
            let mut v = tile_visit_order(n, TileOrder::HeadTail);
            v.sort_unstable();
            prop_assert_eq!(v, (0..n).collect::<Vec<_>>());
        }
    }
}
