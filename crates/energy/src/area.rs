//! Area and module-level power model of the PADE accelerator.
//!
//! Calibrated to Fig. 20 of the paper: 4.53 mm² and 591 mW at TSMC 28 nm /
//! 800 MHz, with the per-module shares reported there. Also provides the
//! GSAT design-space cost model behind Fig. 17(a).

/// The hardware modules of the PADE accelerator (Fig. 11(a) / Fig. 20).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Module {
    /// Bit-wise PE lanes (GSAT datapaths).
    PeLane,
    /// Value processing unit (systolic array + APM).
    VPu,
    /// On-chip K/V/Q buffers.
    OnChipBuffer,
    /// Scoreboards inside the PE lanes.
    Scoreboard,
    /// Decision units inside the PE lanes.
    DecisionUnit,
    /// BUI generator (uncertainty-interval LUT builder).
    BuiGenerator,
    /// BUI-GF threshold modules.
    BuiGfModule,
    /// Bidirectional-sparsity and RARS schedulers.
    Schedulers,
    /// Everything else (top control, misc).
    Others,
}

/// All modules, in the order used by reports.
pub const MODULES: [Module; 9] = [
    Module::PeLane,
    Module::VPu,
    Module::OnChipBuffer,
    Module::Scoreboard,
    Module::DecisionUnit,
    Module::BuiGenerator,
    Module::BuiGfModule,
    Module::Schedulers,
    Module::Others,
];

impl Module {
    /// Display name matching the paper's labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Module::PeLane => "PE Lane",
            Module::VPu => "V-PU",
            Module::OnChipBuffer => "On-chip buffer",
            Module::Scoreboard => "Scoreboard",
            Module::DecisionUnit => "Decision Unit",
            Module::BuiGenerator => "BUI Generator",
            Module::BuiGfModule => "BUI-GF Module",
            Module::Schedulers => "BS & RARS Scheduler",
            Module::Others => "Others",
        }
    }
}

/// Area/power model of the full accelerator at TSMC 28 nm, 800 MHz.
#[derive(Debug, Clone, PartialEq)]
pub struct PadeAreaModel {
    total_area_mm2: f64,
    total_power_mw: f64,
}

impl PadeAreaModel {
    /// The paper's reported design point: 4.53 mm², 591 mW.
    #[must_use]
    pub fn paper() -> Self {
        Self { total_area_mm2: 4.53, total_power_mw: 591.0 }
    }

    /// Total die area.
    #[must_use]
    pub fn total_area_mm2(&self) -> f64 {
        self.total_area_mm2
    }

    /// Total power at full activity.
    #[must_use]
    pub fn total_power_mw(&self) -> f64 {
        self.total_power_mw
    }

    /// Area share of a module (normalized so all modules sum to 1).
    #[must_use]
    pub fn area_fraction(&self, m: Module) -> f64 {
        let raw = match m {
            Module::PeLane => 34.1,
            Module::VPu => 28.5,
            Module::OnChipBuffer => 23.0,
            Module::Scoreboard => 3.7,
            Module::DecisionUnit => 2.1,
            Module::BuiGenerator => 2.0,
            Module::BuiGfModule => 2.9,
            Module::Schedulers => 2.8,
            Module::Others => 3.2,
        };
        let total: f64 = MODULES.iter().map(|m| self.raw_area(*m)).sum();
        let _ = raw;
        self.raw_area(m) / total
    }

    fn raw_area(&self, m: Module) -> f64 {
        match m {
            Module::PeLane => 34.1,
            Module::VPu => 28.5,
            Module::OnChipBuffer => 23.0,
            Module::Scoreboard => 3.7,
            Module::DecisionUnit => 2.1,
            Module::BuiGenerator => 2.0,
            Module::BuiGfModule => 2.9,
            Module::Schedulers => 2.8,
            Module::Others => 3.2,
        }
    }

    fn raw_power(&self, m: Module) -> f64 {
        match m {
            Module::PeLane => 41.6,
            Module::VPu => 29.8,
            Module::OnChipBuffer => 14.3,
            Module::Scoreboard => 3.3,
            Module::DecisionUnit => 1.6,
            Module::BuiGenerator => 5.9,
            Module::BuiGfModule => 6.2,
            Module::Schedulers => 1.3,
            Module::Others => 2.8,
        }
    }

    /// Power share of a module (normalized so all modules sum to 1).
    #[must_use]
    pub fn power_fraction(&self, m: Module) -> f64 {
        let total: f64 = MODULES.iter().map(|m| self.raw_power(*m)).sum();
        self.raw_power(m) / total
    }

    /// Absolute module area in mm².
    #[must_use]
    pub fn area_mm2(&self, m: Module) -> f64 {
        self.total_area_mm2 * self.area_fraction(m)
    }

    /// Absolute module power in mW.
    #[must_use]
    pub fn power_mw(&self, m: Module) -> f64 {
        self.total_power_mw * self.power_fraction(m)
    }

    /// The stage-fusion overhead the paper quotes: scoreboard + decision
    /// unit area share ("just 5.8 % area"), and BUI generator + BUI-GF
    /// power share ("12.1 % power").
    #[must_use]
    pub fn fusion_overhead(&self) -> (f64, f64) {
        let area =
            self.area_fraction(Module::Scoreboard) + self.area_fraction(Module::DecisionUnit);
        let power =
            self.power_fraction(Module::BuiGenerator) + self.power_fraction(Module::BuiGfModule);
        (area, power)
    }

    /// Peak energy efficiency in TOPS/W (the paper reports 11.36 TOPS/W).
    #[must_use]
    pub fn peak_tops_per_watt(&self) -> f64 {
        // Peak throughput: 128 bit-wise lanes × 64-wide GSAT at 800 MHz
        // (counting gated accumulates as ops) plus the 8×16 INT8 systolic
        // array at 2 ops/MAC.
        let qk_ops = 128.0 * 64.0 * 800e6;
        let v_ops = 8.0 * 16.0 * 2.0 * 800e6;
        (qk_ops + v_ops) / (self.total_power_mw * 1e-3) / 1e12
    }
}

impl Default for PadeAreaModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// GSAT sub-group design-space cost (Fig. 17(a)): relative hardware cost of
/// building the 64-input dot product from sub-groups of `group_size`.
///
/// Muxes grow with group size (`g/2` sliding selectors of `(g/2+1):1` per
/// sub-group) while per-sub-group subtractors and q-sum generators amortize
/// away; the optimum sits at `g = 8`, the value the accelerator adopts.
///
/// Returns `(area_units, power_units)` in arbitrary consistent units.
///
/// # Panics
///
/// Panics unless `group_size` is a power of two in `2..=64`.
#[must_use]
pub fn gsat_cost(group_size: usize) -> (f64, f64) {
    assert!(
        group_size.is_power_of_two() && (2..=64).contains(&group_size),
        "group size must be a power of two in 2..=64"
    );
    let g = group_size as f64;
    let subgroups = 64.0 / g;
    // Mux cost per subgroup: (g/2) selectors, each with (g/2 + 1) inputs.
    let mux = subgroups * (g / 2.0) * (g / 2.0 + 1.0);
    // Fixed per-subgroup overhead: subtractor + q-sum share + control.
    let area = mux + subgroups * 16.0;
    let power = 0.8 * mux + subgroups * 12.0;
    (area, power)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let m = PadeAreaModel::paper();
        let area: f64 = MODULES.iter().map(|x| m.area_fraction(*x)).sum();
        let power: f64 = MODULES.iter().map(|x| m.power_fraction(*x)).sum();
        assert!((area - 1.0).abs() < 1e-9);
        assert!((power - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pe_lane_dominates_area_and_power() {
        let m = PadeAreaModel::paper();
        for x in MODULES {
            if x != Module::PeLane {
                assert!(m.area_fraction(Module::PeLane) >= m.area_fraction(x));
                assert!(m.power_fraction(Module::PeLane) >= m.power_fraction(x));
            }
        }
    }

    #[test]
    fn fusion_overhead_matches_paper_quotes() {
        let (area, power) = PadeAreaModel::paper().fusion_overhead();
        // Paper: ~5.8% area for scoreboard+decision, ~12.1% power for BUI.
        assert!((area - 0.058).abs() < 0.01, "area share {area}");
        assert!((power - 0.121).abs() < 0.015, "power share {power}");
    }

    #[test]
    fn peak_efficiency_near_paper_value() {
        let eff = PadeAreaModel::paper().peak_tops_per_watt();
        assert!((eff - 11.36).abs() < 1.5, "peak TOPS/W {eff}");
    }

    #[test]
    fn gsat_optimum_is_group_of_eight() {
        let candidates = [2usize, 4, 8, 16, 32, 64];
        let best_area = candidates
            .iter()
            .min_by(|&&a, &&b| gsat_cost(a).0.partial_cmp(&gsat_cost(b).0).unwrap())
            .copied()
            .unwrap();
        assert_eq!(best_area, 8);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn gsat_rejects_non_power_of_two() {
        let _ = gsat_cost(6);
    }
}
