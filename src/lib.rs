//! # PADE — a predictor-free sparse attention accelerator (reproduction)
//!
//! This facade crate re-exports the whole workspace reproducing
//! *"PADE: A Predictor-Free Sparse Attention Accelerator via Unified
//! Execution and Stage Fusion"* (HPCA 2026):
//!
//! * [`quant`] — INT quantization and two's-complement bit planes,
//! * [`linalg`] — matrices, softmax and exact attention references,
//! * [`workload`] — the synthetic benchmark zoo standing in for the
//!   paper's 22 benchmarks,
//! * [`mem`] — the HBM2 model and the bit-plane data layouts,
//! * [`energy`] — 28 nm event energy, area/power, the H100 roofline,
//! * [`sim`] — the cycle-level simulation kernel,
//! * [`core`] — PADE itself: BUI-GF, BS-OOE, ISTA, RARS, GSAT and the
//!   assembled accelerator,
//! * [`baselines`] — Sanger, SpAtten, DOTA, Energon, SOFA, BitWave and the
//!   software-only methods,
//! * [`dist`] — the wafer-scale sequence-parallel extension (§VII):
//!   mergeable online-softmax states, interconnect model, multi-chip runs,
//! * [`cache`] — the cross-request prefix-sharing KV plane cache manager
//!   (radix prefix index, session store, budgeted LRU eviction, versioned
//!   binary persistence across serve runs),
//! * [`router`] — sharded multi-node serving: prefix-affinity request
//!   routing over per-node KV plane caches, with round-robin and
//!   least-loaded baselines and an `(m, l, O)` shard-merge proof.
//!
//! # Quickstart
//!
//! ```
//! use pade::core::accelerator::PadeAccelerator;
//! use pade::core::config::PadeConfig;
//! use pade::workload::trace::{AttentionTrace, TraceConfig};
//!
//! let trace = AttentionTrace::generate(&TraceConfig::small_demo());
//! let result = PadeAccelerator::new(PadeConfig::standard()).run_trace(&trace);
//! assert!(result.stats.sparsity() > 0.3);
//! assert!(result.fidelity > 0.95);
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/experiments` for the
//! binaries regenerating every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pade_baselines as baselines;
pub use pade_cache as cache;
pub use pade_core as core;
pub use pade_dist as dist;
pub use pade_energy as energy;
pub use pade_linalg as linalg;
pub use pade_mem as mem;
pub use pade_quant as quant;
pub use pade_router as router;
pub use pade_sim as sim;
pub use pade_workload as workload;
