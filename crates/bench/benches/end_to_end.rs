//! Criterion benchmarks of full accelerator runs: one group per evaluation
//! axis (ablation stages, designs, data layouts, context lengths),
//! providing the benchable form of the per-figure parameter sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pade_baselines::{sanger, sofa, Accelerator, BitWave};
use pade_core::accelerator::PadeAccelerator;
use pade_core::config::PadeConfig;
use pade_mem::KeyLayout;
use pade_workload::profile::ScoreProfile;
use pade_workload::trace::{AttentionTrace, TraceConfig};

fn trace(seq: usize) -> AttentionTrace {
    AttentionTrace::generate(&TraceConfig {
        seq_len: seq,
        head_dim: 64,
        n_queries: 8,
        profile: ScoreProfile::standard(),
        bits: 8,
        seed: 42,
    })
}

/// Fig. 16(a): the ablation stages.
fn bench_ablation(c: &mut Criterion) {
    let t = trace(512);
    let mut g = c.benchmark_group("fig16_ablation");
    g.sample_size(10);
    let stages: Vec<(&str, PadeConfig)> = vec![
        ("dense", PadeConfig::dense_baseline()),
        (
            "bui_gf",
            PadeConfig {
                enable_bui_gf: true,
                enable_bs: false,
                enable_ooe: false,
                enable_ista: false,
                enable_rars: false,
                enable_interleave: false,
                ..PadeConfig::standard()
            },
        ),
        (
            "bs_ooe",
            PadeConfig {
                enable_ista: false,
                enable_rars: false,
                enable_interleave: false,
                ..PadeConfig::standard()
            },
        ),
        ("full", PadeConfig::standard()),
    ];
    for (name, cfg) in stages {
        g.bench_function(name, |b| {
            let a = PadeAccelerator::new(cfg.clone());
            b.iter(|| a.run_trace(&t))
        });
    }
    g.finish();
}

/// Fig. 14 / Fig. 21: PADE vs the stage-splitting designs.
fn bench_designs(c: &mut Criterion) {
    let t = trace(512);
    let mut g = c.benchmark_group("fig21_designs");
    g.sample_size(10);
    g.bench_function("pade", |b| {
        let a = PadeAccelerator::new(PadeConfig::standard());
        b.iter(|| a.run_trace(&t))
    });
    g.bench_function("sanger", |b| b.iter(|| sanger().run(&t)));
    g.bench_function("sofa", |b| b.iter(|| sofa().run(&t)));
    g.bench_function("bitwave", |b| b.iter(|| BitWave::default().run(&t)));
    g.finish();
}

/// Fig. 23(b): the data-layout study.
fn bench_layouts(c: &mut Criterion) {
    let t = trace(512);
    let mut g = c.benchmark_group("fig23_layouts");
    g.sample_size(10);
    for layout in
        [KeyLayout::BitPlaneInterleaved, KeyLayout::BitPlaneLinear, KeyLayout::ValueRowMajor]
    {
        g.bench_with_input(BenchmarkId::new("layout", layout.name()), &layout, |b, &layout| {
            let a = PadeAccelerator::new(PadeConfig { layout, ..PadeConfig::standard() });
            b.iter(|| a.run_trace(&t))
        });
    }
    g.finish();
}

/// Fig. 2(b) / Fig. 26(b): scaling with context length.
fn bench_context_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig26_context");
    g.sample_size(10);
    for seq in [256usize, 512, 1024] {
        let t = trace(seq);
        g.bench_with_input(BenchmarkId::new("pade", seq), &seq, |b, _| {
            let a = PadeAccelerator::new(PadeConfig::standard());
            b.iter(|| a.run_trace(&t))
        });
    }
    g.finish();
}

/// Long-context scaling (S ∈ {2k, 4k}): minutes of wall clock, so opt-in
/// via `cargo bench --features slow-bench`.
fn bench_long_context(c: &mut Criterion) {
    #[cfg(feature = "slow-bench")]
    {
        let mut g = c.benchmark_group("long_context");
        g.sample_size(10);
        for seq in [2048usize, 4096] {
            let t = trace(seq);
            g.bench_with_input(BenchmarkId::new("pade", seq), &seq, |b, _| {
                let a = PadeAccelerator::new(PadeConfig::standard());
                b.iter(|| a.run_trace(&t))
            });
        }
        g.finish();
    }
    #[cfg(not(feature = "slow-bench"))]
    {
        let _ = c; // enable with --features slow-bench
    }
}

criterion_group!(
    benches,
    bench_ablation,
    bench_designs,
    bench_layouts,
    bench_context_scaling,
    bench_long_context
);
criterion_main!(benches);
