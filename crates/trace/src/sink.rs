//! Sinks: where submitted track buffers go, and the deterministic
//! [`TraceSnapshot`] the in-memory [`Recorder`] produces.

use crate::{track, TraceEvent};
use pade_sim::Cycle;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// Receives batches of events for a track.
///
/// All events of one track are submitted by that track's single owner in
/// program order; batches for *different* tracks may arrive interleaved
/// from `pade-par` workers in any order. A sink must therefore key its
/// store by track, never by arrival.
pub trait TraceSink: Send + Sync {
    /// Appends `events` to `track`'s stream.
    fn submit(&self, track: u64, events: &[TraceEvent]);
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn submit(&self, _track: u64, _events: &[TraceEvent]) {}
}

/// In-memory sink whose [`snapshot`](Recorder::snapshot) is deterministic:
/// tracks come out ordered by id and each track's events in emission
/// order, independent of worker count or flush interleaving.
#[derive(Debug, Default)]
pub struct Recorder {
    tracks: Mutex<BTreeMap<u64, Vec<TraceEvent>>>,
}

impl Recorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The events recorded so far, ordered by `(track id, emission order)`.
    ///
    /// # Panics
    ///
    /// Panics if a submitting thread panicked while holding the store lock.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let tracks = self.tracks.lock().expect("recorder lock poisoned");
        TraceSnapshot {
            tracks: tracks
                .iter()
                .map(|(&track, events)| TrackEvents { track, events: events.clone() })
                .collect(),
        }
    }

    /// Drops everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a submitting thread panicked while holding the store lock.
    pub fn clear(&self) {
        self.tracks.lock().expect("recorder lock poisoned").clear();
    }
}

impl TraceSink for Recorder {
    fn submit(&self, track: u64, events: &[TraceEvent]) {
        let mut tracks = self.tracks.lock().expect("recorder lock poisoned");
        tracks.entry(track).or_default().extend_from_slice(events);
    }
}

/// One track's ordered event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackEvents {
    /// Track id (see [`crate::track`]).
    pub track: u64,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
}

/// A deterministic view of everything a [`Recorder`] captured.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Tracks ordered by id.
    pub tracks: Vec<TrackEvents>,
}

impl TraceSnapshot {
    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Total event count.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Number of spans (matched or not, counted by their begins).
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e, TraceEvent::Begin { .. }))
            .count()
    }

    /// Number of causality link events across all tracks.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| matches!(e, TraceEvent::Link { .. }))
            .count()
    }

    /// Distinct span stage names, sorted.
    #[must_use]
    pub fn stage_names(&self) -> BTreeSet<&'static str> {
        self.tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter_map(|e| match e {
                TraceEvent::Begin { name, .. } => Some(*name),
                _ => None,
            })
            .collect()
    }

    /// Checks the span-stream invariants every instrumented layer must
    /// uphold, per track: logical clocks never decrease, every end closes
    /// an open begin, and nothing is left open.
    ///
    /// # Errors
    ///
    /// Describes the first violated track.
    pub fn check_well_formed(&self) -> Result<(), String> {
        for t in &self.tracks {
            let label = track::label(t.track);
            let mut last = Cycle::ZERO;
            let mut open: Vec<&'static str> = Vec::new();
            for (i, e) in t.events.iter().enumerate() {
                let clock = e.clock();
                if clock < last {
                    return Err(format!(
                        "track {label}: clock went backwards at event {i} ({} -> {})",
                        last.0, clock.0
                    ));
                }
                last = clock;
                match e {
                    TraceEvent::Begin { name, .. } => open.push(name),
                    // The guard pops: a matched End consumes its Begin
                    // whether or not the error arm is taken.
                    TraceEvent::End { .. } if open.pop().is_none() => {
                        return Err(format!("track {label}: end without begin at event {i}"));
                    }
                    _ => {}
                }
            }
            if let Some(name) = open.pop() {
                return Err(format!("track {label}: span '{name}' never ended"));
            }
        }
        Ok(())
    }

    /// FNV-1a fingerprint of the logical event stream. Wall-clock
    /// annotations are excluded, so two runs of the same workload hash
    /// equal exactly when their logical traces are identical — the
    /// determinism property the cross-worker tests pin down.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for t in &self.tracks {
            eat(&t.track.to_le_bytes());
            for e in &t.events {
                match *e {
                    TraceEvent::Begin { name, clock } => {
                        eat(&[1]);
                        eat(name.as_bytes());
                        eat(&clock.0.to_le_bytes());
                    }
                    TraceEvent::End { clock, .. } => {
                        eat(&[2]);
                        eat(&clock.0.to_le_bytes());
                    }
                    TraceEvent::Instant { name, clock } => {
                        eat(&[3]);
                        eat(name.as_bytes());
                        eat(&clock.0.to_le_bytes());
                    }
                    TraceEvent::Count { name, clock, delta } => {
                        eat(&[4]);
                        eat(name.as_bytes());
                        eat(&clock.0.to_le_bytes());
                        eat(&delta.to_le_bytes());
                    }
                    TraceEvent::Gauge { name, clock, value } => {
                        eat(&[5]);
                        eat(name.as_bytes());
                        eat(&clock.0.to_le_bytes());
                        eat(&value.to_bits().to_le_bytes());
                    }
                    TraceEvent::Link { name, clock, request, info } => {
                        eat(&[6]);
                        eat(name.as_bytes());
                        eat(&clock.0.to_le_bytes());
                        eat(&request.to_le_bytes());
                        eat(&info.to_le_bytes());
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, b: u64, e: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent::Begin { name, clock: Cycle(b) },
            TraceEvent::End { clock: Cycle(e), wall_nanos: 0 },
        ]
    }

    #[test]
    fn snapshot_orders_tracks_by_id() {
        let rec = Recorder::new();
        rec.submit(7, &span("b", 0, 1));
        rec.submit(3, &span("a", 0, 1));
        rec.submit(7, &span("c", 1, 2));
        let snap = rec.snapshot();
        assert_eq!(snap.tracks.iter().map(|t| t.track).collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(snap.tracks[1].events.len(), 4);
        assert_eq!(snap.span_count(), 3);
        snap.check_well_formed().unwrap();
    }

    #[test]
    fn fingerprint_ignores_wall_annotations() {
        let rec = Recorder::new();
        rec.submit(1, &span("s", 0, 5));
        let a = rec.snapshot().fingerprint();
        let rec2 = Recorder::new();
        rec2.submit(
            1,
            &[
                TraceEvent::Begin { name: "s", clock: Cycle(0) },
                TraceEvent::End { clock: Cycle(5), wall_nanos: 12345 },
            ],
        );
        assert_eq!(a, rec2.snapshot().fingerprint());
        let rec3 = Recorder::new();
        rec3.submit(1, &span("s", 0, 6));
        assert_ne!(a, rec3.snapshot().fingerprint());
    }

    #[test]
    fn well_formedness_catches_violations() {
        let rec = Recorder::new();
        rec.submit(1, &[TraceEvent::End { clock: Cycle(0), wall_nanos: 0 }]);
        assert!(rec.snapshot().check_well_formed().is_err());

        let rec = Recorder::new();
        rec.submit(1, &[TraceEvent::Begin { name: "open", clock: Cycle(0) }]);
        assert!(rec.snapshot().check_well_formed().is_err());

        let rec = Recorder::new();
        rec.submit(
            1,
            &[
                TraceEvent::Instant { name: "late", clock: Cycle(9) },
                TraceEvent::Instant { name: "early", clock: Cycle(3) },
            ],
        );
        assert!(rec.snapshot().check_well_formed().is_err());
    }
}
