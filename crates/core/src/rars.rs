//! Reuse-Aware Reorder Scheduling (RARS) — §V-E, Fig. 13.
//!
//! Retained scores are scattered, so a naive left-to-right `S×V`
//! computation reloads V vectors that several score rows share. RARS
//! reorders the schedule greedily: each V-PU round loads the pair of V
//! vectors wanted by the most still-unserved score rows (ties broken
//! toward *low-demand* vectors, saving high-demand ones for rounds where
//! their sharers have free slots). On the paper's running example this
//! recovers exactly the published 11 → 8 load reduction.

use std::collections::BTreeSet;

/// A V-fetch schedule: the V-vector ids loaded in each round, and the
/// total number of loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Per-round loaded V-vector ids.
    pub rounds: Vec<Vec<usize>>,
    /// Total V-vector loads (Σ round sizes).
    pub total_loads: usize,
}

impl Schedule {
    /// Checks that every (row, v) demand in `rows` is served by some round
    /// in which the row has a free slot. Used by tests.
    #[must_use]
    pub fn covers(&self, rows: &[Vec<usize>], per_row: usize) -> bool {
        let mut pending: Vec<BTreeSet<usize>> =
            rows.iter().map(|r| r.iter().copied().collect()).collect();
        for round in &self.rounds {
            for p in &mut pending {
                let mut served = 0;
                for v in round {
                    if served < per_row && p.remove(v) {
                        served += 1;
                    }
                }
            }
        }
        pending.iter().all(BTreeSet::is_empty)
    }
}

/// Naive left-to-right execution (Fig. 13(a)): each round, every pending
/// score row takes its next `per_row` V vectors in ascending order; the
/// round loads the union. No cross-row reuse planning.
///
/// # Example
///
/// ```
/// use pade_core::rars::naive_schedule;
///
/// // The paper's Fig. 13 example: 11 loads.
/// let rows = vec![vec![0, 1, 2, 3], vec![2, 3, 4, 7], vec![4, 5, 6, 7], vec![2, 3, 4, 7]];
/// assert_eq!(naive_schedule(&rows, 2).total_loads, 11);
/// ```
#[must_use]
pub fn naive_schedule(rows: &[Vec<usize>], per_row: usize) -> Schedule {
    let per_row = per_row.max(1);
    let mut pending: Vec<Vec<usize>> = rows
        .iter()
        .map(|r| {
            let mut v: Vec<usize> = r.clone();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let mut rounds = Vec::new();
    let mut total = 0usize;
    while pending.iter().any(|p| !p.is_empty()) {
        let mut loaded = BTreeSet::new();
        for p in &mut pending {
            let take = p.len().min(per_row);
            for v in p.drain(..take) {
                loaded.insert(v);
            }
        }
        total += loaded.len();
        rounds.push(loaded.into_iter().collect());
    }
    Schedule { rounds, total_loads: total }
}

/// RARS greedy scheduling (Fig. 13(c)–(e)).
///
/// Per round (up to `buffer_capacity` V loads, each row consuming at most
/// `per_row` of them), repeatedly pick the V *pair* covering the most rows
/// that still have two free slots; ties prefer the pair with the smallest
/// remaining total demand. Rows with a single leftover demand are served
/// by single loads when no pair helps.
///
/// # Example
///
/// ```
/// use pade_core::rars::rars_schedule;
///
/// // The paper's Fig. 13 example drops from 11 to 8 loads (30% fewer).
/// let rows = vec![vec![0, 1, 2, 3], vec![2, 3, 4, 7], vec![4, 5, 6, 7], vec![2, 3, 4, 7]];
/// assert_eq!(rars_schedule(&rows, 2, 4).total_loads, 8);
/// ```
#[must_use]
pub fn rars_schedule(rows: &[Vec<usize>], per_row: usize, buffer_capacity: usize) -> Schedule {
    // The FSM keeps the naive order as a fallback: if greedy reordering
    // does not reduce loads for this batch, execute left-to-right.
    let greedy = rars_greedy(rows, per_row, buffer_capacity);
    let naive = naive_schedule(rows, per_row);
    if greedy.total_loads <= naive.total_loads {
        greedy
    } else {
        naive
    }
}

fn rars_greedy(rows: &[Vec<usize>], per_row: usize, buffer_capacity: usize) -> Schedule {
    let per_row = per_row.max(1);
    let buffer_capacity = buffer_capacity.max(per_row);
    let mut pending: Vec<BTreeSet<usize>> =
        rows.iter().map(|r| r.iter().copied().collect::<BTreeSet<_>>()).collect();
    let mut rounds = Vec::new();
    let mut total = 0usize;

    while pending.iter().any(|p| !p.is_empty()) {
        let mut slots: Vec<usize> = vec![per_row; pending.len()];
        let mut loaded: BTreeSet<usize> = BTreeSet::new();
        let round_start: Vec<BTreeSet<usize>> = pending.clone();

        loop {
            let remaining = buffer_capacity - loaded.len();
            if remaining == 0 {
                break;
            }
            // Global demand per V across every row's remaining work — the
            // tie-break signal ("save high-demand vectors for rounds where
            // their sharers have free slots", Fig. 13(d)).
            let mut demand: std::collections::BTreeMap<usize, usize> = Default::default();
            for p in pending.iter() {
                for &v in p {
                    *demand.entry(v).or_default() += 1;
                }
            }
            let any_servable = pending
                .iter()
                .zip(&slots)
                .any(|(p, &s)| s > 0 && p.iter().any(|v| !loaded.contains(v)));
            if !any_servable {
                break;
            }

            // Candidate pairs: 2-subsets co-pending in some row with ≥2 slots.
            let mut best_pair: Option<(usize, usize)> = None;
            let mut best_cover = 0usize;
            let mut best_tie = usize::MAX;
            if remaining >= 2 {
                let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
                for (p, &s) in pending.iter().zip(&slots) {
                    if s < 2 {
                        continue;
                    }
                    let vs: Vec<usize> =
                        p.iter().copied().filter(|v| !loaded.contains(v)).collect();
                    for (a_idx, &a) in vs.iter().enumerate() {
                        for &b in &vs[a_idx + 1..] {
                            if !seen.insert((a, b)) {
                                continue;
                            }
                            let cover = pending
                                .iter()
                                .zip(&slots)
                                .filter(|(q, &s2)| s2 >= 2 && q.contains(&a) && q.contains(&b))
                                .count();
                            let tie = demand.get(&a).copied().unwrap_or(0)
                                + demand.get(&b).copied().unwrap_or(0);
                            if cover > best_cover || (cover == best_cover && tie < best_tie) {
                                best_pair = Some((a, b));
                                best_cover = cover;
                                best_tie = tie;
                            }
                        }
                    }
                }
            }

            let chosen: Vec<usize> = if let Some((a, b)) = best_pair {
                vec![a, b]
            } else {
                // Single loads: most-demanded unloaded V pending in a row
                // that still has a free slot.
                let mut candidate: Option<(usize, usize)> = None; // (v, demand)
                for (p, &sl) in pending.iter().zip(&slots) {
                    if sl == 0 {
                        continue;
                    }
                    for &v in p.iter().filter(|v| !loaded.contains(*v)) {
                        let d = demand.get(&v).copied().unwrap_or(0);
                        let better = match candidate {
                            None => true,
                            Some((bv, bd)) => d > bd || (d == bd && v < bv),
                        };
                        if better {
                            candidate = Some((v, d));
                        }
                    }
                }
                match candidate {
                    Some((v, _)) => vec![v],
                    None => break,
                }
            };

            for v in chosen {
                loaded.insert(v);
            }
            // Serve rows immediately so coverage counts reflect consumption.
            for (p, s) in pending.iter_mut().zip(&mut slots) {
                let mine: Vec<usize> = loaded.iter().copied().filter(|v| p.contains(v)).collect();
                for v in mine {
                    if *s == 0 {
                        break;
                    }
                    if p.remove(&v) {
                        *s -= 1;
                    }
                }
            }
        }

        if loaded.is_empty() {
            // Nothing was schedulable this round (all pending rows slotless
            // can't happen since slots reset): defensive against livelock.
            break;
        }
        // Canonicalize the round's consumption: each row serves its pending
        // demands from the loaded set in ascending V order, up to per_row —
        // the same replay rule Schedule::covers applies.
        for (p, snapshot) in pending.iter_mut().zip(&round_start) {
            *p = snapshot.clone();
            let mut served = 0usize;
            for v in &loaded {
                if served < per_row && p.remove(v) {
                    served += 1;
                }
            }
        }
        total += loaded.len();
        rounds.push(loaded.into_iter().collect());
    }

    Schedule { rounds, total_loads: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_rows() -> Vec<Vec<usize>> {
        vec![vec![0, 1, 2, 3], vec![2, 3, 4, 7], vec![4, 5, 6, 7], vec![2, 3, 4, 7]]
    }

    #[test]
    fn paper_example_naive_is_eleven_loads() {
        let s = naive_schedule(&paper_rows(), 2);
        assert_eq!(s.total_loads, 11);
        assert!(s.covers(&paper_rows(), 2));
    }

    #[test]
    fn paper_example_rars_is_eight_loads() {
        let s = rars_schedule(&paper_rows(), 2, 4);
        assert_eq!(s.total_loads, 8, "rounds: {:?}", s.rounds);
        assert!(s.covers(&paper_rows(), 2));
        // ~30% reduction, as the paper reports.
        assert!((1.0_f64 - 8.0 / 11.0 - 0.27).abs() < 0.01);
    }

    #[test]
    fn disjoint_rows_cannot_be_improved() {
        let rows = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let n = naive_schedule(&rows, 2);
        let r = rars_schedule(&rows, 2, 6);
        assert_eq!(n.total_loads, 6);
        assert_eq!(r.total_loads, 6);
    }

    #[test]
    fn identical_rows_collapse_to_one_load_set() {
        let rows = vec![vec![1, 2]; 8];
        let r = rars_schedule(&rows, 2, 4);
        assert_eq!(r.total_loads, 2);
        assert!(r.covers(&rows, 2));
    }

    #[test]
    fn empty_rows_produce_empty_schedule() {
        let rows: Vec<Vec<usize>> = vec![vec![], vec![]];
        assert_eq!(naive_schedule(&rows, 2).total_loads, 0);
        assert_eq!(rars_schedule(&rows, 2, 4).total_loads, 0);
    }

    #[test]
    fn odd_row_lengths_are_served() {
        let rows = vec![vec![0], vec![0, 1, 2], vec![2]];
        let r = rars_schedule(&rows, 2, 4);
        assert!(r.covers(&rows, 2), "rounds: {:?}", r.rounds);
        let n = naive_schedule(&rows, 2);
        assert!(n.covers(&rows, 2));
    }

    proptest! {
        #[test]
        fn prop_rars_covers_and_never_exceeds_naive(
            raw in proptest::collection::vec(
                proptest::collection::vec(0usize..12, 0..8), 1..8),
        ) {
            let rows: Vec<Vec<usize>> = raw
                .into_iter()
                .map(|mut r| { r.sort_unstable(); r.dedup(); r })
                .collect();
            let n = naive_schedule(&rows, 2);
            let r = rars_schedule(&rows, 2, 4);
            prop_assert!(n.covers(&rows, 2));
            prop_assert!(r.covers(&rows, 2), "rounds {:?} rows {:?}", r.rounds, rows);
            prop_assert!(
                r.total_loads <= n.total_loads,
                "RARS {} must not exceed naive {}",
                r.total_loads,
                n.total_loads
            );
        }
    }
}
