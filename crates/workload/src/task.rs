//! Task zoo: the benchmarks of Table II and the long-context workloads of
//! Fig. 15 / Fig. 24, with the paper's published baseline metric values.

/// Metric a task is scored with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// ROUGE-1 (summarization / instruction following).
    Rouge1,
    /// Accuracy in percent.
    AccuracyPct,
    /// Perplexity (lower is better).
    Perplexity,
}

impl Metric {
    /// Whether larger values are better.
    #[must_use]
    pub fn higher_is_better(&self) -> bool {
        !matches!(self, Metric::Perplexity)
    }

    /// Unit string for report tables.
    #[must_use]
    pub fn unit(&self) -> &'static str {
        match self {
            Metric::Rouge1 => "ROUGE-1",
            Metric::AccuracyPct => "%",
            Metric::Perplexity => "PPL",
        }
    }
}

/// Behavioral category of a task; drives both the synthetic score profile
/// and the fidelity→metric sensitivity (Fig. 16(b): generation tasks are
/// more pruning-sensitive than reasoning tasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Open-ended generation (Dolly, WikiLingua, MBPP).
    Generation,
    /// Multiple-choice reasoning (MMLU, WinoGrande).
    Reasoning,
    /// Language modeling (WikiText-2).
    LanguageModeling,
    /// Image classification (ImageNet, VTAB).
    Vision,
    /// Long-context retrieval/summarization (PG-19, InfiniteBench, NIAH).
    LongContext,
}

/// One benchmark task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskConfig {
    /// Task name as printed in the paper.
    pub name: &'static str,
    /// Sequence length the paper evaluates at.
    pub seq_len: usize,
    /// Scoring metric.
    pub metric: Metric,
    /// Behavioral category.
    pub kind: TaskKind,
}

/// Dolly long-form instruction following, S = 15k.
#[must_use]
pub fn dolly() -> TaskConfig {
    TaskConfig {
        name: "Dolly",
        seq_len: 15 * 1024,
        metric: Metric::Rouge1,
        kind: TaskKind::Generation,
    }
}

/// WikiLingua multilingual summarization, S = 2k.
#[must_use]
pub fn wikilingua() -> TaskConfig {
    TaskConfig {
        name: "Wikilingua",
        seq_len: 2048,
        metric: Metric::Rouge1,
        kind: TaskKind::Generation,
    }
}

/// MBPP code generation, S = 1k.
#[must_use]
pub fn mbpp() -> TaskConfig {
    TaskConfig {
        name: "MBPP",
        seq_len: 1024,
        metric: Metric::AccuracyPct,
        kind: TaskKind::Generation,
    }
}

/// WikiText-2 language modeling, S = 2k.
#[must_use]
pub fn wikitext2() -> TaskConfig {
    TaskConfig {
        name: "Wiki2",
        seq_len: 2048,
        metric: Metric::Perplexity,
        kind: TaskKind::LanguageModeling,
    }
}

/// MMLU multiple-choice understanding, S = 0.5k.
#[must_use]
pub fn mmlu() -> TaskConfig {
    TaskConfig {
        name: "MMLU",
        seq_len: 512,
        metric: Metric::AccuracyPct,
        kind: TaskKind::Reasoning,
    }
}

/// WinoGrande commonsense reasoning, S = 0.25k.
#[must_use]
pub fn winogrande() -> TaskConfig {
    TaskConfig {
        name: "Winog.",
        seq_len: 256,
        metric: Metric::AccuracyPct,
        kind: TaskKind::Reasoning,
    }
}

/// ImageNet-1k classification (ViT patch sequences).
#[must_use]
pub fn imagenet() -> TaskConfig {
    TaskConfig { name: "Image", seq_len: 576, metric: Metric::AccuracyPct, kind: TaskKind::Vision }
}

/// VTAB transfer classification.
#[must_use]
pub fn vtab() -> TaskConfig {
    TaskConfig { name: "VTAB", seq_len: 576, metric: Metric::AccuracyPct, kind: TaskKind::Vision }
}

/// PG-19 book-length modeling, S = 100k (Fig. 15(c)).
#[must_use]
pub fn pg19() -> TaskConfig {
    TaskConfig {
        name: "PG-19",
        seq_len: 100_000,
        metric: Metric::Rouge1,
        kind: TaskKind::LongContext,
    }
}

/// InfiniteBench ultra-long context, S = 214k.
#[must_use]
pub fn infinitebench() -> TaskConfig {
    TaskConfig {
        name: "InfiniteBench",
        seq_len: 214_000,
        metric: Metric::Rouge1,
        kind: TaskKind::LongContext,
    }
}

/// Needle-in-a-haystack retrieval, S = 1M (Fig. 24(c)).
#[must_use]
pub fn niah() -> TaskConfig {
    TaskConfig {
        name: "NIAH",
        seq_len: 1_000_000,
        metric: Metric::AccuracyPct,
        kind: TaskKind::LongContext,
    }
}

/// Baseline metric values of one (model, task) cell of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Baseline {
    /// MXINT8 quantization.
    pub mxint8: f64,
    /// FP16 reference.
    pub fp16: f64,
    /// INT8 post-training quantization (the accuracy baseline for PADE).
    pub int8: f64,
    /// PADE standard configuration as published (0 % loss target).
    pub pade_standard: f64,
    /// PADE aggressive configuration as published (≤1 % loss target).
    pub pade_aggressive: f64,
}

/// The published Table II values for a (model, task) pair, if the paper
/// evaluates that combination.
#[must_use]
pub fn table2_baseline(model: &str, task: &str) -> Option<Table2Baseline> {
    let b = |mxint8, fp16, int8, s, a| {
        Some(Table2Baseline { mxint8, fp16, int8, pade_standard: s, pade_aggressive: a })
    };
    match (model, task) {
        ("Llama2-7B", "Dolly") => b(36.5, 36.4, 36.4, 36.3, 36.1),
        ("Llama2-7B", "Wikilingua") => b(39.3, 39.1, 38.9, 38.9, 38.4),
        ("Llama2-7B", "MBPP") => b(17.5, 17.5, 17.2, 17.2, 16.5),
        ("Llama2-7B", "Wiki2") => b(5.63, 5.71, 5.73, 5.75, 5.80),
        ("Llama2-7B", "MMLU") => b(35.2, 35.1, 34.7, 34.6, 34.1),
        ("Llama2-7B", "Winog.") => b(69.8, 69.4, 69.3, 69.2, 68.7),
        ("Llama3-8B", "Dolly") => b(40.9, 40.8, 40.7, 40.6, 40.5),
        ("Llama3-8B", "Wikilingua") => b(43.6, 42.7, 42.7, 42.6, 42.0),
        ("Llama3-8B", "MBPP") => b(23.3, 21.8, 21.6, 21.5, 21.0),
        ("Llama3-8B", "Wiki2") => b(5.01, 5.11, 5.13, 5.13, 5.19),
        ("Llama3-8B", "MMLU") => b(42.2, 41.2, 40.9, 40.7, 40.2),
        ("Llama3-8B", "Winog.") => b(75.1, 74.2, 73.7, 73.7, 72.8),
        ("OPT1B3", "Wikilingua") => b(36.1, 36.2, 35.9, 35.9, 35.3),
        ("OPT1B3", "MBPP") => b(11.9, 11.9, 11.6, 11.5, 11.0),
        ("Bloom1B7", "Wikilingua") => b(44.6, 44.3, 44.1, 44.0, 43.6),
        ("Bloom1B7", "MBPP") => b(16.3, 16.0, 15.7, 15.6, 15.2),
        ("Qwen7B", "Wikilingua") => b(46.8, 46.6, 46.4, 46.3, 45.9),
        ("Qwen7B", "MBPP") => b(30.5, 30.0, 29.2, 29.2, 28.4),
        ("ViT-L/16", "Image") => b(85.5, 85.3, 85.3, 85.3, 84.9),
        ("ViT-L/16", "VTAB") => b(72.8, 72.7, 72.5, 72.5, 72.4),
        ("PVT", "Image") => b(89.7, 89.4, 89.3, 89.3, 89.1),
        ("PVT", "VTAB") => b(77.5, 77.3, 77.1, 77.1, 76.8),
        _ => None,
    }
}

/// The (model, task-list) pairing of Table II.
#[must_use]
pub fn table2_layout() -> Vec<(&'static str, Vec<TaskConfig>)> {
    vec![
        ("Llama2-7B", vec![dolly(), wikilingua(), mbpp(), wikitext2(), mmlu(), winogrande()]),
        ("Llama3-8B", vec![dolly(), wikilingua(), mbpp(), wikitext2(), mmlu(), winogrande()]),
        ("OPT1B3", vec![wikilingua(), mbpp()]),
        ("Bloom1B7", vec![wikilingua(), mbpp()]),
        ("Qwen7B", vec![wikilingua(), mbpp()]),
        ("ViT-L/16", vec![imagenet(), vtab()]),
        ("PVT", vec![imagenet(), vtab()]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table2_cell_has_baselines() {
        for (model, tasks) in table2_layout() {
            for t in tasks {
                assert!(
                    table2_baseline(model, t.name).is_some(),
                    "missing Table II data for {model}/{}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn table2_covers_22_benchmark_cells() {
        let total: usize = table2_layout().iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total, 22, "the paper evaluates 22 benchmarks");
    }

    #[test]
    fn perplexity_is_lower_better() {
        assert!(!Metric::Perplexity.higher_is_better());
        assert!(Metric::Rouge1.higher_is_better());
    }

    #[test]
    fn pade_standard_is_within_rounding_of_int8() {
        for (model, tasks) in table2_layout() {
            for t in tasks {
                let b = table2_baseline(model, t.name).unwrap();
                let diff = (b.pade_standard - b.int8).abs();
                let tol = if t.metric == Metric::Perplexity { 0.03 } else { 0.25 };
                assert!(diff <= tol, "{model}/{}: standard drop {diff}", t.name);
            }
        }
    }

    #[test]
    fn aggressive_never_beats_int8() {
        for (model, tasks) in table2_layout() {
            for t in tasks {
                let b = table2_baseline(model, t.name).unwrap();
                if t.metric.higher_is_better() {
                    assert!(b.pade_aggressive <= b.int8 + 1e-9);
                } else {
                    assert!(b.pade_aggressive >= b.int8 - 1e-9);
                }
            }
        }
    }

    #[test]
    fn long_context_tasks_have_long_sequences() {
        assert!(pg19().seq_len >= 100_000);
        assert!(infinitebench().seq_len >= 200_000);
        assert!(niah().seq_len >= 1_000_000);
        assert_eq!(dolly().seq_len, 15 * 1024);
    }
}
