//! Sparsity predictor mechanisms of the prior accelerators (§I, Table I).
//!
//! Each predictor consumes the *full* key tensor at reduced precision and
//! emits estimated attention logits; its estimation error is what forces
//! stage-splitting designs to guard-band their selection (keeping more
//! keys than necessary) or lose accuracy. The estimates here are computed
//! from the actual quantized operands, so the error is the mechanism's
//! real error, not a synthetic noise model — except for SpAtten/DTATrans,
//! whose "previous layer" signal has no counterpart in a single-layer
//! trace and is modeled as the exact logits plus a cross-layer drift term.

use pade_sim::{Cycle, OpCounts, TrafficCounts};
use pade_workload::trace::AttentionTrace;

use crate::common::PRED_INT4_PER_CYCLE;

/// A sparsity-prediction mechanism.
pub trait Predictor {
    /// Mechanism name.
    fn name(&self) -> &'static str;

    /// Estimated logits of one query row over all keys.
    fn estimate(&self, trace: &AttentionTrace, row: usize) -> Vec<f32>;

    /// Per-block predictor cost: ops, traffic and cycles for `n_q` query
    /// rows over `s` keys of `h` dims.
    fn cost(&self, n_q: usize, s: usize, h: usize) -> (OpCounts, TrafficCounts, Cycle);
}

/// MSB-slice predictor (Sanger, Energon): estimates scores from the top
/// `bits` bits of both operands.
#[derive(Debug, Clone, Copy)]
pub struct MsbPredictor {
    /// Number of MSBs used (4 for Sanger, 2 for Energon's first round).
    pub bits: u32,
}

/// Truncates an INT8 code to its top `bits` bits (arithmetic shift keeps
/// the sign, as the hardware slice does).
fn msb_slice(v: i8, bits: u32) -> i32 {
    let shift = 8 - bits;
    (i32::from(v) >> shift) << shift
}

impl Predictor for MsbPredictor {
    fn name(&self) -> &'static str {
        "msb"
    }

    fn estimate(&self, trace: &AttentionTrace, row: usize) -> Vec<f32> {
        let q = trace.queries().row(row);
        let scale = trace.logit_scale();
        (0..trace.keys().rows())
            .map(|j| {
                let k = trace.keys().row(j);
                let dot: i32 = q
                    .iter()
                    .zip(k)
                    .map(|(&a, &b)| msb_slice(a, self.bits) * msb_slice(b, self.bits))
                    .sum();
                dot as f32 * scale
            })
            .collect()
    }

    fn cost(&self, n_q: usize, s: usize, h: usize) -> (OpCounts, TrafficCounts, Cycle) {
        let macs = (n_q * s * h) as u64;
        let ops = OpCounts { int4_mac: macs, compare: (n_q * s) as u64, ..OpCounts::default() };
        // The predictor must stream the full K tensor at its bit width —
        // the cost that sparsity cannot reduce (§I observation 2).
        let k_bytes = (s * h) as u64 * u64::from(self.bits) / 8;
        let traffic = TrafficCounts {
            dram_read_bytes: k_bytes,
            dram_bursts: k_bytes.div_ceil(32),
            sram_read_bytes: macs / 2,
            sram_write_bytes: k_bytes,
            ..TrafficCounts::default()
        };
        let cycles = Cycle(macs.div_ceil(PRED_INT4_PER_CYCLE));
        (ops, traffic, cycles)
    }
}

/// Low-rank projection predictor (DOTA, ELSA-like): projects Q and K onto
/// a `rank`-dimensional basis and estimates scores there. DOTA *learns*
/// its projection to preserve attention order; we emulate the learned
/// quality by orthonormalizing a spread sample of key rows — the dominant
/// score structure lies in the keys' own span, which is exactly what a
/// trained projection discovers.
#[derive(Debug, Clone, Copy)]
pub struct LowRankPredictor {
    /// Projection rank.
    pub rank: usize,
}

impl LowRankPredictor {
    /// Greedy max-residual basis (orthogonal-matching-pursuit style): each
    /// step adds the key row least explained by the current basis. This is
    /// what a projection *trained* to preserve attention structure
    /// converges toward, and it guarantees coverage of every strong score
    /// direction present in the key tensor.
    fn learned_basis(&self, trace: &AttentionTrace) -> Vec<Vec<f32>> {
        let s = trace.keys().rows();
        // Residual candidates, subsampled for tractability on long traces.
        let stride = (s / 512).max(1);
        let mut residuals: Vec<Vec<f32>> = (0..s)
            .step_by(stride)
            .map(|j| trace.keys().row(j).iter().map(|&x| f32::from(x)).collect())
            .collect();
        let mut basis: Vec<Vec<f32>> = Vec::with_capacity(self.rank);
        while basis.len() < self.rank {
            let (best, norm) = residuals
                .iter()
                .enumerate()
                .map(|(i, v)| (i, v.iter().map(|x| x * x).sum::<f32>().sqrt()))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("norms are finite"))
                .unwrap_or((0, 0.0));
            if norm < 1e-3 {
                break;
            }
            let dir: Vec<f32> = residuals[best].iter().map(|x| x / norm).collect();
            for v in &mut residuals {
                let dot: f32 = v.iter().zip(&dir).map(|(x, y)| x * y).sum();
                for (x, y) in v.iter_mut().zip(&dir) {
                    *x -= dot * y;
                }
            }
            basis.push(dir);
        }
        basis
    }

    fn project(v: &[i8], basis: &[Vec<f32>]) -> Vec<f32> {
        basis.iter().map(|b| v.iter().zip(b).map(|(&x, w)| f32::from(x) * w).sum::<f32>()).collect()
    }
}

impl Predictor for LowRankPredictor {
    fn name(&self) -> &'static str {
        "low-rank"
    }

    fn estimate(&self, trace: &AttentionTrace, row: usize) -> Vec<f32> {
        let scale = trace.logit_scale();
        let basis = self.learned_basis(trace);
        let qp = Self::project(trace.queries().row(row), &basis);
        (0..trace.keys().rows())
            .map(|j| {
                let kp = Self::project(trace.keys().row(j), &basis);
                let dot: f32 = qp.iter().zip(&kp).map(|(a, b)| a * b).sum();
                dot * scale
            })
            .collect()
    }

    fn cost(&self, n_q: usize, s: usize, h: usize) -> (OpCounts, TrafficCounts, Cycle) {
        // Projecting K: s×h×rank; projected scores: n_q×s×rank.
        let ops = OpCounts {
            int8_mac: (s * h * self.rank) as u64 + (n_q * s * self.rank) as u64,
            compare: (n_q * s) as u64,
            ..OpCounts::default()
        };
        let k_bytes = (s * h) as u64; // K streamed once at 8-bit to project
        let mut traffic = TrafficCounts {
            dram_read_bytes: k_bytes,
            dram_bursts: k_bytes.div_ceil(32),
            sram_read_bytes: ops.int8_mac / 4,
            ..TrafficCounts::default()
        };
        traffic.sram_write_bytes = (s * self.rank) as u64;
        let cycles = Cycle(ops.int8_mac.div_ceil(crate::common::EXEC_MACS_PER_CYCLE));
        (ops, traffic, cycles)
    }
}

/// Log-domain shift predictor (SOFA, FACT): scores estimated from the
/// leading-one positions (`sign · 2^⌊log₂|q|⌋ · 2^⌊log₂|k|⌋`), replacing
/// multipliers with adders/shifters.
#[derive(Debug, Clone, Copy)]
pub struct LogDomainPredictor;

fn log_approx(v: i8) -> i32 {
    let mag = i32::from(v).unsigned_abs();
    if mag == 0 {
        return 0;
    }
    let pow = 1i32 << (31 - mag.leading_zeros());
    if v < 0 {
        -pow
    } else {
        pow
    }
}

impl Predictor for LogDomainPredictor {
    fn name(&self) -> &'static str {
        "log-domain"
    }

    fn estimate(&self, trace: &AttentionTrace, row: usize) -> Vec<f32> {
        let q = trace.queries().row(row);
        let scale = trace.logit_scale();
        (0..trace.keys().rows())
            .map(|j| {
                let k = trace.keys().row(j);
                let dot: i32 =
                    q.iter().zip(k).map(|(&a, &b)| log_approx(a) * log_approx(b) / 2).sum();
                // The /2 centers the 1.0–2.0× mantissa bias of the
                // leading-one approximation.
                dot as f32 * scale * 2.0
            })
            .collect()
    }

    fn cost(&self, n_q: usize, s: usize, h: usize) -> (OpCounts, TrafficCounts, Cycle) {
        let lookups = (n_q * s * h) as u64;
        let ops = OpCounts {
            shift_add: lookups,            // shifter-adder tree instead of multipliers
            lut_lookup: (s * h) as u64,    // leading-one detection on K
            compare: (n_q * s) as u64 * 4, // top-k sorting network steps
            ..OpCounts::default()
        };
        let mut traffic = TrafficCounts::default();
        let k_bytes = (s * h) as u64 / 2; // 4-bit log codes
        traffic.dram_read_bytes = k_bytes;
        traffic.dram_bursts = k_bytes.div_ceil(32);
        traffic.sram_read_bytes = lookups / 2;
        traffic.sram_write_bytes = k_bytes;
        let cycles = Cycle(lookups.div_ceil(PRED_INT4_PER_CYCLE * 2));
        (ops, traffic, cycles)
    }
}

/// Previous-layer score predictor (SpAtten, DTATrans): no prediction pass
/// at all — sparsity is guided by the attention distribution of the
/// preceding layer, which drifts from the current layer's. Without
/// finetuning the drift is large (the paper reports accuracy loss);
/// finetuning recovers most of it.
#[derive(Debug, Clone, Copy)]
pub struct PrevLayerPredictor {
    /// Cross-layer drift of the score signal, in logits (≈2.5 raw, ≈1.0
    /// after finetuning).
    pub drift_logits: f32,
}

impl Predictor for PrevLayerPredictor {
    fn name(&self) -> &'static str {
        "prev-layer"
    }

    fn estimate(&self, trace: &AttentionTrace, row: usize) -> Vec<f32> {
        // Deterministic pseudo-noise standing in for layer-to-layer drift.
        let logits = trace.exact_logits(row);
        logits
            .iter()
            .enumerate()
            .map(|(j, &x)| {
                let h = (row as u64 + 1)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((j as u64).wrapping_mul(0xBF58476D1CE4E5B9));
                let u = ((h >> 33) as f32 / (1u64 << 31) as f32) - 0.5;
                x + u * 2.0 * self.drift_logits
            })
            .collect()
    }

    fn cost(&self, n_q: usize, s: usize, _h: usize) -> (OpCounts, TrafficCounts, Cycle) {
        // Only the top-k selection hardware; scores are free.
        let ops = OpCounts { compare: (n_q * s) as u64 * 4, ..OpCounts::default() };
        (ops, TrafficCounts::default(), Cycle(((n_q * s) as u64) / 64 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pade_workload::trace::TraceConfig;

    fn trace() -> AttentionTrace {
        AttentionTrace::generate(&TraceConfig::small_demo())
    }

    fn correlation(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let ma = a.iter().sum::<f32>() / n;
        let mb = b.iter().sum::<f32>() / n;
        let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f32 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f32 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-9)
    }

    #[test]
    fn msb_estimates_correlate_with_exact() {
        let t = trace();
        let exact = t.exact_logits(0);
        let est = MsbPredictor { bits: 4 }.estimate(&t, 0);
        assert!(correlation(&exact, &est) > 0.8, "4-bit MSB should track scores");
        // 2-bit is worse than 4-bit.
        let est2 = MsbPredictor { bits: 2 }.estimate(&t, 0);
        assert!(correlation(&exact, &est2) < correlation(&exact, &est));
    }

    #[test]
    fn msb_slice_keeps_sign() {
        assert_eq!(msb_slice(-5, 4), -16);
        assert_eq!(msb_slice(100, 4), 96);
        assert_eq!(msb_slice(7, 4), 0);
    }

    #[test]
    fn low_rank_estimates_correlate() {
        let t = trace();
        let exact = t.exact_logits(1);
        let est = LowRankPredictor { rank: 16 }.estimate(&t, 1);
        assert!(correlation(&exact, &est) > 0.5, "rank-16 sketch should track scores");
    }

    #[test]
    fn log_domain_estimates_correlate() {
        let t = trace();
        let exact = t.exact_logits(0);
        let est = LogDomainPredictor.estimate(&t, 0);
        assert!(correlation(&exact, &est) > 0.7, "log-domain should track scores");
    }

    #[test]
    fn prev_layer_drift_controls_error() {
        let t = trace();
        let exact = t.exact_logits(0);
        let sharp = PrevLayerPredictor { drift_logits: 0.5 }.estimate(&t, 0);
        let noisy = PrevLayerPredictor { drift_logits: 4.0 }.estimate(&t, 0);
        assert!(correlation(&exact, &sharp) > correlation(&exact, &noisy));
    }

    #[test]
    fn predictor_costs_scale_with_workload() {
        for p in [&MsbPredictor { bits: 4 } as &dyn Predictor, &LogDomainPredictor] {
            let (ops_a, traffic_a, _) = p.cost(4, 256, 64);
            let (ops_b, traffic_b, _) = p.cost(4, 512, 64);
            assert!(ops_b.equivalent_adds() > ops_a.equivalent_adds());
            assert!(traffic_b.dram_read_bytes > traffic_a.dram_read_bytes);
        }
    }

    #[test]
    fn predictor_traffic_is_independent_of_sparsity() {
        // The core motivation (Fig. 2): the predictor streams the whole K
        // tensor regardless of how sparse the attention turns out.
        let p = MsbPredictor { bits: 4 };
        let (_, traffic, _) = p.cost(8, 2048, 64);
        assert_eq!(traffic.dram_read_bytes, 2048 * 64 / 2);
    }
}
