//! The `serve` scenario: continuous batching vs one-request-at-a-time.
//!
//! [`run_serve_matrix`] replays the same seeded arrival trace through the
//! `pade-serve` loop twice per arrival rate — [`ScheduleMode::Batched`]
//! and the [`ScheduleMode::Solo`] baseline — at two or more rates
//! (moderate and saturated), hard-checks that every request's outputs are
//! byte-identical across both schedules **and** against solo
//! `run_qk_block_reference` oracle runs, and records latency percentiles,
//! simulated tokens/s and queue statistics. [`write_serve_json`]
//! serializes the sweep to the `BENCH_<n>.json` trajectory schema
//! (`BENCH_2.json` records the first serving PR).

use std::io::Write as _;
use std::time::Instant;

use pade_serve::scheduler::ScheduleMode;
use pade_serve::server::{serve, ServeConfig, ServeReport};
use pade_serve::{output_bytes, reference_outputs};
use pade_workload::trace::{generate_arrivals, ArrivalConfig, RequestArrival};

/// One arrival rate of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSpec {
    /// Stable label, e.g. `"moderate"`.
    pub label: &'static str,
    /// Mean inter-arrival gap in core cycles.
    pub mean_interarrival_cycles: f64,
}

/// The latency/throughput digest of one schedule mode at one rate.
#[derive(Debug, Clone, Copy)]
pub struct ModeSummary {
    /// Median latency in cycles.
    pub p50_cycles: u64,
    /// 95th-percentile latency in cycles.
    pub p95_cycles: u64,
    /// 99th-percentile latency in cycles.
    pub p99_cycles: u64,
    /// Mean latency in cycles.
    pub mean_cycles: f64,
    /// Simulated tokens per second at the 800 MHz core clock.
    pub tokens_per_s: f64,
    /// Makespan in cycles.
    pub makespan_cycles: u64,
    /// Time-weighted mean requests in system.
    pub queue_depth_mean: f64,
    /// Time-weighted mean engine-slot occupancy.
    pub occupancy_mean: f64,
    /// Host wall-clock seconds of the serve run.
    pub wall_s: f64,
}

impl ModeSummary {
    fn from_report(report: &ServeReport, wall_s: f64) -> Self {
        let s = &report.summary;
        Self {
            p50_cycles: s.latency.p50.0,
            p95_cycles: s.latency.p95.0,
            p99_cycles: s.latency.p99.0,
            mean_cycles: s.latency.mean,
            tokens_per_s: s.tokens_per_s,
            makespan_cycles: s.makespan.0,
            queue_depth_mean: s.queue_depth_mean,
            occupancy_mean: s.occupancy_mean,
            wall_s,
        }
    }
}

/// Measured outcome of one arrival rate.
#[derive(Debug, Clone)]
pub struct ServeScenarioResult {
    /// The rate.
    pub rate: RateSpec,
    /// Requests served.
    pub n_requests: usize,
    /// Query-row tokens served.
    pub tokens: u64,
    /// Continuous batching.
    pub batched: ModeSummary,
    /// One-request-at-a-time baseline.
    pub solo: ModeSummary,
    /// `batched.tokens_per_s / solo.tokens_per_s`.
    pub throughput_gain: f64,
    /// Whether every request's outputs were byte-identical across batched
    /// serving, solo serving and the solo seed-oracle runs (hard-checked;
    /// a mismatch panics before this is ever recorded false).
    pub bit_identical: bool,
}

/// The workload behind the sweep: `quick` trims context, request count
/// and rate count for CI smoke runs.
#[must_use]
pub fn serve_workload(quick: bool) -> (ArrivalConfig, Vec<RateSpec>) {
    if quick {
        let base = ArrivalConfig {
            n_requests: 6,
            decode_steps: 2,
            prefill_rows: 8,
            seq_len: 256,
            seed: 2026,
            ..ArrivalConfig::small_demo()
        };
        let rates = vec![
            RateSpec { label: "moderate", mean_interarrival_cycles: 2_000.0 },
            RateSpec { label: "saturated", mean_interarrival_cycles: 400.0 },
        ];
        return (base, rates);
    }
    let base = ArrivalConfig {
        n_requests: 24,
        decode_steps: 8,
        prefill_rows: 16,
        seq_len: 1024,
        seed: 2026,
        ..ArrivalConfig::small_demo()
    };
    let rates = vec![
        RateSpec { label: "moderate", mean_interarrival_cycles: 4_000.0 },
        RateSpec { label: "saturated", mean_interarrival_cycles: 1_000.0 },
        RateSpec { label: "overload", mean_interarrival_cycles: 500.0 },
    ];
    (base, rates)
}

/// Checks that every request's batched outputs equal its solo outputs and
/// its solo seed-oracle (`run_qk_block_reference`) outputs, byte for
/// byte.
///
/// # Panics
///
/// Panics on any divergence — bit-identity is a hard invariant, not a
/// metric.
fn check_bit_identity(
    arrivals: &[RequestArrival],
    config: &ServeConfig,
    batched: &ServeReport,
    solo: &ServeReport,
) {
    assert_eq!(batched.completions.len(), arrivals.len());
    pade_serve::assert_outputs_identical(batched, solo);
    for completion in &batched.completions {
        let oracle = reference_outputs(&arrivals[completion.id], &config.engine);
        assert!(
            completion.output_bytes() == output_bytes(&oracle),
            "request {}: batched output diverged from the solo seed oracle",
            completion.id
        );
    }
}

/// Runs one arrival rate through both schedules and cross-checks outputs.
#[must_use]
pub fn run_serve_rate(
    base: &ArrivalConfig,
    rate: &RateSpec,
    config: &ServeConfig,
) -> ServeScenarioResult {
    let arrivals = generate_arrivals(&ArrivalConfig {
        mean_interarrival_cycles: rate.mean_interarrival_cycles,
        ..*base
    });

    let start = Instant::now();
    let batched = serve(config, &arrivals, ScheduleMode::Batched);
    let batched_wall = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let solo = serve(config, &arrivals, ScheduleMode::Solo);
    let solo_wall = start.elapsed().as_secs_f64();

    check_bit_identity(&arrivals, config, &batched, &solo);

    ServeScenarioResult {
        rate: *rate,
        n_requests: arrivals.len(),
        tokens: batched.summary.tokens,
        batched: ModeSummary::from_report(&batched, batched_wall),
        solo: ModeSummary::from_report(&solo, solo_wall),
        throughput_gain: batched.summary.tokens_per_s
            / solo.summary.tokens_per_s.max(f64::MIN_POSITIVE),
        bit_identical: true,
    }
}

/// A finished serve sweep: the workload it actually ran and the per-rate
/// results. Carrying the workload here keeps the JSON metadata tied to
/// the measurements instead of being re-derived at write time.
#[derive(Debug, Clone)]
pub struct ServeSweep {
    /// The arrival workload every rate was generated from (the rate rows
    /// override only `mean_interarrival_cycles`).
    pub workload: ArrivalConfig,
    /// One entry per arrival rate.
    pub results: Vec<ServeScenarioResult>,
}

/// Runs the serve sweep under the standard serving configuration.
#[must_use]
pub fn run_serve_matrix(quick: bool) -> ServeSweep {
    let (base, rates) = serve_workload(quick);
    let config = ServeConfig::standard();
    let results = rates.iter().map(|rate| run_serve_rate(&base, rate, &config)).collect();
    ServeSweep { workload: base, results }
}

fn write_mode(f: &mut std::fs::File, name: &str, m: &ModeSummary) -> std::io::Result<()> {
    writeln!(f, "      \"{name}\": {{")?;
    writeln!(f, "        \"p50_cycles\": {},", m.p50_cycles)?;
    writeln!(f, "        \"p95_cycles\": {},", m.p95_cycles)?;
    writeln!(f, "        \"p99_cycles\": {},", m.p99_cycles)?;
    writeln!(f, "        \"mean_cycles\": {:.1},", m.mean_cycles)?;
    writeln!(f, "        \"tokens_per_s_sim\": {:.1},", m.tokens_per_s)?;
    writeln!(f, "        \"makespan_cycles\": {},", m.makespan_cycles)?;
    writeln!(f, "        \"queue_depth_mean\": {:.3},", m.queue_depth_mean)?;
    writeln!(f, "        \"occupancy_mean\": {:.3},", m.occupancy_mean)?;
    writeln!(f, "        \"wall_s\": {:.6}", m.wall_s)?;
    write!(f, "      }}")?;
    Ok(())
}

/// Serializes a serve sweep to the `BENCH_<n>.json` trajectory schema.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_serve_json(
    path: &std::path::Path,
    sweep: &ServeSweep,
    mode: &str,
) -> std::io::Result<()> {
    let base = &sweep.workload;
    let results = &sweep.results;
    let config = ServeConfig::standard();
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"bench_id\": {},", crate::bench_id_from_path(path))?;
    writeln!(f, "  \"tool\": \"pade-bench\",")?;
    writeln!(f, "  \"scenario\": \"serve\",")?;
    writeln!(f, "  \"mode\": \"{mode}\",")?;
    writeln!(f, "  \"worker_threads\": {},", pade_par::max_threads())?;
    writeln!(
        f,
        "  \"paths\": {{\"batched\": \"pade-serve continuous batching \
         (FCFS, {} slots, {} max batch tokens)\", \"baseline\": \
         \"one-request-at-a-time FCFS\"}},",
        config.engine_slots, config.max_batch_tokens
    )?;
    writeln!(
        f,
        "  \"workload\": {{\"n_requests\": {}, \"seq_len\": {}, \"decode_steps\": {}, \
         \"prefill_rows\": {}, \"decode_fraction\": {:.2}, \"seed\": {}}},",
        base.n_requests,
        base.seq_len,
        base.decode_steps,
        base.prefill_rows,
        base.decode_fraction,
        base.seed
    )?;
    writeln!(f, "  \"rates\": [")?;
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        writeln!(f, "    {{")?;
        writeln!(f, "      \"label\": \"{}\",", r.rate.label)?;
        writeln!(f, "      \"mean_interarrival_cycles\": {:.0},", r.rate.mean_interarrival_cycles)?;
        writeln!(f, "      \"n_requests\": {},", r.n_requests)?;
        writeln!(f, "      \"tokens\": {},", r.tokens)?;
        write_mode(&mut f, "batched", &r.batched)?;
        writeln!(f, ",")?;
        write_mode(&mut f, "solo", &r.solo)?;
        writeln!(f, ",")?;
        writeln!(f, "      \"throughput_gain\": {:.3},", r.throughput_gain)?;
        writeln!(f, "      \"bit_identical\": {}", r.bit_identical)?;
        writeln!(f, "    }}{comma}")?;
    }
    writeln!(f, "  ],")?;
    let headline = results
        .iter()
        .max_by(|a, b| a.throughput_gain.total_cmp(&b.throughput_gain))
        .expect("at least one rate");
    writeln!(
        f,
        "  \"headline\": {{\"rate\": \"{}\", \"throughput_gain\": {:.3}, \
         \"batched_p99_cycles\": {}, \"solo_p99_cycles\": {}, \"bit_identical\": {}}}",
        headline.rate.label,
        headline.throughput_gain,
        headline.batched.p99_cycles,
        headline.solo.p99_cycles,
        headline.bit_identical
    )?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_serve_matrix_checks_identity_and_dominance() {
        let sweep = run_serve_matrix(true);
        let results = &sweep.results;
        assert_eq!(sweep.workload.n_requests, results[0].n_requests);
        assert_eq!(results.len(), 2);
        for r in results {
            assert!(r.bit_identical);
            assert!(
                r.throughput_gain >= 1.0,
                "batched must not lose to solo at {}: {}",
                r.rate.label,
                r.throughput_gain
            );
            assert!(r.batched.p50_cycles <= r.batched.p99_cycles);
            assert!(r.tokens > 0);
        }
        // Saturation amplifies the batching gain.
        assert!(results[1].throughput_gain >= results[0].throughput_gain);
    }

    #[test]
    fn serve_json_is_well_formed_enough() {
        let sweep = run_serve_matrix(true);
        let path = std::env::temp_dir().join("pade_serve_bench_test.json");
        write_serve_json(&path, &sweep, "quick").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert_eq!(text.matches("\"throughput_gain\"").count(), 3); // 2 rates + headline
        assert!(text.contains("\"p99_cycles\""));
        assert!(text.contains("\"scenario\": \"serve\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn full_matrix_sweeps_at_least_two_rates() {
        let (_, rates) = serve_workload(false);
        assert!(rates.len() >= 2);
    }
}
