use crate::Cycle;

/// Busy/stall accounting for one execution unit (a PE lane, a systolic
/// column, a DRAM channel).
///
/// The split mirrors Fig. 23(a): *useful* cycles, *intra-unit* stalls
/// (waiting on work inside the lane — e.g. more effective bits than peers),
/// and *inter-unit* stalls (waiting on another unit or on memory).
///
/// # Example
///
/// ```
/// use pade_sim::UtilizationCounter;
///
/// let mut u = UtilizationCounter::new();
/// u.busy(8);
/// u.stall_intra(1);
/// u.stall_inter(1);
/// assert!((u.utilization() - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtilizationCounter {
    busy_cycles: u64,
    intra_stall_cycles: u64,
    inter_stall_cycles: u64,
    mem_stall_cycles: u64,
}

impl UtilizationCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` cycles of useful work.
    pub fn busy(&mut self, n: u64) {
        self.busy_cycles += n;
    }

    /// Records `n` cycles stalled on imbalance internal to the unit.
    pub fn stall_intra(&mut self, n: u64) {
        self.intra_stall_cycles += n;
    }

    /// Records `n` cycles stalled on a peer unit (lockstep barriers, tail
    /// imbalance).
    pub fn stall_inter(&mut self, n: u64) {
        self.inter_stall_cycles += n;
    }

    /// Records `n` cycles stalled on memory (exposed DRAM latency).
    pub fn stall_mem(&mut self, n: u64) {
        self.mem_stall_cycles += n;
    }

    /// Memory stall cycles.
    #[must_use]
    pub fn mem_stalls(&self) -> u64 {
        self.mem_stall_cycles
    }

    /// Useful cycles.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Intra-unit stall cycles.
    #[must_use]
    pub fn intra_stalls(&self) -> u64 {
        self.intra_stall_cycles
    }

    /// Inter-unit stall cycles.
    #[must_use]
    pub fn inter_stalls(&self) -> u64 {
        self.inter_stall_cycles
    }

    /// Total accounted cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.busy_cycles + self.intra_stall_cycles + self.inter_stall_cycles + self.mem_stall_cycles
    }

    /// Workload-balance efficiency: useful fraction of the cycles spent
    /// busy or imbalance-stalled (memory stalls excluded) — the metric of
    /// Fig. 23(a).
    #[must_use]
    pub fn balance_efficiency(&self) -> f64 {
        let t = self.busy_cycles + self.intra_stall_cycles + self.inter_stall_cycles;
        if t == 0 {
            1.0
        } else {
            self.busy_cycles as f64 / t as f64
        }
    }

    /// Fraction of accounted cycles doing useful work; `1.0` when nothing
    /// was accounted (an idle-but-unused unit is not a stall).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.busy_cycles as f64 / total as f64
        }
    }

    /// Elementwise accumulation of another counter.
    pub fn merge(&mut self, other: &UtilizationCounter) {
        self.busy_cycles += other.busy_cycles;
        self.intra_stall_cycles += other.intra_stall_cycles;
        self.inter_stall_cycles += other.inter_stall_cycles;
        self.mem_stall_cycles += other.mem_stall_cycles;
    }

    /// Pads the counter with inter-unit stalls so its total reaches
    /// `horizon` cycles (used to charge tail latency to lanes that finished
    /// early).
    pub fn pad_to(&mut self, horizon: Cycle) {
        let total = self.total();
        if horizon.0 > total {
            self.inter_stall_cycles += horizon.0 - total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_untouched_counter_is_one() {
        assert_eq!(UtilizationCounter::new().utilization(), 1.0);
    }

    #[test]
    fn merge_accumulates_fields() {
        let mut a = UtilizationCounter::new();
        a.busy(10);
        let mut b = UtilizationCounter::new();
        b.stall_intra(5);
        b.stall_inter(5);
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert!((a.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pad_to_charges_inter_stalls() {
        let mut u = UtilizationCounter::new();
        u.busy(6);
        u.pad_to(Cycle(10));
        assert_eq!(u.inter_stalls(), 4);
        u.pad_to(Cycle(5)); // shorter horizon: no change
        assert_eq!(u.total(), 10);
    }
}
