//! H100 roofline model for the GPU comparisons.
//!
//! The paper benchmarks an Nvidia H100 running TensorRT-LLM with
//! FlashAttention-3 (§VI-A), measuring attention-kernel latency with CUDA
//! events and power with `nvidia-smi`. This module substitutes a roofline:
//! a phase is characterized by its arithmetic and its HBM traffic, and its
//! latency is whichever bound dominates at the achievable fractions of the
//! published peaks. That reproduces exactly the behaviour the paper's GPU
//! experiments exercise — attention is memory-bound at long sequence
//! lengths, and fine-grained sparsity cannot be exploited by the wide
//! tensor-core datapath (Fig. 18(b)).

/// Published H100 SXM parameters with achievable-fraction knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct H100Config {
    /// Dense INT8 tensor-core peak, TOPS.
    pub int8_tops: f64,
    /// Dense FP16 tensor-core peak, TFLOPS.
    pub fp16_tflops: f64,
    /// HBM3 bandwidth, TB/s.
    pub hbm_tbps: f64,
    /// Board power at full load, W.
    pub tdp_w: f64,
    /// Board power when idle, W.
    pub idle_w: f64,
    /// Achievable fraction of peak compute on attention kernels.
    pub attention_mfu: f64,
    /// Achievable fraction of peak bandwidth on attention kernels.
    pub bandwidth_eff: f64,
    /// Per-kernel launch overhead, microseconds.
    pub kernel_overhead_us: f64,
}

impl Default for H100Config {
    fn default() -> Self {
        Self {
            int8_tops: 1979.0,
            fp16_tflops: 989.0,
            hbm_tbps: 3.35,
            tdp_w: 700.0,
            idle_w: 80.0,
            attention_mfu: 0.35,
            bandwidth_eff: 0.65,
            kernel_overhead_us: 8.0,
        }
    }
}

/// One GPU execution phase: arithmetic plus memory traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuPhase {
    /// INT8 tensor-core operations (MAC = 2 ops).
    pub int8_ops: f64,
    /// FP16 operations (softmax and friends).
    pub fp_ops: f64,
    /// Bytes moved to/from HBM.
    pub hbm_bytes: f64,
    /// Number of kernel launches.
    pub kernels: f64,
}

impl GpuPhase {
    /// Sums two phases.
    #[must_use]
    pub fn plus(&self, other: &GpuPhase) -> GpuPhase {
        GpuPhase {
            int8_ops: self.int8_ops + other.int8_ops,
            fp_ops: self.fp_ops + other.fp_ops,
            hbm_bytes: self.hbm_bytes + other.hbm_bytes,
            kernels: self.kernels + other.kernels,
        }
    }
}

/// Roofline latency/energy model of one H100.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct H100Model {
    config: H100Config,
}

impl H100Model {
    /// Builds a model from a configuration.
    #[must_use]
    pub fn new(config: H100Config) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &H100Config {
        &self.config
    }

    /// Roofline latency of a phase, seconds.
    #[must_use]
    pub fn latency_s(&self, phase: &GpuPhase) -> f64 {
        let c = &self.config;
        let compute_s = phase.int8_ops / (c.int8_tops * 1e12 * c.attention_mfu)
            + phase.fp_ops / (c.fp16_tflops * 1e12 * c.attention_mfu);
        let memory_s = phase.hbm_bytes / (c.hbm_tbps * 1e12 * c.bandwidth_eff);
        compute_s.max(memory_s) + phase.kernels * c.kernel_overhead_us * 1e-6
    }

    /// Energy of a phase, joules: run time at an activity-scaled draw. The
    /// activity factor is the roofline utilization of the binding resource.
    #[must_use]
    pub fn energy_j(&self, phase: &GpuPhase) -> f64 {
        let latency = self.latency_s(phase);
        if latency == 0.0 {
            return 0.0;
        }
        let c = &self.config;
        let compute_s =
            phase.int8_ops / (c.int8_tops * 1e12) + phase.fp_ops / (c.fp16_tflops * 1e12);
        let memory_s = phase.hbm_bytes / (c.hbm_tbps * 1e12);
        let activity = ((compute_s + memory_s) / latency).clamp(0.05, 1.0);
        latency * (c.idle_w + (c.tdp_w - c.idle_w) * activity)
    }

    /// Dynamic power draw implied by a phase, watts (paper methodology:
    /// active minus idle).
    #[must_use]
    pub fn dynamic_power_w(&self, phase: &GpuPhase) -> f64 {
        let latency = self.latency_s(phase);
        if latency == 0.0 {
            return 0.0;
        }
        self.energy_j(phase) / latency - self.config.idle_w
    }
}

/// Builds the GPU phase of one dense attention head-batch:
/// `heads` heads of `seq×seq` score computation at `head_dim`, with or
/// without FlashAttention-style tiling (`flash` removes the S-matrix HBM
/// round trip).
#[must_use]
pub fn attention_phase(seq: usize, heads: usize, head_dim: usize, flash: bool) -> GpuPhase {
    let s = seq as f64;
    let h = head_dim as f64;
    let n = heads as f64;
    // QKᵀ + PV: 2 × (S²·H) MACs per head, 2 ops per MAC.
    let int8_ops = n * 2.0 * 2.0 * s * s * h;
    // Softmax: ~5 fp ops per score.
    let fp_ops = n * 5.0 * s * s;
    // Q, K, V in; O out (1 byte each at INT8); the S matrix (2 bytes fp16)
    // travels to HBM twice unless tiling keeps it on chip.
    let qkvo = n * 4.0 * s * h;
    let s_matrix = if flash { 0.0 } else { n * 2.0 * 2.0 * s * s };
    GpuPhase {
        int8_ops,
        fp_ops,
        hbm_bytes: qkvo + s_matrix,
        kernels: if flash { 1.0 } else { 3.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_respects_both_roofs() {
        let model = H100Model::default();
        let compute_bound = GpuPhase { int8_ops: 1e15, fp_ops: 0.0, hbm_bytes: 1.0, kernels: 0.0 };
        let memory_bound = GpuPhase { int8_ops: 1.0, fp_ops: 0.0, hbm_bytes: 1e13, kernels: 0.0 };
        let lc = model.latency_s(&compute_bound);
        let lm = model.latency_s(&memory_bound);
        // 1e15 ops at 1979 TOPS × 0.35 ≈ 1.44 s; 1e13 B at 3.35 TB/s × 0.65 ≈ 4.6 s.
        assert!(lc > 1.0 && lc < 2.0, "compute-bound latency {lc}");
        assert!(lm > 4.0 && lm < 5.0, "memory-bound latency {lm}");
    }

    #[test]
    fn flash_attention_reduces_bytes_and_latency_at_long_seq() {
        let base = attention_phase(8192, 32, 128, false);
        let flash = attention_phase(8192, 32, 128, true);
        assert!(flash.hbm_bytes < base.hbm_bytes / 2.0);
        let model = H100Model::default();
        assert!(model.latency_s(&flash) < model.latency_s(&base));
    }

    #[test]
    fn long_sequences_are_memory_bound_without_flash() {
        let model = H100Model::default();
        let c = model.config();
        let phase = attention_phase(16384, 32, 128, false);
        let compute_s = phase.int8_ops / (c.int8_tops * 1e12 * c.attention_mfu);
        let memory_s = phase.hbm_bytes / (c.hbm_tbps * 1e12 * c.bandwidth_eff);
        assert!(memory_s > compute_s, "attention should be memory-bound");
    }

    #[test]
    fn energy_between_idle_and_tdp_bounds() {
        let model = H100Model::default();
        let phase = attention_phase(2048, 32, 128, true);
        let latency = model.latency_s(&phase);
        let energy = model.energy_j(&phase);
        assert!(energy >= latency * model.config().idle_w * 0.99);
        assert!(energy <= latency * model.config().tdp_w * 1.01);
    }

    #[test]
    fn zero_phase_costs_nothing() {
        let model = H100Model::default();
        assert_eq!(model.energy_j(&GpuPhase::default()), 0.0);
        assert_eq!(model.latency_s(&GpuPhase::default()), 0.0);
    }

    #[test]
    fn phase_plus_accumulates() {
        let a = attention_phase(1024, 8, 64, true);
        let b = a.plus(&a);
        assert!((b.int8_ops - 2.0 * a.int8_ops).abs() < 1.0);
    }
}
