//! Tests pinning the concrete worked examples printed in the paper's
//! figures — if any of these breaks, the implementation has diverged from
//! the mechanism as published.

use pade::core::bui::Bui;
use pade::core::rars::{naive_schedule, rars_schedule};
use pade::energy::area::{gsat_cost, PadeAreaModel};
use pade::quant::{plane_weight, TokenPlanes};

#[test]
fn fig5a_msb_speculation_error_example() {
    // (+5)·(+5) + (+5)·(-5) = 0, but 1-bit MSB speculation says -40.
    let k = TokenPlanes::from_values(&[5, -5], 4);
    let est = plane_weight(0, 4) * k.plane(0).masked_sum(&[5, 5]);
    assert_eq!(est, -40);
    let exact: i32 = k.reconstruct().iter().zip([5, 5].iter()).map(|(a, b)| a * b).sum();
    assert_eq!(exact, 0);
}

#[test]
fn fig6_bui_interval_structure() {
    // Q = [6, -5, 9, -4]: P = 15, N = -9; the paper's fractional intervals
    // (-69.75, +116.25) are exactly (N, P) · 7.75.
    let bui = Bui::new(&[6, -5, 9, -4], 8);
    assert_eq!(bui.pos_sum(), 15);
    assert_eq!(bui.neg_sum(), -9);
    assert!((15.0 * 7.75 - 116.25f64).abs() < 1e-9);
    assert!((-9.0 * 7.75 - (-69.75f64)).abs() < 1e-9);
    // And the integer-domain interval at the MSB is U₀·(N, P) with U₀=127.
    assert_eq!(bui.interval(0), (-127 * 9, 127 * 15));
}

#[test]
fn fig13_rars_example_eleven_to_eight() {
    let rows = vec![vec![0, 1, 2, 3], vec![2, 3, 4, 7], vec![4, 5, 6, 7], vec![2, 3, 4, 7]];
    assert_eq!(naive_schedule(&rows, 2).total_loads, 11);
    let rars = rars_schedule(&rows, 2, 4);
    assert_eq!(rars.total_loads, 8);
    assert!(rars.covers(&rows, 2));
}

#[test]
fn fig17a_gsat_optimum_is_eight() {
    let best = [2usize, 4, 8, 16, 32, 64]
        .into_iter()
        .min_by(|&a, &b| gsat_cost(a).0.partial_cmp(&gsat_cost(b).0).unwrap())
        .unwrap();
    assert_eq!(best, 8);
}

#[test]
fn fig20_area_power_and_peak_efficiency() {
    let m = PadeAreaModel::paper();
    assert!((m.total_area_mm2() - 4.53).abs() < 1e-9);
    assert!((m.total_power_mw() - 591.0).abs() < 1e-9);
    assert!((m.peak_tops_per_watt() - 11.36).abs() < 1.0);
    let (area, power) = m.fusion_overhead();
    assert!((area - 0.058).abs() < 0.01);
    assert!((power - 0.121).abs() < 0.02);
}

#[test]
fn table3_configuration_invariants() {
    use pade::core::config::PadeConfig;
    let c = PadeConfig::standard();
    c.validate();
    assert_eq!(c.total_lanes(), 128);
    assert_eq!((c.vpu_rows, c.vpu_cols), (8, 16));
    assert_eq!(c.scoreboard_entries, 32);
    assert_eq!((c.kv_buffer_kb, c.q_buffer_kb), (320, 32));
    assert_eq!(c.hbm.channels, 16);
    assert!((c.hbm.peak_bandwidth_bytes_per_s() - 256e9).abs() < 1e6);
    assert!((c.hbm.t_rc_ns - 50.0).abs() < 1e-9);
}

#[test]
fn eq1_softmax_decay_bound() {
    // softmax(x0) < e^{-Δ} when x1 = x0 + Δ is present (Eq. 1).
    for delta in [1.0f32, 2.5, 5.0, 8.0] {
        let p = pade::linalg::softmax(&[0.0, delta]);
        assert!(p[0] < (-delta).exp(), "Δ={delta}: {} !< {}", p[0], (-delta).exp());
    }
}

#[test]
fn table1_feature_matrix_shape() {
    let rows = pade::baselines::tableone::table();
    assert_eq!(rows.len(), 9);
    let pade_row = rows.iter().find(|r| r.name == "PADE").unwrap();
    assert!(pade_row.predictor_free && !pade_row.needs_retrain && pade_row.tiling_support);
}
