//! `pade-trace-query` — interrogate a `.padetrace` stream file: per-stage
//! cycle histogram, per-request flight timelines (queue / prefill /
//! decode / preempted / stalled accounting assembled from the run's link
//! events), top-K slowest requests, and the `--assert-linked` causality
//! check CI runs after `--trace-stream` smoke runs.
//!
//! ```text
//! pade-trace-query run.padetrace                       # histogram + top-10 slowest
//! pade-trace-query run.padetrace --tenant 1 --top 5    # one tenant's slowest 5
//! pade-trace-query run.padetrace --request 42          # one request's full timeline
//! pade-trace-query run.padetrace --stage serve         # stages matching "serve"
//! pade-trace-query run.padetrace --assert-linked       # fail on broken hop chains
//! ```

use std::process::ExitCode;

use pade_trace::flight::{assemble_timelines, check_linked};
use pade_trace::stream::{is_stream_file, read_stream};

struct Args {
    path: String,
    tenant: Option<u64>,
    request: Option<u64>,
    stage: Option<String>,
    top: usize,
    assert_linked: bool,
}

const USAGE: &str = "usage: pade-trace-query <trace.padetrace> [--tenant T] [--request R] \
                     [--stage SUBSTR] [--top K] [--assert-linked]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        tenant: None,
        request: None,
        stage: None,
        top: 10,
        assert_linked: false,
    };
    let mut it = std::env::args().skip(1);
    let num = |flag: &str, v: Option<String>| -> Result<u64, String> {
        v.and_then(|v| v.parse().ok()).ok_or_else(|| format!("{flag} needs an integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tenant" => args.tenant = Some(num("--tenant", it.next())?),
            "--request" => args.request = Some(num("--request", it.next())?),
            "--stage" => args.stage = Some(it.next().ok_or("--stage needs a value")?),
            "--top" => args.top = num("--top", it.next())? as usize,
            "--assert-linked" => args.assert_linked = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if args.path.is_empty() && !other.starts_with('-') => {
                args.path = other.to_string();
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    if args.path.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !is_stream_file(&args.path) {
        eprintln!(
            "error: {} is not a .padetrace stream (pade-trace-query reads stream files; \
             use pade-trace-validate for Chrome-trace JSON)",
            args.path
        );
        return ExitCode::FAILURE;
    }
    let snapshot = match read_stream(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = snapshot.check_well_formed() {
        eprintln!("error: {}: malformed trace: {e}", args.path);
        return ExitCode::FAILURE;
    }

    let mut timelines = assemble_timelines(&snapshot);
    println!(
        "{}: {} events / {} spans / {} links across {} tracks; {} requests",
        args.path,
        snapshot.event_count(),
        snapshot.span_count(),
        snapshot.link_count(),
        snapshot.tracks.len(),
        timelines.len()
    );

    if args.assert_linked {
        if let Err(e) = check_linked(&timelines) {
            eprintln!("error: causality check failed: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "causality: all {} request hop chains complete (admit -> retire)",
            timelines.len()
        );
    }

    // Stage histogram: spans and logical cycles per stage, optionally
    // filtered by substring.
    let breakdown = snapshot.breakdown();
    let matches = |name: &str| args.stage.as_deref().is_none_or(|s| name.contains(s));
    let shown: Vec<_> = breakdown.stages.iter().filter(|s| matches(&s.name)).collect();
    if shown.is_empty() {
        match &args.stage {
            Some(s) => println!("stages: none matching '{s}'"),
            None => println!("stages: none recorded"),
        }
    } else {
        println!("{:<28} {:>8} {:>14} {:>14}", "stage", "spans", "cycles", "wall ns");
        for s in &shown {
            println!(
                "{:<28} {:>8} {:>14} {:>14}",
                s.name, s.spans, s.total_cycles, s.total_wall_nanos
            );
        }
    }
    let counters: Vec<_> = breakdown.counters.iter().filter(|(name, _)| matches(name)).collect();
    if !counters.is_empty() {
        println!("{:<28} {:>14}", "counter", "total");
        for (name, value) in &counters {
            println!("{name:<28} {value:>14}");
        }
    }

    // Request filters, then the top-K slowest by total latency.
    if let Some(t) = args.tenant {
        timelines.retain(|tl| tl.tenant == t);
        println!("tenant {t}: {} requests", timelines.len());
    }
    if let Some(r) = args.request {
        timelines.retain(|tl| tl.request == r);
        if timelines.is_empty() {
            eprintln!("error: request {r} has no link events in this trace");
            return ExitCode::FAILURE;
        }
    }
    timelines.sort_by(|a, b| b.total_cycles.cmp(&a.total_cycles).then(a.request.cmp(&b.request)));
    let k = if args.request.is_some() { timelines.len() } else { args.top.min(timelines.len()) };
    if k > 0 {
        println!("slowest {k} requests:");
        for tl in &timelines[..k] {
            println!("  {tl}");
            if args.request.is_some() {
                println!(
                    "    dispatches {}, preemptions {}, cache hit tokens {}, tier spilled \
                     {} chunks / fetched {} tokens",
                    tl.dispatches,
                    tl.preemptions,
                    tl.cache_hit_tokens,
                    tl.tier_spilled_chunks,
                    tl.tier_fetched_tokens
                );
            }
        }
    }
    ExitCode::SUCCESS
}
