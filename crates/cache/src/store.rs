//! Per-session cache persistence between a session's requests.
//!
//! A multi-turn session's turn `k+1` prompt extends its turn-`k` context,
//! so the grown [`GrowableKeyCache`] the session finished turn `k` with
//! is the perfect starting point for turn `k+1`: resume it and only the
//! new turn's suffix needs decomposing. The store keys on the workload's
//! session id and remembers the exact token ids the stored cache covers —
//! resumption happens only when the new prompt really extends them, so a
//! session that rewrites history simply falls back to the shared index.

use std::collections::HashMap;

use pade_quant::GrowableKeyCache;

#[derive(Debug)]
struct StoredSession {
    /// Token ids covered by `cache`, exactly `cache.tokens()` of them.
    ids: Vec<u32>,
    cache: GrowableKeyCache,
    last_use: u64,
}

/// Keeps each session's grown cache alive between that session's
/// requests, with deterministic LRU eviction under a memory budget.
#[derive(Debug, Default)]
pub struct SessionStore {
    sessions: HashMap<u64, StoredSession>,
}

impl SessionStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no sessions are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Takes the stored cache of `session` when `ids` extends (or equals)
    /// the token ids the cache covers; otherwise the entry stays put (a
    /// non-extending prompt is a different conversation, not a resume).
    /// Returns the cache and the number of tokens it already holds.
    pub(crate) fn take_if_prefix(
        &mut self,
        session: u64,
        ids: &[u32],
    ) -> Option<(GrowableKeyCache, usize)> {
        let entry = self.sessions.get(&session)?;
        let covered = entry.ids.len();
        if covered > ids.len() || entry.ids != ids[..covered] {
            return None;
        }
        let entry = self.sessions.remove(&session).expect("entry just read");
        Some((entry.cache, covered))
    }

    /// Stores (or replaces) a session's grown cache covering exactly the
    /// leading `cache.tokens()` ids of `ids`, returning the replaced
    /// cache (if any) so the caller can unbill it.
    pub(crate) fn insert(
        &mut self,
        session: u64,
        ids: &[u32],
        cache: GrowableKeyCache,
        tick: u64,
    ) -> Option<GrowableKeyCache> {
        debug_assert!(cache.tokens() <= ids.len());
        let covered = ids[..cache.tokens()].to_vec();
        self.sessions
            .insert(session, StoredSession { ids: covered, cache, last_use: tick })
            .map(|e| e.cache)
    }

    /// The least-recently-used stored session (ties on `last_use` break
    /// on the session id, so the choice is deterministic).
    pub(crate) fn lru_session(&self) -> Option<u64> {
        self.sessions.iter().min_by_key(|(&id, e)| (e.last_use, id)).map(|(&id, _)| id)
    }

    /// Drops a stored session, returning its cache for byte accounting.
    pub(crate) fn remove(&mut self, session: u64) -> Option<GrowableKeyCache> {
        self.sessions.remove(&session).map(|e| e.cache)
    }

    /// Iterates the stored caches (for the slow test-only residency
    /// recomputation).
    #[cfg(test)]
    pub(crate) fn caches(&self) -> impl Iterator<Item = &GrowableKeyCache> {
        self.sessions.values().map(|e| &e.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grown(ids: &[u32]) -> GrowableKeyCache {
        let mut cache = GrowableKeyCache::new(4, 8, 2).unwrap();
        for &id in ids {
            cache.append_token(&[(id % 100) as i8, 1, -2, 3]).unwrap();
        }
        cache
    }

    #[test]
    fn resume_requires_an_extending_prompt() {
        let mut store = SessionStore::new();
        store.insert(7, &[1, 2, 3], grown(&[1, 2, 3]), 1);
        // A rewritten history does not resume (and the entry survives).
        assert!(store.take_if_prefix(7, &[1, 9, 3, 4]).is_none());
        assert!(store.take_if_prefix(8, &[1, 2, 3, 4]).is_none());
        assert_eq!(store.len(), 1);
        // An extending prompt takes the cache out.
        let (cache, covered) = store.take_if_prefix(7, &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!((cache.tokens(), covered), (3, 3));
        assert!(store.is_empty());
    }

    #[test]
    fn lru_session_is_deterministic() {
        let mut store = SessionStore::new();
        store.insert(3, &[1], grown(&[1]), 5);
        store.insert(1, &[2], grown(&[2]), 5);
        store.insert(2, &[3], grown(&[3]), 9);
        // Equal ticks: the smaller session id wins the tie.
        assert_eq!(store.lru_session(), Some(1));
        store.remove(1);
        assert_eq!(store.lru_session(), Some(3));
    }
}
