//! `pade-serve` — run the continuous-batching server on a seeded arrival
//! trace and report latency percentiles and throughput.
//!
//! ```text
//! cargo run --release -p pade-serve --bin pade-serve               # standard workload
//! cargo run --release -p pade-serve --bin pade-serve -- --quick    # CI smoke (tiny trace)
//! cargo run --release -p pade-serve --bin pade-serve -- \
//!     --requests 32 --mean-gap 30000 --seq-len 1024 --slots 8
//! cargo run --release -p pade-serve --bin pade-serve -- \
//!     --shared-prefix --cache-budget 4000000                       # prefix-cache workload
//! ```
//!
//! Every run serves the same arrival trace twice — continuous batching
//! and the one-request-at-a-time baseline — checks that the two produce
//! byte-identical per-request outputs, and prints both so the batching
//! gain is always read against its baseline. Latencies are simulated
//! cycles at the 800 MHz core clock.
//!
//! `--shared-prefix` switches to the multi-turn shared-prefix workload:
//! requests carry prompt token-id sequences drawn from a seeded prefix
//! pool and admission goes through the `pade-cache` prefix cache (hit /
//! decomposed token counts, evictions and resident bytes are printed in
//! the summary). `--no-prefix-cache` serves the same workload with the
//! cache disabled — outputs are byte-identical either way. `--spill-dir`
//! attaches a `pade-tier` disk spill store: budget-evicted sealed chunks
//! demote to one file each instead of dropping, and later prefix hits
//! re-adopt them by parsing the stored plane words (spill/fetch counters
//! join the cache summary; outputs stay byte-identical).
//!
//! `--slo-aware` switches to the two-tenant contention workload: a
//! high-priority foreground tenant decoding under a p99 latency SLO
//! against a low-priority background tenant flooding long prefills, and
//! serves it with the SLO-aware preemptive policy (chunked prefill +
//! forced preemption cadence). Per-tenant SLO-attainment lines and
//! preempt/resume counters join the summary — outputs stay
//! byte-identical to the non-preemptive solo baseline.

use std::process::exit;
use std::sync::Arc;

use pade_cache::{CacheBudget, TierConfig};
use pade_serve::scheduler::{ScheduleMode, SchedulePolicy};
use pade_serve::server::{serve, serve_traced, ServeConfig, ServeReport};
use pade_trace::{save_chrome_trace, Recorder, StreamSink, TraceSink, Tracer};
use pade_workload::prompt::{generate_shared_prefix_arrivals, SharedPrefixConfig};
use pade_workload::trace::{
    generate_arrivals, generate_tenant_mix, ArrivalConfig, RequestArrival, TenantLoad,
};

/// Fans one event stream out to both the in-memory recorder and the
/// on-disk stream sink when `--trace-out` and `--trace-stream` are both
/// given.
struct TeeSink(Arc<Recorder>, Arc<StreamSink>);

impl TraceSink for TeeSink {
    fn submit(&self, track: u64, events: &[pade_trace::TraceEvent]) {
        self.0.submit(track, events);
        self.1.submit(track, events);
    }
}

struct Args {
    quick: bool,
    shared_prefix: bool,
    slo_aware: bool,
    no_prefix_cache: bool,
    hit_aware: bool,
    cache_budget: Option<u64>,
    cache_file: Option<std::path::PathBuf>,
    spill_dir: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
    trace_stream: Option<std::path::PathBuf>,
    requests: Option<usize>,
    mean_gap: Option<f64>,
    seq_len: Option<usize>,
    slots: Option<usize>,
    max_batch_tokens: Option<usize>,
    decode_fraction: Option<f64>,
    seed: Option<u64>,
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a valid value");
        exit(2);
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        shared_prefix: false,
        slo_aware: false,
        no_prefix_cache: false,
        hit_aware: false,
        cache_budget: None,
        cache_file: None,
        spill_dir: None,
        trace_out: None,
        trace_stream: None,
        requests: None,
        mean_gap: None,
        seq_len: None,
        slots: None,
        max_batch_tokens: None,
        decode_fraction: None,
        seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--shared-prefix" => args.shared_prefix = true,
            "--slo-aware" => args.slo_aware = true,
            "--no-prefix-cache" => args.no_prefix_cache = true,
            "--hit-aware" => args.hit_aware = true,
            "--cache-budget" => args.cache_budget = Some(parse("--cache-budget", it.next())),
            "--cache-file" => {
                args.cache_file =
                    Some(std::path::PathBuf::from(parse::<String>("--cache-file", it.next())));
            }
            "--spill-dir" => {
                args.spill_dir =
                    Some(std::path::PathBuf::from(parse::<String>("--spill-dir", it.next())));
            }
            "--trace-out" => {
                args.trace_out =
                    Some(std::path::PathBuf::from(parse::<String>("--trace-out", it.next())));
            }
            "--trace-stream" => {
                args.trace_stream =
                    Some(std::path::PathBuf::from(parse::<String>("--trace-stream", it.next())));
            }
            "--requests" => args.requests = Some(parse("--requests", it.next())),
            "--mean-gap" => args.mean_gap = Some(parse("--mean-gap", it.next())),
            "--seq-len" => args.seq_len = Some(parse("--seq-len", it.next())),
            "--slots" => args.slots = Some(parse("--slots", it.next())),
            "--max-batch-tokens" => {
                args.max_batch_tokens = Some(parse("--max-batch-tokens", it.next()));
            }
            "--decode-fraction" => {
                args.decode_fraction = Some(parse("--decode-fraction", it.next()));
            }
            "--seed" => args.seed = Some(parse("--seed", it.next())),
            "--help" | "-h" => {
                println!(
                    "usage: pade-serve [--quick] [--shared-prefix] [--slo-aware] \
                     [--no-prefix-cache] [--hit-aware] [--cache-budget BYTES] \
                     [--cache-file PATH] [--spill-dir PATH] [--trace-out PATH] \
                     [--trace-stream PATH] [--requests N] \
                     [--mean-gap CYCLES] [--seq-len S] [--slots K] [--max-batch-tokens T] \
                     [--decode-fraction F] [--seed X]"
                );
                exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                exit(2);
            }
        }
    }
    args
}

fn print_report(report: &ServeReport, wall_s: f64) {
    let s = &report.summary;
    // An empty run has no percentiles: "—" columns, never a p99 of zero
    // cycles that reads as an impossibly fast run.
    let (p50, p95, p99) = if s.latency.count == 0 {
        let dash = || "\u{2014}".to_string();
        (dash(), dash(), dash())
    } else {
        (s.latency.p50.0.to_string(), s.latency.p95.0.to_string(), s.latency.p99.0.to_string())
    };
    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>12} {:>13.1} {:>10.2} {:>10.2} {:>9.3}s",
        report.mode.label(),
        s.tokens,
        p50,
        p95,
        p99,
        s.tokens_per_s / 1e6,
        s.queue_depth_mean,
        s.occupancy_mean,
        wall_s
    );
}

/// Flight-recorder totals: where retired requests spent their cycles
/// between arrival and retirement.
fn print_flight_summary(report: &ServeReport) {
    println!("{} {}", report.mode.label(), report.summary.flight);
}

/// Always prints — a run that attached nothing says so explicitly
/// instead of silently omitting the line.
fn print_cache_summary(report: &ServeReport) {
    let s = &report.summary;
    if s.cache_hit_tokens + s.cache_decomposed_tokens == 0 {
        println!(
            "{} prefix cache: no prompt tokens attached (latency {})",
            report.mode.label(),
            s.latency
        );
        return;
    }
    println!(
        "{} prefix cache: {} hit tokens / {} decomposed ({:.1}% hit rate), \
         {} evictions, resident bytes mean {:.0} / peak {:.0} (latency {})",
        report.mode.label(),
        s.cache_hit_tokens,
        s.cache_decomposed_tokens,
        s.cache_hit_rate * 100.0,
        s.cache_evictions,
        s.cache_resident_bytes_mean,
        s.cache_resident_bytes_max,
        s.latency
    );
    if s.cache_spilled_chunks > 0 || s.cache_fetched_tokens > 0 {
        println!(
            "{} spill tier: {} chunks ({} bytes) spilled, {} tokens re-adopted from spill",
            report.mode.label(),
            s.cache_spilled_chunks,
            s.cache_spilled_bytes,
            s.cache_fetched_tokens
        );
    }
}

/// Engine op/traffic totals — the satellite visibility for the counters
/// the kernels have always accumulated per block.
fn print_ops_summary(report: &ServeReport) {
    let s = &report.summary;
    println!(
        "{} engine ops: {} equivalent adds ({} bit-serial acc, {} LUT lookups); \
         traffic: {} DRAM + {} SRAM bytes",
        report.mode.label(),
        s.ops.equivalent_adds(),
        s.ops.bit_serial_acc,
        s.ops.lut_lookup,
        s.traffic.dram_total_bytes(),
        s.traffic.sram_total_bytes()
    );
}

/// Out-of-range values get the same exit-code-2 usage error as unknown
/// flags, not an assert backtrace from deeper in the stack.
fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    exit(2);
}

fn plain_workload(args: &Args) -> Vec<RequestArrival> {
    let workload = if args.quick {
        ArrivalConfig {
            n_requests: 6,
            mean_interarrival_cycles: 1_000.0,
            decode_steps: 2,
            prefill_rows: 8,
            seq_len: 256,
            ..ArrivalConfig::small_demo()
        }
    } else {
        ArrivalConfig {
            n_requests: 24,
            mean_interarrival_cycles: 4_000.0,
            decode_steps: 8,
            prefill_rows: 16,
            seq_len: 1024,
            ..ArrivalConfig::small_demo()
        }
    };
    let workload = ArrivalConfig {
        n_requests: args.requests.unwrap_or(workload.n_requests),
        mean_interarrival_cycles: args.mean_gap.unwrap_or(workload.mean_interarrival_cycles),
        seq_len: args.seq_len.unwrap_or(workload.seq_len),
        decode_fraction: args.decode_fraction.unwrap_or(workload.decode_fraction),
        seed: args.seed.unwrap_or(workload.seed),
        ..workload
    };
    if workload.n_requests == 0 {
        usage_error("--requests must be at least 1");
    }
    if !(workload.mean_interarrival_cycles > 0.0 && workload.mean_interarrival_cycles.is_finite()) {
        usage_error("--mean-gap must be a positive, finite cycle count");
    }
    if workload.seq_len == 0 {
        usage_error("--seq-len must be at least 1");
    }
    if !(0.0..=1.0).contains(&workload.decode_fraction) {
        usage_error("--decode-fraction must lie in [0, 1]");
    }
    println!(
        "pade-serve: {} requests, mean gap {:.0} cyc, S={}",
        workload.n_requests, workload.mean_interarrival_cycles, workload.seq_len,
    );
    generate_arrivals(&workload)
}

fn shared_prefix_workload(args: &Args) -> Vec<RequestArrival> {
    // Reject flags this mode would otherwise silently ignore — a user
    // benchmarking at a specific shape must not get numbers for a
    // different workload than they asked for.
    if args.seq_len.is_some() {
        usage_error("--seq-len has no effect with --shared-prefix (prompt lengths come from the prefix pool)");
    }
    if args.decode_fraction.is_some() {
        usage_error("--decode-fraction has no effect with --shared-prefix (the workload sets its own prefill fraction)");
    }
    let workload = if args.quick {
        SharedPrefixConfig {
            n_sessions: 4,
            turns_per_session: 2,
            shared_prefix_tokens: 64,
            unique_suffix_tokens: 16,
            turn_suffix_tokens: 16,
            decode_steps: 2,
            mean_interarrival_cycles: 1_000.0,
            turn_gap_cycles: 100_000,
            ..SharedPrefixConfig::small_demo()
        }
    } else {
        SharedPrefixConfig {
            n_sessions: 12,
            turns_per_session: 2,
            shared_prefix_tokens: 512,
            unique_suffix_tokens: 64,
            turn_suffix_tokens: 64,
            decode_steps: 8,
            mean_interarrival_cycles: 4_000.0,
            ..SharedPrefixConfig::small_demo()
        }
    };
    let workload = SharedPrefixConfig {
        n_sessions: args.requests.unwrap_or(workload.n_sessions),
        mean_interarrival_cycles: args.mean_gap.unwrap_or(workload.mean_interarrival_cycles),
        seed: args.seed.unwrap_or(workload.seed),
        ..workload
    };
    if workload.n_sessions == 0 {
        usage_error("--requests must be at least 1");
    }
    if !(workload.mean_interarrival_cycles > 0.0 && workload.mean_interarrival_cycles.is_finite()) {
        usage_error("--mean-gap must be a positive, finite cycle count");
    }
    println!(
        "pade-serve: shared-prefix workload, {} sessions x {} turns, {} shared + {} unique tokens",
        workload.n_sessions,
        workload.turns_per_session,
        workload.shared_prefix_tokens,
        workload.unique_suffix_tokens,
    );
    generate_shared_prefix_arrivals(&workload)
}

/// The two-tenant SLO contention workload: foreground tenant 0 decoding
/// under a p99 SLO at priority 10, background tenant 1 flooding long
/// prefill prompts at priority 0 (mirroring `pade-bench --scenario
/// preempt`).
fn slo_workload(args: &Args) -> Vec<RequestArrival> {
    if args.decode_fraction.is_some() {
        usage_error(
            "--decode-fraction has no effect with --slo-aware (the tenant mix sets per-tenant \
             fractions)",
        );
    }
    let (slo, n_fg, n_bg, bg_rows, seq_len, fg_gap, bg_gap, decode_steps) = if args.quick {
        (5_000u64, 3usize, 2usize, 16usize, 128usize, 900.0, 300.0, 2usize)
    } else {
        (6_000, 8, 6, 48, 512, 3_000.0, 800.0, 4)
    };
    let n_fg = args.requests.unwrap_or(n_fg);
    if n_fg == 0 {
        usage_error("--requests must be at least 1");
    }
    let fg_gap = args.mean_gap.unwrap_or(fg_gap);
    if !(fg_gap > 0.0 && fg_gap.is_finite()) {
        usage_error("--mean-gap must be a positive, finite cycle count");
    }
    let seq_len = args.seq_len.unwrap_or(seq_len);
    if seq_len == 0 {
        usage_error("--seq-len must be at least 1");
    }
    let seed = args.seed.unwrap_or(2026);
    let fg = ArrivalConfig {
        n_requests: n_fg,
        mean_interarrival_cycles: fg_gap,
        decode_fraction: 1.0,
        decode_steps,
        seq_len,
        seed,
        ..ArrivalConfig::small_demo()
    };
    let bg = ArrivalConfig {
        n_requests: n_bg,
        mean_interarrival_cycles: bg_gap,
        decode_fraction: 0.0,
        prefill_rows: bg_rows,
        seq_len,
        seed: seed ^ 0x9E37_79B9,
        ..ArrivalConfig::small_demo()
    };
    println!(
        "pade-serve: SLO contention mix — {n_fg} fg decode reqs (priority 10, SLO {slo} cyc) vs \
         {n_bg} bg prefills x {bg_rows} rows (priority 0), S={seq_len}",
    );
    generate_tenant_mix(&[
        TenantLoad { tenant: 0, priority: 10, tenant_slo: Some(slo), arrivals: fg },
        TenantLoad { tenant: 1, priority: 0, tenant_slo: None, arrivals: bg },
    ])
}

/// Per-tenant SLO attainment plus the preempt/resume counters. Tenants
/// that completed nothing render as `n=0 —` (the Display handles it);
/// runs with no SLO-carrying tenants print nothing.
fn print_slo_summary(report: &ServeReport) {
    for line in &report.summary.slo {
        println!("{} slo: {line}", report.mode.label());
    }
    if !report.summary.slo.is_empty() {
        println!(
            "{} scheduling: {} preemptions, {} resumes",
            report.mode.label(),
            report.metrics.preemptions,
            report.metrics.resumes
        );
    }
}

fn main() {
    let args = parse_args();
    if args.shared_prefix && args.slo_aware {
        usage_error("--slo-aware conflicts with --shared-prefix (pick one workload)");
    }
    let arrivals = if args.shared_prefix {
        shared_prefix_workload(&args)
    } else if args.slo_aware {
        slo_workload(&args)
    } else {
        plain_workload(&args)
    };
    let prefix_cache = if args.no_prefix_cache {
        if args.cache_budget.is_some() {
            usage_error("--cache-budget conflicts with --no-prefix-cache");
        }
        if args.cache_file.is_some() {
            usage_error("--cache-file conflicts with --no-prefix-cache");
        }
        if args.hit_aware {
            usage_error(
                "--hit-aware conflicts with --no-prefix-cache (no cache, no hit prediction)",
            );
        }
        if args.spill_dir.is_some() {
            usage_error("--spill-dir conflicts with --no-prefix-cache (no cache, no spill tier)");
        }
        None
    } else {
        Some(args.cache_budget.map_or(CacheBudget::unlimited(), CacheBudget::bytes))
    };
    let config = ServeConfig {
        engine_slots: args.slots.unwrap_or(if args.slo_aware { 2 } else { 4 }).max(1),
        max_batch_tokens: args.max_batch_tokens.unwrap_or(64),
        prefix_cache,
        hit_aware: args.hit_aware,
        cache_file: args.cache_file.clone(),
        // Per-mode subdirectories: the batched and solo replays each get
        // their own spill store, so neither warms the other's counters.
        tier: args.spill_dir.as_ref().map(|d| TierConfig::Disk(d.join("batched"))),
        policy: if args.slo_aware { SchedulePolicy::SloAware } else { SchedulePolicy::Fcfs },
        prefill_chunk_tokens: args.slo_aware.then_some(2),
        preempt_every: args.slo_aware.then_some(4),
        ..ServeConfig::standard()
    };

    if args.slo_aware {
        println!(
            "scheduler: SLO-aware preemptive (chunked prefill {} rows, forced preemption every \
             {} iterations)",
            config.prefill_chunk_tokens.unwrap_or(0),
            config.preempt_every.unwrap_or(0)
        );
    }
    println!(
        "device: {} slots, {} max batch tokens, prefix cache {}{}{}{}\n",
        config.engine_slots,
        config.max_batch_tokens,
        match config.prefix_cache {
            None => "off".to_string(),
            Some(b) if b.is_unlimited() => "on (unlimited)".to_string(),
            Some(b) => format!("on ({} byte budget)", b.max_bytes()),
        },
        if config.hit_aware { ", hit-aware admission" } else { "" },
        match &config.cache_file {
            Some(p) if p.exists() => format!(", warm cache file {}", p.display()),
            Some(p) => format!(", cold cache file {}", p.display()),
            None => String::new(),
        },
        match &args.spill_dir {
            Some(d) => format!(", disk spill tier {}", d.display()),
            None => String::new(),
        }
    );
    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>12} {:>13} {:>10} {:>10} {:>10}",
        "mode", "tokens", "p50 cyc", "p95 cyc", "p99 cyc", "Mtok/s sim", "queue", "occup", "wall"
    );

    let recorder = args.trace_out.as_ref().map(|_| Arc::new(Recorder::new()));
    let stream = args.trace_stream.as_ref().map(|path| {
        Arc::new(StreamSink::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create stream file {}: {e}", path.display());
            exit(1);
        }))
    });
    let tracer = match (&recorder, &stream) {
        (Some(r), Some(s)) => {
            Tracer::new(Arc::new(TeeSink(Arc::clone(r), Arc::clone(s))) as Arc<dyn TraceSink>)
        }
        (Some(r), None) => Tracer::new(Arc::clone(r) as Arc<dyn TraceSink>),
        (None, Some(s)) => Tracer::new(Arc::clone(s) as Arc<dyn TraceSink>),
        (None, None) => Tracer::disabled(),
    };
    if (args.trace_out.is_some() || args.trace_stream.is_some()) && !tracer.is_active() {
        eprintln!(
            "warning: built without the `trace` feature; the trace file will hold no events \
             (rebuild with --features pade-serve/trace)"
        );
    }

    let start = std::time::Instant::now();
    let batched = serve_traced(&config, &arrivals, ScheduleMode::Batched, &tracer, 0);
    let batched_wall = start.elapsed().as_secs_f64();
    print_report(&batched, batched_wall);

    let solo_config = ServeConfig {
        tier: args.spill_dir.as_ref().map(|d| TierConfig::Disk(d.join("solo"))),
        ..config.clone()
    };
    let start = std::time::Instant::now();
    let solo = serve(&solo_config, &arrivals, ScheduleMode::Solo);
    let solo_wall = start.elapsed().as_secs_f64();
    print_report(&solo, solo_wall);

    // Bit-identity across schedules: batching must never change outputs.
    pade_serve::assert_outputs_identical(&batched, &solo);

    println!();
    print_slo_summary(&batched);
    print_slo_summary(&solo);
    print_flight_summary(&batched);
    print_flight_summary(&solo);
    print_cache_summary(&batched);
    print_cache_summary(&solo);
    print_ops_summary(&batched);
    print_ops_summary(&solo);

    if let (Some(path), Some(recorder)) = (&args.trace_out, &recorder) {
        let snapshot = recorder.snapshot();
        snapshot.check_well_formed().unwrap_or_else(|e| panic!("malformed trace: {e}"));
        save_chrome_trace(&snapshot, path)
            .unwrap_or_else(|e| panic!("failed to write trace file {}: {e}", path.display()));
        let stages: Vec<&str> = snapshot.stage_names().into_iter().collect();
        println!(
            "\ntrace: {} events / {} spans across {} stages -> {}",
            snapshot.event_count(),
            snapshot.span_count(),
            stages.len(),
            path.display()
        );
        println!("trace stages: {}", stages.join(", "));
    }
    if let (Some(path), Some(stream)) = (&args.trace_stream, &stream) {
        stream
            .finish()
            .unwrap_or_else(|e| panic!("failed to write stream file {}: {e}", path.display()));
        println!(
            "trace stream: {} frames of {} B (peak {} B buffered) -> {}",
            stream.frames_written(),
            stream.frame_size(),
            stream.peak_buffered_bytes(),
            path.display()
        );
    }

    let gain = batched.summary.tokens_per_s / solo.summary.tokens_per_s.max(f64::MIN_POSITIVE);
    println!(
        "\nbatched/solo throughput: {gain:.2}x  (makespan {} vs {})",
        batched.summary.makespan, solo.summary.makespan
    );
    println!("all {} requests byte-identical across batched and solo schedules", arrivals.len());
}
