//! Integration tests for the paper's extension features, spanning crates:
//! multi-bit stage fusion (§VII), FP16 queries via exponent alignment
//! (§VI-F) and distributed sequence-parallel PADE (§VII) — each exercised
//! on realistic synthetic traces rather than hand-built vectors.

use pade::core::config::PadeConfig;
use pade::core::multibit::{run_multibit_row, sweep_digit_widths};
use pade::dist::wafer::{DistributedPade, WaferConfig};
use pade::dist::InterconnectConfig;
use pade::linalg::metrics::cosine_similarity;
use pade::quant::fp::align_f32_row;
use pade::quant::DigitPlaneMatrix;
use pade::workload::trace::{AttentionTrace, TraceConfig};

fn trace(seq_len: usize, seed: u64) -> AttentionTrace {
    AttentionTrace::generate(&TraceConfig { seq_len, seed, ..TraceConfig::small_demo() })
}

#[test]
fn multibit_sweep_holds_block_level_invariants() {
    let t = trace(512, 31);
    let config = PadeConfig::standard();
    let queries: Vec<&[i8]> = (0..t.queries().rows()).map(|i| t.queries().row(i)).collect();
    let sweep = sweep_digit_widths(
        &queries,
        t.keys().as_slice(),
        t.keys().cols(),
        8,
        &[1, 2, 4, 8],
        config.guard_margin(),
        t.logit_scale(),
    );
    // Identical sparsity decisions on this trace family, monotone fetch /
    // decision trade-off, and subset-chained retention.
    for w in sweep.windows(2) {
        assert!(w[1].bits_fetched >= w[0].bits_fetched);
        assert!(w[1].decisions <= w[0].decisions);
        for (fine, coarse) in w[0].retained.iter().zip(&w[1].retained) {
            let fine_ids: Vec<usize> = fine.iter().map(|&(j, _)| j).collect();
            for &(j, _) in coarse {
                assert!(
                    fine_ids.contains(&j),
                    "d={} kept {j} but d={} pruned it",
                    w[1].digit_bits,
                    w[0].digit_bits
                );
            }
        }
    }
    // Every width keeps each row's argmax.
    for r in &sweep {
        for (row, kept) in r.retained.iter().enumerate() {
            let logits = t.exact_logits(row);
            let max = logits.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
            let best = kept.iter().map(|&(j, _)| logits[j]).fold(f32::NEG_INFINITY, f32::max);
            assert!((best - max).abs() < 1e-3, "d={} row {row}", r.digit_bits);
        }
    }
}

#[test]
fn fp16_aligned_queries_match_int8_path() {
    let t = trace(384, 33);
    let config = PadeConfig::standard();
    let dims = t.keys().cols();
    let q_scale = t.queries().params().scale();
    let keys = DigitPlaneMatrix::from_rows(t.keys().as_slice(), dims, 1, 8).unwrap();
    for row in 0..t.queries().rows() {
        let q_int = t.queries().row(row);
        let int8 = run_multibit_row(q_int, &keys, config.guard_margin(), t.logit_scale());

        let q_real: Vec<f32> = q_int.iter().map(|&c| f32::from(c) * q_scale).collect();
        let aligned = align_f32_row(&q_real, 8).unwrap();
        let fp = run_multibit_row(
            aligned.codes(),
            &keys,
            config.guard_margin(),
            t.logit_scale() * aligned.scale() / q_scale,
        );

        let int8_ids: Vec<usize> = int8.retained.iter().map(|&(j, _)| j).collect();
        let fp_ids: Vec<usize> = fp.retained.iter().map(|&(j, _)| j).collect();
        // Outputs over the two retained sets must agree to high precision.
        let a = t.subset_output(row, &int8_ids);
        let b = t.subset_output(row, &fp_ids);
        let cos = cosine_similarity(&a, &b);
        assert!(cos > 0.999, "row {row}: cosine {cos}");
        // Retention agrees on the vast majority of keys.
        let inter = int8_ids.iter().filter(|j| fp_ids.contains(j)).count();
        let union = int8_ids.len() + fp_ids.len() - inter;
        assert!(inter as f64 / union.max(1) as f64 > 0.85, "row {row}: overlap {inter}/{union}");
    }
}

#[test]
fn distributed_mesh_with_sync_on_long_context() {
    let t = trace(2048, 35);
    let cfg = WaferConfig {
        chips: 16,
        interconnect: InterconnectConfig::wafer_mesh(),
        sync_guard: true,
        ..WaferConfig::standard(16)
    };
    let dist = DistributedPade::new(cfg).run_trace(&t);
    let solo = DistributedPade::new(WaferConfig::standard(1)).run_trace(&t);
    assert!(dist.fidelity > 0.99, "fidelity {}", dist.fidelity);
    // Sync recovers single-chip-grade retention (post-hoc exact filtering
    // can only prune more).
    assert!(dist.retained_keys <= solo.retained_keys);
    // The wafer wins end-to-end at this context length.
    assert!(dist.total_cycles < solo.total_cycles);
    // Mesh reduction beats the ring at 16 chips.
    let ring = DistributedPade::new(WaferConfig {
        chips: 16,
        sync_guard: true,
        ..WaferConfig::standard(16)
    })
    .run_trace(&t);
    assert!(dist.comm_cycles < ring.comm_cycles);
}

#[test]
fn distributed_outputs_track_dense_reference_across_chip_counts() {
    let t = trace(512, 37);
    for chips in [1usize, 3, 7, 12] {
        let dist = DistributedPade::new(WaferConfig::standard(chips)).run_trace(&t);
        for (row, out) in dist.outputs.iter().enumerate() {
            let reference = t.reference_output(row);
            let cos = cosine_similarity(out, &reference);
            assert!(cos > 0.99, "chips {chips} row {row}: cosine {cos}");
        }
    }
}
