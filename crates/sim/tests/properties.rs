//! Crate-level property tests for the simulation kernel: FIFO ordering and
//! accounting, event-queue time ordering, cycle/frequency arithmetic and
//! statistic merging — the bookkeeping every higher-level result trusts.

use pade_sim::{
    BoundedFifo, Cycle, EventQueue, Frequency, OpCounts, TrafficCounts, UtilizationCounter,
};
use proptest::prelude::*;

proptest! {
    /// FIFO order is preserved and accounting (pushed/rejected/high-water)
    /// matches a reference simulation.
    #[test]
    fn fifo_is_fifo_and_counts_right(
        cap in 1usize..16,
        ops in proptest::collection::vec(proptest::option::of(0u32..1000), 1..80),
    ) {
        let mut fifo = BoundedFifo::new(cap);
        let mut reference = std::collections::VecDeque::new();
        let mut pushed = 0u64;
        let mut rejected = 0u64;
        let mut high = 0usize;
        for op in ops {
            match op {
                Some(v) => {
                    if reference.len() < cap {
                        reference.push_back(v);
                        pushed += 1;
                        prop_assert!(fifo.push(v).is_ok());
                    } else {
                        rejected += 1;
                        prop_assert!(fifo.push(v).is_err());
                    }
                    high = high.max(reference.len());
                }
                None => {
                    prop_assert_eq!(fifo.pop(), reference.pop_front());
                }
            }
            prop_assert_eq!(fifo.len(), reference.len());
            prop_assert_eq!(fifo.front().copied(), reference.front().copied());
        }
        prop_assert_eq!(fifo.total_pushed(), pushed);
        prop_assert_eq!(fifo.rejected(), rejected);
        prop_assert_eq!(fifo.high_water(), high);
    }

    /// Events pop in non-decreasing time order and only once ready.
    #[test]
    fn event_queue_orders_by_time(
        events in proptest::collection::vec((0u64..1000, 0u32..100), 1..60),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        for &(t, v) in &events {
            q.schedule(Cycle(t), v);
        }
        prop_assert_eq!(q.len(), events.len());
        let horizon = Cycle(1000);
        let mut last = Cycle::ZERO;
        let mut drained = 0usize;
        // Nothing before its scheduled time.
        let min_t = events.iter().map(|&(t, _)| t).min().unwrap();
        if min_t > 0 {
            prop_assert!(q.pop_ready(Cycle(min_t - 1)).is_none());
        }
        while let Some(next) = q.next_time() {
            prop_assert!(next >= last);
            let _ = q.pop_ready(horizon).unwrap();
            last = next;
            drained += 1;
        }
        prop_assert_eq!(drained, events.len());
        prop_assert!(q.is_empty());
    }

    /// Frequency round trip: ns → cycles → seconds is consistent within a
    /// cycle of quantization.
    #[test]
    fn frequency_round_trip(mhz in 100.0f64..3000.0, ns in 0.0f64..10_000.0) {
        let f = Frequency::mhz(mhz);
        let cycles = f.cycles_from_ns(ns);
        let seconds = f.seconds(cycles);
        let err = (seconds - ns * 1e-9).abs();
        prop_assert!(err <= 1.0 / f.hz() + 1e-12, "err {err}");
    }

    /// OpCounts/TrafficCounts merging is component-wise addition (checked
    /// through the totals, which every energy figure uses).
    #[test]
    fn counters_merge_additively(
        a in proptest::collection::vec(0u64..1_000_000, 7),
        b in proptest::collection::vec(0u64..1_000_000, 7),
    ) {
        let make_ops = |v: &[u64]| OpCounts {
            int8_mac: v[0],
            bit_serial_acc: v[1],
            shift_add: v[2],
            fp_exp: v[3],
            fp_mul: v[4],
            compare: v[5],
            lut_lookup: v[6],
            ..OpCounts::default()
        };
        let mut x = make_ops(&a);
        x.merge(&make_ops(&b));
        prop_assert_eq!(x.int8_mac, a[0] + b[0]);
        prop_assert_eq!(x.bit_serial_acc, a[1] + b[1]);
        prop_assert_eq!(x.equivalent_adds(),
            make_ops(&a).equivalent_adds() + make_ops(&b).equivalent_adds());

        let mut ta = TrafficCounts {
            dram_read_bytes: a[0],
            sram_read_bytes: a[1],
            ..TrafficCounts::default()
        };
        let tb = TrafficCounts {
            dram_read_bytes: b[0],
            sram_write_bytes: b[2],
            ..TrafficCounts::default()
        };
        ta.merge(&tb);
        prop_assert_eq!(ta.dram_total_bytes(), a[0] + b[0]);
        prop_assert_eq!(ta.sram_total_bytes(), a[1] + b[2]);
    }

    /// Utilization categories always partition the total, and the derived
    /// fractions stay inside [0, 1].
    #[test]
    fn utilization_partitions_the_total(
        segments in proptest::collection::vec((0u8..4, 1u64..1000), 1..40),
    ) {
        let mut u = UtilizationCounter::new();
        let mut busy = 0u64;
        let mut total = 0u64;
        for (kind, n) in segments {
            match kind {
                0 => { u.busy(n); busy += n; }
                1 => u.stall_intra(n),
                2 => u.stall_inter(n),
                _ => u.stall_mem(n),
            }
            total += n;
        }
        prop_assert_eq!(u.total(), total);
        prop_assert_eq!(u.busy_cycles(), busy);
        prop_assert!((0.0..=1.0).contains(&u.utilization()));
        prop_assert!((0.0..=1.0).contains(&u.balance_efficiency()));
    }

    /// Cycle arithmetic: max/add/saturating_sub behave like u64.
    #[test]
    fn cycle_arithmetic(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (ca, cb) = (Cycle(a), Cycle(b));
        prop_assert_eq!((ca + cb).0, a + b);
        prop_assert_eq!(ca.max(cb).0, a.max(b));
        prop_assert_eq!(ca.saturating_sub(cb).0, a.saturating_sub(b));
    }
}
